// hpm_tool: command-line front end for the hpm library.
//
// Subcommands:
//   generate --kind bike|cow|car|airplane --out history.csv
//            [--period N] [--days N] [--seed N]
//       Synthesise a dataset and write it as CSV.
//
//   train --history history.csv --model model.bin
//         [--period N] [--eps X] [--min-pts N] [--min-conf X]
//         [--distant N] [--slack X] [--train-subs N]
//       Mine patterns from a CSV history and persist the model.
//
//   info --model model.bin
//       Print a trained model's summary.
//
//   predict --model model.bin --history history.csv --now T
//           --horizon N [--k N]
//       Answer a predictive query: recent movements are read from the
//       history around time T; the query time is T + horizon.
//
//   evaluate --model model.bin --history history.csv
//            [--length N] [--queries N] [--recent N]
//       Measure prediction error on held-out periods (those beyond the
//       model's training range) against the RMF and linear baselines.
//
//   throughput [--shards N] [--threads N] [--clients N]
//              [--objects N] [--ops N]
//       Measure concurrent MovingObjectStore throughput: ingest and
//       point-query ops/sec with --clients client threads against a
//       store built with --shards shards and --threads fan-out workers.
//
//   faultcheck [--seed N] [--dir PATH]
//       Run a deterministic fault-injection scenario (degraded serving,
//       save-kill recovery) and report per-site hit/fire counts. Needs a
//       -DHPM_ENABLE_FAULTS=ON build; exits 2 when the hooks are
//       compiled out, 1 when an invariant breaks, 0 on success.
//
//   stats [--seed N] [--shards N] [--threads N] [--objects N] [--ops N]
//       Run a seeded mixed workload (ingest, point/batch predictions,
//       range and kNN queries, a slice of malformed reports and
//       shed-to-RMF traffic) against a store and dump the full
//       observability picture as JSON: the metrics snapshot (per-op
//       admitted/shed counters, pipeline stage latency histograms, TPT
//       traversal effort), the OverloadStats aggregate, and a per-stage
//       latency breakdown (see docs/OBSERVABILITY.md).
//
//   serve --dir PATH [--host H] [--port N] [--port-file F] [--wal 0|1]
//         [--threads N] [--shards N]
//         [--replica-of HOST:PORT] [--poll-ms N] [--stale-ms N]
//       Serve a MovingObjectStore over TCP. Without --replica-of: a
//       primary — loads (or creates) the store under --dir, journals to
//       <dir>/wal, and answers reads, writes, and replication RPCs.
//       With --replica-of: a read-only replica — bootstraps a snapshot
//       from the primary when <dir> has none, replays its local journal
//       mirror, then follows the primary's journal; reads are stamped
//       with generation + staleness. --port 0 (default) binds an
//       ephemeral port; --port-file writes the bound port for scripts.
//       Runs until SIGINT/SIGTERM. Exits 3 when a replica detects
//       divergence and needs a re-bootstrap.
//
//   connect --port N [--host H] [--op ping|report|predict|stats]
//           [--id N] [--t N] [--x X] [--y Y] [--tq N] [--k N]
//       One client call against a running server; prints the reply
//       envelope (role, generation, staleness) and the op's result.
//
//   repl --port N [--host H]
//       Print a primary's replication state: current generation and the
//       journal segment listing a follower would mirror.
//
//   wal --dir PATH [--verify 1]
//       Inspect a write-ahead report journal directory: one row per
//       segment with its shard, sequence number, base generation, record
//       count, torn-tail bytes, and health. With --verify 1, exits 1 when
//       any segment is corrupt, unreadable, or missing its header (a torn
//       tail alone is a normal crash artifact, not a verification
//       failure). Never mutates the journal.
//
// All subcommands exit 0 on success and print errors to stderr.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"
#include "common/table_printer.h"
#include "eval/metrics.h"
#include "io/atomic_file.h"
#include "io/csv.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/server.h"
#include "server/object_store.h"
#include "server/replication.h"

namespace {

using namespace hpm;

/// Minimal --flag value parser: flags must be passed as "--name value".
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        ok_ = false;
        bad_ = argv[i];
        return;
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
    if ((argc - first) % 2 != 0) {
      ok_ = false;
      bad_ = argv[argc - 1];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::string Get(const std::string& name, const std::string& fallback) {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    used_.insert(it->first);
    return it->second;
  }

  double GetDouble(const std::string& name, double fallback) {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    used_.insert(it->first);
    return std::atof(it->second.c_str());
  }

  int64_t GetInt(const std::string& name, int64_t fallback) {
    const auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    used_.insert(it->first);
    return std::atoll(it->second.c_str());
  }

  bool Has(const std::string& name) const { return values_.count(name); }

  /// Any flag that no Get* consumed (a typo) — empty string if none.
  std::string FirstUnused() const {
    for (const auto& [name, value] : values_) {
      if (!used_.count(name)) return name;
    }
    return "";
  }

 private:
  bool ok_ = true;
  std::string bad_;
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: hpm_tool "
               "<generate|train|info|predict|evaluate|throughput|faultcheck"
               "|stats|wal|serve|connect|repl> "
               "[--flag value ...]\n  (see the header of tools/hpm_tool.cc)\n");
  return 2;
}

int FinishArgs(Args* args) {
  const std::string unused = args->FirstUnused();
  if (!unused.empty()) return Fail("unknown flag --" + unused);
  return 0;
}

int RunGenerate(Args args) {
  const std::string kind_name = args.Get("kind", "car");
  const std::string out = args.Get("out", "");
  PeriodicGeneratorConfig config;
  DatasetKind kind;
  if (kind_name == "bike") {
    kind = DatasetKind::kBike;
  } else if (kind_name == "cow") {
    kind = DatasetKind::kCow;
  } else if (kind_name == "car") {
    kind = DatasetKind::kCar;
  } else if (kind_name == "airplane") {
    kind = DatasetKind::kAirplane;
  } else {
    return Fail("unknown --kind '" + kind_name + "'");
  }
  config = DefaultConfig(kind);
  config.period = args.GetInt("period", config.period);
  config.num_sub_trajectories =
      static_cast<int>(args.GetInt("days", config.num_sub_trajectories));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  if (out.empty()) return Fail("--out is required");
  if (int rc = FinishArgs(&args)) return rc;

  const Dataset dataset = MakeDataset(kind, config);
  if (Status s = WriteTrajectoryCsv(dataset.trajectory, out); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("wrote %zu samples (%d days x %ld) to %s\n",
              dataset.trajectory.size(), config.num_sub_trajectories,
              static_cast<long>(config.period), out.c_str());
  return 0;
}

int RunTrain(Args args) {
  const std::string history_path = args.Get("history", "");
  const std::string model_path = args.Get("model", "");
  HybridPredictorOptions options;
  options.regions.period = args.GetInt("period", 300);
  options.regions.dbscan.eps = args.GetDouble("eps", 30.0);
  options.regions.dbscan.min_pts =
      static_cast<int>(args.GetInt("min-pts", 4));
  options.regions.limit_sub_trajectories =
      static_cast<int>(args.GetInt("train-subs", 0));
  options.mining.min_confidence = args.GetDouble("min-conf", 0.3);
  options.distant_threshold = args.GetInt("distant", 60);
  options.region_match_slack = args.GetDouble("slack", 25.0);
  if (history_path.empty() || model_path.empty()) {
    return Fail("--history and --model are required");
  }
  if (int rc = FinishArgs(&args)) return rc;

  auto history = ReadTrajectoryCsv(history_path);
  if (!history.ok()) return Fail(history.status().ToString());
  auto predictor = HybridPredictor::Train(*history, options);
  if (!predictor.ok()) return Fail(predictor.status().ToString());
  if (Status s = (*predictor)->SaveToFile(model_path); !s.ok()) {
    return Fail(s.ToString());
  }
  const TrainingSummary& summary = (*predictor)->summary();
  std::printf("trained on %zu sub-trajectories: %zu regions, %zu patterns "
              "(%.2f s); model -> %s\n",
              summary.num_sub_trajectories, summary.num_frequent_regions,
              summary.num_patterns, summary.train_seconds,
              model_path.c_str());
  return 0;
}

int RunInfo(Args args) {
  const std::string model_path = args.Get("model", "");
  if (model_path.empty()) return Fail("--model is required");
  if (int rc = FinishArgs(&args)) return rc;

  auto predictor = HybridPredictor::LoadFromFile(model_path);
  if (!predictor.ok()) return Fail(predictor.status().ToString());
  const TrainingSummary& summary = (*predictor)->summary();
  const HybridPredictorOptions& options = (*predictor)->options();
  std::printf("model: %s\n", model_path.c_str());
  std::printf("  period (T):          %ld\n",
              static_cast<long>(options.regions.period));
  std::printf("  sub-trajectories:    %zu\n",
              summary.num_sub_trajectories);
  std::printf("  frequent regions:    %zu\n",
              summary.num_frequent_regions);
  std::printf("  trajectory patterns: %zu\n", summary.num_patterns);
  std::printf("  TPT height:          %d\n", summary.tpt_height);
  std::printf("  TPT memory:          %.2f MB\n",
              static_cast<double>(summary.tpt_memory_bytes) / 1048576.0);
  std::printf("  TPT frozen arena:    %.2f MB\n",
              static_cast<double>(summary.tpt_frozen_bytes) / 1048576.0);
  std::printf("  distant threshold d: %ld\n",
              static_cast<long>(options.distant_threshold));
  std::printf("  Eps / MinPts:        %.1f / %d\n",
              options.regions.dbscan.eps, options.regions.dbscan.min_pts);
  std::printf("  min confidence:      %.2f\n",
              options.mining.min_confidence);
  return 0;
}

int RunPredict(Args args) {
  const std::string model_path = args.Get("model", "");
  const std::string history_path = args.Get("history", "");
  const Timestamp now = args.GetInt("now", -1);
  const Timestamp horizon = args.GetInt("horizon", 0);
  const int k = static_cast<int>(args.GetInt("k", 1));
  const int recent = static_cast<int>(args.GetInt("recent", 10));
  if (model_path.empty() || history_path.empty()) {
    return Fail("--model and --history are required");
  }
  if (now < 0) return Fail("--now is required (and must be >= 0)");
  if (horizon < 1) return Fail("--horizon must be >= 1");
  if (int rc = FinishArgs(&args)) return rc;

  auto predictor = HybridPredictor::LoadFromFile(model_path);
  if (!predictor.ok()) return Fail(predictor.status().ToString());
  auto history = ReadTrajectoryCsv(history_path);
  if (!history.ok()) return Fail(history.status().ToString());
  if (static_cast<size_t>(now) >= history->size()) {
    return Fail("--now is beyond the history length " +
                std::to_string(history->size()));
  }

  PredictiveQuery query;
  query.recent_movements = history->RecentMovements(now, recent);
  query.current_time = now;
  query.query_time = now + horizon;
  query.k = k;
  auto predictions = (*predictor)->Predict(query);
  if (!predictions.ok()) return Fail(predictions.status().ToString());
  std::printf("query: now=%ld horizon=%ld (%s)\n", static_cast<long>(now),
              static_cast<long>(horizon),
              horizon >= (*predictor)->options().distant_threshold
                  ? "distant-time, BQP"
                  : "near-time, FQP");
  for (const Prediction& p : *predictions) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  return 0;
}

int RunEvaluate(Args args) {
  const std::string model_path = args.Get("model", "");
  const std::string history_path = args.Get("history", "");
  const Timestamp length = args.GetInt("length", 50);
  const int queries = static_cast<int>(args.GetInt("queries", 50));
  const int recent = static_cast<int>(args.GetInt("recent", 10));
  if (model_path.empty() || history_path.empty()) {
    return Fail("--model and --history are required");
  }
  if (int rc = FinishArgs(&args)) return rc;

  auto predictor = HybridPredictor::LoadFromFile(model_path);
  if (!predictor.ok()) return Fail(predictor.status().ToString());
  auto history = ReadTrajectoryCsv(history_path);
  if (!history.ok()) return Fail(history.status().ToString());

  const Timestamp period = (*predictor)->options().regions.period;
  const int train_subs =
      static_cast<int>((*predictor)->summary().num_sub_trajectories);
  const int total_subs =
      static_cast<int>(history->NumSubTrajectories(period));
  if (total_subs <= train_subs) {
    return Fail("history has no held-out periods beyond the model's " +
                std::to_string(train_subs) + " training sub-trajectories");
  }

  WorkloadConfig workload;
  workload.num_queries = queries;
  workload.recent_length = recent;
  workload.prediction_length = length;
  auto cases = MakeQueryCases(*history, period, train_subs, workload);
  if (!cases.ok()) return Fail(cases.status().ToString());

  auto hpm_result = EvaluateHpm(**predictor, *cases);
  auto rmf_result = EvaluateRmf(*cases);
  auto linear_result = EvaluateLinear(*cases);
  if (!hpm_result.ok()) return Fail(hpm_result.status().ToString());
  if (!rmf_result.ok()) return Fail(rmf_result.status().ToString());
  if (!linear_result.ok()) return Fail(linear_result.status().ToString());

  std::printf("evaluation: %d queries, prediction length %ld, "
              "held-out periods %d..%d\n",
              queries, static_cast<long>(length), train_subs,
              total_subs - 1);
  TablePrinter table({"predictor", "mean_error", "median_error",
                      "mean_ms", "pattern_answers"});
  table.AddRow({"HPM", TablePrinter::FormatDouble(hpm_result->mean_error, 1),
                TablePrinter::FormatDouble(hpm_result->median_error, 1),
                TablePrinter::FormatDouble(hpm_result->mean_response_ms, 3),
                std::to_string(hpm_result->pattern_answers)});
  table.AddRow({"RMF", TablePrinter::FormatDouble(rmf_result->mean_error, 1),
                TablePrinter::FormatDouble(rmf_result->median_error, 1),
                TablePrinter::FormatDouble(rmf_result->mean_response_ms, 3),
                "0"});
  table.AddRow(
      {"Linear", TablePrinter::FormatDouble(linear_result->mean_error, 1),
       TablePrinter::FormatDouble(linear_result->median_error, 1),
       TablePrinter::FormatDouble(linear_result->mean_response_ms, 3),
       "0"});
  table.Print(stdout);
  return 0;
}

int RunThroughput(Args args) {
  const int shards = static_cast<int>(args.GetInt("shards", 8));
  const int threads = static_cast<int>(args.GetInt("threads", 1));
  const int clients = static_cast<int>(args.GetInt("clients", 4));
  const int objects = static_cast<int>(args.GetInt("objects", 32));
  const int ops = static_cast<int>(args.GetInt("ops", 2000));
  if (shards < 1) return Fail("--shards must be >= 1");
  if (threads < 1) return Fail("--threads must be >= 1");
  if (clients < 1) return Fail("--clients must be >= 1");
  if (objects < clients) return Fail("--objects must be >= --clients");
  if (ops < 1) return Fail("--ops must be >= 1");
  if (int rc = FinishArgs(&args)) return rc;

  constexpr Timestamp kPeriod = 20;
  constexpr int kWarmPeriods = 5;
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = kWarmPeriods;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = shards;
  options.query_threads = threads;

  const auto route = [](ObjectId id, Timestamp t) -> Point {
    return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
            500.0 + 1000.0 * static_cast<double>(id)};
  };
  const auto warm_store = [&]() {
    MovingObjectStore store(options);
    for (ObjectId id = 0; id < objects; ++id) {
      for (Timestamp t = 0; t < kWarmPeriods * kPeriod; ++t) {
        (void)store.ReportLocation(id, route(id, t));
      }
    }
    return store;
  };
  const auto measure = [&](auto op) {
    Stopwatch watch;
    std::vector<std::thread> workers;
    for (int w = 0; w < clients; ++w) {
      workers.emplace_back([w, ops, &op] {
        for (int i = 0; i < ops; ++i) op(w, i);
      });
    }
    for (std::thread& t : workers) t.join();
    const double seconds = watch.ElapsedSeconds();
    return static_cast<double>(clients) * ops /
           (seconds > 0 ? seconds : 1e-9);
  };

  double ingest_ops = 0;
  {
    MovingObjectStore store = warm_store();
    const int span = objects / clients;
    ingest_ops = measure([&](int w, int i) {
      const ObjectId id = static_cast<ObjectId>(w * span + i % span);
      (void)store.ReportLocation(
          id, route(id, kWarmPeriods * kPeriod + i / span));
    });
  }
  double query_ops = 0;
  {
    MovingObjectStore store = warm_store();
    const Timestamp tq = kWarmPeriods * kPeriod + 3;
    query_ops = measure([&](int w, int i) {
      (void)store.PredictLocation(
          static_cast<ObjectId>((w * 31 + i) % objects), tq);
    });
  }

  std::printf("throughput: %d shards, %d fan-out threads, %d clients, "
              "%d objects, %d ops/client\n",
              shards, threads, clients, objects, ops);
  TablePrinter table({"workload", "ops_per_sec"});
  table.AddRow({"ingest", TablePrinter::FormatDouble(ingest_ops, 0)});
  table.AddRow({"query", TablePrinter::FormatDouble(query_ops, 0)});
  table.Print(stdout);
  return 0;
}

int RunFaultcheck(Args args) {
#ifndef HPM_ENABLE_FAULTS
  (void)args;
  std::fprintf(stderr,
               "faultcheck needs the fault-injection hooks; rebuild with "
               "-DHPM_ENABLE_FAULTS=ON\n");
  return 2;
#else
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string dir = args.Get(
      "dir", (std::filesystem::temp_directory_path() / "hpm_faultcheck")
                 .string());
  if (int rc = FinishArgs(&args)) return rc;

  constexpr Timestamp kPeriod = 20;
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;

  const auto route = [](ObjectId id, Timestamp t) -> Point {
    return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
            500.0 + 1000.0 * static_cast<double>(id)};
  };
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  injector.Seed(seed);

  MovingObjectStore store(options);
  for (ObjectId id = 0; id < 3; ++id) {
    for (Timestamp t = 0; t < 5 * kPeriod + 11; ++t) {
      if (Status s = store.ReportLocation(id, route(id, t)); !s.ok()) {
        return Fail("ingest failed: " + s.ToString());
      }
    }
  }
  const Timestamp now = 5 * kPeriod + 10;

  // 1. Pattern-side faults: every query must still answer; anything
  //    flagged degraded must come from the motion function.
  FaultRule flaky;
  flaky.probability = 0.5;
  injector.Arm("core/pattern_lookup", flaky);
  int degraded = 0, pattern_answers = 0;
  for (int i = 0; i < 200; ++i) {
    const ObjectId id = i % 3;
    auto result = store.PredictLocation(id, now + 2 + i % 10);
    if (!result.ok()) {
      return Fail("query failed under pattern faults: " +
                  result.status().ToString());
    }
    if (result->front().degraded != DegradedReason::kNone) {
      ++degraded;
      if (result->front().source != PredictionSource::kMotionFunction) {
        return Fail("degraded answer not from the motion function");
      }
    } else if (result->front().source == PredictionSource::kPattern) {
      ++pattern_answers;
    }
  }
  injector.Disarm("core/pattern_lookup");
  if (degraded == 0) {
    return Fail("fault schedule never fired at probability 0.5");
  }

  // 2. Expired deadlines degrade rather than fail.
  auto rushed = store.PredictLocation(0, now + 5, 1, Deadline::Expired());
  if (!rushed.ok() ||
      rushed->front().degraded != DegradedReason::kDeadlineExceeded) {
    return Fail("expired deadline did not degrade to the motion function");
  }

  // 3. Save-kill recovery: kill the save at seeded random write points;
  //    the directory must always reload to the committed state.
  std::filesystem::remove_all(dir);
  if (Status s = store.SaveToDirectory(dir); !s.ok()) {
    return Fail("clean save failed: " + s.ToString());
  }
  const char* const kill_sites[] = {"store/save_object",
                                    "store/save_manifest",
                                    "store/save_commit", "io/atomic_write"};
  Random rng(seed);
  int kills = 0;
  for (int round = 0; round < 6; ++round) {
    const char* site = kill_sites[rng.Uniform(4)];
    FaultRule crash;
    crash.from_nth_call = static_cast<int64_t>(1 + rng.Uniform(6));
    injector.Arm(site, crash);
    const Status killed = store.SaveToDirectory(dir);
    injector.Disarm(site);
    if (!killed.ok()) ++kills;
    auto restored = MovingObjectStore::LoadFromDirectory(dir, options);
    if (!restored.ok()) {
      return Fail(std::string("unrecoverable after killing ") + site +
                  ": " + restored.status().ToString());
    }
    for (ObjectId id = 0; id < 3; ++id) {
      if (restored->HistoryLength(id) != store.HistoryLength(id)) {
        return Fail(std::string("recovered history differs after killing ") +
                    site);
      }
      auto expected = store.PredictLocation(id, now + 5);
      auto actual = restored->PredictLocation(id, now + 5);
      if (!expected.ok() || !actual.ok() ||
          !(expected->front().location == actual->front().location)) {
        return Fail(std::string("recovered answers differ after killing ") +
                    site);
      }
    }
  }
  if (kills == 0) {
    return Fail("no save was ever killed; kill schedule is miscalibrated");
  }

  // 4. Per-shard circuit breaker: a shard whose fan-out share keeps
  //    failing is tripped out of fleet queries (answers go partial
  //    instead of the query failing), and after the fault clears one
  //    half-open probe restores full coverage. Every breaker transition
  //    is printed as it happens.
  CircuitBreakerOptions::Clock::time_point tick{};  // Manual breaker clock.
  ObjectStoreOptions breaker_options = options;
  breaker_options.num_shards = 4;
  breaker_options.query_threads = 1;  // Inline fan-out: ordered prints.
  breaker_options.breaker.window = 4;
  breaker_options.breaker.min_samples = 2;
  breaker_options.breaker.failure_threshold = 0.5;
  breaker_options.breaker.open_duration = std::chrono::microseconds(1000);
  breaker_options.breaker.clock = [&tick] { return tick; };
  int transitions = 0;
  breaker_options.breaker_listener =
      [&transitions](int shard, CircuitBreaker::State from,
                     CircuitBreaker::State to) {
        ++transitions;
        std::printf("  breaker[shard %d]: %s -> %s\n", shard,
                    CircuitBreaker::StateName(from),
                    CircuitBreaker::StateName(to));
      };
  MovingObjectStore fleet(breaker_options);
  for (ObjectId id = 0; id < 3; ++id) {
    for (Timestamp t = 0; t < 5 * kPeriod + 11; ++t) {
      if (Status s = fleet.ReportLocation(id, route(id, t)); !s.ok()) {
        return Fail("breaker-stage ingest failed: " + s.ToString());
      }
    }
  }
  std::printf("breaker: killing shard 0's share of every fan-out\n");
  const BoundingBox everywhere({-1e9, -1e9}, {1e9, 1e9});
  FaultRule down;
  down.always = true;
  injector.Arm(ShardQueryFaultSite(0), down);
  for (int i = 0; i < 3; ++i) {
    auto hits = fleet.PredictiveRangeQuery(everywhere, now + 2);
    if (!hits.ok()) {
      return Fail("fleet query failed with shard 0 down: " +
                  hits.status().ToString());
    }
    if (!hits->partial) {
      return Fail("query with shard 0 down was not flagged partial");
    }
  }
  if (fleet.BreakerState(0) != CircuitBreaker::State::kOpen) {
    return Fail("breaker did not open on a dead shard");
  }
  injector.Disarm(ShardQueryFaultSite(0));
  tick += std::chrono::microseconds(1001);  // The cooldown elapses.
  auto probed = fleet.PredictiveRangeQuery(everywhere, now + 2);
  if (!probed.ok() || probed->partial) {
    return Fail("half-open probe did not restore shard 0");
  }
  if (fleet.BreakerState(0) != CircuitBreaker::State::kClosed) {
    return Fail("breaker did not close after a successful probe");
  }
  if (transitions != 3) {
    return Fail("expected Closed->Open->HalfOpen->Closed, saw " +
                std::to_string(transitions) + " transitions");
  }

  std::printf("faultcheck --seed %llu: %d degraded / %d pattern answers, "
              "%d/6 saves killed, all recoveries served committed state, "
              "breaker tripped and recovered in %d transitions\n",
              static_cast<unsigned long long>(seed), degraded,
              pattern_answers, kills, transitions);
  TablePrinter table({"site", "calls", "fires"});
  for (const std::string& site : injector.Sites()) {
    table.AddRow({site, std::to_string(injector.calls(site)),
                  std::to_string(injector.fires(site))});
  }
  table.Print(stdout);
  std::filesystem::remove_all(dir);
  injector.Reset();
  return 0;
#endif  // HPM_ENABLE_FAULTS
}

int RunStats(Args args) {
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const int shards = static_cast<int>(args.GetInt("shards", 4));
  const int threads = static_cast<int>(args.GetInt("threads", 2));
  const int objects = static_cast<int>(args.GetInt("objects", 8));
  const int ops = static_cast<int>(args.GetInt("ops", 400));
  if (shards < 1) return Fail("--shards must be >= 1");
  if (threads < 1) return Fail("--threads must be >= 1");
  if (objects < 1) return Fail("--objects must be >= 1");
  if (ops < 1) return Fail("--ops must be >= 1");
  if (int rc = FinishArgs(&args)) return rc;

  constexpr Timestamp kPeriod = 20;
  constexpr int kWarmPeriods = 5;
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = kWarmPeriods;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = shards;
  options.query_threads = threads;
  // A finite headroom floor so a slice of the query traffic exercises
  // the rung-1 shed path and the degraded counters are non-trivial.
  options.degrade_min_headroom = std::chrono::microseconds(50);
  MovingObjectStore store(options);

  const auto route = [](ObjectId id, Timestamp t) -> Point {
    return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
            500.0 + 1000.0 * static_cast<double>(id)};
  };
  for (ObjectId id = 0; id < objects; ++id) {
    for (Timestamp t = 0; t < kWarmPeriods * kPeriod; ++t) {
      (void)store.ReportLocation(id, route(id, t));
    }
  }

  // Seeded mixed workload over every entry point.
  Random rng(seed);
  const Timestamp now = kWarmPeriods * kPeriod;
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  std::vector<ObjectId> all_ids;
  for (ObjectId id = 0; id < objects; ++id) all_ids.push_back(id);
  for (int i = 0; i < ops; ++i) {
    const ObjectId id =
        static_cast<ObjectId>(rng.Uniform(static_cast<uint64_t>(objects)));
    const Timestamp tq = now + 1 + static_cast<Timestamp>(rng.Uniform(10));
    switch (rng.Uniform(12)) {
      case 0:
      case 1:
      case 2:
        (void)store.ReportLocation(id, route(id, now + i));
        break;
      case 3:  // Malformed report: exercises the rejection counters.
        (void)store.ReportLocationAt(id, -1, {0.0, 0.0});
        break;
      case 4:
        (void)store.PredictLocationBatch(all_ids, tq, 2);
        break;
      case 5:
        (void)store.PredictiveRangeQuery(everywhere, tq, 2);
        break;
      case 6:
        (void)store.PredictiveNearestNeighbors({500.0, 500.0}, tq, 3);
        break;
      case 7:  // Tight deadline: exercises the shed-to-RMF ladder.
        (void)store.PredictLocation(id, tq, 1,
                                    Deadline::After(
                                        std::chrono::microseconds(10)));
        break;
      default:
        (void)store.PredictLocation(id, tq, 2);
        break;
    }
  }

  const MetricsSnapshot metrics = store.metrics_snapshot();
  const OverloadStats overload = store.overload_stats();

  // One JSON document: workload parameters, the overload aggregate, a
  // per-stage latency breakdown, and the full metrics snapshot.
  std::string json = "{\n  \"workload\": {";
  json += "\"seed\": " + std::to_string(seed);
  json += ", \"shards\": " + std::to_string(shards);
  json += ", \"threads\": " + std::to_string(threads);
  json += ", \"objects\": " + std::to_string(objects);
  json += ", \"ops\": " + std::to_string(ops);
  json += "},\n  \"overload\": {";
  json += "\"admitted\": " + std::to_string(overload.admitted);
  json += ", \"shed\": " + std::to_string(overload.shed);
  json += ", \"degraded_overload\": " +
          std::to_string(overload.degraded_overload);
  json += ", \"trains_deferred\": " +
          std::to_string(overload.trains_deferred);
  json += ", \"shards_skipped\": " + std::to_string(overload.shards_skipped);
  json += ", \"reports_rejected\": " +
          std::to_string(overload.reports_rejected);
  json += "},\n  \"stages\": {";
  bool first_stage = true;
  for (const char* stage : {"admit", "plan", "fanout", "merge"}) {
    const auto* histogram =
        metrics.histogram(std::string("stage.") + stage + "_us");
    if (histogram == nullptr) continue;
    if (!first_stage) json += ", ";
    first_stage = false;
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "\"%s\": {\"count\": %llu, \"mean_us\": %.3f, "
                  "\"p50_us\": %.1f, \"p99_us\": %.1f}",
                  stage, static_cast<unsigned long long>(histogram->count),
                  histogram->mean_micros(), histogram->PercentileMicros(50),
                  histogram->PercentileMicros(99));
    json += buffer;
  }
  json += "},\n  \"metrics\": " + metrics.ToJson() + "\n}";
  std::printf("%s\n", json.c_str());
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void HandleServeStop(int) { g_serve_stop = 1; }

/// Splits "host:port"; returns false when the port is missing/bad.
bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  *host = spec.substr(0, colon);
  *port = std::atoi(spec.c_str() + colon + 1);
  return !host->empty() && *port > 0;
}

void PrintReplyInfo(const ReplyInfo& info) {
  std::printf("role=%s generation=%llu staleness_us=%llu degraded=%d\n",
              ServerRoleName(info.role),
              static_cast<unsigned long long>(info.generation),
              static_cast<unsigned long long>(info.staleness_us),
              info.stale_degraded ? 1 : 0);
}

int RunServe(Args args) {
  const std::string dir = args.Get("dir", "");
  const std::string host = args.Get("host", "127.0.0.1");
  const int port = static_cast<int>(args.GetInt("port", 0));
  const std::string port_file = args.Get("port-file", "");
  const std::string replica_of = args.Get("replica-of", "");
  const bool wal = args.GetInt("wal", 1) != 0;
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const int shards = static_cast<int>(args.GetInt("shards", 0));
  const int64_t poll_ms = args.GetInt("poll-ms", 100);
  const int64_t stale_ms = args.GetInt("stale-ms", 2000);
  if (dir.empty()) return Fail("--dir is required");
  if (int rc = FinishArgs(&args)) return rc;

  g_serve_stop = 0;
  std::signal(SIGINT, HandleServeStop);
  std::signal(SIGTERM, HandleServeStop);

  ObjectStoreOptions store_options;
  if (shards > 0) store_options.num_shards = shards;
  HpmServerOptions server_options;
  server_options.host = host;
  server_options.port = port;
  server_options.handler_threads = threads;
  server_options.stale_threshold = std::chrono::microseconds(stale_ms * 1000);

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Fail("cannot create " + dir + ": " + ec.message());

  const auto publish_port = [&](int bound_port) -> int {
    std::fprintf(stderr, "serving on %s:%d\n", host.c_str(), bound_port);
    if (port_file.empty()) return 0;
    if (Status wrote = AtomicWriteFile(
            port_file, std::to_string(bound_port) + "\n");
        !wrote.ok()) {
      return Fail("cannot write --port-file: " + wrote.message());
    }
    return 0;
  };

  // LoadFromDirectory refuses a directory with neither snapshot nor
  // journal; first boot of a server is exactly that, so fall back to a
  // fresh store on kInvalidArgument (and only on it — a DataLoss load
  // failure must not silently serve an empty store).
  const auto load_or_create =
      [&](std::optional<MovingObjectStore>* store) -> int {
    StatusOr<MovingObjectStore> loaded =
        MovingObjectStore::LoadFromDirectory(dir, store_options);
    if (loaded.ok()) {
      store->emplace(std::move(*loaded));
      return 0;
    }
    if (loaded.status().code() == StatusCode::kInvalidArgument) {
      store->emplace(store_options);
      return 0;
    }
    return Fail("load: " + loaded.status().message());
  };

  if (replica_of.empty()) {
    // ---- Primary ----
    if (wal) store_options.durability.wal_dir = dir + "/wal";
    std::optional<MovingObjectStore> store_holder;
    if (int rc = load_or_create(&store_holder)) return rc;
    MovingObjectStore& store = *store_holder;

    server_options.role = ServerRole::kPrimary;
    server_options.data_dir = dir;
    server_options.wal_dir = dir + "/wal";
    StatusOr<std::unique_ptr<HpmServer>> server =
        HpmServer::Start(&store, server_options);
    if (!server.ok()) return Fail("start: " + server.status().message());
    if (int rc = publish_port((*server)->port())) return rc;

    while (!g_serve_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    (*server)->Stop();
    return 0;
  }

  // ---- Replica ----
  std::string primary_host;
  int primary_port = 0;
  if (!ParseHostPort(replica_of, &primary_host, &primary_port)) {
    return Fail("--replica-of must be HOST:PORT");
  }
  HpmClientOptions client_options;
  client_options.host = primary_host;
  client_options.port = primary_port;
  HpmClient client(client_options);

  if (!std::filesystem::exists(dir + "/CURRENT", ec)) {
    StatusOr<uint64_t> bootstrapped = BootstrapReplica(client, dir);
    if (!bootstrapped.ok()) {
      return Fail("bootstrap: " + bootstrapped.status().message());
    }
    std::fprintf(stderr, "bootstrapped snapshot generation %llu\n",
                 static_cast<unsigned long long>(*bootstrapped));
  }

  // The replica's store never journals: <dir>/wal is a byte mirror of
  // the *primary's* journal, owned by the Replicator.
  store_options.durability.wal_dir.clear();
  std::optional<MovingObjectStore> store_holder;
  if (int rc = load_or_create(&store_holder)) return rc;
  MovingObjectStore& store = *store_holder;

  ReplicaHealth health;
  ReplicatorOptions repl_options;
  repl_options.data_dir = dir;
  repl_options.poll_interval = std::chrono::milliseconds(poll_ms);
  Replicator replicator(&client, &store, &health, store.generation(),
                        repl_options);
  if (Status caught = replicator.CatchUpFromMirror(); !caught.ok()) {
    return Fail("mirror catch-up: " + caught.message());
  }
  // Serve even when the primary is down at start: the first SyncOnce
  // failing just means every reply is stamped maximally stale.
  if (Status synced = replicator.SyncOnce(); !synced.ok()) {
    std::fprintf(stderr, "initial sync failed (serving stale): %s\n",
                 synced.message().c_str());
  }
  replicator.Start();

  server_options.role = ServerRole::kReplica;
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, server_options, &health);
  if (!server.ok()) return Fail("start: " + server.status().message());
  if (int rc = publish_port((*server)->port())) return rc;

  while (!g_serve_stop) {
    if (replicator.resync_required()) {
      (*server)->Stop();
      replicator.Stop();
      Fail("replica diverged from primary; wipe " + dir +
           " and re-bootstrap");
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->Stop();
  replicator.Stop();
  return 0;
}

int RunConnect(Args args) {
  HpmClientOptions client_options;
  client_options.host = args.Get("host", "127.0.0.1");
  client_options.port = static_cast<int>(args.GetInt("port", 0));
  const std::string op = args.Get("op", "ping");
  const int64_t id = args.GetInt("id", 0);
  const int64_t t = args.GetInt("t", -1);
  const double x = args.GetDouble("x", 0.0);
  const double y = args.GetDouble("y", 0.0);
  const int64_t tq = args.GetInt("tq", 0);
  const int64_t k = args.GetInt("k", 1);
  if (client_options.port <= 0) return Fail("--port is required");
  if (int rc = FinishArgs(&args)) return rc;
  HpmClient client(client_options);

  if (op == "ping") {
    StatusOr<ReplyInfo> reply = client.Ping();
    if (!reply.ok()) return Fail(reply.status().message());
    PrintReplyInfo(*reply);
    return 0;
  }
  if (op == "report") {
    ReportRequest request;
    request.id = id;
    request.t = t;
    request.x = x;
    request.y = y;
    StatusOr<ReplyInfo> reply = client.Report(request);
    if (!reply.ok()) return Fail(reply.status().message());
    PrintReplyInfo(*reply);
    return 0;
  }
  if (op == "predict") {
    PredictRequest request;
    request.id = id;
    request.tq = tq;
    request.k = static_cast<int32_t>(k);
    StatusOr<PredictReply> reply = client.Predict(request);
    if (!reply.ok()) return Fail(reply.status().message());
    PrintReplyInfo(reply->info);
    for (const Prediction& p : reply->predictions) {
      std::printf("(%.6f, %.6f) score=%.4f %s\n", p.location.x, p.location.y,
                  p.score,
                  p.source == PredictionSource::kPattern ? "pattern" : "rmf");
    }
    return 0;
  }
  if (op == "stats") {
    StatusOr<StatsReply> reply = client.Stats();
    if (!reply.ok()) return Fail(reply.status().message());
    PrintReplyInfo(reply->info);
    std::printf("%s\n", reply->json.c_str());
    return 0;
  }
  return Fail("unknown --op '" + op + "'");
}

int RunRepl(Args args) {
  HpmClientOptions client_options;
  client_options.host = args.Get("host", "127.0.0.1");
  client_options.port = static_cast<int>(args.GetInt("port", 0));
  if (client_options.port <= 0) return Fail("--port is required");
  if (int rc = FinishArgs(&args)) return rc;
  HpmClient client(client_options);

  StatusOr<ReplStateReply> state = client.ReplState(ReplStateRequest{});
  if (!state.ok()) return Fail(state.status().message());
  PrintReplyInfo(state->info);
  std::printf("generation %llu, %zu journal segment(s)\n",
              static_cast<unsigned long long>(state->generation),
              state->segments.size());
  if (state->segments.empty()) return 0;
  TablePrinter table({"shard", "seq", "base_gen", "bytes"});
  for (const WireSegment& segment : state->segments) {
    table.AddRow({std::to_string(segment.shard), std::to_string(segment.seq),
                  std::to_string(segment.base_gen),
                  std::to_string(segment.size)});
  }
  table.Print(stdout);
  return 0;
}

int RunWal(Args args) {
  const std::string dir = args.Get("dir", "");
  const bool verify = args.GetInt("verify", 0) != 0;
  if (dir.empty()) return Fail("--dir is required");
  if (int rc = FinishArgs(&args)) return rc;

  // A missing directory is an operator error (wrong path), not a clean
  // journal — only an *existing* directory with no segments verifies as
  // empty-but-valid.
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec) || ec) {
    return Fail("journal directory " + dir + " does not exist");
  }
  const std::vector<WalSegmentInfo> segments = ListWalSegments(dir);
  if (segments.empty()) {
    std::printf("no journal segments in %s (empty journal is valid)\n",
                dir.c_str());
    return 0;
  }

  TablePrinter table({"segment", "shard", "seq", "base_gen", "records",
                      "torn_bytes", "status"});
  bool unhealthy = false;
  for (const WalSegmentInfo& info : segments) {
    const std::string name =
        std::filesystem::path(info.path).filename().string();
    if (!info.header_ok) {
      unhealthy = true;
      table.AddRow({name, std::to_string(info.shard),
                    std::to_string(info.seq), "?", "?", "?", "bad-header"});
      continue;
    }
    // Inspection never mutates the journal: torn tails are reported, not
    // truncated (recovery owns the repair).
    StatusOr<WalSegmentContents> contents =
        ReadWalSegment(info.path, /*truncate_torn_tail=*/false);
    if (!contents.ok()) {
      unhealthy = true;
      table.AddRow({name, std::to_string(info.shard),
                    std::to_string(info.seq), std::to_string(info.base_gen),
                    "?", "?", "unreadable"});
      continue;
    }
    std::string status = "ok";
    if (contents->corrupt) {
      status = "corrupt@" + std::to_string(contents->corrupt_offset);
      unhealthy = true;
    } else if (contents->truncated_bytes > 0) {
      status = "torn-tail";
    }
    table.AddRow({name, std::to_string(info.shard),
                  std::to_string(info.seq), std::to_string(info.base_gen),
                  std::to_string(contents->records.size()),
                  std::to_string(contents->truncated_bytes), status});
  }
  table.Print(stdout);
  if (verify && unhealthy) {
    std::fprintf(stderr,
                 "verify: journal has corrupt or unreadable segments\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Fail("malformed arguments near '" + args.bad() + "'");
  }
  if (command == "generate") return RunGenerate(std::move(args));
  if (command == "train") return RunTrain(std::move(args));
  if (command == "info") return RunInfo(std::move(args));
  if (command == "predict") return RunPredict(std::move(args));
  if (command == "evaluate") return RunEvaluate(std::move(args));
  if (command == "throughput") return RunThroughput(std::move(args));
  if (command == "faultcheck") return RunFaultcheck(std::move(args));
  if (command == "stats") return RunStats(std::move(args));
  if (command == "wal") return RunWal(std::move(args));
  if (command == "serve") return RunServe(std::move(args));
  if (command == "connect") return RunConnect(std::move(args));
  if (command == "repl") return RunRepl(std::move(args));
  return Usage();
}
