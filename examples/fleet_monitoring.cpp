// Fleet monitoring: one HybridPredictor per vehicle, distant-time ETAs.
//
// A delivery fleet's vans each repeat their own daily route with some
// route deviation. The dispatcher wants, at mid-morning, each van's
// probable location one hour ahead — a distant-time query that pure
// motion functions answer badly. This example trains a per-vehicle
// model, answers the same distant-time query against both the pattern
// index (BQP) and the RMF fallback alone, and tabulates the errors.
//
// Build & run:  ./build/examples/fleet_monitoring

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/table_printer.h"
#include "core/hybrid_predictor.h"
#include "datagen/periodic_generator.h"
#include "datagen/seed_generators.h"

namespace {

using namespace hpm;

constexpr Timestamp kPeriod = 240;   // One shift, 240 ticks.
constexpr int kDays = 60;
constexpr int kFleetSize = 6;

struct Vehicle {
  int id;
  Trajectory history;
  std::unique_ptr<HybridPredictor> predictor;
};

Trajectory MakeVanHistory(int vehicle_id) {
  // Each van follows its own grid route (car-like street movement).
  SeedConfig seed;
  seed.period = kPeriod;
  seed.extent = 10000.0;
  seed.seed = 400 + static_cast<uint64_t>(vehicle_id);
  PeriodicGeneratorConfig gen;
  gen.period = kPeriod;
  gen.num_sub_trajectories = kDays;
  gen.pattern_probability = 0.85;
  gen.noise_sigma = 12.0;
  gen.seed = 7000 + static_cast<uint64_t>(vehicle_id);
  auto trajectory =
      GeneratePeriodicTrajectory({{MakeCarSeed(seed), 1.0}}, gen);
  HPM_CHECK(trajectory.ok());
  return std::move(*trajectory);
}

}  // namespace

int main() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 30.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = kDays - 1;  // Hold out day 60.
  options.mining.min_confidence = 0.3;
  options.mining.min_support = 3;
  options.distant_threshold = 30;
  options.region_match_slack = 25.0;

  std::vector<Vehicle> fleet;
  for (int v = 0; v < kFleetSize; ++v) {
    Vehicle vehicle{v, MakeVanHistory(v), nullptr};
    auto trained = HybridPredictor::Train(vehicle.history, options);
    if (!trained.ok()) {
      std::fprintf(stderr, "van %d training failed: %s\n", v,
                   trained.status().ToString().c_str());
      return 1;
    }
    vehicle.predictor = std::move(*trained);
    fleet.push_back(std::move(vehicle));
  }

  // Dispatcher view: at tick 80 of the held-out day, where will each van
  // be 60 ticks later?
  const Timestamp now_offset = 80;
  const Timestamp horizon = 60;
  std::printf("fleet ETA board: now = tick %ld of day %d, horizon = +%ld\n\n",
              static_cast<long>(now_offset), kDays,
              static_cast<long>(horizon));

  TablePrinter board({"van", "patterns", "predicted", "actual",
                      "HPM_error", "RMF_only_error", "answer_source"});
  for (Vehicle& vehicle : fleet) {
    const Timestamp now =
        static_cast<Timestamp>(kDays - 1) * kPeriod + now_offset;
    PredictiveQuery query;
    query.recent_movements = vehicle.history.RecentMovements(now, 10);
    query.current_time = now;
    query.query_time = now + horizon;

    auto predictions = vehicle.predictor->Predict(query);
    auto rmf_only = vehicle.predictor->MotionFunctionPredict(query);
    if (!predictions.ok() || !rmf_only.ok()) {
      std::fprintf(stderr, "van %d query failed\n", vehicle.id);
      return 1;
    }
    const Point actual = vehicle.history.At(query.query_time);
    const Prediction& top = predictions->front();
    board.AddRow(
        {"#" + std::to_string(vehicle.id),
         std::to_string(vehicle.predictor->summary().num_patterns),
         top.location.ToString(), actual.ToString(),
         TablePrinter::FormatDouble(Distance(top.location, actual), 1),
         TablePrinter::FormatDouble(Distance(rmf_only->location, actual),
                                    1),
         top.source == PredictionSource::kPattern ? "pattern" : "motion"});
  }
  board.Print(stdout);

  std::printf(
      "\nPattern answers place each van on its learned route at the\n"
      "target time; the motion function alone extrapolates the last few\n"
      "street segments and drifts off the route within a few blocks.\n");
  return 0;
}
