// Quickstart: the minimal end-to-end use of the hpm public API.
//
//   1. Obtain (here: generate) a moving object's trajectory history.
//   2. Train a HybridPredictor — this mines frequent regions and
//      trajectory patterns and indexes them in a Trajectory Pattern Tree.
//   3. Ask predictive queries: near-future and distant-time.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"

int main() {
  using namespace hpm;

  // ---- 1. Data: 80 days of a car commuter, 120 samples per day. ------
  PeriodicGeneratorConfig gen = DefaultConfig(DatasetKind::kCar);
  gen.period = 120;
  gen.num_sub_trajectories = 80;
  gen.pattern_probability = 0.8;
  const Dataset dataset = MakeDataset(DatasetKind::kCar, gen);
  std::printf("history: %zu samples (%d days x %ld per day)\n",
              dataset.trajectory.size(), gen.num_sub_trajectories,
              static_cast<long>(gen.period));

  // ---- 2. Train. ------------------------------------------------------
  HybridPredictorOptions options;
  options.regions.period = gen.period;       // T: the repetition period.
  options.regions.dbscan.eps = 30.0;         // Frequent-region density.
  options.regions.dbscan.min_pts = 4;
  options.mining.min_confidence = 0.3;       // Keep reliable rules only.
  options.distant_threshold = 30;            // d: BQP beyond 30 ticks.
  options.region_match_slack = 15.0;         // GPS noise tolerance.

  auto trained = HybridPredictor::Train(dataset.trajectory, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  const auto& predictor = *trained;
  std::printf("trained: %zu frequent regions, %zu trajectory patterns, "
              "TPT height %d, %.2f s\n",
              predictor->summary().num_frequent_regions,
              predictor->summary().num_patterns,
              predictor->summary().tpt_height,
              predictor->summary().train_seconds);

  // ---- 3. Query. ------------------------------------------------------
  // Pretend "now" is offset 40 of day 79 and we watched the last 10
  // samples.
  const Timestamp now = 79 * gen.period + 40;
  PredictiveQuery query;
  query.recent_movements = dataset.trajectory.RecentMovements(now, 10);
  query.current_time = now;
  query.k = 2;

  for (const Timestamp horizon : {10, 60}) {
    query.query_time = now + horizon;
    auto predictions = predictor->Predict(query);
    if (!predictions.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   predictions.status().ToString().c_str());
      return 1;
    }
    std::printf("\nwhere will the object be in %ld ticks? (%s)\n",
                static_cast<long>(horizon),
                horizon >= options.distant_threshold
                    ? "distant-time -> Backward Query Processing"
                    : "near-time -> Forward Query Processing");
    for (const Prediction& p : *predictions) {
      std::printf("  %s\n", p.ToString().c_str());
    }
    const Point actual = dataset.trajectory.At(query.query_time);
    std::printf("  actual location was %s (top-1 error %.1f)\n",
                actual.ToString().c_str(),
                Distance(predictions->front().location, actual));
  }
  return 0;
}
