// Commuter prediction: the paper's running "Jane" example (Fig. 3,
// Tables I-III, §VI-B), built from raw trajectory data.
//
// Jane leaves home every morning; on most days she drives through the
// city to work, on the rest she passes the shopping centre on the way to
// the beach. This example:
//   * generates her movement history from those two routes,
//   * mines her frequent regions and trajectory patterns,
//   * prints the region-key / consequence-key / pattern-key tables the
//     paper shows (Tables I-III),
//   * answers the §VI-B query ("she just left home and crossed the city
//     — where will she be at offset 2?") and shows the FQP ranking.
//
// Build & run:  ./build/examples/commuter_prediction

#include <cstdio>

#include "common/random.h"
#include "common/table_printer.h"
#include "core/hybrid_predictor.h"

namespace {

using namespace hpm;

constexpr Timestamp kPeriod = 3;  // Offsets: 0 = home, 1 = via, 2 = goal.

const Point kHome{1000, 1000};
const Point kCity{3000, 3000};
const Point kShopping{3000, 1000};
const Point kWork{5000, 3000};
const Point kBeach{5000, 1000};

/// 60 days: 60% city->work, 30% shopping->beach, 10% erratic.
Trajectory MakeJaneHistory() {
  Random rng(2008);  // ICDE 2008.
  Trajectory traj;
  auto jitter = [&rng](const Point& p) {
    return Point{p.x + rng.Gaussian(0, 20), p.y + rng.Gaussian(0, 20)};
  };
  for (int day = 0; day < 60; ++day) {
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      traj.Append(jitter(kHome));
      traj.Append(jitter(kCity));
      traj.Append(jitter(kWork));
    } else if (dice < 0.9) {
      traj.Append(jitter(kHome));
      traj.Append(jitter(kShopping));
      traj.Append(jitter(kBeach));
    } else {
      for (int t = 0; t < 3; ++t) {
        traj.Append({rng.UniformDouble(0, 10000),
                     rng.UniformDouble(0, 10000)});
      }
    }
  }
  return traj;
}

const char* PlaceName(const Point& center) {
  struct Named {
    Point p;
    const char* name;
  };
  static const Named places[] = {{kHome, "Home"},
                                 {kCity, "City"},
                                 {kShopping, "Shopping centre"},
                                 {kWork, "Work place"},
                                 {kBeach, "Beach"}};
  const char* best = "?";
  double best_d = 1e18;
  for (const auto& place : places) {
    const double d = Distance(place.p, center);
    if (d < best_d) {
      best_d = d;
      best = place.name;
    }
  }
  return best;
}

}  // namespace

int main() {
  const Trajectory history = MakeJaneHistory();

  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 100.0;
  options.regions.dbscan.min_pts = 5;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 5;
  options.mining.max_pattern_length = 3;
  options.distant_threshold = 2;
  options.region_match_slack = 60.0;

  auto trained = HybridPredictor::Train(history, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  const auto& predictor = *trained;
  const FrequentRegionSet& regions = predictor->regions();
  const KeyTables& tables = predictor->key_tables();

  // ---- Table I: region keys. ------------------------------------------
  std::printf("Table I - region keys (hash 2^id)\n");
  TablePrinter region_table(
      {"frequent_region", "place", "offset", "region_id", "region_key"});
  for (const FrequentRegion& r : regions.regions()) {
    DynamicBitset key(regions.NumRegions());
    key.Set(static_cast<size_t>(r.id));
    region_table.AddRow({"R" + std::to_string(r.offset) + "^" +
                             std::to_string(r.index_at_offset),
                         PlaceName(r.center), std::to_string(r.offset),
                         std::to_string(r.id), key.ToString()});
  }
  region_table.Print(stdout);

  // ---- Table II: consequence keys. ------------------------------------
  std::printf("\nTable II - consequence keys\n");
  TablePrinter cons_table({"time_offset", "time_id", "consequence_key"});
  for (size_t id = 0; id < tables.consequence_key_length(); ++id) {
    DynamicBitset key(tables.consequence_key_length());
    key.Set(id);
    cons_table.AddRow(
        {std::to_string(tables.OffsetForTimeId(static_cast<int>(id))),
         std::to_string(id), key.ToString()});
  }
  cons_table.Print(stdout);

  // ---- Table III: trajectory patterns and their pattern keys. ---------
  std::printf("\nTable III - trajectory patterns\n");
  TablePrinter pattern_table({"trajectory_pattern", "confidence",
                              "pattern_key", "consequence_place"});
  for (const TrajectoryPattern& p : predictor->patterns()) {
    pattern_table.AddRow(
        {p.ToString(), TablePrinter::FormatDouble(p.confidence, 2),
         tables.EncodePattern(p, regions).ToString(),
         PlaceName(regions.Region(p.consequence).center)});
  }
  pattern_table.Print(stdout);

  // ---- The §VI-B query. ------------------------------------------------
  // Day 60 (fresh), Jane was home at offset 0 and in the city at offset
  // 1; where is she at offset 2?
  PredictiveQuery query;
  const Timestamp base = 60 * kPeriod;
  query.recent_movements = {{base + 0, kHome}, {base + 1, kCity}};
  query.current_time = base + 1;
  query.query_time = base + 2;
  query.k = 2;

  auto predictions = predictor->ForwardQuery(query);
  if (!predictions.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSection VI-B query: home -> city, where at offset 2?\n");
  for (const Prediction& p : *predictions) {
    std::printf("  %s  [%s]\n", p.ToString().c_str(),
                p.source == PredictionSource::kPattern
                    ? PlaceName(p.location)
                    : "extrapolated");
  }
  std::printf(
      "\nAs in the paper, the work place outranks the beach because the\n"
      "premise (home AND city) matches fully while the beach pattern\n"
      "matches only on 'home', which carries the lower position weight.\n");
  return 0;
}
