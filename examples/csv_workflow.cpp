// CSV workflow: the full operational loop a deployment would run.
//
//   1. Export a GPS history to CSV (here: generated, standing in for a
//      real logger's output).
//   2. Load the CSV, train a predictor, persist the model to disk.
//   3. Later / elsewhere: load the model file and serve queries.
//   4. When new movement data accumulates, fold it in incrementally
//      (paper §V-B insertion) and re-persist.
//
// Usage:  csv_workflow [working_dir]     (default: /tmp)

#include <cstdio>
#include <string>

#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"
#include "datagen/seed_generators.h"
#include "common/random.h"
#include "io/csv.h"

int main(int argc, char** argv) {
  using namespace hpm;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string csv_path = dir + "/hpm_history.csv";
  const std::string model_path = dir + "/hpm_model.bin";

  // ---- 1. A "GPS logger" produces CSV. --------------------------------
  // A rider with two equally common routes between the same towns.
  PeriodicGeneratorConfig gen = DefaultConfig(DatasetKind::kBike);
  gen.period = 100;
  gen.num_sub_trajectories = 50;
  gen.time_jitter = 0;
  SeedConfig seed_config;
  seed_config.period = gen.period;
  seed_config.seed = 11;
  std::vector<SeedRoute> routes;
  routes.push_back({MakeBikeSeed(seed_config), 0.5});
  seed_config.seed = 12;
  routes.push_back({MakeBikeSeed(seed_config), 0.5});
  auto generated = GeneratePeriodicTrajectory(routes, gen);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteTrajectoryCsv(*generated, csv_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu samples to %s\n", generated->size(),
              csv_path.c_str());

  // ---- 2. Load, train, persist. ----------------------------------------
  auto history = ReadTrajectoryCsv(csv_path);
  if (!history.ok()) {
    std::fprintf(stderr, "%s\n", history.status().ToString().c_str());
    return 1;
  }
  HybridPredictorOptions options;
  options.regions.period = gen.period;
  options.regions.dbscan.eps = 30.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = 40;  // Keep 10 days unseen.
  options.mining.min_confidence = 0.3;
  options.distant_threshold = 25;
  options.region_match_slack = 20.0;
  auto trained = HybridPredictor::Train(*history, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "%s\n", trained.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*trained)->SaveToFile(model_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("trained (%zu patterns) and saved model to %s\n",
              (*trained)->summary().num_patterns, model_path.c_str());

  // ---- 3. A fresh process loads the model and serves a query. ---------
  auto served = HybridPredictor::LoadFromFile(model_path);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  const Timestamp now = 49 * gen.period + 30;  // A held-out day.
  PredictiveQuery query;
  query.recent_movements = history->RecentMovements(now, 8);
  query.current_time = now;
  query.query_time = now + 40;
  auto predictions = (*served)->Predict(query);
  if (!predictions.ok()) {
    std::fprintf(stderr, "%s\n", predictions.status().ToString().c_str());
    return 1;
  }
  const Point actual = history->At(query.query_time);
  std::printf("query from restored model: %s (actual %s, error %.1f)\n",
              predictions->front().ToString().c_str(),
              actual.ToString().c_str(),
              Distance(predictions->front().location, actual));

  // ---- 4. New data arrives; incorporate and re-persist. ---------------
  // The rider picks up a new habit: start on the usual route, switch to
  // the alternate one mid-ride. The regions already exist, but the
  // cross-route rules are new — exactly the paper's §V-B insertion case.
  Trajectory new_days;
  {
    Random switch_rng(31337);
    for (int day = 0; day < 8; ++day) {
      for (Timestamp t = 0; t < gen.period; ++t) {
        const auto& route =
            (t < gen.period / 2) ? routes[0] : routes[1];
        Point p = route.points[static_cast<size_t>(t)];
        p.x += switch_rng.Gaussian(0, gen.noise_sigma);
        p.y += switch_rng.Gaussian(0, gen.noise_sigma);
        new_days.Append(p);
      }
    }
  }
  auto added = (*served)->IncorporateNewHistory(new_days);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  std::printf("incorporated 8 new (route-switching) days: %zu new patterns (total %zu)\n",
              *added, (*served)->summary().num_patterns);
  if (Status s = (*served)->SaveToFile(model_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("model re-persisted to %s\n", model_path.c_str());
  return 0;
}
