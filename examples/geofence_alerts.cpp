// Geofence alerts: continuous predictive monitoring on the
// MovingObjectStore.
//
// A dispatcher registers a standing query — "tell me whenever any van is
// predicted to be inside the depot zone forty ticks from now" — and
// the store emits enter/leave events as location reports stream in. The
// same fleet is also asked for the predicted nearest vans to an incident
// location (predictive k-NN).
//
// Build & run:  ./build/examples/geofence_alerts

#include <cstdio>

#include "common/random.h"
#include "common/table_printer.h"
#include "datagen/periodic_generator.h"
#include "datagen/seed_generators.h"
#include "server/object_store.h"

int main() {
  using namespace hpm;

  constexpr Timestamp kPeriod = 180;
  constexpr int kDays = 40;
  constexpr int kFleet = 4;

  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 30.0;
  options.predictor.regions.dbscan.min_pts = 4;
  options.predictor.mining.min_confidence = 0.3;
  options.predictor.distant_threshold = 30;
  options.predictor.region_match_slack = 25.0;
  options.min_training_periods = kDays;
  MovingObjectStore store(options);

  // Historical ingestion: 40 days per van.
  std::vector<Trajectory> live_days;
  for (int v = 0; v < kFleet; ++v) {
    SeedConfig seed;
    seed.period = kPeriod;
    seed.seed = 300 + static_cast<uint64_t>(v);
    PeriodicGeneratorConfig gen;
    gen.period = kPeriod;
    gen.num_sub_trajectories = kDays + 1;
    gen.pattern_probability = 0.9;
    gen.seed = 4400 + static_cast<uint64_t>(v);
    auto history =
        GeneratePeriodicTrajectory({{MakeCarSeed(seed), 1.0}}, gen);
    if (!history.ok()) {
      std::fprintf(stderr, "%s\n", history.status().ToString().c_str());
      return 1;
    }
    auto past = history->Slice(0, kDays * kPeriod);
    if (Status s = store.ReportTrajectory(v, *past); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    auto today = history->Slice(kDays * kPeriod,
                                (kDays + 1) * static_cast<long>(kPeriod));
    live_days.push_back(std::move(*today));
  }
  std::printf("fleet of %d vans trained on %d days each\n\n", kFleet,
              kDays);

  // The geofence: van 0's *habitual* location at tick 140 — the centre
  // of its mined frequent region there — watched 40 ticks ahead.
  auto van0 = store.GetPredictor(0);
  if (!van0.ok()) {
    std::fprintf(stderr, "%s\n", van0.status().ToString().c_str());
    return 1;
  }
  const auto regions_at_140 = (*van0)->regions().RegionsAtOffset(140);
  if (regions_at_140.empty()) {
    std::fprintf(stderr, "van 0 has no frequent region at offset 140\n");
    return 1;
  }
  const Point depot =
      (*van0)->regions().Region(regions_at_140[0]).center;
  const BoundingBox zone(depot - Point{500, 500}, depot + Point{500, 500});
  const int query_id = store.RegisterContinuousQuery(zone, 40);
  std::printf("geofence registered (query %d): %.0fx%.0f zone around "
              "(%.0f, %.0f), horizon +40\n\n",
              query_id, 1000.0, 1000.0, depot.x, depot.y);

  // Live morning: stream the first 120 ticks of today for every van.
  int alerts = 0;
  for (Timestamp t = 0; t < 120; ++t) {
    for (int v = 0; v < kFleet; ++v) {
      if (Status s = store.ReportLocation(v, live_days[v].At(t));
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
    }
    for (const auto& event : store.DrainContinuousEvents()) {
      ++alerts;
      std::printf("  tick %3ld: van #%ld predicted to %s the zone "
                  "(for t=%ld via %s)\n",
                  static_cast<long>(t), static_cast<long>(event.object),
                  event.entered ? "ENTER" : "LEAVE",
                  static_cast<long>(event.evaluated_at),
                  event.prediction.source == PredictionSource::kPattern
                      ? "pattern"
                      : "motion");
    }
  }
  std::printf("\n%d geofence alerts emitted during the morning\n\n",
              alerts);

  // Incident dispatch: which vans will be nearest to a breakdown site
  // 15 ticks from now?
  const Point incident = live_days[2].At(130);
  const Timestamp now = static_cast<Timestamp>(kDays) * kPeriod + 119;
  auto nearest = store.PredictiveNearestNeighbors(incident, now + 15, 3);
  if (!nearest.ok()) {
    std::fprintf(stderr, "%s\n", nearest.status().ToString().c_str());
    return 1;
  }
  std::printf("nearest vans to the incident at t+15:\n");
  TablePrinter table({"rank", "van", "predicted_location",
                      "distance_to_incident"});
  int rank = 1;
  for (const RangeHit& hit : nearest->hits) {
    table.AddRow({std::to_string(rank++),
                  "#" + std::to_string(hit.id),
                  hit.prediction.location.ToString(),
                  TablePrinter::FormatDouble(
                      Distance(hit.prediction.location, incident), 1)});
  }
  table.Print(stdout);
  return 0;
}
