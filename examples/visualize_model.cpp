// Model visualisation: renders a trained model to SVG — the historical
// trajectory, the mined frequent regions, and one query with its HPM
// prediction versus the RMF extrapolation (a picture of the paper's
// Fig. 1 argument on real mined data).
//
// Usage:  visualize_model [output.svg]     (default: /tmp/hpm_model.svg)

#include <cstdio>
#include <string>

#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"
#include "io/svg.h"
#include "mining/transaction.h"
#include "motion/recursive_motion.h"

int main(int argc, char** argv) {
  using namespace hpm;
  const std::string out_path =
      argc > 1 ? argv[1] : "/tmp/hpm_model.svg";

  // A car commuter with pronounced turns — the motion-function failure
  // case from the paper's introduction.
  PeriodicGeneratorConfig gen = DefaultConfig(DatasetKind::kCar);
  gen.period = 120;
  gen.num_sub_trajectories = 60;
  const Dataset dataset = MakeDataset(DatasetKind::kCar, gen);

  HybridPredictorOptions options;
  options.regions.period = gen.period;
  options.regions.dbscan.eps = 30.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = 59;
  options.mining.min_confidence = 0.3;
  options.distant_threshold = 30;
  options.region_match_slack = 25.0;
  auto trained = HybridPredictor::Train(dataset.trajectory, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  const auto& predictor = *trained;

  // The query: mid-morning of a held-out, pattern-following day (the
  // Car dataset's f = 0.6 means some days are irregular; pick a day
  // whose recent movements actually visit frequent regions, as a real
  // monitoring system would know from the live region matches).
  Timestamp now = 59 * gen.period + 40;
  size_t best_matches = 0;
  for (int day = 59; day >= 55; --day) {
    const Timestamp candidate = day * gen.period + 40;
    const auto recent = dataset.trajectory.RecentMovements(candidate, 10);
    const size_t matches =
        MapMovementsToRegions(predictor->regions(), recent,
                              options.region_match_slack)
            .size();
    if (matches > best_matches) {
      best_matches = matches;
      now = candidate;
    }
  }
  PredictiveQuery query;
  query.recent_movements = dataset.trajectory.RecentMovements(now, 10);
  query.current_time = now;
  query.query_time = now + 50;
  auto predictions = predictor->Predict(query);
  auto rmf_only = predictor->MotionFunctionPredict(query);
  if (!predictions.ok() || !rmf_only.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  const Point actual = dataset.trajectory.At(query.query_time);

  // ---- Render. ----------------------------------------------------------
  SvgWriter svg(BoundingBox({0, 0}, {10000, 10000}), 900.0);

  // Historical days, faint.
  for (size_t day = 0; day + 1 < 59; day += 6) {
    auto slice = dataset.trajectory.Slice(
        static_cast<Timestamp>(day) * gen.period,
        static_cast<Timestamp>(day + 1) * gen.period);
    if (slice.ok()) svg.AddTrajectory(*slice, "#c8c8c8", 1.0, 0.5);
  }
  // Frequent-region MBRs.
  for (const FrequentRegion& r : predictor->regions().regions()) {
    svg.AddRect(r.mbr, "#4daf4a", 1.0, 0.35);
  }
  // Recent movements (query premise window).
  std::vector<Point> recent_points;
  for (const TimedPoint& tp : query.recent_movements) {
    recent_points.push_back(tp.location);
  }
  svg.AddPolyline(recent_points, "#377eb8", 3.0);
  svg.AddCircle(recent_points.back(), 60, "#377eb8");
  svg.AddText(recent_points.back() + Point{90, 0}, "now", "#377eb8", 18);

  // HPM prediction, RMF extrapolation, and the truth.
  svg.AddCircle(predictions->front().location, 80, "#e41a1c");
  svg.AddText(predictions->front().location + Point{100, 0}, "HPM",
              "#e41a1c", 18);
  svg.AddCircle(rmf_only->location, 80, "#ff7f00");
  svg.AddText(rmf_only->location + Point{100, 0}, "RMF", "#ff7f00", 18);
  svg.AddCircle(actual, 80, "#000000", /*filled=*/false);
  svg.AddText(actual + Point{100, -150}, "actual", "#000000", 18);

  if (Status s = svg.WriteToFile(out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("rendered %zu regions and the +50 query to %s\n",
              predictor->regions().NumRegions(), out_path.c_str());
  std::printf("  HPM error: %.1f\n",
              Distance(predictions->front().location, actual));
  std::printf("  RMF error: %.1f\n", Distance(rmf_only->location, actual));
  return 0;
}
