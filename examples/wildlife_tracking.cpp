// Wildlife tracking: the paper's Cow scenario (virtual fencing) with a
// coarse "yearly" period and top-k distant-time prediction.
//
// A GPS-tagged cow grazes among paddock areas on a daily cycle. The
// ranch system wants to know where the animal is likely to be hours
// ahead (to pre-position a water truck), and — because animals split
// time between areas — asks for the top-3 probable locations rather
// than a single point. This exercises BQP's top-k ranking and the
// interval relaxation on sparse patterns.
//
// Build & run:  ./build/examples/wildlife_tracking

#include <cstdio>

#include "common/table_printer.h"
#include "core/hybrid_predictor.h"
#include "datagen/periodic_generator.h"
#include "datagen/seed_generators.h"

int main() {
  using namespace hpm;

  constexpr Timestamp kPeriod = 288;  // One day at 5-minute fixes.
  constexpr int kDays = 70;

  // Two seasonal grazing rotations: most days the herd uses rotation A,
  // sometimes rotation B.
  SeedConfig seed;
  seed.period = kPeriod;
  seed.extent = 10000.0;
  seed.seed = 77;
  const auto rotation_a = MakeCowSeed(seed);
  seed.seed = 78;
  const auto rotation_b = MakeCowSeed(seed);

  PeriodicGeneratorConfig gen;
  gen.period = kPeriod;
  gen.num_sub_trajectories = kDays;
  gen.pattern_probability = 0.8;
  gen.noise_sigma = 15.0;
  gen.seed = 900;
  auto history = GeneratePeriodicTrajectory(
      {{rotation_a, 0.65}, {rotation_b, 0.35}}, gen);
  if (!history.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 history.status().ToString().c_str());
    return 1;
  }

  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 40.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = kDays - 1;
  options.mining.min_confidence = 0.25;
  options.mining.min_support = 3;
  options.distant_threshold = 36;  // 3 hours ahead is "distant".
  options.time_relaxation = 3;
  options.region_match_slack = 30.0;

  auto trained = HybridPredictor::Train(*history, options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  const auto& predictor = *trained;
  std::printf("cow model: %zu frequent regions, %zu patterns "
              "(period = %ld fixes/day)\n\n",
              predictor->summary().num_frequent_regions,
              predictor->summary().num_patterns,
              static_cast<long>(kPeriod));

  // Held-out day, 8:00 (fix 96); where will the cow graze at 14:00
  // (fix 168)? Ask for the top-3 probable areas.
  const Timestamp now =
      static_cast<Timestamp>(kDays - 1) * kPeriod + 96;
  PredictiveQuery query;
  query.recent_movements = history->RecentMovements(now, 12);
  query.current_time = now;
  query.query_time = now + 72;  // +6 hours.
  // Ask for many patterns, then keep the top 3 *distinct* areas — several
  // patterns may share one consequence region (Table III's shared keys).
  query.k = 1000;

  auto predictions = predictor->BackwardQuery(query);
  if (!predictions.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 predictions.status().ToString().c_str());
    return 1;
  }
  std::vector<Prediction> distinct;
  for (const Prediction& p : *predictions) {
    bool seen = false;
    for (const Prediction& d : distinct) {
      if (Distance(d.location, p.location) < 100.0) seen = true;
    }
    if (!seen) distinct.push_back(p);
    if (distinct.size() == 3) break;
  }

  const Point actual = history->At(query.query_time);
  std::printf("top-%zu probable grazing areas at 14:00:\n",
              distinct.size());
  TablePrinter table({"rank", "location", "score", "confidence",
                      "distance_to_actual"});
  int rank = 1;
  for (const Prediction& p : distinct) {
    table.AddRow({std::to_string(rank++), p.location.ToString(),
                  TablePrinter::FormatDouble(p.score, 3),
                  TablePrinter::FormatDouble(p.confidence, 2),
                  TablePrinter::FormatDouble(Distance(p.location, actual),
                                             1)});
  }
  table.Print(stdout);
  std::printf("\nactual position was %s\n", actual.ToString().c_str());
  std::printf(
      "\nWith two grazing rotations the top-k answers typically cover\n"
      "both candidate areas; the true position is near one of them, far\n"
      "from any extrapolation of the morning's movements.\n");
  return 0;
}
