#!/usr/bin/env bash
# Full verification matrix: clang-tidy (when installed), then tier-1 +
# property suites under AddressSanitizer, ThreadSanitizer and an
# UndefinedBehaviorSanitizer leg for the frozen-arena word packing. Any
# test failure or sanitizer report (sanitizers make the binary exit
# non-zero) fails the run.
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the slow-labelled binaries in the sanitizer builds
#            (integration, concurrency, store-level property suites)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
CTEST_ARGS=(--output-on-failure)
if [[ "${1:-}" == "--fast" ]]; then
  CTEST_ARGS+=(-LE slow)
fi

run_matrix() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" -L tier1 "${CTEST_ARGS[@]}" -j "$JOBS"
  ctest --test-dir "$build_dir" -L prop "${CTEST_ARGS[@]}" -j "$JOBS"
  # The observability suites (metrics, traces, pipeline accounting) are
  # tier1/prop members too, but run the label explicitly so a labelling
  # regression cannot silently drop them from the matrix.
  ctest --test-dir "$build_dir" -L observability "${CTEST_ARGS[@]}" \
        -j "$JOBS"
  # Same for the signature-tree index stack (bitsets, builder tree,
  # frozen arena + its wire parser): the suites most sensitive to memory
  # bugs must provably run under every sanitizer in the matrix.
  ctest --test-dir "$build_dir" -L tpt "${CTEST_ARGS[@]}" -j "$JOBS"
  # And for the lock-free serving layer (epoch reclamation, the no-lock
  # store read path, the batched executor): its races and lifetime bugs
  # only exist under concurrency, so the label must provably run in
  # every build of the matrix — most importantly TSan and ASan.
  ctest --test-dir "$build_dir" -L concurrency "${CTEST_ARGS[@]}" \
        -j "$JOBS"
  # And for the incremental-mining pipeline (windowed miner counts,
  # promote/demote differentials against the offline builder, the
  # background rebuild scheduler): the exactness contract is the suite
  # most likely to rot silently, so it runs by label in every build.
  ctest --test-dir "$build_dir" -L mining "${CTEST_ARGS[@]}" -j "$JOBS"
}

# Static analysis (config in .clang-tidy). Soft-skipped when clang-tidy
# is not on PATH so the matrix still runs on minimal containers.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy: src/ tools/ bench/ =="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  git ls-files 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc' |
    xargs -P "$JOBS" -n 8 clang-tidy -p build --quiet
else
  echo "== clang-tidy not installed: skipping the tidy leg =="
fi

echo "== plain build: tier1 + prop =="
run_matrix build

echo "== AddressSanitizer: tier1 + prop =="
run_matrix build-asan -DHPM_SANITIZE=address

# Aggressive-free pass over the epoch-reclamation suites: a huge
# quarantine keeps every retired-and-freed view/table poisoned for the
# rest of the run, so an epoch bug that frees a snapshot while a pinned
# reader is still traversing it reports as heap-use-after-free instead
# of silently landing in recycled memory.
echo "== AddressSanitizer, aggressive free: concurrency =="
ASAN_OPTIONS="quarantine_size_mb=256:detect_stack_use_after_return=1" \
  ctest --test-dir build-asan -L concurrency "${CTEST_ARGS[@]}" -j "$JOBS"

echo "== ThreadSanitizer: tier1 + prop =="
run_matrix build-tsan -DHPM_SANITIZE=thread

# The frozen-TPT arena is hand-packed words and raw pointer arithmetic;
# UBSan is the leg that would catch misaligned loads, bad shifts and
# out-of-range enum/int conversions there. The full tier-1 set rides
# along since the build already exists.
echo "== UndefinedBehaviorSanitizer: tier1 + tpt =="
cmake -B build-ubsan -S . -DHPM_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j "$JOBS"
ctest --test-dir build-ubsan -L tier1 "${CTEST_ARGS[@]}" -j "$JOBS"
ctest --test-dir build-ubsan -L tpt "${CTEST_ARGS[@]}" -j "$JOBS"
ctest --test-dir build-ubsan -L concurrency "${CTEST_ARGS[@]}" -j "$JOBS"

echo "== AddressSanitizer + fault hooks: tier1 + fault =="
cmake -B build-fault -S . -DHPM_SANITIZE=address -DHPM_ENABLE_FAULTS=ON >/dev/null
cmake --build build-fault -j "$JOBS"
ctest --test-dir build-fault -L tier1 "${CTEST_ARGS[@]}" -j "$JOBS"
ctest --test-dir build-fault -L fault "${CTEST_ARGS[@]}" -j "$JOBS"
ctest --test-dir build-fault -L concurrency "${CTEST_ARGS[@]}" -j "$JOBS"
# The networked serving + replication stack must provably run with the
# torn-frame / kill-point hooks armed and ASan watching the buffers:
# the wire protocol parses attacker-shaped bytes, and the replication
# sweeps are only meaningful with the fault sites compiled in.
ctest --test-dir build-fault -L net "${CTEST_ARGS[@]}" -j "$JOBS"
ctest --test-dir build-fault -L repl "${CTEST_ARGS[@]}" -j "$JOBS"
# The background-rebuild kill-point sweep (crash between mine, freeze
# and publish) only exercises its recovery paths with the fault hooks
# compiled in, and ASan is what catches a half-published arena.
ctest --test-dir build-fault -L mining "${CTEST_ARGS[@]}" -j "$JOBS"
./build-fault/tools/hpm_tool faultcheck --seed 1

# The overload-control layer (admission, load shedding, breakers) is
# where shutdown/submit and breaker/fan-out races would live; run its
# suites, plus everything fault- or concurrency-labelled, under TSan
# with the hooks on (armed fault schedules change which code paths the
# epoch readers and the batch executor race through).
echo "== ThreadSanitizer + fault hooks: overload + fault + concurrency =="
cmake -B build-tsan-fault -S . -DHPM_SANITIZE=thread \
      -DHPM_ENABLE_FAULTS=ON >/dev/null
cmake --build build-tsan-fault -j "$JOBS"
ctest --test-dir build-tsan-fault \
      -L 'overload|fault|concurrency|net|repl|mining' \
      "${CTEST_ARGS[@]}" -j "$JOBS"

echo "check.sh: all green"
