// Figure 8 — Effect of MinPts (paper §VII-B).
//
// Sweeps DBSCAN's MinPts from 3 to 7 and reports (a) the number of
// trajectory patterns and (b) the average error. Expected shape: the
// pattern count falls as MinPts rises (clusters get harder to form), and
// errors rise where the surviving pattern set becomes too small.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 8: Effect of MinPts",
              "(a) number of patterns and (b) average error vs MinPts, "
              "4 datasets, prediction length = 50");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 50;
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table({"min_pts", "patterns", "regions", "HPM_error"});
    for (int min_pts = 3; min_pts <= 7; ++min_pts) {
      ExperimentConfig sweep = config;
      sweep.min_pts = min_pts;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      table.AddRow({std::to_string(min_pts),
                    std::to_string(predictor->summary().num_patterns),
                    std::to_string(predictor->summary().num_frequent_regions),
                    Fmt(hpm.mean_error)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
