#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/table_printer.h"

namespace hpm::bench {

HybridPredictorOptions ToPredictorOptions(const ExperimentConfig& config) {
  HybridPredictorOptions options;
  options.regions.period = config.period;
  options.regions.dbscan.eps = config.eps;
  options.regions.dbscan.min_pts = config.min_pts;
  options.regions.limit_sub_trajectories = config.train_subs;
  options.mining.min_confidence = config.min_confidence;
  options.mining.min_support = config.min_support;
  options.mining.max_pattern_length = config.max_pattern_length;
  options.mining.premise_window = config.premise_window;
  options.weight_function = config.weight_function;
  options.distant_threshold = config.distant_threshold;
  options.time_relaxation = config.time_relaxation;
  options.region_match_slack = config.region_match_slack;
  options.rmf.window = config.rmf_window;
  options.rmf.retrospect = config.rmf_retrospect;
  options.premise_horizon = config.premise_horizon;
  return options;
}

WorkloadConfig ToWorkloadConfig(const ExperimentConfig& config) {
  WorkloadConfig workload;
  workload.num_queries = config.num_queries;
  workload.recent_length = config.recent_length;
  workload.prediction_length = config.prediction_length;
  workload.seed = config.workload_seed;
  return workload;
}

const Dataset& GetDataset(DatasetKind kind, const ExperimentConfig& config) {
  // One dataset per (kind, period, subs); benches sweep other knobs.
  static std::map<std::tuple<int, Timestamp, int>, Dataset> cache;
  const auto key = std::make_tuple(static_cast<int>(kind), config.period,
                                   config.total_subs);
  auto it = cache.find(key);
  if (it == cache.end()) {
    PeriodicGeneratorConfig gen = DefaultConfig(kind);
    gen.period = config.period;
    gen.num_sub_trajectories = config.total_subs;
    it = cache.emplace(key, MakeDataset(kind, gen)).first;
  }
  return it->second;
}

std::unique_ptr<HybridPredictor> TrainPredictor(
    const Dataset& dataset, const ExperimentConfig& config) {
  auto predictor = HybridPredictor::Train(dataset.trajectory,
                                          ToPredictorOptions(config));
  if (!predictor.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 predictor.status().ToString().c_str());
    std::abort();
  }
  return std::move(*predictor);
}

std::vector<QueryCase> MakeWorkload(const Dataset& dataset,
                                    const ExperimentConfig& config) {
  auto cases = MakeQueryCases(dataset.trajectory, config.period,
                              config.train_subs, ToWorkloadConfig(config));
  if (!cases.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 cases.status().ToString().c_str());
    std::abort();
  }
  return std::move(*cases);
}

EvalResult RunHpm(const HybridPredictor& predictor,
                  const std::vector<QueryCase>& cases) {
  auto result = EvaluateHpm(predictor, cases);
  if (!result.ok()) {
    std::fprintf(stderr, "HPM evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

EvalResult RunRmf(const std::vector<QueryCase>& cases) {
  return RunRmf(cases, ExperimentConfig{});
}

EvalResult RunRmf(const std::vector<QueryCase>& cases,
                  const ExperimentConfig& config) {
  RmfOptions options;
  options.window = config.rmf_window;
  options.retrospect = config.rmf_retrospect;
  auto result = EvaluateRmf(cases, options);
  if (!result.ok()) {
    std::fprintf(stderr, "RMF evaluation failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return *result;
}

std::string Fmt(double v, int precision) {
  return TablePrinter::FormatDouble(v, precision);
}

void PrintHeader(const std::string& title, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

}  // namespace hpm::bench
