// Figure 9 — Effect of minimum confidence (paper §VII-B).
//
// Sweeps min_confidence from 0% to 100% and reports (a) the number of
// trajectory patterns kept and (b) the average error. Expected shape:
// pattern counts fall steadily; datasets rich in patterns (Bike) barely
// lose accuracy, while pattern-poor ones (Airplane) degrade sharply once
// the confidence bar exceeds what their patterns can reach (~60%).

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 9: Effect of minimum confidence",
              "(a) number of patterns and (b) average error vs minimum "
              "confidence (%), 4 datasets, prediction length = 50");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 50;
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table(
        {"min_confidence_pct", "patterns", "HPM_error", "fallbacks"});
    for (int pct = 0; pct <= 100; pct += 10) {
      ExperimentConfig sweep = config;
      sweep.min_confidence = static_cast<double>(pct) / 100.0;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      table.AddRow({std::to_string(pct),
                    std::to_string(predictor->summary().num_patterns),
                    Fmt(hpm.mean_error),
                    std::to_string(hpm.motion_answers)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
