// Micro-benchmarks for the TPT search hot loop: the mutable pointer tree
// vs the frozen arena, across pattern-set sizes and both search modes,
// plus the raw word-wise Intersect/Contain primitives on packed blocks.
// This is the bench behind the PR that introduced FrozenTpt — run it on
// both sides of a hot-loop change before trusting the fleet numbers.

#include <benchmark/benchmark.h>

#include <vector>

#include "bitset/word_ops.h"
#include "common/random.h"
#include "tpt/frozen_tpt.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

constexpr size_t kPremiseLen = 400;
constexpr size_t kConsequenceLen = 60;

PatternKey RandomKey(Random* rng, double premise_density = 0.01) {
  PatternKey key(kPremiseLen, kConsequenceLen);
  key.mutable_premise().Set(rng->Uniform(kPremiseLen));
  for (size_t i = 0; i < kPremiseLen; ++i) {
    if (rng->Bernoulli(premise_density)) key.mutable_premise().Set(i);
  }
  key.mutable_consequence().Set(rng->Uniform(kConsequenceLen));
  return key;
}

std::vector<IndexedPattern> RandomPatterns(int count, uint64_t seed) {
  Random rng(seed);
  std::vector<IndexedPattern> patterns;
  patterns.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    IndexedPattern p;
    p.key = RandomKey(&rng);
    p.confidence = 0.5;
    p.consequence_region = i % 97;
    p.pattern_id = i;
    patterns.push_back(std::move(p));
  }
  return patterns;
}

/// One query per iteration from a fixed pool, so the loop measures the
/// scan rather than one lucky (or unlucky) key's pruning profile.
std::vector<PatternKey> QueryPool(uint64_t seed) {
  Random rng(seed);
  std::vector<PatternKey> pool;
  for (int i = 0; i < 64; ++i) pool.push_back(RandomKey(&rng, 0.02));
  return pool;
}

void BM_TreeSearch(benchmark::State& state, SearchMode mode) {
  const std::vector<IndexedPattern> patterns =
      RandomPatterns(static_cast<int>(state.range(0)), 11);
  StatusOr<TptTree> tree = TptTree::BulkLoad(patterns);
  HPM_CHECK(tree.ok());
  const std::vector<PatternKey> queries = QueryPool(12);
  std::vector<const IndexedPattern*> hits;
  size_t q = 0;
  for (auto _ : state) {
    tree->SearchInto(queries[q], mode, &hits);
    benchmark::DoNotOptimize(hits.data());
    q = (q + 1) % queries.size();
  }
}

void BM_FrozenSearch(benchmark::State& state, SearchMode mode) {
  const std::vector<IndexedPattern> patterns =
      RandomPatterns(static_cast<int>(state.range(0)), 11);
  StatusOr<TptTree> tree = TptTree::BulkLoad(patterns);
  HPM_CHECK(tree.ok());
  const FrozenTpt frozen = FrozenTpt::Freeze(*tree);
  const std::vector<PatternKey> queries = QueryPool(12);
  std::vector<const IndexedPattern*> hits;
  size_t q = 0;
  for (auto _ : state) {
    frozen.SearchInto(queries[q], mode, &hits);
    benchmark::DoNotOptimize(hits.data());
    q = (q + 1) % queries.size();
  }
}

void BM_TptTreeSearchFqp(benchmark::State& state) {
  BM_TreeSearch(state, SearchMode::kPremiseAndConsequence);
}
void BM_TptTreeSearchBqp(benchmark::State& state) {
  BM_TreeSearch(state, SearchMode::kConsequenceOnly);
}
void BM_FrozenTptSearchFqp(benchmark::State& state) {
  BM_FrozenSearch(state, SearchMode::kPremiseAndConsequence);
}
void BM_FrozenTptSearchBqp(benchmark::State& state) {
  BM_FrozenSearch(state, SearchMode::kConsequenceOnly);
}
BENCHMARK(BM_TptTreeSearchFqp)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FrozenTptSearchFqp)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_TptTreeSearchBqp)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_FrozenTptSearchBqp)->Arg(1000)->Arg(10000)->Arg(100000);

/// The raw primitives the hot loop is made of, on a contiguous run of
/// packed key blocks — entries/second here is the ceiling for any
/// node-scan implementation.
void BM_PackedBlockIntersect(benchmark::State& state) {
  Random rng(13);
  const size_t premise_words = (kPremiseLen + 63) / 64;
  const size_t consequence_words = (kConsequenceLen + 63) / 64;
  const size_t stride = premise_words + consequence_words;
  const size_t num_blocks = 1024;
  std::vector<uint64_t> blocks(num_blocks * stride);
  for (uint64_t& w : blocks) {
    w = rng.NextUint64() & rng.NextUint64() & rng.NextUint64();
  }
  const PatternKey query = RandomKey(&rng, 0.02);
  size_t matches = 0;
  for (auto _ : state) {
    const uint64_t* block = blocks.data();
    for (size_t e = 0; e < num_blocks; ++e, block += stride) {
      if (wordops::AnyCommon(block, query.consequence().words(),
                             consequence_words) &&
          wordops::AnyCommon(block + consequence_words,
                             query.premise().words(), premise_words)) {
        ++matches;
      }
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_blocks));
}
BENCHMARK(BM_PackedBlockIntersect);

void BM_PackedBlockContain(benchmark::State& state) {
  Random rng(14);
  const size_t premise_words = (kPremiseLen + 63) / 64;
  const size_t num_blocks = 1024;
  std::vector<uint64_t> blocks(num_blocks * premise_words);
  for (uint64_t& w : blocks) {
    w = rng.NextUint64() & rng.NextUint64() & rng.NextUint64();
  }
  const PatternKey query = RandomKey(&rng, 0.3);
  size_t contained = 0;
  for (auto _ : state) {
    const uint64_t* block = blocks.data();
    for (size_t e = 0; e < num_blocks; ++e, block += premise_words) {
      if (wordops::Contains(query.premise().words(), block,
                            premise_words)) {
        ++contained;
      }
    }
    benchmark::DoNotOptimize(contained);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_blocks));
}
BENCHMARK(BM_PackedBlockContain);

}  // namespace
}  // namespace hpm

BENCHMARK_MAIN();
