// Ablation — Incremental incorporation vs full retraining (paper §V-B).
//
// The paper motivates TPT insertion with dynamic data: "when a certain
// amount of new data is accumulated, the system mines new patterns and
// adds them up to TPT by using the insertion algorithm". This bench
// quantifies that choice: starting from a model trained on 60
// sub-trajectories, fold in batches of new days either incrementally
// (IncorporateNewHistory) or by retraining from scratch, and compare
// wall-clock cost and resulting accuracy.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Ablation: incremental incorporation vs retrain (Section V-B)",
              "cost of folding new days into a trained model");

  for (const DatasetKind kind : {DatasetKind::kBike, DatasetKind::kCar}) {
    ExperimentConfig config;
    const Dataset& dataset = GetDataset(kind, config);
    const Timestamp period = config.period;

    TablePrinter table({"new_days", "incremental_ms", "retrain_ms",
                        "inc_patterns", "retrain_patterns", "inc_error",
                        "retrain_error"});
    for (const int batch : {2, 5, 10}) {
      // Incremental: train on 60, incorporate the next `batch` days.
      auto incremental = TrainPredictor(dataset, config);
      auto new_days = dataset.trajectory.Slice(
          60 * period, (60 + batch) * period);
      HPM_CHECK(new_days.ok());
      Stopwatch inc_timer;
      auto added = incremental->IncorporateNewHistory(*new_days);
      const double inc_ms = inc_timer.ElapsedMillis();
      HPM_CHECK(added.ok());

      // Retrain: a fresh model over 60 + batch days.
      ExperimentConfig retrain_config = config;
      retrain_config.train_subs = 60 + batch;
      Stopwatch retrain_timer;
      auto retrained = TrainPredictor(dataset, retrain_config);
      const double retrain_ms = retrain_timer.ElapsedMillis();

      // Accuracy on the same held-out workload (days beyond 70).
      ExperimentConfig eval_config = config;
      eval_config.train_subs = 70;  // Held-out region starts at day 70.
      const auto cases = MakeWorkload(dataset, eval_config);
      const double inc_error = RunHpm(*incremental, cases).mean_error;
      const double retrain_error = RunHpm(*retrained, cases).mean_error;

      table.AddRow(
          {std::to_string(batch), Fmt(inc_ms, 1), Fmt(retrain_ms, 1),
           std::to_string(incremental->summary().num_patterns),
           std::to_string(retrained->summary().num_patterns),
           Fmt(inc_error), Fmt(retrain_error)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  std::printf(
      "\nIncremental incorporation reuses the existing regions and index\n"
      "(no DBSCAN pass, no TPT rebuild), trading a slightly staler region\n"
      "universe for a large constant-factor saving per batch.\n");
  return 0;
}
