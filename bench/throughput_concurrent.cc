// Concurrent serving throughput of the sharded MovingObjectStore.
//
// Measures ingest (ReportLocation), query (PredictLocation) and mixed
// (alternating report/predict) throughput in operations per second at
// 1, 2, 4 and 8 client threads against one shared store, and emits the
// series as JSON — to stdout and to a file (default
// BENCH_throughput.json, override with --out PATH) so successive runs
// leave a perf trajectory in the repo.
//
// Client threads own disjoint object ranges for ingest (the store
// orders same-object reports by arrival, so sharing objects would
// measure scheduler noise, not the store). Queries are read-only and
// round-robin over the whole fleet. Scaling beyond the machine's core
// count measures time-slicing, not parallelism — on a single-core host
// every series is flat by construction — so every series row whose
// thread count exceeds hardware_threads is stamped
// "oversubscribed": true (and warned about on stderr) to keep that
// provenance in the JSON itself.
//
// --overload additionally exercises the overload-control ladder
// (docs/ROBUSTNESS.md): an uncontended baseline of range queries is
// measured first, then 4x the client threads are thrown at a store
// configured with admission control and queue-depth shedding. Every
// response is classified full / degraded(Overloaded) / shed
// (kUnavailable + retry-after), and the p50/p99 latency of *accepted*
// work is reported next to the baseline — the resilience claim is that
// accepted p99 stays within ~2x of uncontended p99 while the excess is
// shed instead of queued. The overloaded store's pipeline-stage
// histograms (admit/plan/fanout/merge, see docs/OBSERVABILITY.md) are
// dumped alongside so a latency regression can be localised to a stage
// straight from the JSON.
//
// --durability measures the price of the write-ahead report journal
// (docs/ROBUSTNESS.md): single-threaded ingest ops/sec with the journal
// off, then at each sync policy (none / interval / every_record) into a
// scratch directory, with the store's wal.appended / wal.synced counters
// recorded so the JSON itself proves which policy actually ran.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/retry.h"

#include "common/random.h"
#include "common/stopwatch.h"
#include "io/wal.h"
#include "server/object_store.h"

namespace {

using namespace hpm;

constexpr Timestamp kPeriod = 20;
constexpr uint64_t kDefaultSeed = 20260805;
constexpr int kObjects = 32;
constexpr int kTrainPeriods = 5;
constexpr int kIngestOpsPerThread = 4000;
constexpr int kQueryOpsPerThread = 2000;
constexpr int kMixedOpsPerThread = 2000;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions StoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = kTrainPeriods;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 8;
  options.query_threads = 1;  // Scaling comes from client threads here.
  return options;
}

/// Trains kObjects objects into `store` (setup, untimed).
void WarmUp(MovingObjectStore* store) {
  for (ObjectId id = 0; id < kObjects; ++id) {
    for (Timestamp t = 0; t < kTrainPeriods * kPeriod; ++t) {
      const Status status = store->ReportLocation(id, Route(id, t));
      if (!status.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
  }
}

/// A store with kObjects trained objects (setup, untimed).
MovingObjectStore MakeWarmStore() {
  MovingObjectStore store(StoreOptions());
  WarmUp(&store);
  return store;
}

/// Runs `op(thread_index, i, rng)` kOps times on each of `threads`
/// threads and returns aggregate operations per second. Each worker owns
/// a Random stream derived from `seed` and its index, so a run is
/// reproducible from the seed recorded in the output JSON.
template <typename Op>
double MeasureOps(int threads, int ops_per_thread, uint64_t seed, Op op) {
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([w, ops_per_thread, seed, &op] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      for (int i = 0; i < ops_per_thread; ++i) op(w, i, rng);
    });
  }
  for (std::thread& t : workers) t.join();
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(threads) * ops_per_thread /
         (seconds > 0 ? seconds : 1e-9);
}

struct ThreadPoint {
  int threads = 0;
  /// True when this row ran more client threads than the machine has
  /// hardware threads: the numbers then measure time-slicing overhead,
  /// not scaling, and must not be read as a parallelism claim.
  bool oversubscribed = false;
  double ingest_ops = 0;
  double query_ops = 0;
  double mixed_ops = 0;
};

/// GPS-style measurement noise on a route point.
Point Jitter(Random& rng, Point p) {
  p.x += rng.Gaussian(0.0, 2.0);
  p.y += rng.Gaussian(0.0, 2.0);
  return p;
}

ThreadPoint RunAtThreadCount(int threads, uint64_t seed) {
  ThreadPoint point;
  point.threads = threads;
  // hardware_concurrency() may return 0 ("unknown"); only a positive
  // answer can prove oversubscription.
  const unsigned hardware = std::thread::hardware_concurrency();
  point.oversubscribed =
      hardware != 0 && static_cast<unsigned>(threads) > hardware;
  if (point.oversubscribed) {
    std::fprintf(stderr,
                 "warning: %d client threads on %u hardware threads — "
                 "this row measures time-slicing, not scaling "
                 "(stamped \"oversubscribed\": true)\n",
                 threads, hardware);
  }

  // Ingest: each thread reports into its own slice of the fleet, with
  // per-report jitter so the store sees realistic noisy samples.
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.ingest_ops = MeasureOps(
        threads, kIngestOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(w * span + i % span);
          const Timestamp t =
              static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
          (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
        });
  }

  // Query: read-only point predictions over randomly drawn objects.
  {
    MovingObjectStore store = MakeWarmStore();
    const Timestamp tq = kTrainPeriods * kPeriod + 3;
    point.query_ops = MeasureOps(
        threads, kQueryOpsPerThread, seed,
        [&store, tq](int /*w*/, int /*i*/, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
          (void)store.PredictLocation(id, tq);
        });
  }

  // Mixed: alternating report (own slice) and predict (whole fleet).
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.mixed_ops = MeasureOps(
        threads, kMixedOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          if (i % 2 == 0) {
            const ObjectId id = static_cast<ObjectId>(w * span + i % span);
            const Timestamp t =
                static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
            (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
          } else {
            const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
            (void)store.PredictLocation(id, 1000000 + i);
          }
        });
  }
  return point;
}

// ---- Overload mode ---------------------------------------------------------

constexpr int kMaxInFlight = 2;  ///< The store's serving capacity.
constexpr int kOverloadThreads = 4 * kMaxInFlight;  // 4x offered load.
constexpr int kBaselineThreads = 1;  ///< Truly uncontended reference run.
constexpr int kOverloadOpsPerThread = 500;
/// Per-query deadline; queries reaching the store with less than
/// kMinHeadroomUs of it left (client-side queueing under overload) are
/// answered RMF-only instead of blowing the budget on the pattern side.
constexpr int kDeadlineUs = 5000;
constexpr int kMinHeadroomUs = 2000;

struct OverloadReport {
  uint64_t full = 0;      ///< Admitted, answered with the full hybrid model.
  uint64_t degraded = 0;  ///< Admitted, answered RMF-only (rung 1).
  uint64_t shed = 0;      ///< Rejected kUnavailable + retry-after (rung 2).
  uint64_t other = 0;     ///< Anything else — must stay 0.
  OverloadStats store_stats;  ///< The server's own ladder counters.
  MetricsSnapshot metrics;    ///< Stage histograms of the overloaded store.
  double baseline_p50_us = 0;
  double baseline_p99_us = 0;
  double accepted_p50_us = 0;
  double accepted_p99_us = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

/// The overload store: same model configuration as the scaling series,
/// plus the ladder — an in-flight cap sized to the baseline client
/// count, a bounded fan-out queue, and queue-depth shedding.
ObjectStoreOptions OverloadStoreOptions() {
  ObjectStoreOptions options = StoreOptions();
  options.query_threads = 2;
  options.admission.max_in_flight = kMaxInFlight;
  options.max_pool_queue = 16;
  // Rung 1 fires on either pressure signal: fan-out backlog, or a query
  // arriving with most of its deadline already burned in client-side
  // queueing (the dominant signal when admission bounds the backlog).
  options.degrade_queue_depth = 1;
  options.degrade_min_headroom = std::chrono::microseconds(kMinHeadroomUs);
  return options;
}

/// Fires closed-loop range queries from `threads` clients. Each logical
/// request carries one deadline; a shed attempt honors the server's
/// retry-after hint and retries against the *same* deadline (so a
/// readmitted request arrives with its headroom partly burned — the
/// rung-1 trigger), giving up when the deadline runs out. Accepted
/// latencies record the service time of the successful attempt.
void DriveRangeQueries(const MovingObjectStore& store, int threads,
                       uint64_t seed, OverloadReport* report,
                       std::vector<double>* accepted_us) {
  const Timestamp tq = kTrainPeriods * kPeriod + 3;
  std::mutex merge_mutex;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      OverloadReport local;
      std::vector<double> latencies;
      latencies.reserve(kOverloadOpsPerThread);
      for (int i = 0; i < kOverloadOpsPerThread; ++i) {
        // A window around a random object's lane, wide enough in x to
        // hold both the pattern answer and the RMF extrapolation (which
        // overshoots the sawtooth route's wrap-around), so hits are
        // non-empty and degraded answers stay visible to the classifier.
        const double lane =
            500.0 + 1000.0 * static_cast<double>(rng.Uniform(kObjects));
        const BoundingBox range({-1000.0, lane - 600.0},
                                {3000.0, lane + 600.0});
        const Deadline deadline =
            Deadline::After(std::chrono::microseconds(kDeadlineUs));
        for (;;) {
          const auto start = std::chrono::steady_clock::now();
          const StatusOr<FleetQueryResult> result =
              store.PredictiveRangeQuery(range, tq, /*k_per_object=*/3,
                                         deadline);
          const double elapsed_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (result.ok()) {
            latencies.push_back(elapsed_us);
            const bool rmf_only = std::any_of(
                result->hits.begin(), result->hits.end(),
                [](const RangeHit& hit) {
                  return hit.prediction.degraded != DegradedReason::kNone;
                });
            if (rmf_only) {
              ++local.degraded;
            } else {
              ++local.full;
            }
            break;
          }
          const auto hint = RetryAfterHint(result.status());
          if (result.status().code() != StatusCode::kUnavailable ||
              !hint.has_value()) {
            ++local.other;  // Outside the ladder's contract.
            break;
          }
          if (deadline.expired()) {
            ++local.shed;  // Out of budget: the request is dropped.
            break;
          }
          std::this_thread::sleep_for(
              std::min<Deadline::Clock::duration>(*hint,
                                                  deadline.remaining()));
        }
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      report->full += local.full;
      report->degraded += local.degraded;
      report->shed += local.shed;
      report->other += local.other;
      accepted_us->insert(accepted_us->end(), latencies.begin(),
                          latencies.end());
    });
  }
  for (std::thread& t : workers) t.join();
}

OverloadReport RunOverload(uint64_t seed) {
  OverloadReport report;

  // Uncontended baseline: the same store configuration, driven at the
  // in-flight cap so nothing is shed or degraded.
  {
    MovingObjectStore store(OverloadStoreOptions());
    WarmUp(&store);
    OverloadReport baseline;
    std::vector<double> latencies;
    DriveRangeQueries(store, kBaselineThreads, seed, &baseline, &latencies);
    std::sort(latencies.begin(), latencies.end());
    report.baseline_p50_us = Percentile(latencies, 0.50);
    report.baseline_p99_us = Percentile(latencies, 0.99);
  }

  // 4x offered load against a fresh store: classify every response.
  {
    MovingObjectStore store(OverloadStoreOptions());
    WarmUp(&store);
    std::vector<double> latencies;
    DriveRangeQueries(store, kOverloadThreads, seed, &report, &latencies);
    std::sort(latencies.begin(), latencies.end());
    report.accepted_p50_us = Percentile(latencies, 0.50);
    report.accepted_p99_us = Percentile(latencies, 0.99);
    report.store_stats = store.overload_stats();
    report.metrics = store.metrics_snapshot();
  }
  return report;
}

// ---- Durability mode -------------------------------------------------------

constexpr int kDurabilityOpsPerThread = 4000;

struct DurabilityPoint {
  std::string mode;        ///< "off", "none", "interval", "every_record".
  double ingest_ops = 0;   ///< Single-threaded ReportLocation ops/sec.
  uint64_t appended = 0;   ///< wal.appended after the timed run.
  uint64_t synced = 0;     ///< wal.synced — proves the policy differed.
  bool durable = true;     ///< False would mean the journal degraded.
};

/// Times single-threaded ingest with the journal in `mode`. One thread:
/// the journal serialises appends per shard anyway, and a single lane
/// makes the per-policy cost directly comparable.
DurabilityPoint MeasureDurability(const char* mode, uint64_t seed) {
  DurabilityPoint point;
  point.mode = mode;
  ObjectStoreOptions options = StoreOptions();
  std::string scratch;
  if (std::strcmp(mode, "off") != 0) {
    scratch = std::filesystem::temp_directory_path().string() +
              "/hpm_bench_wal_" + mode;
    std::filesystem::remove_all(scratch);
    options.durability.wal_dir = scratch + "/wal";
    if (std::strcmp(mode, "none") == 0) {
      options.durability.sync_policy = WalSyncPolicy::kNone;
    } else if (std::strcmp(mode, "interval") == 0) {
      options.durability.sync_policy = WalSyncPolicy::kInterval;
    } else {
      options.durability.sync_policy = WalSyncPolicy::kEveryRecord;
    }
  }
  {
    MovingObjectStore store(options);
    WarmUp(&store);
    // Count the journal traffic of the timed window only, not warm-up's.
    const MetricsSnapshot before = store.metrics_snapshot();
    point.ingest_ops = MeasureOps(
        1, kDurabilityOpsPerThread, seed, [&store](int, int i, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(i % kObjects);
          const Timestamp t =
              static_cast<Timestamp>(kTrainPeriods * kPeriod + i / kObjects);
          (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
        });
    const MetricsSnapshot after = store.metrics_snapshot();
    point.appended =
        after.counter("wal.appended") - before.counter("wal.appended");
    point.synced = after.counter("wal.synced") - before.counter("wal.synced");
    point.durable = scratch.empty() ? true : store.wal_durable();
  }
  if (!scratch.empty()) std::filesystem::remove_all(scratch);
  return point;
}

std::string DurabilityJson(const std::vector<DurabilityPoint>& points) {
  std::string json = "  \"durability\": [\n";
  char buf[192];
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"ingest_ops_per_sec\": %.0f, "
                  "\"wal_appended\": %" PRIu64 ", \"wal_synced\": %" PRIu64
                  ", \"durable\": %s}%s\n",
                  points[i].mode.c_str(), points[i].ingest_ops,
                  points[i].appended, points[i].synced,
                  points[i].durable ? "true" : "false",
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  return json;
}

/// Pipeline-stage breakdown of the overloaded store: where admitted
/// queries spent their time (histogram upper-bound percentiles, so the
/// numbers are conservative per docs/OBSERVABILITY.md).
std::string StagesJson(const MetricsSnapshot& metrics) {
  static constexpr const char* kStages[] = {"admit", "plan", "fanout",
                                            "merge"};
  std::string json = "  \"stages\": {";
  char buf[160];
  for (size_t i = 0; i < std::size(kStages); ++i) {
    const std::string name = std::string("stage.") + kStages[i] + "_us";
    const LatencyHistogram::Snapshot* snap = metrics.histogram(name);
    const LatencyHistogram::Snapshot empty;
    if (snap == nullptr) snap = &empty;
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %" PRIu64
                  ", \"mean_us\": %.1f, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f}",
                  i == 0 ? "" : ",", kStages[i], snap->count,
                  snap->mean_micros(), snap->PercentileMicros(50),
                  snap->PercentileMicros(99));
    json += buf;
  }
  json += "},\n";
  return json;
}

std::string OverloadJson(const OverloadReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"overload\": {\"baseline_threads\": %d, \"overload_threads\": %d,\n"
      "    \"full\": %" PRIu64 ", \"degraded\": %" PRIu64
      ", \"shed\": %" PRIu64 ", \"other\": %" PRIu64 ",\n"
      "    \"store_admitted\": %" PRIu64 ", \"store_shed\": %" PRIu64
      ", \"store_degraded_answers\": %" PRIu64 ",\n"
      "    \"baseline_p50_us\": %.1f, \"baseline_p99_us\": %.1f,\n"
      "    \"accepted_p50_us\": %.1f, \"accepted_p99_us\": %.1f},\n",
      kBaselineThreads, kOverloadThreads, report.full, report.degraded,
      report.shed, report.other, report.store_stats.admitted,
      report.store_stats.shed, report.store_stats.degraded_overload,
      report.baseline_p50_us, report.baseline_p99_us,
      report.accepted_p50_us, report.accepted_p99_us);
  return buf + StagesJson(report.metrics);
}

std::string ToJson(const std::vector<ThreadPoint>& points, uint64_t seed,
                   const std::string& overload_json,
                   const std::string& durability_json) {
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"objects\": %d,\n  \"num_shards\": %d,\n"
                "  \"hardware_threads\": %u,\n  \"rng_seed\": %" PRIu64
                ",\n",
                kObjects, StoreOptions().num_shards,
                std::thread::hardware_concurrency(), seed);
  json += buf;
  json += overload_json;    // Empty unless --overload ran.
  json += durability_json;  // Empty unless --durability ran.
  json += "  \"series\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"oversubscribed\": %s, "
                  "\"ingest_ops_per_sec\": %.0f, "
                  "\"query_ops_per_sec\": %.0f, "
                  "\"mixed_ops_per_sec\": %.0f}%s\n",
                  points[i].threads,
                  points[i].oversubscribed ? "true" : "false",
                  points[i].ingest_ops, points[i].query_ops,
                  points[i].mixed_ops, i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  uint64_t seed = kDefaultSeed;
  bool overload = false;
  bool durability = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--durability") == 0) {
      durability = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out PATH] [--seed N] [--overload] "
                   "[--durability]\n",
                   argv[0]);
      return 1;
    }
  }

  std::string overload_json;
  if (overload) {
    const OverloadReport report = RunOverload(seed);
    overload_json = OverloadJson(report);
    std::fprintf(stderr,
                 "overload done: full=%" PRIu64 " degraded=%" PRIu64
                 " shed=%" PRIu64 " other=%" PRIu64 "\n",
                 report.full, report.degraded, report.shed, report.other);
  }

  std::string durability_json;
  if (durability) {
    std::vector<DurabilityPoint> modes;
    for (const char* mode : {"off", "none", "interval", "every_record"}) {
      modes.push_back(MeasureDurability(mode, seed));
      std::fprintf(stderr, "durability mode=%s done: %.0f ops/s\n", mode,
                   modes.back().ingest_ops);
    }
    durability_json = DurabilityJson(modes);
  }

  std::vector<ThreadPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    points.push_back(RunAtThreadCount(threads, seed));
    std::fprintf(stderr, "threads=%d done\n", threads);
  }

  const std::string json = ToJson(points, seed, overload_json, durability_json);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
