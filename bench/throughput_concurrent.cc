// Concurrent serving throughput of the sharded MovingObjectStore.
//
// Measures ingest (ReportLocation), query (PredictLocation) and mixed
// (alternating report/predict) throughput in operations per second at
// 1, 2, 4 and 8 client threads against one shared store, and emits the
// series as JSON — to stdout and to a file (default
// BENCH_throughput.json, override with --out PATH) so successive runs
// leave a perf trajectory in the repo.
//
// Client threads own disjoint object ranges for ingest (the store
// orders same-object reports by arrival, so sharing objects would
// measure scheduler noise, not the store). Queries are read-only and
// round-robin over the whole fleet. Scaling beyond the machine's core
// count measures lock overhead, not parallelism — on a single-core
// host every series is flat by construction.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "server/object_store.h"

namespace {

using namespace hpm;

constexpr Timestamp kPeriod = 20;
constexpr uint64_t kDefaultSeed = 20260805;
constexpr int kObjects = 32;
constexpr int kTrainPeriods = 5;
constexpr int kIngestOpsPerThread = 4000;
constexpr int kQueryOpsPerThread = 2000;
constexpr int kMixedOpsPerThread = 2000;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions StoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = kTrainPeriods;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 8;
  options.query_threads = 1;  // Scaling comes from client threads here.
  return options;
}

/// A store with kObjects trained objects (setup, untimed).
MovingObjectStore MakeWarmStore() {
  MovingObjectStore store(StoreOptions());
  for (ObjectId id = 0; id < kObjects; ++id) {
    for (Timestamp t = 0; t < kTrainPeriods * kPeriod; ++t) {
      const Status status = store.ReportLocation(id, Route(id, t));
      if (!status.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
  }
  return store;
}

/// Runs `op(thread_index, i, rng)` kOps times on each of `threads`
/// threads and returns aggregate operations per second. Each worker owns
/// a Random stream derived from `seed` and its index, so a run is
/// reproducible from the seed recorded in the output JSON.
template <typename Op>
double MeasureOps(int threads, int ops_per_thread, uint64_t seed, Op op) {
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([w, ops_per_thread, seed, &op] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      for (int i = 0; i < ops_per_thread; ++i) op(w, i, rng);
    });
  }
  for (std::thread& t : workers) t.join();
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(threads) * ops_per_thread /
         (seconds > 0 ? seconds : 1e-9);
}

struct ThreadPoint {
  int threads = 0;
  double ingest_ops = 0;
  double query_ops = 0;
  double mixed_ops = 0;
};

/// GPS-style measurement noise on a route point.
Point Jitter(Random& rng, Point p) {
  p.x += rng.Gaussian(0.0, 2.0);
  p.y += rng.Gaussian(0.0, 2.0);
  return p;
}

ThreadPoint RunAtThreadCount(int threads, uint64_t seed) {
  ThreadPoint point;
  point.threads = threads;

  // Ingest: each thread reports into its own slice of the fleet, with
  // per-report jitter so the store sees realistic noisy samples.
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.ingest_ops = MeasureOps(
        threads, kIngestOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(w * span + i % span);
          const Timestamp t =
              static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
          (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
        });
  }

  // Query: read-only point predictions over randomly drawn objects.
  {
    MovingObjectStore store = MakeWarmStore();
    const Timestamp tq = kTrainPeriods * kPeriod + 3;
    point.query_ops = MeasureOps(
        threads, kQueryOpsPerThread, seed,
        [&store, tq](int /*w*/, int /*i*/, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
          (void)store.PredictLocation(id, tq);
        });
  }

  // Mixed: alternating report (own slice) and predict (whole fleet).
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.mixed_ops = MeasureOps(
        threads, kMixedOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          if (i % 2 == 0) {
            const ObjectId id = static_cast<ObjectId>(w * span + i % span);
            const Timestamp t =
                static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
            (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
          } else {
            const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
            (void)store.PredictLocation(id, 1000000 + i);
          }
        });
  }
  return point;
}

std::string ToJson(const std::vector<ThreadPoint>& points, uint64_t seed) {
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"objects\": %d,\n  \"num_shards\": %d,\n"
                "  \"hardware_threads\": %u,\n  \"rng_seed\": %" PRIu64
                ",\n  \"series\": [\n",
                kObjects, StoreOptions().num_shards,
                std::thread::hardware_concurrency(), seed);
  json += buf;
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"ingest_ops_per_sec\": %.0f, "
                  "\"query_ops_per_sec\": %.0f, "
                  "\"mixed_ops_per_sec\": %.0f}%s\n",
                  points[i].threads, points[i].ingest_ops,
                  points[i].query_ops, points[i].mixed_ops,
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  uint64_t seed = kDefaultSeed;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--out PATH] [--seed N]\n", argv[0]);
      return 1;
    }
  }

  std::vector<ThreadPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    points.push_back(RunAtThreadCount(threads, seed));
    std::fprintf(stderr, "threads=%d done\n", threads);
  }

  const std::string json = ToJson(points, seed);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
