// Concurrent serving throughput of the sharded MovingObjectStore.
//
// Measures ingest (ReportLocation), query (PredictLocation) and mixed
// (alternating report/predict) throughput in operations per second at
// 1, 2, 4 and 8 client threads against one shared store, and emits the
// series as JSON — to stdout and to a file (default
// BENCH_throughput.json, override with --out PATH) so successive runs
// leave a perf trajectory in the repo.
//
// Client threads own disjoint object ranges for ingest (the store
// orders same-object reports by arrival, so sharing objects would
// measure scheduler noise, not the store). Queries are read-only and
// round-robin over the whole fleet. Scaling beyond the machine's core
// count measures time-slicing, not parallelism — on a single-core host
// every series is flat by construction — so every series row whose
// thread count exceeds hardware_threads is stamped
// "oversubscribed": true (and warned about on stderr) to keep that
// provenance in the JSON itself.
//
// --overload additionally exercises the overload-control ladder
// (docs/ROBUSTNESS.md): an uncontended baseline of range queries is
// measured first, then 4x the client threads are thrown at a store
// configured with admission control and queue-depth shedding. Every
// response is classified full / degraded(Overloaded) / shed
// (kUnavailable + retry-after), and the p50/p99 latency of *accepted*
// work is reported next to the baseline — the resilience claim is that
// accepted p99 stays within ~2x of uncontended p99 while the excess is
// shed instead of queued. The overloaded store's pipeline-stage
// histograms (admit/plan/fanout/merge, see docs/OBSERVABILITY.md) are
// dumped alongside so a latency regression can be localised to a stage
// straight from the JSON.
//
// --durability measures the price of the write-ahead report journal
// (docs/ROBUSTNESS.md): single-threaded ingest ops/sec with the journal
// off, then at each sync policy (none / interval / every_record) into a
// scratch directory, with the store's wal.appended / wal.synced counters
// recorded so the JSON itself proves which policy actually ran.
//
// --rebuild prices continuous background rebuilds (docs/ARCHITECTURE.md,
// incremental mining). A drifting ReportStream drives each run twice
// over the same reports: once with the drift threshold effectively
// infinite (rebuilds never fire) and once low enough that every drift
// event triggers a background rebuild + publish. Each run has a
// closed-loop ingest burst (pricing the write path) and a paced phase —
// the stream replayed at its arrival stamps while paced query threads
// measure predictive range queries. The claim is that
// rebuilds ride below query traffic (the worker runs at idle scheduling
// priority, so it only consumes CPU the pacing leaves free): the
// accepted-query p99 — read from the store's own op.range_us
// power-of-two histogram, with client-side latencies reported alongside
// — must land in the same or a lower bucket with rebuilds on as off,
// and the rebuild.* counters in the JSON prove the "on" run actually
// rebuilt.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "common/metrics.h"
#include "common/retry.h"

#include "common/random.h"
#include "common/stopwatch.h"
#include "datagen/report_stream.h"
#include "io/wal.h"
#include "server/object_store.h"

namespace {

using namespace hpm;

constexpr Timestamp kPeriod = 20;
constexpr uint64_t kDefaultSeed = 20260805;
constexpr int kObjects = 32;
constexpr int kTrainPeriods = 5;
constexpr int kIngestOpsPerThread = 4000;
constexpr int kQueryOpsPerThread = 2000;
constexpr int kMixedOpsPerThread = 2000;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions StoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = kTrainPeriods;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 8;
  options.query_threads = 1;  // Scaling comes from client threads here.
  return options;
}

/// Trains kObjects objects into `store` (setup, untimed).
void WarmUp(MovingObjectStore* store) {
  for (ObjectId id = 0; id < kObjects; ++id) {
    for (Timestamp t = 0; t < kTrainPeriods * kPeriod; ++t) {
      const Status status = store->ReportLocation(id, Route(id, t));
      if (!status.ok()) {
        std::fprintf(stderr, "setup failed: %s\n",
                     status.ToString().c_str());
        std::abort();
      }
    }
  }
}

/// A store with kObjects trained objects (setup, untimed).
MovingObjectStore MakeWarmStore() {
  MovingObjectStore store(StoreOptions());
  WarmUp(&store);
  return store;
}

/// Runs `op(thread_index, i, rng)` kOps times on each of `threads`
/// threads and returns aggregate operations per second. Each worker owns
/// a Random stream derived from `seed` and its index, so a run is
/// reproducible from the seed recorded in the output JSON.
template <typename Op>
double MeasureOps(int threads, int ops_per_thread, uint64_t seed, Op op) {
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([w, ops_per_thread, seed, &op] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      for (int i = 0; i < ops_per_thread; ++i) op(w, i, rng);
    });
  }
  for (std::thread& t : workers) t.join();
  const double seconds = watch.ElapsedSeconds();
  return static_cast<double>(threads) * ops_per_thread /
         (seconds > 0 ? seconds : 1e-9);
}

struct ThreadPoint {
  int threads = 0;
  /// True when this row ran more client threads than the machine has
  /// hardware threads: the numbers then measure time-slicing overhead,
  /// not scaling, and must not be read as a parallelism claim.
  bool oversubscribed = false;
  double ingest_ops = 0;
  double query_ops = 0;
  double mixed_ops = 0;
};

/// GPS-style measurement noise on a route point.
Point Jitter(Random& rng, Point p) {
  p.x += rng.Gaussian(0.0, 2.0);
  p.y += rng.Gaussian(0.0, 2.0);
  return p;
}

ThreadPoint RunAtThreadCount(int threads, uint64_t seed) {
  ThreadPoint point;
  point.threads = threads;
  // hardware_concurrency() may return 0 ("unknown"); only a positive
  // answer can prove oversubscription.
  const unsigned hardware = std::thread::hardware_concurrency();
  point.oversubscribed =
      hardware != 0 && static_cast<unsigned>(threads) > hardware;
  if (point.oversubscribed) {
    std::fprintf(stderr,
                 "warning: %d client threads on %u hardware threads — "
                 "this row measures time-slicing, not scaling "
                 "(stamped \"oversubscribed\": true)\n",
                 threads, hardware);
  }

  // Ingest: each thread reports into its own slice of the fleet, with
  // per-report jitter so the store sees realistic noisy samples.
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.ingest_ops = MeasureOps(
        threads, kIngestOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(w * span + i % span);
          const Timestamp t =
              static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
          (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
        });
  }

  // Query: read-only point predictions over randomly drawn objects.
  {
    MovingObjectStore store = MakeWarmStore();
    const Timestamp tq = kTrainPeriods * kPeriod + 3;
    point.query_ops = MeasureOps(
        threads, kQueryOpsPerThread, seed,
        [&store, tq](int /*w*/, int /*i*/, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
          (void)store.PredictLocation(id, tq);
        });
  }

  // Mixed: alternating report (own slice) and predict (whole fleet).
  {
    MovingObjectStore store = MakeWarmStore();
    const int span = kObjects / threads;
    point.mixed_ops = MeasureOps(
        threads, kMixedOpsPerThread, seed,
        [&store, span](int w, int i, Random& rng) {
          if (i % 2 == 0) {
            const ObjectId id = static_cast<ObjectId>(w * span + i % span);
            const Timestamp t =
                static_cast<Timestamp>(kTrainPeriods * kPeriod + i / span);
            (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
          } else {
            const ObjectId id = static_cast<ObjectId>(rng.Uniform(kObjects));
            (void)store.PredictLocation(id, 1000000 + i);
          }
        });
  }
  return point;
}

// ---- Overload mode ---------------------------------------------------------

constexpr int kMaxInFlight = 2;  ///< The store's serving capacity.
constexpr int kOverloadThreads = 4 * kMaxInFlight;  // 4x offered load.
constexpr int kBaselineThreads = 1;  ///< Truly uncontended reference run.
constexpr int kOverloadOpsPerThread = 500;
/// Per-query deadline; queries reaching the store with less than
/// kMinHeadroomUs of it left (client-side queueing under overload) are
/// answered RMF-only instead of blowing the budget on the pattern side.
constexpr int kDeadlineUs = 5000;
constexpr int kMinHeadroomUs = 2000;

struct OverloadReport {
  uint64_t full = 0;      ///< Admitted, answered with the full hybrid model.
  uint64_t degraded = 0;  ///< Admitted, answered RMF-only (rung 1).
  uint64_t shed = 0;      ///< Rejected kUnavailable + retry-after (rung 2).
  uint64_t other = 0;     ///< Anything else — must stay 0.
  OverloadStats store_stats;  ///< The server's own ladder counters.
  MetricsSnapshot metrics;    ///< Stage histograms of the overloaded store.
  double baseline_p50_us = 0;
  double baseline_p99_us = 0;
  double accepted_p50_us = 0;
  double accepted_p99_us = 0;
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

/// The overload store: same model configuration as the scaling series,
/// plus the ladder — an in-flight cap sized to the baseline client
/// count, a bounded fan-out queue, and queue-depth shedding.
ObjectStoreOptions OverloadStoreOptions() {
  ObjectStoreOptions options = StoreOptions();
  options.query_threads = 2;
  options.admission.max_in_flight = kMaxInFlight;
  options.max_pool_queue = 16;
  // Rung 1 fires on either pressure signal: fan-out backlog, or a query
  // arriving with most of its deadline already burned in client-side
  // queueing (the dominant signal when admission bounds the backlog).
  options.degrade_queue_depth = 1;
  options.degrade_min_headroom = std::chrono::microseconds(kMinHeadroomUs);
  return options;
}

/// Fires closed-loop range queries from `threads` clients. Each logical
/// request carries one deadline; a shed attempt honors the server's
/// retry-after hint and retries against the *same* deadline (so a
/// readmitted request arrives with its headroom partly burned — the
/// rung-1 trigger), giving up when the deadline runs out. Accepted
/// latencies record the service time of the successful attempt.
void DriveRangeQueries(const MovingObjectStore& store, int threads,
                       uint64_t seed, OverloadReport* report,
                       std::vector<double>* accepted_us) {
  const Timestamp tq = kTrainPeriods * kPeriod + 3;
  std::mutex merge_mutex;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      OverloadReport local;
      std::vector<double> latencies;
      latencies.reserve(kOverloadOpsPerThread);
      for (int i = 0; i < kOverloadOpsPerThread; ++i) {
        // A window around a random object's lane, wide enough in x to
        // hold both the pattern answer and the RMF extrapolation (which
        // overshoots the sawtooth route's wrap-around), so hits are
        // non-empty and degraded answers stay visible to the classifier.
        const double lane =
            500.0 + 1000.0 * static_cast<double>(rng.Uniform(kObjects));
        const BoundingBox range({-1000.0, lane - 600.0},
                                {3000.0, lane + 600.0});
        const Deadline deadline =
            Deadline::After(std::chrono::microseconds(kDeadlineUs));
        for (;;) {
          const auto start = std::chrono::steady_clock::now();
          const StatusOr<FleetQueryResult> result =
              store.PredictiveRangeQuery(range, tq, /*k_per_object=*/3,
                                         deadline);
          const double elapsed_us =
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          if (result.ok()) {
            latencies.push_back(elapsed_us);
            const bool rmf_only = std::any_of(
                result->hits.begin(), result->hits.end(),
                [](const RangeHit& hit) {
                  return hit.prediction.degraded != DegradedReason::kNone;
                });
            if (rmf_only) {
              ++local.degraded;
            } else {
              ++local.full;
            }
            break;
          }
          const auto hint = RetryAfterHint(result.status());
          if (result.status().code() != StatusCode::kUnavailable ||
              !hint.has_value()) {
            ++local.other;  // Outside the ladder's contract.
            break;
          }
          if (deadline.expired()) {
            ++local.shed;  // Out of budget: the request is dropped.
            break;
          }
          std::this_thread::sleep_for(
              std::min<Deadline::Clock::duration>(*hint,
                                                  deadline.remaining()));
        }
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      report->full += local.full;
      report->degraded += local.degraded;
      report->shed += local.shed;
      report->other += local.other;
      accepted_us->insert(accepted_us->end(), latencies.begin(),
                          latencies.end());
    });
  }
  for (std::thread& t : workers) t.join();
}

OverloadReport RunOverload(uint64_t seed) {
  OverloadReport report;

  // Uncontended baseline: the same store configuration, driven at the
  // in-flight cap so nothing is shed or degraded.
  {
    MovingObjectStore store(OverloadStoreOptions());
    WarmUp(&store);
    OverloadReport baseline;
    std::vector<double> latencies;
    DriveRangeQueries(store, kBaselineThreads, seed, &baseline, &latencies);
    std::sort(latencies.begin(), latencies.end());
    report.baseline_p50_us = Percentile(latencies, 0.50);
    report.baseline_p99_us = Percentile(latencies, 0.99);
  }

  // 4x offered load against a fresh store: classify every response.
  {
    MovingObjectStore store(OverloadStoreOptions());
    WarmUp(&store);
    std::vector<double> latencies;
    DriveRangeQueries(store, kOverloadThreads, seed, &report, &latencies);
    std::sort(latencies.begin(), latencies.end());
    report.accepted_p50_us = Percentile(latencies, 0.50);
    report.accepted_p99_us = Percentile(latencies, 0.99);
    report.store_stats = store.overload_stats();
    report.metrics = store.metrics_snapshot();
  }
  return report;
}

// ---- Durability mode -------------------------------------------------------

constexpr int kDurabilityOpsPerThread = 4000;

struct DurabilityPoint {
  std::string mode;        ///< "off", "none", "interval", "every_record".
  double ingest_ops = 0;   ///< Single-threaded ReportLocation ops/sec.
  uint64_t appended = 0;   ///< wal.appended after the timed run.
  uint64_t synced = 0;     ///< wal.synced — proves the policy differed.
  bool durable = true;     ///< False would mean the journal degraded.
};

/// Times single-threaded ingest with the journal in `mode`. One thread:
/// the journal serialises appends per shard anyway, and a single lane
/// makes the per-policy cost directly comparable.
DurabilityPoint MeasureDurability(const char* mode, uint64_t seed) {
  DurabilityPoint point;
  point.mode = mode;
  ObjectStoreOptions options = StoreOptions();
  std::string scratch;
  if (std::strcmp(mode, "off") != 0) {
    scratch = std::filesystem::temp_directory_path().string() +
              "/hpm_bench_wal_" + mode;
    std::filesystem::remove_all(scratch);
    options.durability.wal_dir = scratch + "/wal";
    if (std::strcmp(mode, "none") == 0) {
      options.durability.sync_policy = WalSyncPolicy::kNone;
    } else if (std::strcmp(mode, "interval") == 0) {
      options.durability.sync_policy = WalSyncPolicy::kInterval;
    } else {
      options.durability.sync_policy = WalSyncPolicy::kEveryRecord;
    }
  }
  {
    MovingObjectStore store(options);
    WarmUp(&store);
    // Count the journal traffic of the timed window only, not warm-up's.
    const MetricsSnapshot before = store.metrics_snapshot();
    point.ingest_ops = MeasureOps(
        1, kDurabilityOpsPerThread, seed, [&store](int, int i, Random& rng) {
          const ObjectId id = static_cast<ObjectId>(i % kObjects);
          const Timestamp t =
              static_cast<Timestamp>(kTrainPeriods * kPeriod + i / kObjects);
          (void)store.ReportLocation(id, Jitter(rng, Route(id, t)));
        });
    const MetricsSnapshot after = store.metrics_snapshot();
    point.appended =
        after.counter("wal.appended") - before.counter("wal.appended");
    point.synced = after.counter("wal.synced") - before.counter("wal.synced");
    point.durable = scratch.empty() ? true : store.wal_durable();
  }
  if (!scratch.empty()) std::filesystem::remove_all(scratch);
  return point;
}

std::string DurabilityJson(const std::vector<DurabilityPoint>& points) {
  std::string json = "  \"durability\": [\n";
  char buf[192];
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"mode\": \"%s\", \"ingest_ops_per_sec\": %.0f, "
                  "\"wal_appended\": %" PRIu64 ", \"wal_synced\": %" PRIu64
                  ", \"durable\": %s}%s\n",
                  points[i].mode.c_str(), points[i].ingest_ops,
                  points[i].appended, points[i].synced,
                  points[i].durable ? "true" : "false",
                  i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  return json;
}

// ---- Rebuild mode ----------------------------------------------------------

/// Closed-loop ingest burst: prices the write path (miner accounting +
/// rebuild scheduling) with rebuilds on vs off.
constexpr int kRebuildBurstOps = 20000;
/// Paced serving phase: the stream replayed at its arrival stamps while
/// query threads measure latency — the window the p99 acceptance uses.
constexpr int kRebuildPacedOps = 240000;
constexpr double kRebuildRatePerSecond = 24000.0;
/// One querier on purpose: on a 1-core host two query threads collide
/// with *each other* (two multi-ms range computes stack), which swamps
/// the tail we are trying to attribute to background rebuilds.
constexpr int kRebuildQueryThreads = 1;
/// A larger fleet than the base bench: the predictive range query fans
/// out one prediction per object, so fleet size sets per-query compute
/// (~9ms at 128). That puts the service-time p50 just above the 8192us
/// histogram bucket edge, leaving most of the [8192,16384) bucket as
/// headroom — ingest collisions and hypervisor jitter (~1-2ms) land
/// inside the bucket in both modes instead of flipping a
/// boundary-straddling tail run to run.
constexpr int kRebuildObjects = 128;
/// Tuned so the paced window sees a steady trickle of rebuilds (roughly
/// one in flight at a time), not a storm that saturates the worker —
/// "continuous rebuilds" means the fleet keeps refreshing, not that
/// every object rebuilds every drift event.
constexpr double kRebuildOnThreshold = 8.0;
/// Unreachable: the miner still runs, rebuilds never fire.
constexpr double kRebuildOffThreshold = 1e18;

struct RebuildPoint {
  bool rebuilds_on = false;
  double ingest_ops = 0;  ///< Streaming ReportLocation ops/sec (1 thread).
  double query_ops = 0;   ///< Accepted PredictLocation ops/sec (2 threads).
  uint64_t accepted = 0;  ///< Queries answered ok during the timed window.
  uint64_t rejected = 0;  ///< Queries that returned an error.
  /// Client-side latency of accepted queries (includes thread wake-up
  /// noise on an oversubscribed host — informational).
  double accepted_p50_us = 0;
  double accepted_p99_us = 0;
  /// The store's own op.range_us histogram: service time of accepted
  /// range queries. Its p99 bucket (floor(log2(us)), the histogram's
  /// own power-of-two bucketing) is the acceptance criterion:
  /// bucket(on) <= bucket(off).
  double range_p99_us = 0;
  int p99_bucket = 0;
  uint64_t scheduled = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t deferred = 0;
  uint64_t dropped = 0;
  uint64_t build_count = 0;   ///< rebuild.build_us histogram count.
  double build_p99_us = 0;    ///< rebuild.build_us histogram p99.
};

int PowerOfTwoBucket(double us) {
  uint64_t v = static_cast<uint64_t>(us);
  int bucket = 0;
  while (v > 1) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

/// The drifting fleet stream driving both rebuild runs: routes re-draw
/// 60% of their waypoints every 4 periods, so the miner's pattern set
/// keeps going stale and the "on" store keeps rebuilding.
ReportStreamConfig RebuildStreamConfig(uint64_t seed) {
  ReportStreamConfig config;
  config.num_objects = kRebuildObjects;
  config.period = kPeriod;
  config.pattern_probability = 0.95;
  config.noise_sigma = 2.0;
  config.drift_every_periods = 6;
  config.drift_fraction = 0.5;
  config.rate_per_second = kRebuildRatePerSecond;
  config.arrival_jitter = 0.2;
  config.seed = seed;
  return config;
}

ObjectStoreOptions RebuildStoreOptions(bool rebuilds_on) {
  ObjectStoreOptions options = StoreOptions();
  options.rebuild.incremental = true;
  options.rebuild.background = true;
  options.rebuild.miner.window_periods = 8;
  options.rebuild.drift_threshold =
      rebuilds_on ? kRebuildOnThreshold : kRebuildOffThreshold;
  // Two knobs keep rebuilds below query traffic: idle_priority (default
  // on) makes a running build yield the core to any waking query or
  // ingest thread, and the start throttle bounds the worker's duty
  // cycle when the whole drifting fleet requests rebuilds at once.
  // Duty cycle is the one that matters on a 1-core host: a build churns
  // megabytes of mining state, and a back-to-back build storm evicts
  // the fleet's frozen TPTs from cache so every query walks cold —
  // that inflates the query *median*, which no scheduling priority can
  // undo. Two starts a second is still continuous refresh (the whole
  // fleet turns over in about a minute) with >90% of the window clean.
  options.rebuild.min_rebuild_interval = std::chrono::milliseconds(500);
  // Queue bound sized to the fleet: every object can have a rebuild
  // pending at once without tripping the overflow drop path.
  options.rebuild.max_pending = kRebuildObjects;
  return options;
}

/// One rebuilds-on/off run. Warm the fleet from the stream and flush
/// the bootstrap trains so both modes start from a fully-modelled
/// store, then:
///   burst phase — closed-loop ingest, pricing the write path;
///   paced phase — the stream replayed at its arrival stamps while
///     kRebuildQueryThreads paced query threads measure client-side
///     latency. Pacing leaves idle CPU, which is precisely what the
///     idle-priority rebuild worker consumes; the p99 acceptance is
///     evaluated over this phase.
/// Rebuild counter deltas cover exactly the paced window; build_count /
/// build_p99_us are the store's whole-life rebuild.build_us histogram.
RebuildPoint MeasureRebuildPoint(bool rebuilds_on, uint64_t seed) {
  RebuildPoint point;
  point.rebuilds_on = rebuilds_on;
  MovingObjectStore store(RebuildStoreOptions(rebuilds_on));
  // Both runs consume the identical stream: same seed, same drift
  // schedule, so the only difference is whether rebuilds fire.
  ReportStream stream(RebuildStreamConfig(seed));
  // One period past the training threshold: the miner bootstraps an
  // object's first model at the period boundary *after* it has
  // min_training_periods complete periods, so stopping exactly at the
  // threshold would leave the whole fleet modelless.
  const size_t warm_reports =
      static_cast<size_t>(kRebuildObjects) * (kTrainPeriods + 1) * kPeriod;
  for (size_t i = 0; i < warm_reports; ++i) {
    const StreamedReport report = stream.Next();
    const Status status = store.ReportLocation(
        static_cast<ObjectId>(report.object_id), report.location);
    if (!status.ok()) {
      std::fprintf(stderr, "rebuild warm-up failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  if (const Status status = store.FlushRebuilds(); !status.ok()) {
    std::fprintf(stderr, "rebuild bootstrap flush failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }

  // Burst phase: closed-loop ingest, nothing else running.
  {
    Stopwatch watch;
    for (int i = 0; i < kRebuildBurstOps; ++i) {
      const StreamedReport report = stream.Next();
      (void)store.ReportLocation(static_cast<ObjectId>(report.object_id),
                                 report.location);
    }
    const double seconds = watch.ElapsedSeconds();
    point.ingest_ops = kRebuildBurstOps / (seconds > 0 ? seconds : 1e-9);
  }
  // Quiesce the burst's rebuild backlog (untimed): the paced phase
  // should see rebuilds at the stream's natural drift rate, not a
  // saturated queue of stale requests from the burst. The counter
  // baseline is taken after the flush so the deltas cover exactly the
  // paced window ("off" then reads all-zero rebuild activity).
  (void)store.FlushRebuilds();
  const MetricsSnapshot before = store.metrics_snapshot();

  // Paced phase: replay at arrival stamps, race paced query threads.
  std::atomic<bool> stop{false};
  std::mutex merge_mutex;
  std::vector<double> accepted_us;
  uint64_t rejected = 0;

  std::vector<std::thread> queriers;
  queriers.reserve(kRebuildQueryThreads);
  for (int w = 0; w < kRebuildQueryThreads; ++w) {
    queriers.emplace_back([&store, &stop, &merge_mutex, &accepted_us,
                           &rejected, seed, w] {
      Random rng(seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(w + 1));
      std::vector<double> latencies;
      uint64_t local_rejected = 0;
      // Predictions must target a time after the object's last report,
      // and the ingest thread keeps advancing that frontier — so query
      // past where the stream can reach during the timed window.
      const Timestamp frontier = static_cast<Timestamp>(
          (kTrainPeriods + 1) * kPeriod +
          (kRebuildBurstOps + kRebuildPacedOps) / kRebuildObjects + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        // The serving workload: a full-extent predictive range query fans
        // out a prediction per object and merges the hits — several
        // milliseconds of work on purpose. The acceptance compares p99
        // power-of-two buckets, so the workload is sized to put p50 just
        // above a bucket's lower edge: the bucket's width then absorbs
        // scheduler-collision and hypervisor noise that would make a
        // boundary-straddling tail flip buckets run to run.
        const BoundingBox range({0.0, 0.0}, {1000.0, 1000.0});
        const Timestamp tq = frontier + static_cast<Timestamp>(
                                            rng.Uniform(5 * kPeriod));
        const auto start = std::chrono::steady_clock::now();
        const StatusOr<FleetQueryResult> result =
            store.PredictiveRangeQuery(range, tq, /*k_per_object=*/3);
        const double elapsed_us = std::chrono::duration<double, std::micro>(
                                      std::chrono::steady_clock::now() - start)
                                      .count();
        if (result.ok()) {
          latencies.push_back(elapsed_us);
        } else {
          ++local_rejected;
        }
        // Open-loop-ish think time: latency under a realistic paced
        // load, not query saturation — the idle headroom is what the
        // rebuild worker lives on.
        std::this_thread::sleep_for(
            std::chrono::microseconds(1000 + rng.Uniform(1000)));
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      accepted_us.insert(accepted_us.end(), latencies.begin(),
                         latencies.end());
      rejected += local_rejected;
    });
  }

  Stopwatch watch;
  double base_stamp = 0;
  for (int i = 0; i < kRebuildPacedOps; ++i) {
    const StreamedReport report = stream.Next();
    if (i == 0) base_stamp = report.arrival_seconds;
    const double target = report.arrival_seconds - base_stamp;
    const double now = watch.ElapsedSeconds();
    if (target > now + 100e-6) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(target - now));
    }
    (void)store.ReportLocation(static_cast<ObjectId>(report.object_id),
                               report.location);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : queriers) t.join();
  const double paced_seconds = watch.ElapsedSeconds();

  point.accepted = accepted_us.size();
  point.rejected = rejected;
  point.query_ops = static_cast<double>(point.accepted) /
                    (paced_seconds > 0 ? paced_seconds : 1e-9);
  std::sort(accepted_us.begin(), accepted_us.end());
  point.accepted_p50_us = Percentile(accepted_us, 0.50);
  point.accepted_p99_us = Percentile(accepted_us, 0.99);

  const MetricsSnapshot after = store.metrics_snapshot();
  if (const LatencyHistogram::Snapshot* range_hist =
          after.histogram("op.range_us")) {
    point.range_p99_us = range_hist->PercentileMicros(99);
    point.p99_bucket = PowerOfTwoBucket(point.range_p99_us);
  }
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  point.scheduled = delta("rebuild.scheduled");
  point.completed = delta("rebuild.completed");
  point.failed = delta("rebuild.failed");
  point.deferred = delta("rebuild.deferred");
  point.dropped = delta("rebuild.dropped");
  if (const LatencyHistogram::Snapshot* build =
          after.histogram("rebuild.build_us")) {
    point.build_count = build->count;
    point.build_p99_us = build->PercentileMicros(99);
  }
  return point;
}

std::string RebuildJson(const std::vector<RebuildPoint>& points) {
  std::string json = "  \"rebuild\": [\n";
  char buf[512];
  for (size_t i = 0; i < points.size(); ++i) {
    const RebuildPoint& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"rebuilds\": \"%s\", \"ingest_ops_per_sec\": %.0f, "
        "\"query_ops_per_sec\": %.0f,\n"
        "     \"accepted\": %" PRIu64 ", \"rejected\": %" PRIu64
        ", \"accepted_p50_us\": %.1f, \"accepted_p99_us\": %.1f,\n"
        "     \"range_p99_us\": %.1f, \"p99_bucket\": %d,\n"
        "     \"rebuild_scheduled\": %" PRIu64 ", \"rebuild_completed\": %"
        PRIu64 ", \"rebuild_failed\": %" PRIu64 ",\n"
        "     \"rebuild_deferred\": %" PRIu64 ", \"rebuild_dropped\": %" PRIu64
        ", \"build_count\": %" PRIu64 ", \"build_p99_us\": %.1f}%s\n",
        p.rebuilds_on ? "on" : "off", p.ingest_ops, p.query_ops, p.accepted,
        p.rejected, p.accepted_p50_us, p.accepted_p99_us, p.range_p99_us,
        p.p99_bucket, p.scheduled, p.completed, p.failed, p.deferred,
        p.dropped, p.build_count, p.build_p99_us,
        i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n";
  return json;
}

/// Pipeline-stage breakdown of the overloaded store: where admitted
/// queries spent their time (histogram upper-bound percentiles, so the
/// numbers are conservative per docs/OBSERVABILITY.md).
std::string StagesJson(const MetricsSnapshot& metrics) {
  static constexpr const char* kStages[] = {"admit", "plan", "fanout",
                                            "merge"};
  std::string json = "  \"stages\": {";
  char buf[160];
  for (size_t i = 0; i < std::size(kStages); ++i) {
    const std::string name = std::string("stage.") + kStages[i] + "_us";
    const LatencyHistogram::Snapshot* snap = metrics.histogram(name);
    const LatencyHistogram::Snapshot empty;
    if (snap == nullptr) snap = &empty;
    std::snprintf(buf, sizeof(buf),
                  "%s\n    \"%s\": {\"count\": %" PRIu64
                  ", \"mean_us\": %.1f, \"p50_us\": %.1f, "
                  "\"p99_us\": %.1f}",
                  i == 0 ? "" : ",", kStages[i], snap->count,
                  snap->mean_micros(), snap->PercentileMicros(50),
                  snap->PercentileMicros(99));
    json += buf;
  }
  json += "},\n";
  return json;
}

std::string OverloadJson(const OverloadReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"overload\": {\"baseline_threads\": %d, \"overload_threads\": %d,\n"
      "    \"full\": %" PRIu64 ", \"degraded\": %" PRIu64
      ", \"shed\": %" PRIu64 ", \"other\": %" PRIu64 ",\n"
      "    \"store_admitted\": %" PRIu64 ", \"store_shed\": %" PRIu64
      ", \"store_degraded_answers\": %" PRIu64 ",\n"
      "    \"baseline_p50_us\": %.1f, \"baseline_p99_us\": %.1f,\n"
      "    \"accepted_p50_us\": %.1f, \"accepted_p99_us\": %.1f},\n",
      kBaselineThreads, kOverloadThreads, report.full, report.degraded,
      report.shed, report.other, report.store_stats.admitted,
      report.store_stats.shed, report.store_stats.degraded_overload,
      report.baseline_p50_us, report.baseline_p99_us,
      report.accepted_p50_us, report.accepted_p99_us);
  return buf + StagesJson(report.metrics);
}

std::string ToJson(const std::vector<ThreadPoint>& points, uint64_t seed,
                   const std::string& overload_json,
                   const std::string& durability_json,
                   const std::string& rebuild_json) {
  std::string json = "{\n  \"bench\": \"throughput_concurrent\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"objects\": %d,\n  \"num_shards\": %d,\n"
                "  \"hardware_threads\": %u,\n  \"rng_seed\": %" PRIu64
                ",\n",
                kObjects, StoreOptions().num_shards,
                std::thread::hardware_concurrency(), seed);
  json += buf;
  json += overload_json;    // Empty unless --overload ran.
  json += durability_json;  // Empty unless --durability ran.
  json += rebuild_json;     // Empty unless --rebuild ran.
  json += "  \"series\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %d, \"oversubscribed\": %s, "
                  "\"ingest_ops_per_sec\": %.0f, "
                  "\"query_ops_per_sec\": %.0f, "
                  "\"mixed_ops_per_sec\": %.0f}%s\n",
                  points[i].threads,
                  points[i].oversubscribed ? "true" : "false",
                  points[i].ingest_ops, points[i].query_ops,
                  points[i].mixed_ops, i + 1 < points.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_throughput.json";
  uint64_t seed = kDefaultSeed;
  bool overload = false;
  bool durability = false;
  bool rebuild = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--durability") == 0) {
      durability = true;
    } else if (std::strcmp(argv[i], "--rebuild") == 0) {
      rebuild = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out PATH] [--seed N] [--overload] "
                   "[--durability] [--rebuild]\n",
                   argv[0]);
      return 1;
    }
  }

  std::string overload_json;
  if (overload) {
    const OverloadReport report = RunOverload(seed);
    overload_json = OverloadJson(report);
    std::fprintf(stderr,
                 "overload done: full=%" PRIu64 " degraded=%" PRIu64
                 " shed=%" PRIu64 " other=%" PRIu64 "\n",
                 report.full, report.degraded, report.shed, report.other);
  }

  std::string durability_json;
  if (durability) {
    std::vector<DurabilityPoint> modes;
    for (const char* mode : {"off", "none", "interval", "every_record"}) {
      modes.push_back(MeasureDurability(mode, seed));
      std::fprintf(stderr, "durability mode=%s done: %.0f ops/s\n", mode,
                   modes.back().ingest_ops);
    }
    durability_json = DurabilityJson(modes);
  }

  std::string rebuild_json;
  if (rebuild) {
    std::vector<RebuildPoint> modes;
    for (const bool on : {false, true}) {
      modes.push_back(MeasureRebuildPoint(on, seed));
      const RebuildPoint& p = modes.back();
      std::fprintf(stderr,
                   "rebuild %s done: ingest=%.0f ops/s range_p99=%.1fus "
                   "(bucket %d, client p99 %.1fus) completed=%" PRIu64 "\n",
                   on ? "on" : "off", p.ingest_ops, p.range_p99_us,
                   p.p99_bucket, p.accepted_p99_us, p.completed);
    }
    if (modes[1].p99_bucket > modes[0].p99_bucket) {
      std::fprintf(stderr,
                   "warning: rebuilds-on p99 bucket %d exceeds rebuilds-off "
                   "bucket %d\n",
                   modes[1].p99_bucket, modes[0].p99_bucket);
    }
    rebuild_json = RebuildJson(modes);
  }

  std::vector<ThreadPoint> points;
  for (int threads : {1, 2, 4, 8}) {
    points.push_back(RunAtThreadCount(threads, seed));
    std::fprintf(stderr, "threads=%d done\n", threads);
  }

  const std::string json =
      ToJson(points, seed, overload_json, durability_json, rebuild_json);
  std::fputs(json.c_str(), stdout);
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}
