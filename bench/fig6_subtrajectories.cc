// Figure 6 — Effect of Sub-trajectories (paper §VII-A).
//
// Sweeps the amount of accumulated history (10..100 sub-trajectories)
// used for pattern discovery at a fixed prediction length of 50, and
// reports HPM vs RMF average error. Expected shape: HPM error starts
// near RMF (few patterns) and drops steeply once enough history has
// accumulated; it never exceeds RMF.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 6: Effect of Sub-trajectories",
              "average error (distance) vs number of sub-trajectories, "
              "prediction length = 50, HPM vs RMF, 4 datasets");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 50;
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table({"sub_trajectories", "HPM_error", "RMF_error",
                        "patterns", "HPM_pattern_answers"});
    for (int subs = 10; subs <= 100; subs += 10) {
      ExperimentConfig sweep = config;
      sweep.train_subs = subs;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      const EvalResult rmf = RunRmf(cases);
      table.AddRow({std::to_string(subs), Fmt(hpm.mean_error),
                    Fmt(rmf.mean_error),
                    std::to_string(predictor->summary().num_patterns),
                    std::to_string(hpm.pattern_answers)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
