// Ablation — TPT node capacity.
//
// The paper fixes the signature-tree node layout; an open-source release
// should document the capacity/latency trade-off: small nodes mean a
// taller tree with finer-grained union keys (better pruning, more
// pointer hops); large nodes mean shallow trees and coarser keys. This
// bench sweeps max_node_entries over a fixed synthetic pattern set.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "tpt/tpt_tree.h"

namespace {

using namespace hpm;

IndexedPattern RandomPattern(Random* rng, size_t regions, size_t offsets,
                             int id) {
  IndexedPattern p;
  p.key = PatternKey(regions, offsets);
  p.key.mutable_premise().Set(rng->Uniform(regions));
  if (rng->Bernoulli(0.5)) p.key.mutable_premise().Set(rng->Uniform(regions));
  p.key.mutable_consequence().Set(rng->Uniform(offsets));
  p.pattern_id = id;
  return p;
}

}  // namespace

int main() {
  using namespace hpm::bench;

  PrintHeader("Ablation: TPT node capacity",
              "build time, memory, height and search cost vs "
              "max_node_entries (50k synthetic patterns, 400 regions)");

  constexpr int kPatterns = 50000;
  constexpr size_t kRegions = 400;
  constexpr size_t kOffsets = 60;
  constexpr int kQueries = 50;

  // One fixed pattern set and query set across all capacities.
  Random rng(4242);
  std::vector<IndexedPattern> patterns;
  for (int i = 0; i < kPatterns; ++i) {
    patterns.push_back(RandomPattern(&rng, kRegions, kOffsets, i));
  }
  std::vector<PatternKey> queries;
  for (int i = 0; i < kQueries; ++i) {
    PatternKey q(kRegions, kOffsets);
    for (int b = 0; b < 5; ++b) q.mutable_premise().Set(rng.Uniform(kRegions));
    q.mutable_consequence().Set(rng.Uniform(kOffsets));
    queries.push_back(std::move(q));
  }

  TablePrinter table({"max_entries", "build_ms", "height", "memory_MB",
                      "search_us", "entries_tested"});
  size_t reference_hits = 0;
  for (const int max_entries : {8, 16, 32, 64, 128, 256}) {
    TptTree::Options options;
    options.max_node_entries = max_entries;
    options.min_node_entries = std::max(2, max_entries * 2 / 5);

    Stopwatch build;
    auto tree = TptTree::BulkLoad(patterns, options);
    HPM_CHECK(tree.ok());
    const double build_ms = build.ElapsedMillis();
    HPM_CHECK(tree->CheckInvariants().ok());

    TptSearchStats stats;
    size_t hits = 0;
    Stopwatch search;
    for (const PatternKey& q : queries) {
      hits += tree->Search(q, SearchMode::kPremiseAndConsequence, &stats)
                  .size();
    }
    const double search_us =
        search.ElapsedMillis() * 1000.0 / kQueries;
    if (reference_hits == 0) {
      reference_hits = hits;
    } else {
      HPM_CHECK(hits == reference_hits);  // Capacity must not change results.
    }

    table.AddRow({std::to_string(max_entries), Fmt(build_ms, 1),
                  std::to_string(tree->Height()),
                  Fmt(static_cast<double>(tree->MemoryBytes()) / 1048576.0,
                      2),
                  Fmt(search_us, 1),
                  std::to_string(stats.entries_tested / kQueries)});
  }
  table.Print(stdout);
  return 0;
}
