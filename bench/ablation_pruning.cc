// Ablation — Pruning effect (paper §IV).
//
// The paper reports that its two pruning rules (time-monotonic premises,
// single-region consequences / Theorem 1) removed "58% of trajectory
// patterns". This bench re-mines each dataset with pruning accounting
// enabled and reports how many rules classic Apriori would have produced
// versus how many survive, plus the mining wall-clock saved by pruning.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "mining/transaction.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Ablation: Pruning effect (Section IV)",
              "rules produced with vs without the two pruning rules; "
              "paper reports a 58% reduction");

  TablePrinter table({"dataset", "valid_patterns", "unpruned_rules",
                      "reduction_pct", "pruned_mine_ms",
                      "unpruned_mine_ms"});
  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    const Dataset& dataset = GetDataset(kind, config);

    auto discovery = MineFrequentRegions(
        dataset.trajectory, ToPredictorOptions(config).regions);
    HPM_CHECK(discovery.ok());
    const auto transactions = BuildTransactions(*discovery);

    AprioriParams pruned_params = ToPredictorOptions(config).mining;
    AprioriParams unpruned_params = pruned_params;
    unpruned_params.enable_pruning = false;

    Stopwatch pruned_timer;
    auto pruned = MineTrajectoryPatterns(transactions,
                                         discovery->region_set,
                                         pruned_params);
    const double pruned_ms = pruned_timer.ElapsedMillis();
    HPM_CHECK(pruned.ok());

    Stopwatch unpruned_timer;
    auto unpruned = MineTrajectoryPatterns(transactions,
                                           discovery->region_set,
                                           unpruned_params);
    const double unpruned_ms = unpruned_timer.ElapsedMillis();
    HPM_CHECK(unpruned.ok());

    const size_t valid = unpruned->stats.patterns_emitted;
    const size_t total = valid +
                         unpruned->stats.rules_pruned_time_order +
                         unpruned->stats.rules_pruned_multi_consequence;
    const double reduction =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(total - valid) /
                         static_cast<double>(total);
    table.AddRow({DatasetName(kind), std::to_string(valid),
                  std::to_string(total), Fmt(reduction, 1),
                  Fmt(pruned_ms, 1), Fmt(unpruned_ms, 1)});
  }
  table.Print(stdout);
  return 0;
}
