// Shared harness for the figure benches: the paper's §VII experimental
// defaults, dataset caching, and one-call HPM / RMF evaluation.

#ifndef HPM_BENCH_BENCH_UTIL_H_
#define HPM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "eval/workload.h"

namespace hpm::bench {

/// One experiment's knobs, defaulted to the paper's §VII-A settings:
/// k=1, 60 training sub-trajectories, d=60, Eps=30, MinPts=4,
/// min_confidence=0.3, T=300, 200 generated sub-trajectories, 50 queries.
struct ExperimentConfig {
  Timestamp period = 300;
  int total_subs = 200;
  int train_subs = 60;
  double eps = 30.0;
  int min_pts = 4;
  double min_confidence = 0.3;
  int min_support = 3;
  int max_pattern_length = 3;
  Timestamp premise_window = 3;
  Timestamp distant_threshold = 60;
  Timestamp time_relaxation = 2;
  double region_match_slack = 25.0;
  WeightFunction weight_function = WeightFunction::kLinear;
  /// RMF fitting window (both the HPM fallback and the RMF baseline).
  int rmf_window = 30;
  /// RMF maximum retrospect (model-selection search space).
  int rmf_retrospect = 3;
  /// Recent movements used for the query premise (0 = all).
  int premise_horizon = 10;
  int num_queries = 50;
  int recent_length = 10;
  Timestamp prediction_length = 50;
  uint64_t workload_seed = 1234;
};

/// Expands the experiment knobs into predictor options.
HybridPredictorOptions ToPredictorOptions(const ExperimentConfig& config);

/// Expands the experiment knobs into a workload configuration.
WorkloadConfig ToWorkloadConfig(const ExperimentConfig& config);

/// Generates (and caches across calls within one process) the dataset
/// for a kind at the configured period / sub-trajectory count.
const Dataset& GetDataset(DatasetKind kind, const ExperimentConfig& config);

/// Trains an HPM predictor on the dataset under `config`. Aborts on
/// configuration errors (benches are not recoverable).
std::unique_ptr<HybridPredictor> TrainPredictor(
    const Dataset& dataset, const ExperimentConfig& config);

/// Builds the query workload for the dataset under `config`.
std::vector<QueryCase> MakeWorkload(const Dataset& dataset,
                                    const ExperimentConfig& config);

/// Runs HPM over the cases.
EvalResult RunHpm(const HybridPredictor& predictor,
                  const std::vector<QueryCase>& cases);

/// Runs the RMF baseline over the cases (window from `config`).
EvalResult RunRmf(const std::vector<QueryCase>& cases);
EvalResult RunRmf(const std::vector<QueryCase>& cases,
                  const ExperimentConfig& config);

/// Formats a double with `precision` decimals (forwarder for benches).
std::string Fmt(double v, int precision = 1);

/// Prints the standard bench banner (figure id + paper reference).
void PrintHeader(const std::string& title, const std::string& description);

}  // namespace hpm::bench

#endif  // HPM_BENCH_BENCH_UTIL_H_
