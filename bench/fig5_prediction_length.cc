// Figure 5 — Effect of Prediction Length (paper §VII-A).
//
// For each dataset, sweeps the prediction length t_q - t_c from 20 to
// 200 and reports the average error (distance) of HPM and RMF over 50
// held-out queries. Expected shape: HPM stays low and flat; RMF error
// rises steeply with prediction length, most prominently on Car (sudden
// turns); HPM is weakest on Airplane (weak patterns) but never worse
// than RMF.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 5: Effect of Prediction Length",
              "average error (distance) vs prediction length (time), "
              "HPM vs RMF, 4 datasets");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    const Dataset& dataset = GetDataset(kind, config);
    const auto predictor = TrainPredictor(dataset, config);

    TablePrinter table(
        {"prediction_length", "HPM_error", "RMF_error",
         "HPM_pattern_answers"});
    for (Timestamp length = 20; length <= 200; length += 20) {
      ExperimentConfig sweep = config;
      sweep.prediction_length = length;
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      const EvalResult rmf = RunRmf(cases);
      table.AddRow({std::to_string(length), Fmt(hpm.mean_error),
                    Fmt(rmf.mean_error),
                    std::to_string(hpm.pattern_answers)});
    }
    std::printf("\n[%s]  (%zu regions, %zu patterns)\n", DatasetName(kind),
                predictor->summary().num_frequent_regions,
                predictor->summary().num_patterns);
    table.Print(stdout);
  }
  return 0;
}
