// Ablation — Related-work baselines (paper §II).
//
// Compares HPM against the three predictor families the paper positions
// itself against: the linear motion model (§II-A), RMF (§II-A, the
// strongest motion function), and a grid-cell Markov model (§II-B) at
// three cell sizes. Expected shape: HPM wins overall; Markov's accuracy
// depends strongly on cell size (the §II-B criticism) and decays at
// distant times; linear is worst on turning movement.

#include <cstdio>

#include "baselines/markov.h"
#include "bench_util.h"
#include "common/table_printer.h"

namespace {

using namespace hpm;

double MarkovError(const MarkovPredictor& markov,
                   const std::vector<QueryCase>& cases) {
  double total = 0.0;
  for (const QueryCase& qc : cases) {
    auto p = markov.Predict(qc.query.recent_movements, qc.query.query_time);
    HPM_CHECK(p.ok());
    total += Distance(*p, qc.actual);
  }
  return total / static_cast<double>(cases.size());
}

}  // namespace

int main() {
  using namespace hpm::bench;

  PrintHeader("Ablation: Related-work baselines (Section II)",
              "average error of HPM vs RMF vs Linear vs grid-cell Markov "
              "(3 cell sizes), Car dataset");

  ExperimentConfig config;
  const Dataset& dataset = GetDataset(DatasetKind::kCar, config);
  const auto predictor = TrainPredictor(dataset, config);

  // Markov models are trained on the same training prefix as HPM.
  const Timestamp train_len =
      static_cast<Timestamp>(config.train_subs) * config.period;
  const Trajectory train_prefix =
      std::move(dataset.trajectory.Slice(0, train_len).value());
  std::vector<std::pair<std::string, MarkovPredictor>> markovs;
  for (const double cell : {250.0, 500.0, 1000.0}) {
    MarkovOptions options;
    options.cell_size = cell;
    options.extent = 10000.0;
    auto markov = MarkovPredictor::Train(train_prefix, options);
    HPM_CHECK(markov.ok());
    markovs.emplace_back("Markov_" + Fmt(cell, 0), std::move(*markov));
  }

  TablePrinter table({"prediction_length", "HPM", "RMF", "Linear",
                      "Markov_250", "Markov_500", "Markov_1000"});
  for (Timestamp length = 20; length <= 200; length += 30) {
    ExperimentConfig sweep = config;
    sweep.prediction_length = length;
    const auto cases = MakeWorkload(dataset, sweep);
    const EvalResult hpm = RunHpm(*predictor, cases);
    const EvalResult rmf = RunRmf(cases);
    auto linear = EvaluateLinear(cases);
    HPM_CHECK(linear.ok());

    std::vector<std::string> row = {std::to_string(length),
                                    Fmt(hpm.mean_error),
                                    Fmt(rmf.mean_error),
                                    Fmt(linear->mean_error)};
    for (const auto& [name, markov] : markovs) {
      row.push_back(Fmt(MarkovError(markov, cases)));
    }
    table.AddRow(row);
  }
  table.Print(stdout);
  return 0;
}
