// Ablation — Premise weight functions (paper §VI-A).
//
// The paper evaluates four position-weight families for the premise
// similarity measure and reports that "the linear and the quadratic
// functions showed better prediction results". This bench compares all
// four on every dataset at a near-time prediction length where premise
// similarity dominates the ranking.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Ablation: Premise weight functions (Section VI-A)",
              "average FQP error per weight function; paper reports "
              "linear and quadratic as the best performers");

  const WeightFunction functions[] = {
      WeightFunction::kLinear, WeightFunction::kQuadratic,
      WeightFunction::kExponential, WeightFunction::kFactorial};

  TablePrinter table({"dataset", "linear", "quadratic", "exponential",
                      "factorial"});
  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 30;  // Non-distant: FQP path.
    config.num_queries = 50;
    // Longer premises (3 regions) are where the weight families actually
    // diverge; for 2-region premises, linear, exponential and factorial
    // all assign the same (1/3, 2/3) split.
    config.max_pattern_length = 4;
    const Dataset& dataset = GetDataset(kind, config);

    // Weights only affect query-time ranking: train once per dataset.
    const auto predictor = TrainPredictor(dataset, config);
    const auto fqp_cases = MakeWorkload(dataset, config);
    ExperimentConfig distant = config;
    distant.prediction_length = 100;  // Distant: BQP path (Equation 5).
    const auto bqp_cases = MakeWorkload(dataset, distant);

    std::vector<std::string> row = {DatasetName(kind)};
    for (const WeightFunction fn : functions) {
      predictor->set_weight_function(fn);
      const double fqp = RunHpm(*predictor, fqp_cases).mean_error;
      const double bqp = RunHpm(*predictor, bqp_cases).mean_error;
      row.push_back(Fmt(fqp) + " / " + Fmt(bqp));
    }
    table.AddRow(row);
  }
  table.Print(stdout);
  std::printf(
      "\ncells are FQP(len 30) / BQP(len 100) average error. Differences\n"
      "between families are small because fully matching premises (Sr=1)\n"
      "dominate the ranking whenever patterns are strong; the families\n"
      "only reorder partially matching candidates.\n");
  return 0;
}
