// Figure 7 — Effect of Eps (paper §VII-B).
//
// Sweeps DBSCAN's Eps from 22 to 38 and reports (a) the number of
// trajectory patterns discovered and (b) the average prediction error.
// Expected shape: pattern counts rise sharply with Eps; once a dataset
// has "enough" patterns extra ones barely move accuracy (Bike ~flat),
// while pattern-starved datasets (Airplane) keep improving.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 7: Effect of Eps",
              "(a) number of patterns and (b) average error vs Eps, "
              "4 datasets, prediction length = 50");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 50;
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table({"eps", "patterns", "regions", "HPM_error"});
    for (double eps = 22.0; eps <= 38.0; eps += 2.0) {
      ExperimentConfig sweep = config;
      sweep.eps = eps;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      table.AddRow({Fmt(eps, 0),
                    std::to_string(predictor->summary().num_patterns),
                    std::to_string(predictor->summary().num_frequent_regions),
                    Fmt(hpm.mean_error)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
