// Ablation — Time relaxation length (paper §VI-C).
//
// BQP admits patterns whose consequence offset falls within
// [tq - t_eps, tq + t_eps]. The paper reports "the best prediction
// accuracy regarding to the time relaxation length was observed when
// 1 <= t_eps <= 3". This bench sweeps t_eps for distant-time queries.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Ablation: BQP time relaxation length (Section VI-C)",
              "average BQP error vs t_eps; paper reports the optimum at "
              "1 <= t_eps <= 3");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 100;  // Distant: BQP path.
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table({"t_eps", "HPM_error", "fallbacks"});
    for (Timestamp t_eps = 1; t_eps <= 8; ++t_eps) {
      ExperimentConfig sweep = config;
      sweep.time_relaxation = t_eps;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      table.AddRow({std::to_string(t_eps), Fmt(hpm.mean_error),
                    std::to_string(hpm.motion_answers)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
