// Ablation — Predictive range queries: TPR-tree (§II-A family) vs the
// pattern-based MovingObjectStore.
//
// Two experiments:
//   (a) Cost: TPR-tree vs linear scan over growing fleets of linear
//       movers — the access-method story (the TPR-tree prunes).
//   (b) Accuracy: on a fleet of *pattern-following* commuters, compare
//       the answer quality of TPR-style linear extrapolation against
//       the HPM store at growing horizons. The TPR family is exact for
//       linear motion and blind to turns — the paper's §I/II argument,
//       restated for range queries. Reported as precision/recall
//       against the ground-truth membership at tq.

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "datagen/seed_generators.h"
#include "motion/linear_motion.h"
#include "server/object_store.h"
#include "tpr/tpr_tree.h"

namespace {

using namespace hpm;
using hpm::bench::Fmt;

// ---------------------------------------------------------------- (a) --
void CostExperiment() {
  std::printf("\n(a) query cost: TPR-tree vs linear scan, linear movers\n");
  TablePrinter table({"fleet_size", "TPR_us", "scan_us",
                      "TPR_entries_tested"});
  Random rng(5);
  for (const int fleet : {1000, 10000, 100000}) {
    TprTree tree(0);
    std::vector<MovingPoint> all;
    for (int i = 0; i < fleet; ++i) {
      MovingPoint p;
      p.id = i;
      p.position = {rng.UniformDouble(0, 10000),
                    rng.UniformDouble(0, 10000)};
      p.velocity = {rng.Gaussian(0, 10), rng.Gaussian(0, 10)};
      all.push_back(p);
      HPM_CHECK(tree.Insert(p).ok());
    }
    const int kQueries = 50;
    std::vector<BoundingBox> ranges;
    for (int q = 0; q < kQueries; ++q) {
      const Point corner{rng.UniformDouble(0, 9000),
                         rng.UniformDouble(0, 9000)};
      ranges.emplace_back(corner, corner + Point{800, 800});
    }

    TprSearchStats stats;
    size_t tpr_hits = 0;
    Stopwatch tpr_timer;
    for (const BoundingBox& range : ranges) {
      tpr_hits += tree.RangeQuery(range, 30, &stats).value().size();
    }
    const double tpr_us = tpr_timer.ElapsedMillis() * 1000.0 / kQueries;

    size_t scan_hits = 0;
    Stopwatch scan_timer;
    for (const BoundingBox& range : ranges) {
      for (const MovingPoint& p : all) {
        if (range.Contains(p.PositionAt(0, 30))) ++scan_hits;
      }
    }
    const double scan_us = scan_timer.ElapsedMillis() * 1000.0 / kQueries;
    HPM_CHECK(tpr_hits == scan_hits);

    table.AddRow({std::to_string(fleet), Fmt(tpr_us, 1), Fmt(scan_us, 1),
                  std::to_string(stats.entries_tested / kQueries)});
  }
  table.Print(stdout);
}

// ---------------------------------------------------------------- (b) --
struct FleetData {
  MovingObjectStore store;
  std::vector<Trajectory> histories;  // Per object, incl. the live day.
};

void AccuracyExperiment() {
  std::printf(
      "\n(b) answer quality on pattern-following commuters "
      "(precision/recall vs ground truth)\n");

  constexpr Timestamp kPeriod = 120;
  constexpr int kDays = 40;
  constexpr int kFleet = 12;
  constexpr Timestamp kNowOffset = 50;

  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 30.0;
  options.predictor.regions.dbscan.min_pts = 4;
  options.predictor.mining.min_confidence = 0.3;
  options.predictor.mining.min_support = 3;
  options.predictor.distant_threshold = 30;
  options.predictor.region_match_slack = 25.0;
  options.min_training_periods = kDays;
  options.recent_window = 10;
  FleetData fleet{MovingObjectStore(options), {}};

  for (int v = 0; v < kFleet; ++v) {
    SeedConfig seed;
    seed.period = kPeriod;
    seed.seed = 600 + static_cast<uint64_t>(v);
    PeriodicGeneratorConfig gen;
    gen.period = kPeriod;
    gen.num_sub_trajectories = kDays + 1;  // Last day is "today".
    gen.pattern_probability = 0.9;
    gen.noise_sigma = 10.0;
    gen.seed = 8800 + static_cast<uint64_t>(v);
    auto history =
        GeneratePeriodicTrajectory({{MakeCarSeed(seed), 1.0}}, gen);
    HPM_CHECK(history.ok());
    // Feed everything up to "now" (mid-morning of the last day).
    const Timestamp now =
        static_cast<Timestamp>(kDays) * kPeriod + kNowOffset;
    auto fed = history->Slice(0, now + 1);
    HPM_CHECK(fed.ok());
    HPM_CHECK(fleet.store.ReportTrajectory(v, *fed).ok());
    fleet.histories.push_back(std::move(*history));
  }
  const Timestamp now =
      static_cast<Timestamp>(kDays) * kPeriod + kNowOffset;

  TablePrinter table({"horizon", "HPM_precision", "HPM_recall",
                      "TPR_precision", "TPR_recall", "truth_avg"});
  Random rng(77);
  for (const Timestamp horizon : {10, 30, 60}) {
    const Timestamp tq = now + horizon;

    // TPR snapshot: velocity from each object's recent movements.
    TprTree tpr(now);
    for (int v = 0; v < kFleet; ++v) {
      LinearMotionFunction linear;
      HPM_CHECK(
          linear.Fit(fleet.histories[static_cast<size_t>(v)]
                         .RecentMovements(now, 10))
              .ok());
      MovingPoint p;
      p.id = v;
      p.position = fleet.histories[static_cast<size_t>(v)].At(now);
      p.velocity = linear.velocity();
      HPM_CHECK(tpr.Insert(p).ok());
    }

    int hpm_tp = 0, hpm_fp = 0, tpr_tp = 0, tpr_fp = 0;
    int truth_total = 0, truth_missed_hpm = 0, truth_missed_tpr = 0;
    const int kQueries = 40;
    for (int q = 0; q < kQueries; ++q) {
      // Centre ranges on a random object's true future position so that
      // queries are non-trivial.
      const int anchor = static_cast<int>(rng.Uniform(kFleet));
      const Point target =
          fleet.histories[static_cast<size_t>(anchor)].At(tq);
      const BoundingBox range(target - Point{600, 600},
                              target + Point{600, 600});

      std::set<int64_t> truth;
      for (int v = 0; v < kFleet; ++v) {
        if (range.Contains(
                fleet.histories[static_cast<size_t>(v)].At(tq))) {
          truth.insert(v);
        }
      }
      truth_total += static_cast<int>(truth.size());

      auto hpm_hits = fleet.store.PredictiveRangeQuery(range, tq, 3);
      HPM_CHECK(hpm_hits.ok());
      std::set<int64_t> hpm_ids;
      for (const RangeHit& hit : hpm_hits->hits) hpm_ids.insert(hit.id);
      for (int64_t id : hpm_ids) {
        truth.count(id) ? ++hpm_tp : ++hpm_fp;
      }
      for (int64_t id : truth) {
        if (!hpm_ids.count(id)) ++truth_missed_hpm;
      }

      auto tpr_hits = tpr.RangeQuery(range, tq);
      HPM_CHECK(tpr_hits.ok());
      std::set<int64_t> tpr_ids;
      for (const auto* hit : *tpr_hits) tpr_ids.insert(hit->id);
      for (int64_t id : tpr_ids) {
        truth.count(id) ? ++tpr_tp : ++tpr_fp;
      }
      for (int64_t id : truth) {
        if (!tpr_ids.count(id)) ++truth_missed_tpr;
      }
    }
    auto ratio = [](int num, int den) {
      return den == 0 ? 1.0
                      : static_cast<double>(num) / static_cast<double>(den);
    };
    table.AddRow(
        {std::to_string(horizon),
         Fmt(100.0 * ratio(hpm_tp, hpm_tp + hpm_fp), 1),
         Fmt(100.0 * ratio(hpm_tp, hpm_tp + truth_missed_hpm), 1),
         Fmt(100.0 * ratio(tpr_tp, tpr_tp + tpr_fp), 1),
         Fmt(100.0 * ratio(tpr_tp, tpr_tp + truth_missed_tpr), 1),
         Fmt(static_cast<double>(truth_total) / kQueries, 2)});
  }
  table.Print(stdout);
  std::printf(
      "\nThe TPR-style answer is exact at tiny horizons and collapses as\n"
      "street turns accumulate; the pattern-based store keeps finding the\n"
      "objects where their routines put them.\n");
}

}  // namespace

int main() {
  using namespace hpm::bench;
  PrintHeader("Ablation: predictive range queries (Section II-A family)",
              "TPR-tree vs pattern-based MovingObjectStore");
  CostExperiment();
  AccuracyExperiment();
  return 0;
}
