// Wire-protocol round-trip latency and replication shipping throughput
// over loopback.
//
// Measures p50/p99 microseconds per RPC for ping / report / predict
// against an in-process HpmServer (real TCP sockets, real frames — only
// the network distance is fake), then how fast a Replicator drains a
// primary's journal backlog (records/sec from bootstrap to converged).
// Emits JSON to stdout and a file (default BENCH_net.json, --out PATH)
// so successive runs leave a perf trajectory in the repo.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "server/object_store.h"
#include "server/replication.h"

namespace {

using hpm::HpmClient;
using hpm::HpmClientOptions;
using hpm::HpmServer;
using hpm::HpmServerOptions;
using hpm::MovingObjectStore;
using hpm::ObjectStoreOptions;
using hpm::Point;

constexpr int kIterations = 2000;
constexpr int kReplRecords = 5000;

struct Series {
  std::string name;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double ops_per_sec = 0.0;
};

template <typename Op>
Series Measure(const std::string& name, int iterations, Op op) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iterations));
  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    const auto start = std::chrono::steady_clock::now();
    if (!op(i)) {
      std::fprintf(stderr, "%s: rpc failed at iteration %d\n", name.c_str(),
                   i);
      std::exit(1);
    }
    samples.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  const double total = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  std::sort(samples.begin(), samples.end());
  Series series;
  series.name = name;
  series.p50_us = samples[samples.size() / 2];
  series.p99_us = samples[samples.size() * 99 / 100];
  series.ops_per_sec = static_cast<double>(iterations) / total;
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    }
  }

  const std::string scratch =
      std::filesystem::temp_directory_path().string() + "/hpm_net_bench";
  std::filesystem::remove_all(scratch);
  const std::string primary_dir = scratch + "/primary";
  const std::string replica_dir = scratch + "/replica";
  std::filesystem::create_directories(primary_dir + "/wal");

  ObjectStoreOptions store_options;
  store_options.durability.wal_dir = primary_dir + "/wal";
  store_options.durability.sync_policy = hpm::WalSyncPolicy::kNone;
  MovingObjectStore store(store_options);

  HpmServerOptions server_options;
  server_options.data_dir = primary_dir;
  server_options.wal_dir = primary_dir + "/wal";
  auto server = HpmServer::Start(&store, server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  HpmClientOptions client_options;
  client_options.port = (*server)->port();
  HpmClient client(client_options);

  std::vector<Series> series;
  series.push_back(Measure("ping", kIterations,
                           [&](int) { return client.Ping().ok(); }));
  series.push_back(Measure("report", kIterations, [&](int i) {
    hpm::ReportRequest report;
    report.id = 1 + i % 8;
    report.x = 0.1 * i;
    report.y = 0.2 * i;
    return client.Report(report).ok();
  }));
  series.push_back(Measure("predict", kIterations, [&](int i) {
    hpm::PredictRequest predict;
    predict.id = 1 + i % 8;
    predict.tq = static_cast<hpm::Timestamp>(
        store.HistoryLength(predict.id) + 2);
    return client.Predict(predict).ok();
  }));

  // Replication shipping: a journal backlog of kReplRecords records,
  // drained by one bootstrap + sync cycle.
  for (int i = 0; i < kReplRecords; ++i) {
    const hpm::ObjectId id = 100 + i % 16;
    (void)store.ReportLocation(id, Point(0.5 * i, 0.25 * i));
  }
  const auto repl_begin = std::chrono::steady_clock::now();
  auto gen = hpm::BootstrapReplica(client, replica_dir);
  if (!gen.ok()) {
    std::fprintf(stderr, "bootstrap: %s\n",
                 gen.status().ToString().c_str());
    return 1;
  }
  MovingObjectStore replica{ObjectStoreOptions{}};
  hpm::ReplicaHealth health;
  hpm::ReplicatorOptions repl_options;
  repl_options.data_dir = replica_dir;
  hpm::Replicator replicator(&client, &replica, &health, *gen, repl_options);
  if (hpm::Status synced = replicator.SyncOnce(); !synced.ok()) {
    std::fprintf(stderr, "sync: %s\n", synced.ToString().c_str());
    return 1;
  }
  const double repl_secs = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - repl_begin)
                               .count();
  Series repl;
  repl.name = "replication_drain";
  repl.ops_per_sec = static_cast<double>(replicator.applied_records()) /
                     repl_secs;
  series.push_back(repl);

  std::string json = "{\n  \"series\": [\n";
  for (size_t i = 0; i < series.size(); ++i) {
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"name\": \"%s\", \"p50_us\": %.1f, \"p99_us\": "
                  "%.1f, \"ops_per_sec\": %.0f}%s\n",
                  series[i].name.c_str(), series[i].p50_us,
                  series[i].p99_us, series[i].ops_per_sec,
                  i + 1 < series.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  std::filesystem::remove_all(scratch);
  return 0;
}
