// Figure 10 — Query Response Time (paper §VII-C).
//
// Sweeps the training history (10..100 sub-trajectories) and reports the
// mean per-query response time of HPM and RMF (30 queries averaged, as
// in the paper). Expected shape: HPM's cost falls as more patterns are
// discovered (fewer RMF fallback calls, each of which pays the O(n^3)
// SVD fitting); RMF's cost is flat and higher.

#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Figure 10: Query Response Time",
              "mean response time (ms) vs number of sub-trajectories, "
              "HPM vs RMF, 4 datasets (30 queries averaged)");

  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.num_queries = 30;
    config.prediction_length = 50;
    // RMF trains per query from the recent history; give it the paper's
    // realistic window and retrospect search (its cost is n^3 in the
    // timestamps used), while the HPM premise still comes from the last
    // few movements.
    config.recent_length = 60;
    config.rmf_window = 60;
    config.rmf_retrospect = 5;
    const Dataset& dataset = GetDataset(kind, config);

    TablePrinter table({"sub_trajectories", "HPM_ms", "RMF_ms",
                        "HPM_fallback_calls"});
    for (int subs = 10; subs <= 100; subs += 10) {
      ExperimentConfig sweep = config;
      sweep.train_subs = subs;
      const auto predictor = TrainPredictor(dataset, sweep);
      const auto cases = MakeWorkload(dataset, sweep);
      const EvalResult hpm = RunHpm(*predictor, cases);
      const EvalResult rmf = RunRmf(cases, sweep);
      table.AddRow({std::to_string(subs), Fmt(hpm.mean_response_ms, 4),
                    Fmt(rmf.mean_response_ms, 4),
                    std::to_string(
                        predictor->counters().motion_fallbacks)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
