// Ablation — Top-k answers (paper §VI: FQP/BQP return the centres of
// the top-k patterns' consequences; the experiments use k = 1).
//
// This bench measures what k buys: the hit rate (fraction of queries
// whose true location is within `hit_radius` of at least one of the k
// returned locations) and the best-of-k error. Expected shape: with
// multiple plausible routes, k = 2..3 markedly improves the hit rate
// over k = 1; beyond the number of alternatives it saturates.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/table_printer.h"

int main() {
  using namespace hpm;
  using namespace hpm::bench;

  PrintHeader("Ablation: top-k predictions (Section VI)",
              "best-of-k error and hit rate vs k, prediction length 80");

  constexpr double kHitRadius = 500.0;
  for (const DatasetKind kind : AllDatasetKinds()) {
    ExperimentConfig config;
    config.prediction_length = 80;
    const Dataset& dataset = GetDataset(kind, config);
    const auto predictor = TrainPredictor(dataset, config);
    const auto cases = MakeWorkload(dataset, config);

    TablePrinter table({"k", "best_of_k_error", "hit_rate_pct"});
    for (const int k : {1, 2, 3, 5, 10}) {
      double total_best = 0.0;
      int hits = 0;
      for (const QueryCase& qc : cases) {
        PredictiveQuery query = qc.query;
        query.k = k;
        auto predictions = predictor->Predict(query);
        HPM_CHECK(predictions.ok());
        double best = 1e18;
        for (const Prediction& p : *predictions) {
          best = std::min(best, Distance(p.location, qc.actual));
        }
        total_best += best;
        if (best <= kHitRadius) ++hits;
      }
      const double n = static_cast<double>(cases.size());
      table.AddRow({std::to_string(k), Fmt(total_best / n),
                    Fmt(100.0 * hits / n, 1)});
    }
    std::printf("\n[%s]\n", DatasetName(kind));
    table.Print(stdout);
  }
  return 0;
}
