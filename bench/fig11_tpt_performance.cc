// Figure 11 — Performance of TPT (paper §VII-C).
//
// (a) Storage consumption (MB) of the TPT as the number of indexed
//     patterns grows from 1k to 100k, for universes of 80 / 400 / 800
//     frequent regions (pattern-key length drives per-entry cost).
// (b) Search cost: response time of TPT vs a brute-force scan over the
//     same pattern sets (800 regions). Expected shape: TPT stays nearly
//     constant while brute force grows linearly with the pattern count.
//
// The pattern sets are synthetic (random keys), as the figure measures
// index mechanics rather than mining output.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "tpt/brute_force_store.h"
#include "tpt/tpt_tree.h"

namespace {

using namespace hpm;

constexpr size_t kConsequenceOffsets = 60;

IndexedPattern RandomPattern(Random* rng, size_t num_regions, int id) {
  IndexedPattern p;
  p.key = PatternKey(num_regions, kConsequenceOffsets);
  // Mined patterns have 1-2 premise regions and one consequence offset.
  p.key.mutable_premise().Set(rng->Uniform(num_regions));
  if (rng->Bernoulli(0.5)) {
    p.key.mutable_premise().Set(rng->Uniform(num_regions));
  }
  p.key.mutable_consequence().Set(rng->Uniform(kConsequenceOffsets));
  p.confidence = rng->NextDouble();
  p.consequence_region = static_cast<int>(rng->Uniform(num_regions));
  p.pattern_id = id;
  return p;
}

PatternKey RandomQuery(Random* rng, size_t num_regions) {
  PatternKey q(num_regions, kConsequenceOffsets);
  for (int i = 0; i < 5; ++i) {
    q.mutable_premise().Set(rng->Uniform(num_regions));
  }
  q.mutable_consequence().Set(rng->Uniform(kConsequenceOffsets));
  return q;
}

}  // namespace

int main() {
  using namespace hpm::bench;

  PrintHeader("Figure 11: Performance of TPT",
              "(a) storage (MB) vs patterns for 80/400/800 frequent "
              "regions; (b) search time (ms), TPT vs brute-force");

  const std::vector<int> pattern_counts = {1000, 5000, 10000, 50000,
                                           100000};

  std::printf("\n(a) Storage Consumption\n");
  TablePrinter storage({"patterns", "MB_80_regions", "MB_400_regions",
                        "MB_800_regions"});
  for (const int count : pattern_counts) {
    std::vector<std::string> row = {std::to_string(count)};
    for (const size_t regions : {size_t{80}, size_t{400}, size_t{800}}) {
      Random rng(regions * 7 + static_cast<uint64_t>(count));
      TptTree tree;
      for (int i = 0; i < count; ++i) {
        HPM_CHECK(tree.Insert(RandomPattern(&rng, regions, i)).ok());
      }
      row.push_back(
          Fmt(static_cast<double>(tree.MemoryBytes()) / (1024.0 * 1024.0),
              2));
    }
    storage.AddRow(row);
  }
  storage.Print(stdout);

  std::printf("\n(b) Search Cost (800 frequent regions)\n");
  TablePrinter search({"patterns", "TPT_ms", "brute_force_ms",
                       "TPT_entries_tested", "brute_entries_tested"});
  for (const int count : pattern_counts) {
    Random rng(static_cast<uint64_t>(count) * 13);
    const size_t regions = 800;
    TptTree tree;
    BruteForceStore brute;
    for (int i = 0; i < count; ++i) {
      IndexedPattern p = RandomPattern(&rng, regions, i);
      HPM_CHECK(brute.Insert(p).ok());
      HPM_CHECK(tree.Insert(std::move(p)).ok());
    }
    const int kQueries = 30;
    std::vector<PatternKey> queries;
    for (int q = 0; q < kQueries; ++q) {
      queries.push_back(RandomQuery(&rng, regions));
    }

    TptSearchStats tpt_stats, brute_stats;
    Stopwatch tpt_timer;
    size_t tpt_hits = 0;
    for (const PatternKey& q : queries) {
      tpt_hits +=
          tree.Search(q, SearchMode::kPremiseAndConsequence, &tpt_stats)
              .size();
    }
    const double tpt_ms = tpt_timer.ElapsedMillis() / kQueries;

    Stopwatch brute_timer;
    size_t brute_hits = 0;
    for (const PatternKey& q : queries) {
      brute_hits +=
          brute.Search(q, SearchMode::kPremiseAndConsequence, &brute_stats)
              .size();
    }
    const double brute_ms = brute_timer.ElapsedMillis() / kQueries;
    HPM_CHECK(tpt_hits == brute_hits);

    search.AddRow({std::to_string(count), Fmt(tpt_ms, 4), Fmt(brute_ms, 4),
                   std::to_string(tpt_stats.entries_tested / kQueries),
                   std::to_string(brute_stats.entries_tested / kQueries)});
  }
  search.Print(stdout);
  return 0;
}
