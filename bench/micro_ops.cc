// Micro-benchmarks (google-benchmark) for the hot operations underneath
// the figure benches: pattern-key ops, TPT insert/search, DBSCAN,
// Apriori support counting, and RMF fitting.

#include <benchmark/benchmark.h>

#include "cluster/dbscan.h"
#include "common/random.h"
#include "core/similarity.h"
#include "mining/apriori.h"
#include "mining/transaction.h"
#include "motion/recursive_motion.h"
#include "tpt/brute_force_store.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

PatternKey RandomKey(Random* rng, size_t premise_len, size_t cons_len) {
  PatternKey key(premise_len, cons_len);
  key.mutable_premise().Set(rng->Uniform(premise_len));
  key.mutable_premise().Set(rng->Uniform(premise_len));
  key.mutable_consequence().Set(rng->Uniform(cons_len));
  return key;
}

void BM_PatternKeyIntersect(benchmark::State& state) {
  Random rng(1);
  const size_t len = static_cast<size_t>(state.range(0));
  const PatternKey a = RandomKey(&rng, len, 60);
  const PatternKey b = RandomKey(&rng, len, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_PatternKeyIntersect)->Arg(80)->Arg(400)->Arg(800);

void BM_PatternKeyUnion(benchmark::State& state) {
  Random rng(2);
  const size_t len = static_cast<size_t>(state.range(0));
  PatternKey a = RandomKey(&rng, len, 60);
  const PatternKey b = RandomKey(&rng, len, 60);
  for (auto _ : state) {
    a.UnionWith(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PatternKeyUnion)->Arg(80)->Arg(800);

void BM_PremiseSimilarity(benchmark::State& state) {
  Random rng(3);
  const size_t len = 400;
  const PatternKey a = RandomKey(&rng, len, 60);
  const PatternKey q = RandomKey(&rng, len, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PremiseSimilarity(
        a.premise(), q.premise(), WeightFunction::kLinear));
  }
}
BENCHMARK(BM_PremiseSimilarity);

void BM_TptInsert(benchmark::State& state) {
  Random rng(4);
  const size_t regions = 400;
  for (auto _ : state) {
    state.PauseTiming();
    TptTree tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      IndexedPattern p;
      p.key = RandomKey(&rng, regions, 60);
      p.pattern_id = i;
      benchmark::DoNotOptimize(tree.Insert(std::move(p)));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TptInsert)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_TptSearch(benchmark::State& state) {
  Random rng(5);
  const size_t regions = 400;
  TptTree tree;
  BruteForceStore brute;
  for (int i = 0; i < state.range(0); ++i) {
    IndexedPattern p;
    p.key = RandomKey(&rng, regions, 60);
    p.pattern_id = i;
    HPM_CHECK(brute.Insert(p).ok());
    HPM_CHECK(tree.Insert(std::move(p)).ok());
  }
  const PatternKey q = RandomKey(&rng, regions, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Search(q, SearchMode::kPremiseAndConsequence));
  }
}
BENCHMARK(BM_TptSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BruteForceSearch(benchmark::State& state) {
  Random rng(5);
  const size_t regions = 400;
  BruteForceStore brute;
  for (int i = 0; i < state.range(0); ++i) {
    IndexedPattern p;
    p.key = RandomKey(&rng, regions, 60);
    p.pattern_id = i;
    HPM_CHECK(brute.Insert(std::move(p)).ok());
  }
  const PatternKey q = RandomKey(&rng, regions, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        brute.Search(q, SearchMode::kPremiseAndConsequence));
  }
}
BENCHMARK(BM_BruteForceSearch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Dbscan(benchmark::State& state) {
  Random rng(6);
  std::vector<Point> points(static_cast<size_t>(state.range(0)));
  for (auto& p : points) {
    p = {rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)};
  }
  DbscanParams params;
  params.eps = 30.0;
  params.min_pts = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(points, params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dbscan)->Arg(200)->Arg(2000)->Arg(20000);

void BM_RmfFit(benchmark::State& state) {
  Random rng(7);
  std::vector<TimedPoint> recent;
  for (int i = 0; i < state.range(0); ++i) {
    recent.push_back({i, Point{100.0 * i + rng.Gaussian(0, 5),
                               50.0 * i + rng.Gaussian(0, 5)}});
  }
  RmfOptions options;
  options.window = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RecursiveMotionFunction rmf(options);
    benchmark::DoNotOptimize(rmf.Fit(recent));
  }
}
BENCHMARK(BM_RmfFit)->Arg(10)->Arg(30)->Arg(100);

void BM_AprioriSupportCounting(benchmark::State& state) {
  Random rng(8);
  const size_t num_regions = 300;
  FrequentRegionSet regions;
  regions.set_period(300);
  for (size_t i = 0; i < num_regions; ++i) {
    FrequentRegion r;
    r.id = static_cast<int>(i);
    r.offset = static_cast<Timestamp>(i);
    r.center = {0, 0};
    r.mbr.Extend(r.center);
    r.support = 1;
    regions.AddRegion(r);
  }
  std::vector<Transaction> transactions;
  for (int t = 0; t < 60; ++t) {
    std::vector<RegionVisit> visits;
    for (size_t i = 0; i < num_regions; ++i) {
      if (rng.Bernoulli(0.5)) {
        visits.push_back(
            {static_cast<Timestamp>(i), static_cast<int>(i)});
      }
    }
    transactions.emplace_back(visits, num_regions);
  }
  AprioriParams params;
  params.min_confidence = 0.3;
  params.min_support = 5;
  params.max_pattern_length = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MineTrajectoryPatterns(transactions, regions, params));
  }
  state.SetLabel("pairs over 300 regions x 60 transactions");
}
BENCHMARK(BM_AprioriSupportCounting)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hpm

BENCHMARK_MAIN();
