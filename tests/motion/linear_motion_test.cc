#include "motion/linear_motion.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

std::vector<TimedPoint> LinearTrack(Timestamp start, int n, Point origin,
                                    Point velocity) {
  std::vector<TimedPoint> track;
  for (int i = 0; i < n; ++i) {
    track.push_back(
        {start + i, origin + velocity * static_cast<double>(i)});
  }
  return track;
}

TEST(LinearMotionTest, NeedsTwoPoints) {
  LinearMotionFunction f;
  EXPECT_EQ(f.Fit({{0, {1, 1}}}).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(f.Fit(LinearTrack(0, 2, {0, 0}, {1, 0})).ok());
}

TEST(LinearMotionTest, RejectsNonIncreasingTimestamps) {
  LinearMotionFunction f;
  const std::vector<TimedPoint> bad = {{3, {0, 0}}, {3, {1, 1}}};
  EXPECT_EQ(f.Fit(bad).code(), StatusCode::kInvalidArgument);
  const std::vector<TimedPoint> reversed = {{3, {0, 0}}, {2, {1, 1}}};
  EXPECT_EQ(f.Fit(reversed).code(), StatusCode::kInvalidArgument);
}

TEST(LinearMotionTest, PredictBeforeFitFails) {
  LinearMotionFunction f;
  EXPECT_EQ(f.Predict(10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearMotionTest, ExactLinearMotionRecovered) {
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(LinearTrack(0, 10, {5, 5}, {2, -1})).ok());
  EXPECT_NEAR(f.velocity().x, 2.0, 1e-10);
  EXPECT_NEAR(f.velocity().y, -1.0, 1e-10);
  auto p = f.Predict(20);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 5 + 2 * 20, 1e-9);
  EXPECT_NEAR(p->y, 5 - 20, 1e-9);
}

TEST(LinearMotionTest, PredictAtCurrentTimeReturnsAnchor) {
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(LinearTrack(0, 5, {0, 0}, {3, 3})).ok());
  auto p = f.Predict(4);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 12.0, 1e-10);
  EXPECT_NEAR(p->y, 12.0, 1e-10);
}

TEST(LinearMotionTest, PastQueryTimeRejected) {
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(LinearTrack(0, 5, {0, 0}, {1, 1})).ok());
  EXPECT_EQ(f.Predict(3).status().code(), StatusCode::kInvalidArgument);
}

TEST(LinearMotionTest, StationaryObjectStaysPut) {
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(LinearTrack(0, 8, {7, 7}, {0, 0})).ok());
  auto p = f.Predict(100);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 7.0, 1e-10);
  EXPECT_NEAR(p->y, 7.0, 1e-10);
}

TEST(LinearMotionTest, NoisyTrackVelocityNearTruth) {
  Random rng(9);
  std::vector<TimedPoint> track;
  for (int i = 0; i < 30; ++i) {
    track.push_back({i, Point{2.0 * i + rng.Gaussian(0, 0.1),
                              -1.5 * i + rng.Gaussian(0, 0.1)}});
  }
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(track).ok());
  EXPECT_NEAR(f.velocity().x, 2.0, 0.05);
  EXPECT_NEAR(f.velocity().y, -1.5, 0.05);
}

TEST(LinearMotionTest, RefitReplacesModel) {
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(LinearTrack(0, 5, {0, 0}, {1, 0})).ok());
  ASSERT_TRUE(f.Fit(LinearTrack(10, 5, {0, 0}, {0, 2})).ok());
  EXPECT_NEAR(f.velocity().x, 0.0, 1e-10);
  EXPECT_NEAR(f.velocity().y, 2.0, 1e-10);
  // The anchor moved to the new track's last point (t = 14).
  auto p = f.Predict(15);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->y, 10.0, 1e-9);
}

TEST(LinearMotionTest, NonUnitTimestampGapsSupported) {
  // Linear motion sampled every 3 ticks.
  const std::vector<TimedPoint> track = {
      {0, {0, 0}}, {3, {6, 3}}, {6, {12, 6}}};
  LinearMotionFunction f;
  ASSERT_TRUE(f.Fit(track).ok());
  EXPECT_NEAR(f.velocity().x, 2.0, 1e-10);
  EXPECT_NEAR(f.velocity().y, 1.0, 1e-10);
}

TEST(LinearMotionTest, Name) {
  EXPECT_EQ(LinearMotionFunction().Name(), "Linear");
}

}  // namespace
}  // namespace hpm
