#include "motion/recursive_motion.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.h"

namespace hpm {
namespace {

std::vector<TimedPoint> Track(int n, const std::function<Point(int)>& f,
                              Timestamp start = 0) {
  std::vector<TimedPoint> track;
  for (int i = 0; i < n; ++i) track.push_back({start + i, f(i)});
  return track;
}

RmfOptions Unclamped() {
  RmfOptions options;
  options.clamp_box = BoundingBox();  // No clamping for numeric tests.
  return options;
}

TEST(RmfTest, NeedsAtLeastTwoPoints) {
  RecursiveMotionFunction rmf(Unclamped());
  EXPECT_EQ(rmf.Fit({{0, {1, 1}}}).code(), StatusCode::kFailedPrecondition);
}

TEST(RmfTest, RejectsNonConsecutiveTimestamps) {
  RecursiveMotionFunction rmf(Unclamped());
  const std::vector<TimedPoint> gaps = {{0, {0, 0}}, {2, {1, 1}}};
  EXPECT_EQ(rmf.Fit(gaps).code(), StatusCode::kInvalidArgument);
}

TEST(RmfTest, PredictBeforeFitFails) {
  RecursiveMotionFunction rmf(Unclamped());
  EXPECT_EQ(rmf.Predict(5).status().code(), StatusCode::kFailedPrecondition);
}

TEST(RmfTest, PastQueryTimeRejected) {
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(
      rmf.Fit(Track(10, [](int i) { return Point{1.0 * i, 0.0}; })).ok());
  EXPECT_EQ(rmf.Predict(3).status().code(), StatusCode::kInvalidArgument);
}

TEST(RmfTest, ExactLinearMotionReproduced) {
  // l_t = 2 l_{t-1} - l_{t-2} reproduces linear motion exactly; RMF must
  // find an equivalent recurrence.
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(
      rmf.Fit(Track(12, [](int i) { return Point{3.0 * i + 5, -2.0 * i}; }))
          .ok());
  for (Timestamp tq : {12, 15, 20, 30}) {
    auto p = rmf.Predict(tq);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(p->x, 3.0 * static_cast<double>(tq) + 5, 1e-5);
    EXPECT_NEAR(p->y, -2.0 * static_cast<double>(tq), 1e-5);
  }
}

TEST(RmfTest, StationaryObjectStaysPut) {
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(
      rmf.Fit(Track(10, [](int) { return Point{42.0, 17.0}; })).ok());
  auto p = rmf.Predict(50);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 42.0, 1e-6);
  EXPECT_NEAR(p->y, 17.0, 1e-6);
}

TEST(RmfTest, PredictAtCurrentTimeReturnsLastLocation) {
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(
      rmf.Fit(Track(8, [](int i) { return Point{2.0 * i, 1.0 * i}; })).ok());
  auto p = rmf.Predict(7);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 14.0, 1e-9);
  EXPECT_NEAR(p->y, 7.0, 1e-9);
}

TEST(RmfTest, CapturesCircularMotionBetterThanLinear) {
  // The RMF paper's motivating case: non-linear (circular) movement.
  const double radius = 100.0;
  const double omega = 0.15;
  auto circle = [&](int i) {
    return Point{radius * std::cos(omega * i), radius * std::sin(omega * i)};
  };
  RmfOptions options = Unclamped();
  options.window = 30;
  RecursiveMotionFunction rmf(options);
  ASSERT_TRUE(rmf.Fit(Track(30, circle)).ok());

  const Timestamp tq = 36;  // 6 steps ahead.
  auto p = rmf.Predict(tq);
  ASSERT_TRUE(p.ok());
  const Point actual = circle(static_cast<int>(tq));
  const double rmf_error = Distance(*p, actual);

  // Linear extrapolation from the last two points for comparison.
  const Point v = circle(29) - circle(28);
  const Point linear = circle(29) + v * 7.0;
  const double linear_error = Distance(linear, actual);

  EXPECT_LT(rmf_error, linear_error);
  EXPECT_LT(rmf_error, radius * 0.1);
}

TEST(RmfTest, AutoSelectionConsistentOnLinearMotion) {
  // On exactly linear data either a recurrence or the linear candidate
  // may win the out-of-sample selection (both are exact); whichever is
  // chosen, the accessors must agree with each other.
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(
      rmf.Fit(Track(12, [](int i) { return Point{5.0 * i, 0.0}; })).ok());
  if (rmf.used_linear_model()) {
    EXPECT_EQ(rmf.fitted_retrospect(), 0);
    EXPECT_TRUE(rmf.coefficients().empty());
  } else {
    EXPECT_GE(rmf.fitted_retrospect(), 1);
    EXPECT_LE(rmf.fitted_retrospect(), 3);
    EXPECT_EQ(rmf.coefficients().size(),
              static_cast<size_t>(rmf.fitted_retrospect()));
  }
}

TEST(RmfTest, OutOfSampleSelectionRejectsOverfitOnShortNoisyWindows) {
  // A short, noisy, essentially linear window: in-sample residuals would
  // pick a high-order recurrence that extrapolates wildly; the held-out
  // selection must keep predictions in the same ballpark as linear
  // extrapolation.
  Random rng(41);
  auto noisy_line = [&rng](int i) {
    return Point{100.0 * i + rng.Gaussian(0, 8),
                 40.0 * i + rng.Gaussian(0, 8)};
  };
  RecursiveMotionFunction rmf(Unclamped());
  ASSERT_TRUE(rmf.Fit(Track(10, noisy_line)).ok());
  auto p = rmf.Predict(25);  // 16 steps ahead of a 10-point window.
  ASSERT_TRUE(p.ok());
  const Point truth{100.0 * 25, 40.0 * 25};
  EXPECT_LT(Distance(*p, truth), 600.0);
}

TEST(RmfTest, FixedRetrospectRespected) {
  RmfOptions options = Unclamped();
  options.auto_retrospect = false;
  options.retrospect = 2;
  RecursiveMotionFunction rmf(options);
  ASSERT_TRUE(
      rmf.Fit(Track(12, [](int i) { return Point{1.0 * i, 2.0 * i}; })).ok());
  EXPECT_EQ(rmf.fitted_retrospect(), 2);
}

TEST(RmfTest, FixedRetrospectTooLargeForHistoryFails) {
  RmfOptions options = Unclamped();
  options.auto_retrospect = false;
  options.retrospect = 5;
  RecursiveMotionFunction rmf(options);
  EXPECT_EQ(
      rmf.Fit(Track(4, [](int i) { return Point{1.0 * i, 0.0}; })).code(),
      StatusCode::kFailedPrecondition);
}

TEST(RmfTest, InvalidRetrospectRejected) {
  RmfOptions options = Unclamped();
  options.retrospect = 0;
  RecursiveMotionFunction rmf(options);
  EXPECT_EQ(
      rmf.Fit(Track(5, [](int i) { return Point{1.0 * i, 0.0}; })).code(),
      StatusCode::kInvalidArgument);
}

TEST(RmfTest, PredictionsAlwaysFiniteAndClamped) {
  // A violently accelerating track can produce an unstable recurrence;
  // the default clamp box must keep output inside the data space.
  RmfOptions options;  // Default clamp to [0,10000]^2.
  RecursiveMotionFunction rmf(options);
  Random rng(5);
  auto wild = [&rng](int i) {
    return Point{std::exp2(i % 11) + rng.Gaussian(0, 10),
                 std::exp2((i + 3) % 11)};
  };
  ASSERT_TRUE(rmf.Fit(Track(20, wild)).ok());
  for (Timestamp tq = 20; tq < 220; tq += 20) {
    auto p = rmf.Predict(tq);
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(std::isfinite(p->x));
    EXPECT_TRUE(std::isfinite(p->y));
    EXPECT_GE(p->x, 0.0);
    EXPECT_LE(p->x, 10000.0);
    EXPECT_GE(p->y, 0.0);
    EXPECT_LE(p->y, 10000.0);
  }
}

TEST(RmfTest, WindowLimitsFittedHistory) {
  // A track whose early half moves +x and late half moves +y: a small
  // window should track the recent +y motion.
  auto elbow = [](int i) {
    return i < 30 ? Point{1.0 * i, 0.0} : Point{30.0, 1.0 * (i - 30)};
  };
  RmfOptions options = Unclamped();
  options.window = 10;
  RecursiveMotionFunction rmf(options);
  ASSERT_TRUE(rmf.Fit(Track(60, elbow)).ok());
  auto p = rmf.Predict(65);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 30.0, 1.0);
  EXPECT_NEAR(p->y, 35.0, 1.0);
}

TEST(RmfTest, ErrorGrowsWithPredictionLength) {
  // The paper's core claim about motion functions: distant-time accuracy
  // decays. Use curved motion so extrapolation genuinely drifts.
  const double omega = 0.08;
  auto curve = [&](int i) {
    return Point{5000 + 2000 * std::cos(omega * i),
                 5000 + 2000 * std::sin(omega * i)};
  };
  RecursiveMotionFunction rmf;  // Default clamped options.
  ASSERT_TRUE(rmf.Fit(Track(25, curve)).ok());
  const double near_error =
      Distance(rmf.Predict(30).value(), curve(30));
  const double far_error =
      Distance(rmf.Predict(200).value(), curve(200));
  EXPECT_LT(near_error, far_error);
}

TEST(RmfTest, Name) { EXPECT_EQ(RecursiveMotionFunction().Name(), "RMF"); }

}  // namespace
}  // namespace hpm
