#include <gtest/gtest.h>

#include <cmath>

#include "geo/bounding_box.h"
#include "geo/point.h"

namespace hpm {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Point(4.0, 1.0));
  EXPECT_EQ(a - b, Point(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Point(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Point(1.5, -0.5));
}

TEST(PointTest, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Point(3.0, 4.0).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {4, 5}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({2, 2}, {2, 2}), 0.0);
}

TEST(PointTest, DistanceSymmetry) {
  const Point a{1.5, -2.25}, b{-7.0, 3.5};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(PointTest, ToString) {
  EXPECT_EQ(Point(1.0, 2.5).ToString(), "(1.00, 2.50)");
}

TEST(BoundingBoxTest, EmptyBoxProperties) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.Contains({0, 0}));
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  EXPECT_EQ(box.ToString(), "[empty]");
}

TEST(BoundingBoxTest, CornerConstructorNormalisesOrder) {
  BoundingBox box({5.0, 1.0}, {2.0, 8.0});
  EXPECT_EQ(box.min(), Point(2.0, 1.0));
  EXPECT_EQ(box.max(), Point(5.0, 8.0));
}

TEST(BoundingBoxTest, ExtendWithPoints) {
  BoundingBox box;
  box.Extend({2, 3});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_EQ(box.min(), Point(2, 3));
  EXPECT_EQ(box.max(), Point(2, 3));
  box.Extend({-1, 5});
  EXPECT_EQ(box.min(), Point(-1, 3));
  EXPECT_EQ(box.max(), Point(2, 5));
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a({0, 0}, {1, 1});
  const BoundingBox b({2, -1}, {3, 0.5});
  a.Extend(b);
  EXPECT_EQ(a.min(), Point(0, -1));
  EXPECT_EQ(a.max(), Point(3, 1));
  // Extending by an empty box is a no-op.
  const BoundingBox before = a;
  a.Extend(BoundingBox());
  EXPECT_EQ(a.min(), before.min());
  EXPECT_EQ(a.max(), before.max());
}

TEST(BoundingBoxTest, ContainsIncludesBoundary) {
  const BoundingBox box({0, 0}, {10, 10});
  EXPECT_TRUE(box.Contains({5, 5}));
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({10, 10}));
  EXPECT_TRUE(box.Contains({0, 10}));
  EXPECT_FALSE(box.Contains({10.001, 5}));
  EXPECT_FALSE(box.Contains({-0.001, 5}));
}

TEST(BoundingBoxTest, Intersects) {
  const BoundingBox a({0, 0}, {5, 5});
  EXPECT_TRUE(a.Intersects(BoundingBox({4, 4}, {8, 8})));
  EXPECT_TRUE(a.Intersects(BoundingBox({5, 5}, {9, 9})));  // Boundary touch.
  EXPECT_FALSE(a.Intersects(BoundingBox({6, 6}, {9, 9})));
  EXPECT_FALSE(a.Intersects(BoundingBox()));
  EXPECT_FALSE(BoundingBox().Intersects(a));
}

TEST(BoundingBoxTest, CenterAndArea) {
  const BoundingBox box({0, 0}, {4, 2});
  EXPECT_EQ(box.Center(), Point(2, 1));
  EXPECT_DOUBLE_EQ(box.Area(), 8.0);
  const BoundingBox degenerate({3, 3}, {3, 3});
  EXPECT_DOUBLE_EQ(degenerate.Area(), 0.0);
  EXPECT_EQ(degenerate.Center(), Point(3, 3));
}

TEST(BoundingBoxTest, MinDistance) {
  const BoundingBox box({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(box.MinDistance({5, 5}), 0.0);      // Inside.
  EXPECT_DOUBLE_EQ(box.MinDistance({10, 10}), 0.0);    // On boundary.
  EXPECT_DOUBLE_EQ(box.MinDistance({13, 5}), 3.0);     // Right of box.
  EXPECT_DOUBLE_EQ(box.MinDistance({5, -2}), 2.0);     // Below box.
  EXPECT_DOUBLE_EQ(box.MinDistance({13, 14}), 5.0);    // Corner (3-4-5).
}

TEST(BoundingBoxDeathTest, CenterOfEmptyAborts) {
  BoundingBox box;
  EXPECT_DEATH((void)box.Center(), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
