#include "geo/trajectory.h"

#include <gtest/gtest.h>

#include <vector>

namespace hpm {
namespace {

Trajectory MakeRamp(int n) {
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(2 * i)});
  }
  return Trajectory(std::move(pts));
}

TEST(TrajectoryTest, SizeAndAt) {
  const Trajectory t = MakeRamp(5);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.At(0), Point(0, 0));
  EXPECT_EQ(t.At(4), Point(4, 8));
}

TEST(TrajectoryTest, AppendGrows) {
  Trajectory t;
  EXPECT_TRUE(t.empty());
  t.Append({1, 1});
  t.Append({2, 2});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.At(1), Point(2, 2));
}

TEST(TrajectoryTest, SliceValidRange) {
  const Trajectory t = MakeRamp(10);
  auto s = t.Slice(2, 5);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 3u);
  EXPECT_EQ(s->At(0), Point(2, 4));  // Re-based to timestamp 0.
  EXPECT_EQ(s->At(2), Point(4, 8));
}

TEST(TrajectoryTest, SliceEmptyRangeAllowed) {
  const Trajectory t = MakeRamp(4);
  auto s = t.Slice(2, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->empty());
}

TEST(TrajectoryTest, SliceInvalidRanges) {
  const Trajectory t = MakeRamp(4);
  EXPECT_EQ(t.Slice(-1, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.Slice(3, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.Slice(0, 5).status().code(), StatusCode::kOutOfRange);
}

TEST(TrajectoryTest, NumSubTrajectoriesFloors) {
  const Trajectory t = MakeRamp(10);
  EXPECT_EQ(t.NumSubTrajectories(3), 3u);  // 10/3 = 3 complete.
  EXPECT_EQ(t.NumSubTrajectories(5), 2u);
  EXPECT_EQ(t.NumSubTrajectories(10), 1u);
  EXPECT_EQ(t.NumSubTrajectories(11), 0u);
  EXPECT_EQ(t.NumSubTrajectories(0), 0u);
  EXPECT_EQ(t.NumSubTrajectories(-2), 0u);
}

TEST(TrajectoryTest, DecomposePeriodic) {
  const Trajectory t = MakeRamp(10);
  auto subs = t.DecomposePeriodic(3);
  ASSERT_TRUE(subs.ok());
  ASSERT_EQ(subs->size(), 3u);
  for (size_t i = 0; i < subs->size(); ++i) {
    EXPECT_EQ((*subs)[i].size(), 3u);
    for (Timestamp off = 0; off < 3; ++off) {
      EXPECT_EQ((*subs)[i].At(off),
                t.At(static_cast<Timestamp>(i) * 3 + off));
    }
  }
}

TEST(TrajectoryTest, DecomposeErrors) {
  const Trajectory t = MakeRamp(4);
  EXPECT_EQ(t.DecomposePeriodic(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.DecomposePeriodic(-1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.DecomposePeriodic(5).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TrajectoryTest, GroupByOffsetCollectsAcrossSubTrajectories) {
  const Trajectory t = MakeRamp(9);
  auto groups = t.GroupByOffset(3);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  for (Timestamp off = 0; off < 3; ++off) {
    const OffsetGroup& g = (*groups)[static_cast<size_t>(off)];
    EXPECT_EQ(g.offset, off);
    ASSERT_EQ(g.locations.size(), 3u);
    for (int sub = 0; sub < 3; ++sub) {
      EXPECT_EQ(g.locations[static_cast<size_t>(sub)].sub_trajectory, sub);
      EXPECT_EQ(g.locations[static_cast<size_t>(sub)].location,
                t.At(sub * 3 + off));
    }
  }
}

TEST(TrajectoryTest, GroupByOffsetHonoursLimit) {
  const Trajectory t = MakeRamp(9);
  auto groups = t.GroupByOffset(3, 2);
  ASSERT_TRUE(groups.ok());
  for (const OffsetGroup& g : *groups) {
    EXPECT_EQ(g.locations.size(), 2u);
  }
}

TEST(TrajectoryTest, GroupByOffsetLimitLargerThanDataClamps) {
  const Trajectory t = MakeRamp(6);
  auto groups = t.GroupByOffset(3, 100);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)[0].locations.size(), 2u);
}

TEST(TrajectoryTest, GroupByOffsetIgnoresPartialTrailingPeriod) {
  const Trajectory t = MakeRamp(10);  // 3 complete periods of 3 + 1 extra.
  auto groups = t.GroupByOffset(3);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)[0].locations.size(), 3u);
}

TEST(TrajectoryTest, RecentMovementsReturnsTimedWindow) {
  const Trajectory t = MakeRamp(10);
  const auto recent = t.RecentMovements(7, 3);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].time, 5);
  EXPECT_EQ(recent[2].time, 7);
  EXPECT_EQ(recent[2].location, t.At(7));
}

TEST(TrajectoryTest, RecentMovementsClampsAtStart) {
  const Trajectory t = MakeRamp(10);
  const auto recent = t.RecentMovements(1, 5);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].time, 0);
  EXPECT_EQ(recent[1].time, 1);
}

class DecompositionRoundTrip
    : public ::testing::TestWithParam<std::pair<int, Timestamp>> {};

TEST_P(DecompositionRoundTrip, GroupsAndSubTrajectoriesAgree) {
  const auto [n, period] = GetParam();
  const Trajectory t = MakeRamp(n);
  auto subs = t.DecomposePeriodic(period);
  auto groups = t.GroupByOffset(period);
  ASSERT_TRUE(subs.ok());
  ASSERT_TRUE(groups.ok());
  // Property: group(t)[i] must equal sub_trajectory[i].At(t).
  for (Timestamp off = 0; off < period; ++off) {
    const OffsetGroup& g = (*groups)[static_cast<size_t>(off)];
    ASSERT_EQ(g.locations.size(), subs->size());
    for (size_t i = 0; i < subs->size(); ++i) {
      EXPECT_EQ(g.locations[i].location, (*subs)[i].At(off));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecompositionRoundTrip,
    ::testing::Values(std::make_pair(12, Timestamp{3}),
                      std::make_pair(100, Timestamp{7}),
                      std::make_pair(99, Timestamp{10}),
                      std::make_pair(5, Timestamp{5}),
                      std::make_pair(301, Timestamp{300})));

TEST(TrajectoryDeathTest, AtOutOfRangeAborts) {
  const Trajectory t = MakeRamp(3);
  EXPECT_DEATH((void)t.At(3), "HPM_CHECK");
  EXPECT_DEATH((void)t.At(-1), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
