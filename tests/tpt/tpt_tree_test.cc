#include "tpt/tpt_tree.h"

#include <gtest/gtest.h>

#include "proptest/proptest.h"

#include <algorithm>
#include <set>

#include "common/random.h"
#include "tpt/brute_force_store.h"

namespace hpm {
namespace {

PatternKey RandomKey(Random* rng, size_t premise_len, size_t cons_len,
                     double premise_density = 0.1) {
  PatternKey key(premise_len, cons_len);
  // Patterns always have at least one premise bit and exactly one
  // consequence bit (as mined patterns do).
  key.mutable_premise().Set(rng->Uniform(premise_len));
  for (size_t i = 0; i < premise_len; ++i) {
    if (rng->Bernoulli(premise_density)) key.mutable_premise().Set(i);
  }
  key.mutable_consequence().Set(rng->Uniform(cons_len));
  return key;
}

IndexedPattern MakePattern(PatternKey key, int id) {
  IndexedPattern p;
  p.key = std::move(key);
  p.confidence = 0.5;
  p.consequence_region = id % 7;
  p.pattern_id = id;
  return p;
}

std::set<int> Ids(const std::vector<const IndexedPattern*>& hits) {
  std::set<int> ids;
  for (const auto* hit : hits) ids.insert(hit->pattern_id);
  return ids;
}

TEST(TptTreeTest, EmptyTree) {
  TptTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  PatternKey q(8, 2);
  q.mutable_premise().Set(0);
  q.mutable_consequence().Set(0);
  EXPECT_TRUE(tree.Search(q, SearchMode::kPremiseAndConsequence).empty());
}

TEST(TptTreeTest, SingleInsertAndFind) {
  TptTree tree;
  PatternKey key(8, 2);
  key.mutable_premise().Set(3);
  key.mutable_consequence().Set(1);
  ASSERT_TRUE(tree.Insert(MakePattern(key, 42)).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1);
  const auto hits = tree.Search(key, SearchMode::kPremiseAndConsequence);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->pattern_id, 42);
}

TEST(TptTreeTest, MismatchedKeyLengthRejected) {
  TptTree tree;
  PatternKey a(8, 2);
  a.mutable_premise().Set(0);
  a.mutable_consequence().Set(0);
  ASSERT_TRUE(tree.Insert(MakePattern(a, 0)).ok());
  PatternKey b(9, 2);
  b.mutable_premise().Set(0);
  b.mutable_consequence().Set(0);
  EXPECT_EQ(tree.Insert(MakePattern(b, 1)).code(),
            StatusCode::kInvalidArgument);
  PatternKey c(8, 3);
  c.mutable_premise().Set(0);
  c.mutable_consequence().Set(0);
  EXPECT_EQ(tree.Insert(MakePattern(c, 2)).code(),
            StatusCode::kInvalidArgument);
}

TEST(TptTreeTest, SplitsGrowHeightAndKeepInvariants) {
  TptTree::Options options;
  options.max_node_entries = 4;
  options.min_node_entries = 2;
  TptTree tree(options);
  const uint64_t seed = proptest::SeedForTest(1);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree.Insert(MakePattern(RandomKey(&rng, 32, 8), i)).ok());
    if (i % 20 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GT(tree.Height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TptTreeTest, SearchFindsExactPatternAmongMany) {
  TptTree tree;
  const uint64_t seed = proptest::SeedForTest(2);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  // A distinctive pattern in a sea of others.
  PatternKey needle(64, 10);
  needle.mutable_premise().Set(63);
  needle.mutable_consequence().Set(9);
  ASSERT_TRUE(tree.Insert(MakePattern(needle, 777)).ok());
  for (int i = 0; i < 300; ++i) {
    PatternKey key(64, 10);
    key.mutable_premise().Set(rng.Uniform(32));  // Lower half only.
    key.mutable_consequence().Set(rng.Uniform(5));
    ASSERT_TRUE(tree.Insert(MakePattern(key, i)).ok());
  }
  const auto hits =
      tree.Search(needle, SearchMode::kPremiseAndConsequence);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->pattern_id, 777);
}

TEST(TptTreeTest, ConsequenceOnlyModeIgnoresPremise) {
  TptTree tree;
  PatternKey key(8, 4);
  key.mutable_premise().Set(2);
  key.mutable_consequence().Set(1);
  ASSERT_TRUE(tree.Insert(MakePattern(key, 0)).ok());
  PatternKey q(8, 4);
  q.mutable_premise().Set(5);  // Disjoint premise.
  q.mutable_consequence().Set(1);
  EXPECT_TRUE(tree.Search(q, SearchMode::kPremiseAndConsequence).empty());
  EXPECT_EQ(tree.Search(q, SearchMode::kConsequenceOnly).size(), 1u);
}

TEST(TptTreeTest, DuplicateKeysAllRetrievable) {
  // Table III notes one pattern key may represent several patterns.
  TptTree tree;
  PatternKey key(8, 2);
  key.mutable_premise().Set(0);
  key.mutable_consequence().Set(1);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(MakePattern(key, i)).ok());
  }
  const auto hits = tree.Search(key, SearchMode::kPremiseAndConsequence);
  EXPECT_EQ(hits.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TptTreeTest, BulkLoadEqualsSequentialInsert) {
  const uint64_t seed = proptest::SeedForTest(3);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::vector<IndexedPattern> patterns;
  for (int i = 0; i < 120; ++i) {
    patterns.push_back(MakePattern(RandomKey(&rng, 24, 6), i));
  }
  auto tree = TptTree::BulkLoad(patterns);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 120u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST(TptTreeTest, MemoryGrowsWithPatternsAndKeyLength) {
  const uint64_t seed = proptest::SeedForTest(4);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  auto build = [&rng](int n, size_t premise_len) {
    TptTree tree;
    for (int i = 0; i < n; ++i) {
      HPM_CHECK(
          tree.Insert(MakePattern(RandomKey(&rng, premise_len, 4), i)).ok());
    }
    return tree.MemoryBytes();
  };
  const size_t small = build(50, 64);
  const size_t more_patterns = build(500, 64);
  const size_t longer_keys = build(50, 2048);
  EXPECT_GT(more_patterns, small);
  EXPECT_GT(longer_keys, small);
}

TEST(TptTreeDeathTest, BadOptionsAbort) {
  TptTree::Options tiny;
  tiny.max_node_entries = 2;
  tiny.min_node_entries = 2;
  EXPECT_DEATH(TptTree{tiny}, "HPM_CHECK");
  TptTree::Options inconsistent;
  inconsistent.max_node_entries = 8;
  inconsistent.min_node_entries = 6;  // 2*min > max+1.
  EXPECT_DEATH(TptTree{inconsistent}, "HPM_CHECK");
}

/// The central correctness property (paper §V-C): TPT search returns
/// exactly the patterns whose key Intersects the query — the same set a
/// brute-force scan finds — for both search modes, across tree shapes.
class TptSearchEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TptSearchEquivalenceTest, MatchesBruteForce) {
  const auto [num_patterns, max_entries] = GetParam();
  const uint64_t seed = proptest::SeedForTest(static_cast<uint64_t>(num_patterns * 31 + max_entries));
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  TptTree::Options options;
  options.max_node_entries = max_entries;
  options.min_node_entries = std::max(2, max_entries * 2 / 5);
  TptTree tree(options);
  BruteForceStore brute;

  const size_t premise_len = 40;
  const size_t cons_len = 12;
  for (int i = 0; i < num_patterns; ++i) {
    const PatternKey key = RandomKey(&rng, premise_len, cons_len, 0.08);
    ASSERT_TRUE(tree.Insert(MakePattern(key, i)).ok());
    ASSERT_TRUE(brute.Insert(MakePattern(key, i)).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  for (int q = 0; q < 40; ++q) {
    PatternKey query(premise_len, cons_len);
    for (size_t i = 0; i < premise_len; ++i) {
      if (rng.Bernoulli(0.1)) query.mutable_premise().Set(i);
    }
    for (size_t i = 0; i < cons_len; ++i) {
      if (rng.Bernoulli(0.15)) query.mutable_consequence().Set(i);
    }
    for (const SearchMode mode : {SearchMode::kPremiseAndConsequence,
                                  SearchMode::kConsequenceOnly}) {
      EXPECT_EQ(Ids(tree.Search(query, mode)),
                Ids(brute.Search(query, mode)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TptSearchEquivalenceTest,
    ::testing::Combine(::testing::Values(10, 100, 1000),
                       ::testing::Values(4, 8, 32)));

TEST(TptTreeTest, RemoveSinglePattern) {
  TptTree tree;
  const uint64_t seed = proptest::SeedForTest(21);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(MakePattern(RandomKey(&rng, 24, 6), i)).ok());
  }
  EXPECT_TRUE(tree.Remove(42));
  EXPECT_EQ(tree.size(), 99u);
  EXPECT_FALSE(tree.Remove(42));  // Already gone.
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // The removed pattern is unreachable; all others still are.
  PatternKey everything(24, 6);
  for (size_t i = 0; i < 24; ++i) everything.mutable_premise().Set(i);
  for (size_t i = 0; i < 6; ++i) everything.mutable_consequence().Set(i);
  const auto ids = Ids(tree.Search(everything,
                                   SearchMode::kPremiseAndConsequence));
  EXPECT_EQ(ids.size(), 99u);
  EXPECT_EQ(ids.count(42), 0u);
}

TEST(TptTreeTest, RemoveIfByConfidence) {
  TptTree tree;
  const uint64_t seed = proptest::SeedForTest(22);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 300; ++i) {
    IndexedPattern p = MakePattern(RandomKey(&rng, 24, 6), i);
    p.confidence = (i % 2 == 0) ? 0.9 : 0.1;
    ASSERT_TRUE(tree.Insert(std::move(p)).ok());
  }
  const size_t removed = tree.RemoveIf(
      [](const IndexedPattern& p) { return p.confidence < 0.5; });
  EXPECT_EQ(removed, 150u);
  EXPECT_EQ(tree.size(), 150u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TptTreeTest, RemoveEverythingLeavesUsableTree) {
  TptTree::Options options;
  options.max_node_entries = 4;
  options.min_node_entries = 2;
  TptTree tree(options);
  const uint64_t seed = proptest::SeedForTest(23);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(MakePattern(RandomKey(&rng, 24, 6), i)).ok());
  }
  EXPECT_EQ(tree.RemoveIf([](const IndexedPattern&) { return true; }),
            200u);
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // And the tree accepts new inserts afterwards.
  ASSERT_TRUE(tree.Insert(MakePattern(RandomKey(&rng, 24, 6), 0)).ok());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(TptTreeTest, RemoveIfOnEmptyTree) {
  TptTree tree;
  EXPECT_EQ(tree.RemoveIf([](const IndexedPattern&) { return true; }), 0u);
}

TEST(TptTreeTest, InterleavedInsertRemoveKeepsInvariantsAndContent) {
  TptTree::Options options;
  options.max_node_entries = 6;
  options.min_node_entries = 2;
  TptTree tree(options);
  BruteForceStore reference;
  const uint64_t seed = proptest::SeedForTest(24);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::set<int> live;
  int next_id = 0;
  for (int round = 0; round < 400; ++round) {
    if (live.empty() || rng.Bernoulli(0.65)) {
      const PatternKey key = RandomKey(&rng, 32, 8);
      ASSERT_TRUE(tree.Insert(MakePattern(key, next_id)).ok());
      ASSERT_TRUE(reference.Insert(MakePattern(key, next_id)).ok());
      live.insert(next_id);
      ++next_id;
    } else {
      // Remove a random live id.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Uniform(live.size())));
      EXPECT_TRUE(tree.Remove(*it));
      live.erase(it);
    }
    if (round % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "round " << round;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), live.size());
  // Search result equals the brute-force result filtered to live ids.
  for (int q = 0; q < 10; ++q) {
    const PatternKey query = RandomKey(&rng, 32, 8);
    std::set<int> expected;
    for (const auto* hit :
         reference.Search(query, SearchMode::kPremiseAndConsequence)) {
      if (live.count(hit->pattern_id)) expected.insert(hit->pattern_id);
    }
    EXPECT_EQ(Ids(tree.Search(query, SearchMode::kPremiseAndConsequence)),
              expected);
  }
}

TEST(TptTreeTest, SearchStatsPruneVersusBrute) {
  const uint64_t seed = proptest::SeedForTest(6);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  TptTree tree;
  for (int i = 0; i < 2000; ++i) {
    // Clustered keys: premise bits localised so subtrees separate well.
    PatternKey key(128, 16);
    const size_t base = (static_cast<size_t>(i) % 8) * 16;
    key.mutable_premise().Set(base + rng.Uniform(16));
    key.mutable_consequence().Set((static_cast<size_t>(i) % 8) * 2);
    ASSERT_TRUE(tree.Insert(MakePattern(key, i)).ok());
  }
  PatternKey query(128, 16);
  query.mutable_premise().Set(3);
  query.mutable_consequence().Set(0);
  TptSearchStats stats;
  (void)tree.Search(query, SearchMode::kPremiseAndConsequence, &stats);
  // The signature tree must prune: far fewer entry tests than patterns.
  EXPECT_LT(stats.entries_tested, 2000u);
  EXPECT_GT(stats.nodes_visited, 0u);
}

}  // namespace
}  // namespace hpm
