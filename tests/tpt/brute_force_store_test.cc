#include "tpt/brute_force_store.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

PatternKey Key(const std::string& consequence, const std::string& premise) {
  return PatternKey(DynamicBitset::FromString(premise),
                    DynamicBitset::FromString(consequence));
}

IndexedPattern MakePattern(PatternKey key, int id, double conf = 0.5) {
  IndexedPattern p;
  p.key = std::move(key);
  p.confidence = conf;
  p.consequence_region = id;
  p.pattern_id = id;
  return p;
}

TEST(BruteForceStoreTest, EmptySearch) {
  BruteForceStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(
      store.Search(Key("1", "1"), SearchMode::kPremiseAndConsequence)
          .empty());
}

TEST(BruteForceStoreTest, InsertAndSearchBothModes) {
  BruteForceStore store;
  ASSERT_TRUE(store.Insert(MakePattern(Key("10", "0011"), 0)).ok());
  ASSERT_TRUE(store.Insert(MakePattern(Key("01", "1100"), 1)).ok());
  EXPECT_EQ(store.size(), 2u);

  const auto both = store.Search(Key("10", "0001"),
                                 SearchMode::kPremiseAndConsequence);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0]->pattern_id, 0);

  const auto cons_only =
      store.Search(Key("01", "0001"), SearchMode::kConsequenceOnly);
  ASSERT_EQ(cons_only.size(), 1u);
  EXPECT_EQ(cons_only[0]->pattern_id, 1);
}

TEST(BruteForceStoreTest, MismatchedLengthsRejected) {
  BruteForceStore store;
  ASSERT_TRUE(store.Insert(MakePattern(Key("10", "0011"), 0)).ok());
  EXPECT_EQ(store.Insert(MakePattern(Key("100", "0011"), 1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.Insert(MakePattern(Key("10", "00111"), 2)).code(),
            StatusCode::kInvalidArgument);
}

TEST(BruteForceStoreTest, StatsCountEveryEntry) {
  BruteForceStore store;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(store.Insert(MakePattern(Key("10", "0011"), i)).ok());
  }
  TptSearchStats stats;
  (void)store.Search(Key("01", "0100"),
                     SearchMode::kPremiseAndConsequence, &stats);
  EXPECT_EQ(stats.entries_tested, 25u);
}

TEST(BruteForceStoreTest, MemoryBytesGrowsWithInserts) {
  BruteForceStore store;
  const size_t empty = store.MemoryBytes();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Insert(MakePattern(Key("10", "0011"), i)).ok());
  }
  EXPECT_GT(store.MemoryBytes(), empty);
}

}  // namespace
}  // namespace hpm
