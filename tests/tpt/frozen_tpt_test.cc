// Unit tests for the frozen TPT arena: freeze/search basics, the "FTPT"
// wire section, and above all the parser's handling of corrupt bytes —
// every malformed section must come back as a clean DataLoss (which the
// store layer turns into quarantine + fallback), never a crash, hang, or
// count-driven over-allocation.
//
// Section layout (offsets used by the surgical edits below):
//   0  "FTPT"            16 num_nodes u32
//   4  version u32       20 num_entries u32
//   8  premise_bits u32  24 num_patterns u32
//   12 consequence_bits  28 nodes (3 x u32 each) | targets | key words
//                           | payloads | crc32 over everything before it

#include "tpt/frozen_tpt.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

constexpr size_t kVersionOffset = 4;
constexpr size_t kPremiseBitsOffset = 8;
constexpr size_t kNumNodesOffset = 16;
constexpr size_t kNumEntriesOffset = 20;
constexpr size_t kNumPatternsOffset = 24;
constexpr size_t kNodesOffset = 28;

PatternKey RandomKey(Random* rng, size_t premise_len, size_t cons_len,
                     double premise_density = 0.15) {
  PatternKey key(premise_len, cons_len);
  key.mutable_premise().Set(rng->Uniform(premise_len));
  for (size_t i = 0; i < premise_len; ++i) {
    if (rng->Bernoulli(premise_density)) key.mutable_premise().Set(i);
  }
  key.mutable_consequence().Set(rng->Uniform(cons_len));
  return key;
}

IndexedPattern MakePattern(PatternKey key, int id) {
  IndexedPattern p;
  p.key = std::move(key);
  p.confidence = 0.25 + 0.01 * static_cast<double>(id % 50);
  p.consequence_region = id % 7;
  p.pattern_id = id;
  return p;
}

/// A multi-level tree (small node capacity) over `count` random patterns.
TptTree BuildTree(int count, uint64_t seed) {
  std::vector<IndexedPattern> patterns;
  Random rng(seed);
  patterns.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    patterns.push_back(MakePattern(RandomKey(&rng, 40, 10), i));
  }
  TptTree::Options options;
  options.max_node_entries = 5;
  options.min_node_entries = 2;
  StatusOr<TptTree> tree = TptTree::BulkLoad(patterns, options);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return std::move(*tree);
}

std::string Wire(const FrozenTpt& frozen) {
  std::string out;
  frozen.AppendTo(&out);
  return out;
}

uint32_t ReadU32At(const std::string& s, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, s.data() + offset, sizeof(v));
  return v;
}

void WriteU32At(std::string* s, size_t offset, uint32_t v) {
  std::memcpy(s->data() + offset, &v, sizeof(v));
}

/// Recomputes the section's trailing CRC after a surgical edit, so the
/// corruption reaches the validator it targets instead of the checksum.
void RestampSectionCrc(std::string* s) {
  const uint32_t crc = Crc32(s->data(), s->size() - 4);
  std::memcpy(s->data() + s->size() - 4, &crc, sizeof(crc));
}

Status ParseStatus(const std::string& wire) {
  size_t consumed = 0;
  return FrozenTpt::Parse(wire.data(), wire.size(), &consumed).status();
}

TEST(FrozenTptTest, EmptyTreeFreezesAndRoundTripsEmpty) {
  TptTree tree;
  const FrozenTpt frozen = FrozenTpt::Freeze(tree);
  EXPECT_TRUE(frozen.empty());
  EXPECT_EQ(frozen.Height(), 0);
  EXPECT_TRUE(frozen.CheckInvariants().ok());

  PatternKey q(8, 2);
  q.mutable_premise().Set(0);
  q.mutable_consequence().Set(0);
  EXPECT_TRUE(frozen.Search(q, SearchMode::kPremiseAndConsequence).empty());

  const std::string wire = Wire(frozen);
  size_t consumed = 0;
  StatusOr<FrozenTpt> reparsed =
      FrozenTpt::Parse(wire.data(), wire.size(), &consumed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_TRUE(reparsed->empty());
}

TEST(FrozenTptTest, FreezeKeepsPatternsAndAccountsMemory) {
  const TptTree tree = BuildTree(80, 11);
  const FrozenTpt frozen = FrozenTpt::Freeze(tree);
  EXPECT_EQ(frozen.size(), tree.size());
  EXPECT_EQ(frozen.Height(), tree.Height());
  EXPECT_EQ(frozen.premise_bits(), 40u);
  EXPECT_EQ(frozen.consequence_bits(), 10u);
  EXPECT_TRUE(frozen.CheckInvariants().ok());
  // The arena must be accounted for: more than the bare struct, and the
  // key blocks dominate a pointer-free layout.
  EXPECT_GT(frozen.MemoryBytes(), sizeof(FrozenTpt));
  // Every pattern id appears exactly once among the leaf payloads.
  std::vector<bool> seen(frozen.size(), false);
  for (const IndexedPattern& p : frozen.patterns()) {
    ASSERT_GE(p.pattern_id, 0);
    ASSERT_LT(static_cast<size_t>(p.pattern_id), seen.size());
    EXPECT_FALSE(seen[static_cast<size_t>(p.pattern_id)]);
    seen[static_cast<size_t>(p.pattern_id)] = true;
  }
}

TEST(FrozenTptTest, ParseIgnoresTrailingBytes) {
  // The section is embedded mid-file: Parse must consume exactly its own
  // bytes and leave whatever follows alone.
  const FrozenTpt frozen = FrozenTpt::Freeze(BuildTree(30, 12));
  std::string wire = Wire(frozen);
  const size_t section_size = wire.size();
  wire.append("trailing model bytes");
  size_t consumed = 0;
  StatusOr<FrozenTpt> reparsed =
      FrozenTpt::Parse(wire.data(), wire.size(), &consumed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(consumed, section_size);
  EXPECT_EQ(reparsed->size(), frozen.size());
}

TEST(FrozenTptTest, ParseRejectsBadMagic) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 13)));
  wire[0] ^= 0x20;
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("bad frozen TPT section magic"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsUnsupportedVersion) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 14)));
  WriteU32At(&wire, kVersionOffset, 99);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("unsupported frozen TPT section version"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsImplausibleKeyWidth) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 15)));
  WriteU32At(&wire, kPremiseBitsOffset, 1u << 23);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("implausible frozen TPT key width"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsCorruptNodeCountBeforeAllocating) {
  // A billion-node count must fail the up-front body-size check rather
  // than drive a giant allocation.
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 16)));
  WriteU32At(&wire, kNumNodesOffset, 1u << 30);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("truncated frozen TPT section body"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsInconsistentCounts) {
  // Zero nodes but nonzero entries can never describe a real tree.
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 17)));
  WriteU32At(&wire, kNumNodesOffset, 0);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("inconsistent frozen TPT counts"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsPayloadCountExceedingEntries) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(20, 18)));
  const uint32_t num_patterns = ReadU32At(wire, kNumPatternsOffset);
  ASSERT_GT(num_patterns, 1u);
  // Shrinking the entry count below the payload count keeps the declared
  // body within the buffer, so the count check itself must fire.
  WriteU32At(&wire, kNumEntriesOffset, num_patterns - 1);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT payload count exceeds entries"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsBitRotViaSectionChecksum) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(40, 19)));
  // Flip one byte in the middle of the arena, checksum left stale.
  wire[wire.size() / 2] ^= 0x5a;
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT section checksum mismatch"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsZeroEntryNode) {
  std::string wire = Wire(FrozenTpt::Freeze(BuildTree(40, 20)));
  WriteU32At(&wire, kNodesOffset + 4, 0);  // Root's num_entries.
  RestampSectionCrc(&wire);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT node has zero entries"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsBackwardChildIndex) {
  const TptTree tree = BuildTree(60, 21);
  ASSERT_GT(tree.Height(), 1) << "need an internal root for this edit";
  std::string wire = Wire(FrozenTpt::Freeze(tree));
  const uint32_t num_nodes = ReadU32At(wire, kNumNodesOffset);
  // The root's first child pointer, redirected at the root itself: child
  // indices must be strictly forward, so cycles are impossible.
  const size_t targets_offset = kNodesOffset + 12 * num_nodes;
  WriteU32At(&wire, targets_offset, 0);
  RestampSectionCrc(&wire);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT child index out of range"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseRejectsDirtyTailBits) {
  const TptTree tree = BuildTree(40, 22);
  std::string wire = Wire(FrozenTpt::Freeze(tree));
  const uint32_t num_nodes = ReadU32At(wire, kNumNodesOffset);
  const uint32_t num_entries = ReadU32At(wire, kNumEntriesOffset);
  // First entry's consequence word: set a bit beyond the declared
  // 10-bit width. FromWords asserts the zero-tail invariant, so the
  // parser must reject this before building any bitset.
  const size_t key_words_offset =
      kNodesOffset + 12 * num_nodes + 4 * num_entries;
  wire[key_words_offset + 7] =
      static_cast<char>(wire[key_words_offset + 7] | 0x80);
  RestampSectionCrc(&wire);
  const Status status = ParseStatus(wire);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("bits beyond declared width"),
            std::string::npos);
}

TEST(FrozenTptTest, ParseNeverCrashesOnAnyTruncation) {
  // Every strict prefix of a valid section must fail cleanly — the
  // bounds-checked reader and the body-size precheck leave no length at
  // which a read can run off the buffer.
  const std::string wire = Wire(FrozenTpt::Freeze(BuildTree(25, 23)));
  for (size_t len = 0; len < wire.size(); ++len) {
    size_t consumed = 0;
    StatusOr<FrozenTpt> parsed = FrozenTpt::Parse(wire.data(), len, &consumed);
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "prefix of " << len << " bytes";
  }
}

}  // namespace
}  // namespace hpm
