#include "tpt/key_tables.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

/// Region layout of the paper's Fig. 3 / Table I: R0^0 (offset 0),
/// R1^0 and R1^1 (offset 1), R2^0 and R2^1 (offset 2).
FrequentRegionSet PaperRegions() {
  FrequentRegionSet set;
  set.set_period(3);
  const std::vector<Timestamp> offsets = {0, 1, 1, 2, 2};
  for (size_t i = 0; i < offsets.size(); ++i) {
    FrequentRegion r;
    r.id = static_cast<int>(i);
    r.offset = offsets[i];
    r.center = {static_cast<double>(i) * 10, 0};
    r.mbr.Extend(r.center);
    r.support = 5;
    set.AddRegion(r);
  }
  return set;
}

/// The paper's four patterns (Fig. 3): P0: R0->R1^0 (0.9),
/// P1: R0->R1^1 (0.8), P2: R0^R1^0->R2^0 (0.5), P3: R0^R1^1->R2^1 (0.4).
std::vector<TrajectoryPattern> PaperPatterns() {
  std::vector<TrajectoryPattern> out(4);
  out[0] = {{0}, 1, 0.9, 9};
  out[1] = {{0}, 2, 0.8, 8};
  out[2] = {{0, 1}, 3, 0.5, 5};
  out[3] = {{0, 2}, 4, 0.4, 4};
  return out;
}

class KeyTablesPaperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    regions_ = PaperRegions();
    patterns_ = PaperPatterns();
    tables_ = KeyTables::Build(regions_, patterns_);
  }
  FrequentRegionSet regions_;
  std::vector<TrajectoryPattern> patterns_;
  KeyTables tables_;
};

TEST_F(KeyTablesPaperTest, KeyLengthsMatchTables) {
  // Table I: 5 regions -> premise keys of length 5.
  EXPECT_EQ(tables_.premise_key_length(), 5u);
  // Table II: consequences at offsets 1 and 2 -> length 2.
  EXPECT_EQ(tables_.consequence_key_length(), 2u);
  EXPECT_EQ(tables_.consequence_offsets(),
            (std::vector<Timestamp>{1, 2}));
}

TEST_F(KeyTablesPaperTest, TimeIdMapping) {
  EXPECT_EQ(tables_.TimeIdForOffset(1), 0);
  EXPECT_EQ(tables_.TimeIdForOffset(2), 1);
  EXPECT_EQ(tables_.TimeIdForOffset(0), -1);  // No pattern concludes at 0.
  EXPECT_EQ(tables_.OffsetForTimeId(0), 1);
  EXPECT_EQ(tables_.OffsetForTimeId(1), 2);
}

TEST_F(KeyTablesPaperTest, EncodePatternReproducesTableIII) {
  EXPECT_EQ(tables_.EncodePattern(patterns_[0], regions_).ToString(),
            "0100001");
  EXPECT_EQ(tables_.EncodePattern(patterns_[1], regions_).ToString(),
            "0100001");  // Same key for both offset-1 consequences.
  EXPECT_EQ(tables_.EncodePattern(patterns_[2], regions_).ToString(),
            "1000011");
  EXPECT_EQ(tables_.EncodePattern(patterns_[3], regions_).ToString(),
            "1000101");
}

TEST_F(KeyTablesPaperTest, EncodeQueryMatchesPaperExample) {
  // §VI-B: Jane's recent movements R0^0 and R1^0, tq = 2 -> 1000011.
  auto q = tables_.EncodeQuery({0, 1}, 2);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToString(), "1000011");
}

TEST_F(KeyTablesPaperTest, EncodeQueryUnknownOffsetIsNotFound) {
  EXPECT_EQ(tables_.EncodeQuery({0}, 0).status().code(),
            StatusCode::kNotFound);
}

TEST_F(KeyTablesPaperTest, EncodeQueryIntervalSetsAllCoveredOffsets) {
  const PatternKey k = tables_.EncodeQueryInterval({0}, 1, 2);
  EXPECT_EQ(k.consequence().Count(), 2u);
  const PatternKey only_two = tables_.EncodeQueryInterval({0}, 2, 5);
  EXPECT_EQ(only_two.consequence().Count(), 1u);
  EXPECT_TRUE(only_two.consequence().Test(1));
  const PatternKey none = tables_.EncodeQueryInterval({0}, 5, 9);
  EXPECT_TRUE(none.consequence().None());
}

TEST_F(KeyTablesPaperTest, EncodeQueryIntervalEmptyWhenReversed) {
  const PatternKey k = tables_.EncodeQueryInterval({0}, 3, 1);
  EXPECT_TRUE(k.consequence().None());
}

TEST(KeyTablesTest, EmptyPatternsGiveEmptyConsequenceTable) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, {});
  EXPECT_EQ(tables.consequence_key_length(), 0u);
  EXPECT_EQ(tables.premise_key_length(), 5u);
  EXPECT_EQ(tables.TimeIdForOffset(1), -1);
}

TEST(KeyTablesTest, EncodeQueryIntervalOnEmptyTablesHasNoConsequence) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, {});
  const PatternKey k = tables.EncodeQueryInterval({0}, 1, 4);
  EXPECT_TRUE(k.consequence().None());
  EXPECT_TRUE(k.premise().Test(0));
}

TEST(KeyTablesDeathTest, EncodeQueryBadRegionAborts) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, PaperPatterns());
  EXPECT_DEATH((void)tables.EncodeQuery({7}, 1), "HPM_CHECK");
}

TEST(KeyTablesDeathTest, EncodeQueryNegativeRegionAborts) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, PaperPatterns());
  EXPECT_DEATH((void)tables.EncodeQuery({-1}, 1), "HPM_CHECK");
}

TEST(KeyTablesDeathTest, EncodePatternUnknownConsequenceOffsetAborts) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, PaperPatterns());
  // Region 0 concludes at offset 0, which no pattern's consequence uses,
  // so the consequence-time table has no slot for it.
  const TrajectoryPattern rogue = {{1}, 0, 0.5, 3};
  EXPECT_DEATH((void)tables.EncodePattern(rogue, regions), "HPM_CHECK");
}

TEST(KeyTablesDeathTest, OffsetForTimeIdOutOfRangeAborts) {
  const FrequentRegionSet regions = PaperRegions();
  const KeyTables tables = KeyTables::Build(regions, PaperPatterns());
  EXPECT_DEATH((void)tables.OffsetForTimeId(99), "HPM_CHECK");
  EXPECT_DEATH((void)tables.OffsetForTimeId(-1), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
