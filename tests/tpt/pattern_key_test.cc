#include "tpt/pattern_key.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

PatternKey Key(const std::string& consequence, const std::string& premise) {
  return PatternKey(DynamicBitset::FromString(premise),
                    DynamicBitset::FromString(consequence));
}

TEST(PatternKeyTest, ZeroConstructed) {
  PatternKey k(5, 2);
  EXPECT_EQ(k.premise().size(), 5u);
  EXPECT_EQ(k.consequence().size(), 2u);
  EXPECT_EQ(k.Size(), 0u);
}

TEST(PatternKeyTest, ToStringPutsConsequenceFirst) {
  // Table III: pattern key 1000011 = consequence key 10, premise 00011.
  const PatternKey k = Key("10", "00011");
  EXPECT_EQ(k.ToString(), "1000011");
}

TEST(PatternKeyTest, SizeCountsBothParts) {
  EXPECT_EQ(Key("10", "00011").Size(), 3u);
  EXPECT_EQ(Key("00", "00000").Size(), 0u);
}

TEST(PatternKeyTest, UnionWith) {
  PatternKey a = Key("01", "00001");
  a.UnionWith(Key("10", "00010"));
  EXPECT_EQ(a.ToString(), "1100011");
}

TEST(PatternKeyTest, ContainsKeyRequiresBothParts) {
  const PatternKey big = Key("11", "00111");
  EXPECT_TRUE(big.ContainsKey(Key("01", "00101")));
  EXPECT_TRUE(big.ContainsKey(Key("00", "00000")));
  EXPECT_FALSE(big.ContainsKey(Key("01", "01000")));  // Premise outside.
  EXPECT_FALSE(Key("01", "00111").ContainsKey(Key("10", "00001")));
}

TEST(PatternKeyTest, DifferenceSumsBothParts) {
  const PatternKey a = Key("11", "00110");
  const PatternKey b = Key("01", "00011");
  // Consequence: bit 1 only in a (diff 1). Premise: bit 2 only in a
  // (diff 1). Total 2.
  EXPECT_EQ(a.DifferenceFrom(b), 2u);
  EXPECT_EQ(a.DifferenceFrom(a), 0u);
}

TEST(PatternKeyTest, IntersectsNeedsCommonOnesOnBothParts) {
  // Paper's Intersect: Size(ck1&ck2) > 0 AND Size(rk1&rk2) > 0.
  const PatternKey a = Key("10", "00011");
  EXPECT_TRUE(a.Intersects(Key("10", "00001")));
  EXPECT_FALSE(a.Intersects(Key("01", "00001")));  // Consequences disjoint.
  EXPECT_FALSE(a.Intersects(Key("10", "00100")));  // Premises disjoint.
  EXPECT_FALSE(a.Intersects(Key("01", "00100")));
}

TEST(PatternKeyTest, IntersectsConsequenceIgnoresPremise) {
  const PatternKey a = Key("10", "00011");
  EXPECT_TRUE(a.IntersectsConsequence(Key("10", "00100")));
  EXPECT_TRUE(a.IntersectsConsequence(Key("10", "00000")));
  EXPECT_FALSE(a.IntersectsConsequence(Key("01", "00011")));
}

TEST(PatternKeyTest, Equality) {
  EXPECT_EQ(Key("10", "00011"), Key("10", "00011"));
  EXPECT_NE(Key("10", "00011"), Key("01", "00011"));
  EXPECT_NE(Key("10", "00011"), Key("10", "00010"));
}

TEST(PatternKeyTest, PaperTableIIIKeys) {
  // Fig. 3 / Table III: four patterns over 5 regions and 2 consequence
  // offsets.
  EXPECT_EQ(Key("01", "00001").ToString(), "0100001");  // R0 -> R1^0.
  EXPECT_EQ(Key("01", "00001").ToString(), "0100001");  // R0 -> R1^1.
  EXPECT_EQ(Key("10", "00011").ToString(), "1000011");  // R0^R1 -> R2^0.
  EXPECT_EQ(Key("10", "00101").ToString(), "1000101");  // R0^R1' -> R2^1.
}

TEST(PatternKeyTest, MemoryBytesSumsParts) {
  const PatternKey k(100, 10);
  EXPECT_EQ(k.MemoryBytes(),
            k.premise().MemoryBytes() + k.consequence().MemoryBytes());
}

TEST(PatternKeyTest, IntersectSymmetryProperty) {
  Random rng(99);
  for (int round = 0; round < 100; ++round) {
    PatternKey a(20, 6), b(20, 6);
    for (size_t i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.25)) a.mutable_premise().Set(i);
      if (rng.Bernoulli(0.25)) b.mutable_premise().Set(i);
    }
    for (size_t i = 0; i < 6; ++i) {
      if (rng.Bernoulli(0.3)) a.mutable_consequence().Set(i);
      if (rng.Bernoulli(0.3)) b.mutable_consequence().Set(i);
    }
    // Intersect is symmetric.
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    // Contain implies Intersect unless the contained key has an empty
    // part.
    if (a.ContainsKey(b) && b.premise().Any() && b.consequence().Any()) {
      EXPECT_TRUE(a.Intersects(b));
    }
    // Union contains both operands.
    PatternKey u = a;
    u.UnionWith(b);
    EXPECT_TRUE(u.ContainsKey(a));
    EXPECT_TRUE(u.ContainsKey(b));
    // Difference of a from the union is zero.
    EXPECT_EQ(a.DifferenceFrom(u), 0u);
  }
}

}  // namespace
}  // namespace hpm
