#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <utility>
#include <vector>

namespace hpm {
namespace {

using Clock = CircuitBreakerOptions::Clock;
using State = CircuitBreaker::State;

struct ManualClock {
  Clock::time_point now{};
  std::function<Clock::time_point()> fn() {
    return [this] { return now; };
  }
  void Advance(std::chrono::microseconds d) { now += d; }
};

CircuitBreakerOptions SmallOptions(ManualClock* clock) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.min_samples = 4;
  options.failure_threshold = 0.5;
  options.open_duration = std::chrono::microseconds(1000);
  options.half_open_successes = 1;
  options.clock = clock->fn();
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAllowsEverything) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  EXPECT_EQ(breaker.state(), State::kClosed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreakerTest, TripsWhenFailureRateCrossesThreshold) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  // min_samples gates the trip: three failures are not enough evidence,
  // the fourth completes the window at 100% >= 50% and opens it.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kClosed);  // min_samples not reached.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, MinSamplesPreventsTrippingOnSparseData) {
  ManualClock clock;
  CircuitBreakerOptions options = SmallOptions(&clock);
  options.window = 8;
  options.min_samples = 6;
  CircuitBreaker breaker(options);
  // 100% failure rate but below min_samples: stays closed.
  for (int i = 0; i < 5; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.RecordFailure();  // Sixth sample trips it.
  EXPECT_EQ(breaker.state(), State::kOpen);
}

TEST(CircuitBreakerTest, SlidingWindowForgetsOldFailures) {
  ManualClock clock;
  CircuitBreakerOptions options = SmallOptions(&clock);
  options.window = 4;
  options.min_samples = 4;
  CircuitBreaker breaker(options);
  // Two old failures, then a run of successes pushing them out of the
  // window: the failure rate at every full-window point stays below 50%.
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  breaker.RecordSuccess();  // Window full: 25% < 50%.
  for (int i = 0; i < 10; ++i) breaker.RecordSuccess();
  breaker.RecordFailure();  // 1 failure in the last 4: 25%.
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, OpenBreakerAdmitsOneProbeAfterCooldown) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), State::kOpen);

  // Refused during the cooldown.
  EXPECT_FALSE(breaker.Allow());
  clock.Advance(std::chrono::microseconds(999));
  EXPECT_FALSE(breaker.Allow());

  // Cooldown over: exactly one probe is admitted.
  clock.Advance(std::chrono::microseconds(1));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // Second caller waits for the probe.

  // Successful probe closes the breaker.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithFreshCooldown) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  clock.Advance(std::chrono::microseconds(1000));
  ASSERT_TRUE(breaker.Allow());  // Probe.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The cooldown restarted: still refused until another full interval.
  clock.Advance(std::chrono::microseconds(999));
  EXPECT_FALSE(breaker.Allow());
  clock.Advance(std::chrono::microseconds(1));
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, MultipleHalfOpenSuccessesRequired) {
  ManualClock clock;
  CircuitBreakerOptions options = SmallOptions(&clock);
  options.half_open_successes = 3;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  clock.Advance(std::chrono::microseconds(1000));
  for (int probe = 0; probe < 2; ++probe) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordSuccess();
    EXPECT_EQ(breaker.state(), State::kHalfOpen);
  }
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();  // Third success closes.
  EXPECT_EQ(breaker.state(), State::kClosed);
}

TEST(CircuitBreakerTest, ClosingClearsTheWindow) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  clock.Advance(std::chrono::microseconds(1000));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  ASSERT_EQ(breaker.state(), State::kClosed);
  // The pre-trip failures were forgotten: it takes a full fresh window
  // of failures to trip again.
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), State::kOpen);
}

TEST(CircuitBreakerTest, ListenerSeesEveryTransition) {
  ManualClock clock;
  CircuitBreaker breaker(SmallOptions(&clock));
  std::vector<std::pair<State, State>> transitions;
  breaker.SetStateListener([&](State from, State to) {
    transitions.emplace_back(from, to);
  });
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  clock.Advance(std::chrono::microseconds(1000));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], std::make_pair(State::kClosed, State::kOpen));
  EXPECT_EQ(transitions[1], std::make_pair(State::kOpen, State::kHalfOpen));
  EXPECT_EQ(transitions[2], std::make_pair(State::kHalfOpen, State::kClosed));
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreaker::StateName(State::kClosed), "Closed");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kOpen), "Open");
  EXPECT_STREQ(CircuitBreaker::StateName(State::kHalfOpen), "HalfOpen");
}

}  // namespace
}  // namespace hpm
