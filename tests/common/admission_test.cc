#include "common/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/retry.h"

namespace hpm {
namespace {

using Clock = AdmissionOptions::Clock;

/// A clock the test advances by hand, making every admit/reject decision
/// deterministic.
struct ManualClock {
  Clock::time_point now{};
  std::function<Clock::time_point()> fn() {
    return [this] { return now; };
  }
  void Advance(std::chrono::microseconds d) { now += d; }
};

TEST(AdmissionTest, DefaultOptionsAdmitEverything) {
  AdmissionController controller(AdmissionOptions{});
  for (int i = 0; i < 1000; ++i) {
    auto ticket = controller.Admit("test");
    ASSERT_TRUE(ticket.ok());
  }
  EXPECT_EQ(controller.admitted_total(), 1000u);
  EXPECT_EQ(controller.rejected_total(), 0u);
}

TEST(AdmissionTest, TokenBucketEnforcesTheRate) {
  ManualClock clock;
  AdmissionOptions options;
  options.tokens_per_second = 10.0;  // One token per 100ms.
  options.burst = 2.0;
  options.clock = clock.fn();
  AdmissionController controller(options);

  // The bucket starts full: the burst is admitted...
  EXPECT_TRUE(controller.Admit("a").ok());
  EXPECT_TRUE(controller.Admit("b").ok());
  // ...and the next request is rejected as kUnavailable.
  auto rejected = controller.Admit("c");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  // 100ms later one token has refilled.
  clock.Advance(std::chrono::microseconds(100000));
  EXPECT_TRUE(controller.Admit("d").ok());
  EXPECT_FALSE(controller.Admit("e").ok());
  EXPECT_EQ(controller.admitted_total(), 3u);
  EXPECT_EQ(controller.rejected_total(), 2u);
}

TEST(AdmissionTest, RateRejectionCarriesAParsableRetryAfterHint) {
  ManualClock clock;
  AdmissionOptions options;
  options.tokens_per_second = 10.0;  // Empty bucket refills in ~100ms.
  options.burst = 1.0;
  options.clock = clock.fn();
  AdmissionController controller(options);
  ASSERT_TRUE(controller.Admit("a").ok());

  auto rejected = controller.Admit("b");
  ASSERT_FALSE(rejected.ok());
  const auto hint = RetryAfterHint(rejected.status());
  ASSERT_TRUE(hint.has_value());
  // An empty bucket at 10 tokens/s needs ~100ms for the next token.
  EXPECT_GT(*hint, std::chrono::microseconds(0));
  EXPECT_LE(*hint, std::chrono::microseconds(100000));
  // Waiting out the hint makes the next request succeed.
  clock.Advance(*hint);
  EXPECT_TRUE(controller.Admit("c").ok());
}

TEST(AdmissionTest, BucketNeverExceedsBurst) {
  ManualClock clock;
  AdmissionOptions options;
  options.tokens_per_second = 1000.0;
  options.burst = 3.0;
  options.clock = clock.fn();
  AdmissionController controller(options);
  // A long idle stretch must not bank more than `burst` tokens.
  clock.Advance(std::chrono::microseconds(60 * 1000 * 1000));
  EXPECT_DOUBLE_EQ(controller.available_tokens(), 3.0);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (controller.Admit("burst").ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
}

TEST(AdmissionTest, InFlightGaugeBoundsConcurrency) {
  AdmissionOptions options;
  options.max_in_flight = 2;
  AdmissionController controller(options);

  auto a = controller.Admit("a");
  auto b = controller.Admit("b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(controller.in_flight(), 2);

  auto c = controller.Admit("c");
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(RetryAfterHint(c.status()).has_value());

  // Releasing a ticket frees the slot.
  a->Release();
  EXPECT_EQ(controller.in_flight(), 1);
  EXPECT_TRUE(controller.Admit("d").ok());
}

TEST(AdmissionTest, TicketReleasesOnDestructionAndMove) {
  AdmissionOptions options;
  options.max_in_flight = 1;
  AdmissionController controller(options);
  {
    auto ticket = controller.Admit("a");
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(controller.in_flight(), 1);
    // Moving transfers ownership; only one release happens.
    AdmissionTicket moved = std::move(*ticket);
    EXPECT_EQ(controller.in_flight(), 1);
  }
  EXPECT_EQ(controller.in_flight(), 0);
  // Release is idempotent.
  auto ticket = controller.Admit("b");
  ASSERT_TRUE(ticket.ok());
  ticket->Release();
  ticket->Release();
  EXPECT_EQ(controller.in_flight(), 0);
}

TEST(AdmissionTest, GaugeIsExactUnderConcurrentTraffic) {
  AdmissionOptions options;
  options.max_in_flight = 4;
  AdmissionController controller(options);
  std::atomic<int> peak{0};
  std::atomic<int> current{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto ticket = controller.Admit("load");
        if (!ticket.ok()) continue;
        const int now = current.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        current.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The gauge never admitted more than the cap, and drained fully.
  EXPECT_LE(peak.load(), 4);
  EXPECT_EQ(controller.in_flight(), 0);
}

TEST(AdmissionTest, RetryWithBackoffHonorsTheHint) {
  // A status carrying a 5000us hint must floor the backoff sleep at
  // 5000us even though the policy caps its own backoff at 2us.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1);
  policy.max_backoff = std::chrono::microseconds(2);
  Random rng(7);
  int attempts = 0;
  std::vector<std::chrono::microseconds> sleeps;
  const Status status = RetryWithBackoff(
      policy, rng,
      [&]() -> Status {
        ++attempts;
        return AttachRetryAfter(Status::Unavailable("busy"),
                                std::chrono::microseconds(5000));
      },
      [&](std::chrono::microseconds d) { sleeps.push_back(d); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  for (const auto d : sleeps) {
    EXPECT_GE(d, std::chrono::microseconds(5000));
  }
}

}  // namespace
}  // namespace hpm
