#include "common/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

namespace hpm {
namespace {

/// Collects backoff durations instead of sleeping.
struct RecordingSleep {
  std::vector<std::chrono::microseconds>* slept;
  void operator()(std::chrono::microseconds d) const { slept->push_back(d); }
};

TEST(RetryTest, SucceedsFirstTryNoSleep) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return Status::OK();
      },
      RecordingSleep{&slept});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, RetriesUnavailableUntilSuccess) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return attempts < 3 ? Status::Unavailable("transient")
                            : Status::OK();
      },
      RecordingSleep{&slept});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  RetryPolicy policy;
  policy.max_attempts = 4;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      policy, rng,
      [&]() {
        ++attempts;
        return Status::Unavailable("still down");
      },
      RecordingSleep{&slept});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 4);
  EXPECT_EQ(slept.size(), 3u);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return Status::DataLoss("torn file");
      },
      RecordingSleep{&slept});
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, BackoffGrowsAndRespectsCap) {
  Random rng(7);
  std::vector<std::chrono::microseconds> slept;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.multiplier = 10.0;
  policy.max_backoff = std::chrono::microseconds(2000);
  policy.jitter = 0.0;
  RetryWithBackoff(
      policy, rng, [&]() { return Status::Unavailable("down"); },
      RecordingSleep{&slept});
  ASSERT_EQ(slept.size(), 5u);
  EXPECT_EQ(slept[0].count(), 100);
  EXPECT_EQ(slept[1].count(), 1000);
  EXPECT_EQ(slept[2].count(), 2000);  // capped
  EXPECT_EQ(slept[3].count(), 2000);
  EXPECT_EQ(slept[4].count(), 2000);
}

TEST(RetryTest, FullJitterDrawsFromTheWholeWindow) {
  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.multiplier = 1.0;  // fixed window: every sleep ~ U[0, 1000)
  policy.full_jitter = true;
  Random rng(1234);
  std::vector<std::chrono::microseconds> slept;
  RetryWithBackoff(
      policy, rng, [&]() { return Status::Unavailable("down"); },
      RecordingSleep{&slept});
  ASSERT_EQ(slept.size(), 39u);
  int64_t lo = slept[0].count(), hi = slept[0].count();
  for (const auto& sleep : slept) {
    EXPECT_GE(sleep.count(), 0);
    EXPECT_LT(sleep.count(), 1000);
    lo = std::min(lo, sleep.count());
    hi = std::max(hi, sleep.count());
  }
  // Scaled jitter would cluster around the midpoint; full jitter must
  // actually use both ends of the window.
  EXPECT_LT(lo, 300);
  EXPECT_GT(hi, 700);
}

TEST(RetryTest, RetryAfterHintFloorsTheFullJitterSleep) {
  // A server-supplied hint beats whatever the jitter drew — even above
  // max_backoff: the server knows its own refill schedule best.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.max_backoff = std::chrono::microseconds(200);
  policy.full_jitter = true;
  Random rng(7);
  std::vector<std::chrono::microseconds> slept;
  RetryWithBackoff(
      policy, rng,
      [&]() {
        return AttachRetryAfter(Status::Unavailable("busy"),
                                std::chrono::microseconds(5000));
      },
      RecordingSleep{&slept});
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0].count(), 5000);
  EXPECT_EQ(slept[1].count(), 5000);
}

TEST(RetryTest, RetryAfterHintRoundTripsThroughAMessage) {
  const Status hinted = AttachRetryAfter(Status::Unavailable("shed"),
                                         std::chrono::microseconds(12345));
  const auto hint = RetryAfterHint(hinted);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->count(), 12345);
  EXPECT_FALSE(RetryAfterHint(Status::Unavailable("bare")).has_value());
  EXPECT_FALSE(
      RetryAfterHint(Status::Unavailable("x [retry-after-us=oops]"))
          .has_value());
}

TEST(RetryTest, JitterIsDeterministicUnderSeed) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  const auto run = [&](uint64_t seed) {
    Random rng(seed);
    std::vector<std::chrono::microseconds> slept;
    RetryWithBackoff(
        policy, rng, [&]() { return Status::Unavailable("down"); },
        RecordingSleep{&slept});
    return slept;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(RetryTest, StatusOrResultPropagatesValue) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const StatusOr<int> result = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() -> StatusOr<int> {
        ++attempts;
        if (attempts < 2) return Status::Unavailable("transient");
        return 77;
      },
      RecordingSleep{&slept});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 77);
  EXPECT_EQ(attempts, 2);
}

TEST(RetryTest, StatusOrErrorAfterExhaustion) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  const StatusOr<int> result = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); },
      RecordingSleep{&slept});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RetryTest, IsRetryableOnlyForUnavailable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::DataLoss("x")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetryable(Status::Internal("x")));
}

}  // namespace
}  // namespace hpm
