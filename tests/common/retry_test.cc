#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace hpm {
namespace {

/// Collects backoff durations instead of sleeping.
struct RecordingSleep {
  std::vector<std::chrono::microseconds>* slept;
  void operator()(std::chrono::microseconds d) const { slept->push_back(d); }
};

TEST(RetryTest, SucceedsFirstTryNoSleep) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return Status::OK();
      },
      RecordingSleep{&slept});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, RetriesUnavailableUntilSuccess) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return attempts < 3 ? Status::Unavailable("transient")
                            : Status::OK();
      },
      RecordingSleep{&slept});
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  RetryPolicy policy;
  policy.max_attempts = 4;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      policy, rng,
      [&]() {
        ++attempts;
        return Status::Unavailable("still down");
      },
      RecordingSleep{&slept});
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(attempts, 4);
  EXPECT_EQ(slept.size(), 3u);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const Status status = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() {
        ++attempts;
        return Status::DataLoss("torn file");
      },
      RecordingSleep{&slept});
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(slept.empty());
}

TEST(RetryTest, BackoffGrowsAndRespectsCap) {
  Random rng(7);
  std::vector<std::chrono::microseconds> slept;
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = std::chrono::microseconds(100);
  policy.multiplier = 10.0;
  policy.max_backoff = std::chrono::microseconds(2000);
  policy.jitter = 0.0;
  RetryWithBackoff(
      policy, rng, [&]() { return Status::Unavailable("down"); },
      RecordingSleep{&slept});
  ASSERT_EQ(slept.size(), 5u);
  EXPECT_EQ(slept[0].count(), 100);
  EXPECT_EQ(slept[1].count(), 1000);
  EXPECT_EQ(slept[2].count(), 2000);  // capped
  EXPECT_EQ(slept[3].count(), 2000);
  EXPECT_EQ(slept[4].count(), 2000);
}

TEST(RetryTest, JitterIsDeterministicUnderSeed) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  const auto run = [&](uint64_t seed) {
    Random rng(seed);
    std::vector<std::chrono::microseconds> slept;
    RetryWithBackoff(
        policy, rng, [&]() { return Status::Unavailable("down"); },
        RecordingSleep{&slept});
    return slept;
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(RetryTest, StatusOrResultPropagatesValue) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  int attempts = 0;
  const StatusOr<int> result = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() -> StatusOr<int> {
        ++attempts;
        if (attempts < 2) return Status::Unavailable("transient");
        return 77;
      },
      RecordingSleep{&slept});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 77);
  EXPECT_EQ(attempts, 2);
}

TEST(RetryTest, StatusOrErrorAfterExhaustion) {
  Random rng(1);
  std::vector<std::chrono::microseconds> slept;
  const StatusOr<int> result = RetryWithBackoff(
      RetryPolicy{}, rng,
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); },
      RecordingSleep{&slept});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(RetryTest, IsRetryableOnlyForUnavailable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::DataLoss("x")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetryable(Status::Internal("x")));
}

}  // namespace
}  // namespace hpm
