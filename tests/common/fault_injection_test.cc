// FaultInjector unit tests. These exercise the injector class directly, so
// they run (and pass) in every build; only the HPM_FAULT_* macro expansion
// differs between builds, which MacroDisabledInNormalBuilds covers.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <string>

namespace hpm {
namespace {

/// Each test works on its own injector state.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, UnarmedSiteReturnsOkAndCounts) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.calls("test/site"), 2);
  EXPECT_EQ(injector.fires("test/site"), 0);
}

TEST_F(FaultInjectionTest, AlwaysRuleFiresEveryCall) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.always = true;
  rule.code = StatusCode::kUnavailable;
  rule.message = "disk on fire";
  injector.Arm("test/site", rule);
  const Status status = injector.Hit("test/site");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("test/site"), std::string::npos);
  EXPECT_NE(status.message().find("disk on fire"), std::string::npos);
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.fires("test/site"), 2);
}

TEST_F(FaultInjectionTest, NthCallFiresExactlyOnce) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.nth_call = 3;
  injector.Arm("test/site", rule);
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.calls("test/site"), 4);
  EXPECT_EQ(injector.fires("test/site"), 1);
}

TEST_F(FaultInjectionTest, FromNthCallFailsForeverAfter) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.from_nth_call = 2;
  injector.Arm("test/site", rule);
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.fires("test/site"), 3);
}

TEST_F(FaultInjectionTest, MaxFiresCapsFailures) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.always = true;
  rule.max_fires = 2;
  injector.Arm("test/site", rule);
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_FALSE(injector.Hit("test/site").ok());
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.fires("test/site"), 2);
}

TEST_F(FaultInjectionTest, ProbabilityIsDeterministicUnderSeed) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.probability = 0.5;
  const auto run_schedule = [&](uint64_t seed) {
    injector.Reset();
    injector.Seed(seed);
    injector.Arm("test/site", rule);
    std::string outcome;
    for (int i = 0; i < 64; ++i) {
      outcome += injector.Hit("test/site").ok() ? '.' : 'X';
    }
    return outcome;
  };
  const std::string first = run_schedule(1234);
  const std::string second = run_schedule(1234);
  const std::string different = run_schedule(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, different);  // 2^-64 chance of a false failure
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
}

TEST_F(FaultInjectionTest, DisarmStopsFiringButKeepsCounters) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.always = true;
  injector.Arm("test/site", rule);
  EXPECT_FALSE(injector.Hit("test/site").ok());
  injector.Disarm("test/site");
  EXPECT_TRUE(injector.Hit("test/site").ok());
  EXPECT_EQ(injector.calls("test/site"), 2);
  EXPECT_EQ(injector.fires("test/site"), 1);
}

TEST_F(FaultInjectionTest, ResetCountersKeepsRules) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.nth_call = 1;
  injector.Arm("test/site", rule);
  EXPECT_FALSE(injector.Hit("test/site").ok());
  injector.ResetCounters();
  EXPECT_EQ(injector.calls("test/site"), 0);
  // nth_call counts from the reset, so the rule fires again.
  EXPECT_FALSE(injector.Hit("test/site").ok());
}

TEST_F(FaultInjectionTest, SitesListsEverythingTouched) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Hit("b/site");
  injector.Arm("a/site", FaultRule{});
  const std::vector<std::string> sites = injector.Sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "a/site");
  EXPECT_EQ(sites[1], "b/site");
}

TEST_F(FaultInjectionTest, CustomCodePropagates) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.always = true;
  rule.code = StatusCode::kDataLoss;
  injector.Arm("test/site", rule);
  EXPECT_EQ(injector.Hit("test/site").code(), StatusCode::kDataLoss);
}

TEST_F(FaultInjectionTest, KnownSitesAreNamedAndUnique) {
  ASSERT_GE(kNumKnownFaultSites, 5);
  for (int i = 0; i < kNumKnownFaultSites; ++i) {
    EXPECT_NE(kKnownFaultSites[i], nullptr);
    for (int j = i + 1; j < kNumKnownFaultSites; ++j) {
      EXPECT_STRNE(kKnownFaultSites[i], kKnownFaultSites[j]);
    }
  }
}

TEST_F(FaultInjectionTest, MacroMatchesBuildConfiguration) {
  FaultInjector& injector = FaultInjector::Global();
  FaultRule rule;
  rule.always = true;
  injector.Arm("test/macro", rule);
  const Status status = HPM_FAULT_HIT("test/macro");
#ifdef HPM_ENABLE_FAULTS
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(injector.calls("test/macro"), 1);
#else
  // Hooks compiled out: the macro is a constant OK and never reaches the
  // injector.
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(injector.calls("test/macro"), 0);
#endif
}

}  // namespace
}  // namespace hpm
