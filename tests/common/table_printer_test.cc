#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace hpm {
namespace {

std::string CaptureTable(const TablePrinter& t, bool csv) {
  std::FILE* tmp = std::tmpfile();
  EXPECT_NE(tmp, nullptr);
  if (csv) {
    t.PrintCsv(tmp);
  } else {
    t.Print(tmp);
  }
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) {
    out.append(buf, n);
  }
  std::fclose(tmp);
  return out;
}

TEST(TablePrinterTest, CountsRowsAndColumns) {
  TablePrinter t({"a", "b"});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, AlignedOutputContainsHeadersAndCells) {
  TablePrinter t({"eps", "patterns"});
  t.AddRow({"22", "1034"});
  t.AddRow({"38", "65558"});
  const std::string out = CaptureTable(t, false);
  EXPECT_NE(out.find("eps"), std::string::npos);
  EXPECT_NE(out.find("65558"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"x", "y", "z"});
  t.AddRow({"1"});
  const std::string out = CaptureTable(t, true);
  EXPECT_NE(out.find("1,,"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t({"name"});
  t.AddRow({"a,b"});
  t.AddRow({"quote\"inside"});
  const std::string out = CaptureTable(t, true);
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TablePrinterTest, CsvPlainFieldsUnquoted) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(CaptureTable(t, true), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatDoublePrecision) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterDeathTest, RowWiderThanHeaderAborts) {
  TablePrinter t({"only"});
  EXPECT_DEATH(t.AddRow({"a", "b"}), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
