#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace hpm {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The canonical IEEE check value.
  EXPECT_EQ(Crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(std::string("")), 0u);
  EXPECT_EQ(Crc32(std::string("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, ChunkedEqualsWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32(data.data(), split);
    const uint32_t chunked = Crc32(data.data() + split, data.size() - split,
                                   head);
    EXPECT_EQ(chunked, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "hpm model bytes";
  const uint32_t clean = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32(data), clean) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace hpm
