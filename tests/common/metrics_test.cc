#include "common/metrics.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace hpm {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyHistogramTest, BucketIndexIsBitWidth) {
  // Bucket i holds samples with bit width i: 0 -> 0, 1 -> 1, [2,3] -> 2,
  // [4,7] -> 3, ...
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(7), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 4u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1000), 10u);
}

TEST(LatencyHistogramTest, LastBucketSaturates) {
  const size_t last = LatencyHistogram::kNumBuckets - 1;
  EXPECT_EQ(LatencyHistogram::BucketIndex(~uint64_t{0}), last);
  EXPECT_EQ(LatencyHistogram::BucketIndex(uint64_t{1} << 60), last);
}

TEST(LatencyHistogramTest, SnapshotCountsSumAndMean) {
  LatencyHistogram h;
  h.RecordMicros(10);
  h.RecordMicros(20);
  h.RecordMicros(30);
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_micros, 60u);
  EXPECT_DOUBLE_EQ(snap.mean_micros(), 20.0);
  // 10 and 20/30 land in buckets bit_width(10)=4 and bit_width(20|30)=5.
  EXPECT_EQ(snap.buckets[4], 1u);
  EXPECT_EQ(snap.buckets[5], 2u);
}

TEST(LatencyHistogramTest, RecordDurationFloorsToMicros) {
  LatencyHistogram h;
  h.Record(std::chrono::milliseconds(2));
  h.Record(std::chrono::nanoseconds(500));  // Floors to 0us.
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum_micros, 2000u);
  EXPECT_EQ(snap.buckets[0], 1u);
}

TEST(LatencyHistogramTest, PercentileReturnsBucketUpperBound) {
  LatencyHistogram h;
  // 99 samples at ~100us (bucket 7, upper bound 128), one at ~100ms
  // (bucket 17, upper bound 131072).
  for (int i = 0; i < 99; ++i) h.RecordMicros(100);
  h.RecordMicros(100000);
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.PercentileMicros(50), 128.0);
  EXPECT_DOUBLE_EQ(snap.PercentileMicros(99), 128.0);
  EXPECT_DOUBLE_EQ(snap.PercentileMicros(100), 131072.0);
}

TEST(LatencyHistogramTest, EmptyPercentileIsZero) {
  LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.TakeSnapshot().PercentileMicros(99), 0.0);
}

TEST(MetricsRegistryTest, GetCounterIsIdempotentAndStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(registry.GetCounter("x")->value(), 7u);
  EXPECT_NE(registry.GetCounter("y"), a);
}

TEST(MetricsRegistryTest, GetHistogramIsIdempotentAndStable) {
  MetricsRegistry registry;
  LatencyHistogram* a = registry.GetHistogram("lat");
  EXPECT_EQ(a, registry.GetHistogram("lat"));
  a->RecordMicros(5);
  EXPECT_EQ(registry.GetHistogram("lat")->TakeSnapshot().count, 1u);
}

TEST(MetricsRegistryTest, SnapshotReflectsAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(3);
  registry.GetCounter("b");
  registry.GetHistogram("h")->RecordMicros(12);
  const MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counter("a"), 3u);
  EXPECT_EQ(snap.counter("b"), 0u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsSnapshotTest, ToJsonContainsNamesAndValues) {
  MetricsRegistry registry;
  registry.GetCounter("requests")->Increment(5);
  registry.GetHistogram("latency_us")->RecordMicros(100);
  const std::string json = registry.TakeSnapshot().ToJson();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("5"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
}

}  // namespace
}  // namespace hpm
