#include "common/deadline.h"

#include <gtest/gtest.h>

#include <chrono>

namespace hpm {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
}

TEST(DeadlineTest, ExpiredIsExpired) {
  const Deadline d = Deadline::Expired();
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, FarFutureDeadlineNotExpired) {
  const Deadline d = Deadline::After(std::chrono::hours(24));
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::hours(23));
}

TEST(DeadlineTest, AfterMillisExpiresOnceElapsed) {
  const Deadline d = Deadline::AfterMillis(1);
  const auto until = Deadline::Clock::now() + std::chrono::milliseconds(5);
  while (Deadline::Clock::now() < until) {
  }
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, CopyKeepsExpiry) {
  const Deadline d = Deadline::Expired();
  const Deadline copy = d;
  EXPECT_TRUE(copy.expired());
}

}  // namespace
}  // namespace hpm
