#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm {
namespace {

/// Busy-waits long enough to be measurable on any clock.
void Burn(int64_t micros) {
  Stopwatch w;
  volatile double sink = 0.0;
  while (w.ElapsedMicros() < micros) {
    sink = sink + std::sqrt(sink + 1.0);
  }
}

TEST(StopwatchTest, StartsNearZero) {
  Stopwatch w;
  EXPECT_LT(w.ElapsedMicros(), 10000);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch w;
  int64_t previous = 0;
  for (int i = 0; i < 5; ++i) {
    Burn(200);
    const int64_t now = w.ElapsedMicros();
    EXPECT_GE(now, previous);
    previous = now;
  }
  EXPECT_GE(previous, 1000);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch w;
  Burn(2000);
  const int64_t micros = w.ElapsedMicros();
  const double millis = w.ElapsedMillis();
  const double seconds = w.ElapsedSeconds();
  EXPECT_NEAR(millis, static_cast<double>(micros) / 1000.0,
              static_cast<double>(micros) * 0.5);
  EXPECT_NEAR(seconds, millis / 1000.0, millis);
  EXPECT_GE(micros, 2000);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch w;
  Burn(2000);
  EXPECT_GE(w.ElapsedMicros(), 2000);
  w.Restart();
  EXPECT_LT(w.ElapsedMicros(), 2000);
}

}  // namespace
}  // namespace hpm
