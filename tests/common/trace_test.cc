#include "common/trace.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace hpm {
namespace {

TEST(TraceTest, DisabledTraceIsInert) {
  Trace trace;  // Default: disabled.
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.BeginSpan("root"), -1);
  trace.EndSpan(-1);
  trace.AddCounter("x", 1);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.counters().empty());
}

TEST(TraceTest, SpansNestByParentIndex) {
  Trace trace(/*enabled=*/true);
  const int root = trace.BeginSpan("query");
  const int child = trace.BeginSpan("fanout", root);
  const int grandchild = trace.BeginSpan("shard", child);
  trace.EndSpan(grandchild);
  trace.EndSpan(child);
  trace.EndSpan(root);

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "fanout");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "shard");
  EXPECT_EQ(spans[2].parent, child);
  EXPECT_EQ(spans[2].depth, 2);
  for (const TraceSpan& span : spans) EXPECT_TRUE(span.finished);
}

TEST(TraceTest, EndSpanIsIdempotent) {
  Trace trace(/*enabled=*/true);
  const int id = trace.BeginSpan("once");
  trace.EndSpan(id);
  const uint64_t duration = trace.spans()[0].duration_micros;
  trace.EndSpan(id);  // Second end must not restamp the duration.
  EXPECT_EQ(trace.spans()[0].duration_micros, duration);
}

TEST(TraceTest, UnfinishedSpansAreVisible) {
  Trace trace(/*enabled=*/true);
  trace.BeginSpan("open");
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].finished);
  EXPECT_EQ(spans[0].duration_micros, 0u);
}

TEST(TraceTest, CountersAccumulateByName) {
  Trace trace(/*enabled=*/true);
  trace.AddCounter("objects", 2);
  trace.AddCounter("objects", 3);
  trace.AddCounter("shards", 1);
  const auto counters = trace.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "objects");
  EXPECT_EQ(counters[0].second, 5u);
  EXPECT_EQ(counters[1].first, "shards");
  EXPECT_EQ(counters[1].second, 1u);
}

TEST(TraceTest, ScopedSpanEndsOnScopeExit) {
  Trace trace(/*enabled=*/true);
  int child_id = -1;
  {
    ScopedSpan root(&trace, "root");
    ScopedSpan child(&trace, "inner", root.id());
    child_id = child.id();
    EXPECT_GE(child_id, 0);
  }
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].finished);
  EXPECT_TRUE(spans[1].finished);
  EXPECT_EQ(spans[1].parent, 0);
}

TEST(TraceTest, ConcurrentSpansFromWorkersAreAllRecorded) {
  Trace trace(/*enabled=*/true);
  const int root = trace.BeginSpan("fanout");
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, root] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span(&trace, "work", root);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  trace.EndSpan(root);
  EXPECT_EQ(trace.spans().size(), 1u + kThreads * kSpansPerThread);
}

TEST(TraceTest, ToStringRendersTreeAndCounters) {
  Trace trace(/*enabled=*/true);
  const int root = trace.BeginSpan("range");
  const int child = trace.BeginSpan("merge", root);
  trace.EndSpan(child);
  trace.EndSpan(root);
  trace.AddCounter("hits", 7);
  const std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("range"), std::string::npos);
  EXPECT_NE(rendered.find("merge"), std::string::npos);
  EXPECT_NE(rendered.find("hits"), std::string::npos);
}

}  // namespace
}  // namespace hpm
