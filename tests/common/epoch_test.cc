// Deterministic epoch-reclamation schedules: every test constructs the
// manager with auto_reclaim = false, so nothing advances or frees except
// where the test says so — pin / retire / advance / reclaim interleavings
// are replayed exactly, and the assertions are on the reclamation
// *invariants* the serving layer depends on:
//   * an object is never freed while any reader pinned at or before its
//     retirement epoch is still pinned,
//   * the limbo list drains exactly once (each deleter runs once),
//   * a stalled reader blocks reclamation of newer retirements but never
//     blocks publication (retiring and advancing proceed freely).

#include "common/epoch.h"

#include <atomic>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "gtest/gtest.h"

namespace hpm {
namespace {

EpochOptions ManualOptions() {
  EpochOptions options;
  options.auto_reclaim = false;
  return options;
}

/// A retire-able object whose destruction flips a flag exactly once.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter(counter) {}
  ~Tracked() { counter->fetch_add(1); }
  std::atomic<int>* counter;
};

TEST(EpochTest, RetireWithoutReadersFreesAfterAdvance) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};
  epoch.Retire(new Tracked(&freed));

  // Not free-able yet: the epoch has not advanced past the retirement.
  EXPECT_EQ(epoch.TryReclaim(), 0u);
  EXPECT_EQ(freed.load(), 0);

  epoch.Advance();
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, PinnedReaderBlocksFreeUntilRelease) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};

  EpochManager::Guard guard = epoch.Pin();
  epoch.Retire(new Tracked(&freed));
  epoch.Advance();

  // The reader pinned at (or before) the retirement epoch: the snapshot
  // must survive, no matter how many reclaim attempts run.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(epoch.TryReclaim(), 0u);
  }
  EXPECT_EQ(freed.load(), 0);

  guard.Release();
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, ReaderPinnedAfterAdvanceDoesNotBlockOlderRetirement) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};

  epoch.Retire(new Tracked(&freed));
  epoch.Advance();

  // This reader pinned *after* the advance; it can only see the new
  // snapshot, so the old one is free-able under it.
  EpochManager::Guard late = epoch.Pin();
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, LimboDrainsExactlyOnce) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};
  constexpr int kObjects = 16;
  for (int i = 0; i < kObjects; ++i) {
    epoch.Retire(new Tracked(&freed));
    epoch.Advance();
  }
  size_t total = 0;
  // Repeated reclaim attempts must free each entry exactly once.
  for (int i = 0; i < 4; ++i) total += epoch.TryReclaim();
  EXPECT_EQ(total, static_cast<size_t>(kObjects));
  EXPECT_EQ(freed.load(), kObjects);
  EXPECT_EQ(epoch.stats().limbo_size, 0u);
}

TEST(EpochTest, StalledReaderBlocksReclamationButNotPublication) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};

  EpochManager::Guard stalled = epoch.Pin();
  const uint64_t pin_epoch = stalled.epoch();

  // Publication never waits for readers: writers keep retiring and the
  // epoch keeps advancing while the reader stalls.
  constexpr int kSwaps = 8;
  for (int i = 0; i < kSwaps; ++i) {
    epoch.Retire(new Tracked(&freed));
    EXPECT_GT(epoch.Advance(), pin_epoch);
  }
  EXPECT_EQ(epoch.stats().limbo_size, static_cast<uint64_t>(kSwaps));

  // ...but none of those retirements may be freed under the stalled pin.
  EXPECT_EQ(epoch.TryReclaim(), 0u);
  EXPECT_EQ(freed.load(), 0);

  stalled.Release();
  EXPECT_EQ(epoch.TryReclaim(), static_cast<size_t>(kSwaps));
  EXPECT_EQ(freed.load(), kSwaps);
}

TEST(EpochTest, OldRetirementFreesUnderNewerPin) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};

  // Retire A at epoch e, advance, then pin: the pin is at e+1.
  epoch.Retire(new Tracked(&freed));
  epoch.Advance();
  EpochManager::Guard reader = epoch.Pin();

  // Retire B under the pin.
  epoch.Retire(new Tracked(&freed));
  epoch.Advance();

  // A frees (pinned after its advance); B stays (pinned at/before).
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);

  reader.Release();
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochTest, AutoReclaimFreesOnRetireWhenUnpinned) {
  EpochManager epoch;  // auto_reclaim = true
  std::atomic<int> freed{0};
  epoch.Retire(new Tracked(&freed));
  // Retire advanced and reclaimed in one call: nothing lingers.
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(epoch.stats().limbo_size, 0u);
}

TEST(EpochTest, AutoReclaimHonoursPins) {
  EpochManager epoch;
  std::atomic<int> freed{0};
  {
    EpochManager::Guard guard = epoch.Pin();
    epoch.Retire(new Tracked(&freed));
    EXPECT_EQ(freed.load(), 0);
  }
  // The next retirement's reclaim pass sweeps the earlier one too.
  epoch.Retire(new Tracked(&freed));
  EXPECT_EQ(freed.load(), 2);
}

TEST(EpochTest, DestructorDrainsLimbo) {
  std::atomic<int> freed{0};
  {
    EpochManager epoch(ManualOptions());
    for (int i = 0; i < 5; ++i) epoch.Retire(new Tracked(&freed));
    EXPECT_EQ(freed.load(), 0);
  }
  EXPECT_EQ(freed.load(), 5);
}

TEST(EpochTest, GuardMoveTransfersThePin) {
  EpochManager epoch(ManualOptions());
  EpochManager::Guard a = epoch.Pin();
  EXPECT_EQ(epoch.stats().pinned_readers, 1u);

  EpochManager::Guard b = std::move(a);
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move): post-move
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(epoch.stats().pinned_readers, 1u);

  b.Release();
  EXPECT_EQ(epoch.stats().pinned_readers, 0u);
  b.Release();  // Idempotent.
  EXPECT_EQ(epoch.stats().pinned_readers, 0u);
}

TEST(EpochTest, MoveAssignReleasesTheOverwrittenPin) {
  EpochManager epoch(ManualOptions());
  std::atomic<int> freed{0};

  EpochManager::Guard a = epoch.Pin();
  epoch.Retire(new Tracked(&freed));
  epoch.Advance();

  // Overwriting a's pin with a fresh (post-advance) pin releases the old
  // one, so the retirement becomes free-able.
  a = epoch.Pin();
  EXPECT_EQ(epoch.stats().pinned_readers, 1u);
  EXPECT_EQ(epoch.TryReclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
}

TEST(EpochTest, NestedPinsOnOneThreadEachHoldTheirOwnSlot) {
  EpochManager epoch(ManualOptions());
  EpochManager::Guard outer = epoch.Pin();
  epoch.Advance();
  EpochManager::Guard inner = epoch.Pin();
  EXPECT_EQ(epoch.stats().pinned_readers, 2u);
  EXPECT_LT(outer.epoch(), inner.epoch());
  inner.Release();
  EXPECT_EQ(epoch.stats().pinned_readers, 1u);
  outer.Release();
}

TEST(EpochTest, StatsAndMetricsCountersTrackTheLifecycle) {
  MetricsRegistry registry;
  EpochOptions options = ManualOptions();
  options.pinned_counter = registry.GetCounter("epoch.pinned");
  options.retired_counter = registry.GetCounter("epoch.retired");
  options.freed_counter = registry.GetCounter("epoch.freed");
  EpochManager epoch(options);

  std::atomic<int> freed{0};
  {
    EpochManager::Guard guard = epoch.Pin();
    epoch.Retire(new Tracked(&freed));
    epoch.Advance();
    epoch.TryReclaim();  // Blocked by the pin.
  }
  epoch.TryReclaim();

  const EpochStats stats = epoch.stats();
  EXPECT_EQ(stats.retired_total, 1u);
  EXPECT_EQ(stats.freed_total, 1u);
  EXPECT_EQ(stats.limbo_size, 0u);
  EXPECT_EQ(stats.pinned_readers, 0u);

  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counter("epoch.pinned"), 1u);
  EXPECT_EQ(snapshot.counter("epoch.retired"), 1u);
  EXPECT_EQ(snapshot.counter("epoch.freed"), 1u);
}

TEST(EpochTest, SlotExhaustionWaitsInsteadOfFailing) {
  EpochOptions options = ManualOptions();
  options.max_readers = 2;
  EpochManager epoch(options);

  EpochManager::Guard a = epoch.Pin();
  EpochManager::Guard b = epoch.Pin();

  // A third pin must wait for a slot; release one from another thread.
  std::atomic<bool> pinned{false};
  std::thread waiter([&] {
    EpochManager::Guard c = epoch.Pin();
    pinned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  a.Release();
  waiter.join();
  EXPECT_TRUE(pinned.load());
}

/// Small concurrent smoke: the heavyweight schedules live in
/// tests/server/epoch_stress_test.cc; this one just proves the manager
/// itself survives concurrent pin/retire churn with every deleter
/// running exactly once.
TEST(EpochTest, ConcurrentPinRetireSmoke) {
  EpochManager epoch;
  std::atomic<int> freed{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kOps = 200;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) epoch.Retire(new Tracked(&freed));
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        EpochManager::Guard guard = epoch.Pin();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  epoch.Advance();
  epoch.TryReclaim();
  EXPECT_EQ(freed.load(), kWriters * kOps);
  EXPECT_EQ(epoch.stats().limbo_size, 0u);
}

}  // namespace
}  // namespace hpm
