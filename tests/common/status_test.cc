#include "common/status.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string name;
  };
  const std::vector<Case> cases = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("missing"), StatusCode::kNotFound, "NotFound"},
      {Status::FailedPrecondition("early"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::OutOfRange("far"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Internal("bug"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("todo"), StatusCode::kUnimplemented,
       "Unimplemented"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ToStringWithoutMessage) {
  Status s(StatusCode::kInternal, "");
  EXPECT_EQ(s.ToString(), "Internal");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  ASSERT_TRUE(v.ok());
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::vector<int>> v(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::vector<int>> v(std::vector<int>{1});
  v->push_back(2);
  EXPECT_EQ(v.value().size(), 2u);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  HPM_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(5).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH({ (void)v.value(); }, "StatusOr::value");
}

TEST(StatusOrDeathTest, ConstructFromOkStatusAborts) {
  EXPECT_DEATH({ StatusOr<int> v{Status::OK()}; }, "OK status");
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ HPM_CHECK(1 == 2); }, "HPM_CHECK failed");
}

}  // namespace
}  // namespace hpm
