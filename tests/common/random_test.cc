#include "common/random.h"

#include <gtest/gtest.h>

#include "proptest/proptest.h"

#include <cmath>
#include <set>
#include <vector>

namespace hpm {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformStaysInRange) {
  const uint64_t seed = proptest::SeedForTest(7);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  const uint64_t seed = proptest::SeedForTest(11);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformIntInclusiveBounds) {
  const uint64_t seed = proptest::SeedForTest(13);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, UniformIntSingleton) {
  const uint64_t seed = proptest::SeedForTest(17);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  const uint64_t seed = proptest::SeedForTest(19);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextDoubleMeanNearHalf) {
  const uint64_t seed = proptest::SeedForTest(23);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, UniformDoubleRespectsBounds) {
  const uint64_t seed = proptest::SeedForTest(29);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble(-2.5, 7.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 7.5);
  }
}

TEST(RandomTest, GaussianMomentsApproximatelyStandard) {
  const uint64_t seed = proptest::SeedForTest(31);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RandomTest, GaussianShiftAndScale) {
  const uint64_t seed = proptest::SeedForTest(37);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RandomTest, BernoulliEdgeProbabilities) {
  const uint64_t seed = proptest::SeedForTest(41);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RandomTest, BernoulliFrequencyMatchesP) {
  const uint64_t seed = proptest::SeedForTest(43);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RandomUniformSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomUniformSweep, ModuloUnbiasedWithinTolerance) {
  const uint64_t n = GetParam();
  const uint64_t seed = proptest::SeedForTest(n * 7 + 1);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::vector<int> counts(static_cast<size_t>(n), 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    ++counts[static_cast<size_t>(rng.Uniform(n))];
  }
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomUniformSweep,
                         ::testing::Values(2, 3, 5, 10, 16, 33));

}  // namespace
}  // namespace hpm
