#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace hpm {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasksExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TasksReturnDistinctValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(50);
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  long long sum = 0;
  for (std::future<int>& f : futures) sum += f.get();
  // Sum of squares 0..49.
  EXPECT_EQ(sum, 49LL * 50 * 99 / 6);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);  // Single worker: tasks queue up behind the sleep.
    futures.push_back(pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }));
    for (int i = 0; i < 10; ++i) {
      futures.push_back(pool.Submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
  }  // Destructor must let every queued task run before joining.
  EXPECT_EQ(ran.load(), 10);
  for (std::future<void>& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::future<int> outer = pool.Submit([&pool] {
    // Fire-and-forget leaf task submitted from inside a worker.
    pool.Submit([] {}).wait();
    return 7;
  });
  EXPECT_EQ(outer.get(), 7);
}

TEST(ThreadPoolDeathTest, RejectsZeroThreads) {
  EXPECT_DEATH(ThreadPool{0}, "HPM_CHECK");
}

// ---- Bounded queue / backpressure -----------------------------------------

/// A pool whose single worker is parked on a latch, so the queue's
/// contents are fully under the test's control.
struct BlockedPool {
  explicit BlockedPool(size_t max_queue_depth)
      : pool(ThreadPoolOptions{1, max_queue_depth}) {
    gate_future = pool.Submit([this] { gate.get_future().wait(); });
    // Wait until the worker has actually *started* the blocking task, so
    // later submissions sit in the queue rather than racing it.
    while (pool.in_flight() == 0) std::this_thread::yield();
  }
  ~BlockedPool() { Open(); }
  void Open() {
    if (!opened) {
      gate.set_value();
      opened = true;
    }
  }
  ThreadPool pool;
  std::promise<void> gate;
  std::future<void> gate_future;
  bool opened = false;
};

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueIsFull) {
  BlockedPool blocked(2);
  auto a = blocked.pool.TrySubmit([] { return 1; });
  auto b = blocked.pool.TrySubmit([] { return 2; });
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(blocked.pool.queue_depth(), 2u);
  // Third queued task exceeds max_queue_depth=2: backpressure.
  auto c = blocked.pool.TrySubmit([] { return 3; });
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  // Unbounded Submit still accepts (legacy path ignores the bound).
  std::future<int> d = blocked.pool.Submit([] { return 4; });
  blocked.Open();
  EXPECT_EQ(a->get(), 1);
  EXPECT_EQ(b->get(), 2);
  EXPECT_EQ(d.get(), 4);
}

TEST(ThreadPoolTest, TrySubmitUnboundedOnlyRejectsDuringShutdown) {
  ThreadPool pool(ThreadPoolOptions{1, 0});
  auto ok = pool.TrySubmit([] { return 5; });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->get(), 5);
  pool.Shutdown();
  auto rejected = pool.TrySubmit([] { return 6; });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
}

TEST(ThreadPoolTest, QueueDepthAndInFlightTrackTheWorker) {
  BlockedPool blocked(0);
  EXPECT_EQ(blocked.pool.in_flight(), 1);
  EXPECT_EQ(blocked.pool.queue_depth(), 0u);
  std::future<void> queued = blocked.pool.Submit([] {});
  EXPECT_EQ(blocked.pool.queue_depth(), 1u);
  blocked.Open();
  queued.wait();
  EXPECT_EQ(blocked.pool.queue_depth(), 0u);
  blocked.gate_future.wait();
}

// ---- Deterministic shutdown ------------------------------------------------

TEST(ThreadPoolTest, ShutdownRunPendingExecutesEveryQueuedTask) {
  std::atomic<int> ran{0};
  BlockedPool blocked(0);
  for (int i = 0; i < 8; ++i) {
    blocked.pool.Submit([&ran] { ran.fetch_add(1); });
  }
  blocked.Open();
  const ThreadPool::DrainStats stats =
      blocked.pool.Shutdown(ThreadPool::DrainPolicy::kRunPending);
  // Every queued task ran; none were dropped. (Tasks the worker had
  // already dequeued before Shutdown don't count as "queued".)
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(stats.discarded, 0u);
  EXPECT_LE(stats.ran, 8u);
}

TEST(ThreadPoolTest, ShutdownDiscardPendingReportsEveryDroppedTask) {
  std::atomic<int> ran{0};
  BlockedPool blocked(0);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(blocked.pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  EXPECT_EQ(blocked.pool.queue_depth(), 8u);
  blocked.Open();
  const ThreadPool::DrainStats stats =
      blocked.pool.Shutdown(ThreadPool::DrainPolicy::kDiscardPending);
  // run-or-report: each of the 8 tasks either executed or is accounted
  // discarded — no silent drops.
  EXPECT_EQ(static_cast<size_t>(ran.load()) + stats.discarded, 8u);
  // Discarded tasks report through their futures too: broken promise.
  size_t broken = 0;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (const std::future_error& e) {
      EXPECT_EQ(e.code(), std::future_errc::broken_promise);
      ++broken;
    }
  }
  EXPECT_EQ(broken, stats.discarded);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {}).wait();
  const ThreadPool::DrainStats first = pool.Shutdown();
  const ThreadPool::DrainStats second = pool.Shutdown();
  EXPECT_EQ(first.discarded, 0u);
  EXPECT_EQ(second.ran, 0u);
  EXPECT_EQ(second.discarded, 0u);
}

// The shutdown-vs-submit race regression (run under TSan by
// scripts/check.sh): concurrent TrySubmit during Shutdown must yield, for
// every task, exactly one of {executed, kUnavailable rejection, broken
// promise} — never a hang, double-run, or silent drop.
TEST(ThreadPoolTest, ConcurrentTrySubmitDuringShutdownNeverDropsSilently) {
  for (int round = 0; round < 20; ++round) {
    auto pool = std::make_unique<ThreadPool>(ThreadPoolOptions{2, 4});
    std::atomic<int> ran{0};
    std::atomic<int> rejected{0};
    std::atomic<int> broken{0};
    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          auto result = pool->TrySubmit([&ran] { ran.fetch_add(1); });
          if (!result.ok()) {
            rejected.fetch_add(1);
            continue;
          }
          try {
            result->get();
          } catch (const std::future_error&) {
            broken.fetch_add(1);
          }
        }
      });
    }
    // Race the shutdown against the submitters.
    const ThreadPool::DrainStats stats =
        pool->Shutdown(round % 2 == 0
                           ? ThreadPool::DrainPolicy::kRunPending
                           : ThreadPool::DrainPolicy::kDiscardPending);
    for (std::thread& t : submitters) t.join();
    EXPECT_EQ(ran.load() + rejected.load() + broken.load(),
              kSubmitters * kPerThread);
    EXPECT_EQ(static_cast<size_t>(broken.load()), stats.discarded);
  }
}

}  // namespace
}  // namespace hpm
