#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace hpm {
namespace {

TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasksExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, TasksReturnDistinctValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(50);
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  long long sum = 0;
  for (std::future<int>& f : futures) sum += f.get();
  // Sum of squares 0..49.
  EXPECT_EQ(sum, 49LL * 50 * 99 / 6);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);  // Single worker: tasks queue up behind the sleep.
    futures.push_back(pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }));
    for (int i = 0; i < 10; ++i) {
      futures.push_back(pool.Submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
  }  // Destructor must let every queued task run before joining.
  EXPECT_EQ(ran.load(), 10);
  for (std::future<void>& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::future<int> outer = pool.Submit([&pool] {
    // Fire-and-forget leaf task submitted from inside a worker.
    pool.Submit([] {}).wait();
    return 7;
  });
  EXPECT_EQ(outer.get(), 7);
}

TEST(ThreadPoolDeathTest, RejectsZeroThreads) {
  EXPECT_DEATH(ThreadPool{0}, "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
