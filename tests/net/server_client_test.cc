// HpmServer + HpmClient over loopback: round trips, read-your-writes,
// replica stamping, bounded backlog with retry-after, malformed-frame
// handling, and (in fault builds) torn-frame retry.

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/retry.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "server/object_store.h"

namespace hpm {
namespace {

HpmClientOptions ClientFor(const HpmServer& server) {
  HpmClientOptions options;
  options.port = server.port();
  return options;
}

TEST(ServerClientTest, PingStampsThePrimaryEnvelope) {
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  HpmClient client(ClientFor(**server));

  StatusOr<ReplyInfo> info = client.Ping();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->role, ServerRole::kPrimary);
  EXPECT_EQ(info->generation, 0u);
  EXPECT_EQ(info->staleness_us, 0u);  // read-your-writes
  EXPECT_FALSE(info->stale_degraded);
}

TEST(ServerClientTest, ReportsAreReadYourWrites) {
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok());
  HpmClient client(ClientFor(**server));

  for (int t = 0; t < 16; ++t) {
    ReportRequest report;
    report.id = 42;
    report.x = 1.0 * t;
    report.y = 0.5 * t;
    StatusOr<ReplyInfo> acked = client.Report(report);
    ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  }
  EXPECT_EQ(store.HistoryLength(42), 16u);

  // The networked answer must equal the in-process answer bit for bit.
  PredictRequest predict;
  predict.id = 42;
  predict.tq = 20;
  StatusOr<PredictReply> over_wire = client.Predict(predict);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
  StatusOr<std::vector<Prediction>> direct =
      store.PredictLocation(42, 20, 1, Deadline::Infinite());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(over_wire->predictions.size(), direct->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ(over_wire->predictions[i].location.x, (*direct)[i].location.x);
    EXPECT_EQ(over_wire->predictions[i].location.y, (*direct)[i].location.y);
    EXPECT_EQ(over_wire->predictions[i].score, (*direct)[i].score);
    EXPECT_EQ(over_wire->predictions[i].source, (*direct)[i].source);
  }

  // Explicit-t reports enforce the object clock over the wire too.
  ReportRequest stale;
  stale.id = 42;
  stale.t = 3;  // already acknowledged
  StatusOr<ReplyInfo> refused = client.Report(stale);
  EXPECT_FALSE(refused.ok());
}

TEST(ServerClientTest, RangeAndKnnTravelTheWire) {
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok());
  HpmClient client(ClientFor(**server));
  for (ObjectId id = 1; id <= 3; ++id) {
    for (int t = 0; t < 12; ++t) {
      ASSERT_TRUE(
          store.ReportLocation(id, Point(1.0 * id + 0.01 * t, 2.0)).ok());
    }
  }

  RangeRequest range;
  range.min_x = 0.0;
  range.min_y = 0.0;
  range.max_x = 10.0;
  range.max_y = 10.0;
  range.tq = 12;
  StatusOr<FleetReply> hits = client.Range(range);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->result.hits.size(), 3u);

  KnnRequest knn;
  knn.x = 1.0;
  knn.y = 2.0;
  knn.tq = 12;
  knn.n = 2;
  StatusOr<FleetReply> nearest = client.Knn(knn);
  ASSERT_TRUE(nearest.ok()) << nearest.status().ToString();
  EXPECT_EQ(nearest->result.hits.size(), 2u);

  StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->json.empty());
  EXPECT_EQ(stats->json.front(), '{');
}

TEST(ServerClientTest, StatsMergesStoreAndServerCounters) {
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok());
  HpmClient client(ClientFor(**server));
  ASSERT_TRUE(client.Report(ReportRequest{5, -1, 1.0, 2.0}).ok());

  // One document for the remote operator: the store's serving counters
  // and the server's own net.*/repl.* rows, merged.
  StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->json.find("\"net.requests\""), std::string::npos);
  EXPECT_NE(stats->json.find("\"repl.state_requests\""), std::string::npos);
  EXPECT_NE(stats->json.find("\"store.admitted.report\""), std::string::npos);
  EXPECT_NE(stats->json.find("\"rebuild.completed\""), std::string::npos);
  EXPECT_NE(stats->json.find("\"miner.transactions\""), std::string::npos);
}

TEST(ServerClientTest, ReplicaRefusesWritesAndStampsStaleness) {
  MovingObjectStore store{ObjectStoreOptions{}};
  ReplicaHealth health;
  HpmServerOptions options;
  options.role = ServerRole::kReplica;
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, options, &health);
  ASSERT_TRUE(server.ok());
  HpmClient client(ClientFor(**server));

  // Before any sync the replica is maximally stale: degraded-stale.
  StatusOr<ReplyInfo> info = client.Ping();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->role, ServerRole::kReplica);
  EXPECT_TRUE(info->stale_degraded);

  StatusOr<ReplyInfo> refused = client.Report(ReportRequest{1, -1, 0.0, 0.0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // After a sync the stamp carries the synced generation and a bounded
  // staleness.
  health.RecordSync(7, 0);
  info = client.Ping();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->generation, 7u);
  EXPECT_FALSE(info->stale_degraded);
  EXPECT_LT(info->staleness_us, 2000000u);
}

TEST(ServerClientTest, ReplicaStartRequiresHealth) {
  MovingObjectStore store{ObjectStoreOptions{}};
  HpmServerOptions options;
  options.role = ServerRole::kReplica;
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, options, nullptr);
  EXPECT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerClientTest, SaturatedBacklogAnswersBusyWithRetryAfter) {
  MovingObjectStore store{ObjectStoreOptions{}};
  HpmServerOptions options;
  options.handler_threads = 1;
  options.max_pending_connections = 1;
  options.busy_retry_after = std::chrono::microseconds(12345);
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, options);
  ASSERT_TRUE(server.ok());
  const int port = (*server)->port();

  // First connection occupies the only handler thread...
  StatusOr<Socket> held =
      Socket::Connect("127.0.0.1", port, Deadline::AfterMillis(2000));
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(
      SendFrame(*held, EncodePing(), Deadline::AfterMillis(2000)).ok());
  ASSERT_TRUE(RecvFrame(*held, Deadline::AfterMillis(2000)).ok());
  // ...the second fills the one queue slot...
  StatusOr<Socket> queued =
      Socket::Connect("127.0.0.1", port, Deadline::AfterMillis(2000));
  ASSERT_TRUE(queued.ok());
  // ...and the third is bounced with a machine-readable retry hint.
  // The accept loop may need a beat to drain, so poll a few connects.
  Status transported = Status::OK();
  for (int attempt = 0; attempt < 50; ++attempt) {
    StatusOr<Socket> bounced =
        Socket::Connect("127.0.0.1", port, Deadline::AfterMillis(2000));
    ASSERT_TRUE(bounced.ok());
    StatusOr<std::string> reply =
        RecvFrame(*bounced, Deadline::AfterMillis(2000));
    if (!reply.ok()) continue;  // raced the backlog; try again
    ReplyInfo info;
    std::string body;
    ASSERT_TRUE(DecodeReply(*reply, &info, &body, &transported).ok());
    if (!transported.ok()) break;
  }
  ASSERT_EQ(transported.code(), StatusCode::kUnavailable);
  const auto hint = RetryAfterHint(transported);
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(hint->count(), 12345);
  EXPECT_GE((*server)->metrics_snapshot().counter("net.busy_rejected"), 1u);
}

TEST(ServerClientTest, MalformedRequestIsAnsweredThenDropped) {
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok());

  StatusOr<Socket> socket = Socket::Connect("127.0.0.1", (*server)->port(),
                                            Deadline::AfterMillis(2000));
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(SendFrame(*socket, "\xFFgarbage-but-checksummed",
                        Deadline::AfterMillis(2000))
                  .ok());
  StatusOr<std::string> reply =
      RecvFrame(*socket, Deadline::AfterMillis(2000));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ReplyInfo info;
  std::string body;
  Status transported;
  ASSERT_TRUE(DecodeReply(*reply, &info, &body, &transported).ok());
  EXPECT_EQ(transported.code(), StatusCode::kDataLoss);

  // The stream is dropped after the error reply.
  bool clean_eof = false;
  StatusOr<std::string> next =
      RecvFrame(*socket, Deadline::AfterMillis(2000), &clean_eof);
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(clean_eof);
  EXPECT_GE((*server)->metrics_snapshot().counter("net.bad_frames"), 1u);
}

TEST(ServerClientTest, IdleConnectionsAreClosed) {
  MovingObjectStore store{ObjectStoreOptions{}};
  HpmServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(100);
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, options);
  ASSERT_TRUE(server.ok());

  StatusOr<Socket> socket = Socket::Connect("127.0.0.1", (*server)->port(),
                                            Deadline::AfterMillis(2000));
  ASSERT_TRUE(socket.ok());
  ASSERT_TRUE(
      SendFrame(*socket, EncodePing(), Deadline::AfterMillis(2000)).ok());
  ASSERT_TRUE(RecvFrame(*socket, Deadline::AfterMillis(2000)).ok());

  bool clean_eof = false;
  StatusOr<std::string> next =
      RecvFrame(*socket, Deadline::AfterMillis(5000), &clean_eof);
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(clean_eof);
}

#ifdef HPM_ENABLE_FAULTS
TEST(ServerClientTest, TornFrameIsRetriedTransparently) {
  FaultInjector::Global().Reset();
  MovingObjectStore store{ObjectStoreOptions{}};
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&store, HpmServerOptions{});
  ASSERT_TRUE(server.ok());
  HpmClient client(ClientFor(**server));
  client.set_sleep_fn([](std::chrono::microseconds) {});

  // The first frame send in the process (client or server side) ships
  // half a frame and kills the connection; the client's retry opens a
  // fresh one and completes.
  FaultRule rule;
  rule.nth_call = 1;
  rule.max_fires = 1;
  FaultInjector::Global().Arm("net/send", rule);
  StatusOr<ReplyInfo> info = client.Ping();
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(FaultInjector::Global().fires("net/send"), 1);

  // Same for a dropped receive.
  FaultInjector::Global().Reset();
  FaultRule recv_rule;
  recv_rule.nth_call = 1;
  recv_rule.max_fires = 1;
  FaultInjector::Global().Arm("net/recv", recv_rule);
  info = client.Ping();
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  FaultInjector::Global().Reset();
}
#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
