// Wire primitives, CRC framing over real sockets, and protocol
// encode/decode round trips.

#include <sys/socket.h>

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "net/wire.h"

namespace hpm {
namespace {

/// A connected local socket pair for exercising the framing without a
/// listener.
struct SocketPair {
  Socket a, b;
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
  }
};

TEST(WireTest, RoundTripsEveryPrimitive) {
  std::string buf;
  wire::PutU8(&buf, 0xAB);
  wire::PutU32(&buf, 0xDEADBEEF);
  wire::PutU64(&buf, 0x0123456789ABCDEFull);
  wire::PutI64(&buf, -42);
  wire::PutF64(&buf, 2.5);
  wire::PutString(&buf, "hello");

  wire::Cursor cursor(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  std::string s;
  EXPECT_TRUE(cursor.U8(&u8));
  EXPECT_TRUE(cursor.U32(&u32));
  EXPECT_TRUE(cursor.U64(&u64));
  EXPECT_TRUE(cursor.I64(&i64));
  EXPECT_TRUE(cursor.F64(&f64));
  EXPECT_TRUE(cursor.String(&s));
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 2.5);
  EXPECT_EQ(s, "hello");
}

TEST(WireTest, UnderrunPoisonsTheCursor) {
  std::string buf;
  wire::PutU32(&buf, 7);
  wire::Cursor cursor(buf);
  uint64_t v = 0;
  EXPECT_FALSE(cursor.U64(&v));
  EXPECT_FALSE(cursor.ok());
  uint32_t w = 0;
  EXPECT_FALSE(cursor.U32(&w));  // poisoned: even a fitting read fails
}

TEST(WireTest, OversizedStringLengthIsRejected) {
  std::string buf;
  wire::PutU32(&buf, 1u << 30);  // length prefix far beyond the payload
  buf.append("xx");
  wire::Cursor cursor(buf);
  std::string s;
  EXPECT_FALSE(cursor.String(&s));
  EXPECT_FALSE(cursor.ok());
}

TEST(FrameTest, RoundTripsOverASocket) {
  SocketPair pair;
  const std::string payload = "the payload \x00\x01\x02 with binary";
  std::thread sender([&] {
    EXPECT_TRUE(
        SendFrame(pair.a, payload, Deadline::AfterMillis(2000)).ok());
  });
  StatusOr<std::string> got = RecvFrame(pair.b, Deadline::AfterMillis(2000));
  sender.join();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, payload);
}

TEST(FrameTest, CleanCloseBeforeFrameIsUnavailableWithEof) {
  SocketPair pair;
  pair.a.Close();
  bool clean_eof = false;
  StatusOr<std::string> got =
      RecvFrame(pair.b, Deadline::AfterMillis(2000), &clean_eof);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(clean_eof);
}

TEST(FrameTest, TornFrameIsDataLoss) {
  SocketPair pair;
  // Send the header of a 100-byte frame but only 3 payload bytes, then
  // close: the receiver sees a mid-frame disconnect.
  std::string frame;
  const std::string payload(100, 'x');
  ASSERT_TRUE(
      SendFrame(pair.a, payload, Deadline::AfterMillis(2000)).ok());
  // Peek the full frame bytes back out and replay a truncated prefix.
  SocketPair torn;
  std::string full;
  full.resize(8 + payload.size());
  bool clean_eof = false;
  ASSERT_TRUE(pair.b
                  .RecvAll(full.data(), full.size(),
                           Deadline::AfterMillis(2000), &clean_eof)
                  .ok());
  ASSERT_TRUE(torn.a
                  .SendAll(full.data(), 8 + 3, Deadline::AfterMillis(2000))
                  .ok());
  torn.a.Close();
  StatusOr<std::string> got =
      RecvFrame(torn.b, Deadline::AfterMillis(2000), &clean_eof);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(clean_eof);
}

TEST(FrameTest, CorruptedPayloadFailsTheCrc) {
  SocketPair pair;
  const std::string payload = "payload-to-corrupt";
  ASSERT_TRUE(
      SendFrame(pair.a, payload, Deadline::AfterMillis(2000)).ok());
  std::string full;
  full.resize(8 + payload.size());
  bool clean_eof = false;
  ASSERT_TRUE(pair.b
                  .RecvAll(full.data(), full.size(),
                           Deadline::AfterMillis(2000), &clean_eof)
                  .ok());
  full[8] ^= 0x40;  // flip a payload bit; header stays plausible
  SocketPair corrupted;
  ASSERT_TRUE(corrupted.a
                  .SendAll(full.data(), full.size(),
                           Deadline::AfterMillis(2000))
                  .ok());
  StatusOr<std::string> got =
      RecvFrame(corrupted.b, Deadline::AfterMillis(2000));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, ImplausibleLengthIsRejectedWithoutAllocating) {
  SocketPair pair;
  std::string header;
  wire::PutU32(&header, 0x7FFFFFFF);  // 2 GiB "payload"
  wire::PutU32(&header, 0);
  ASSERT_TRUE(pair.a
                  .SendAll(header.data(), header.size(),
                           Deadline::AfterMillis(2000))
                  .ok());
  StatusOr<std::string> got = RecvFrame(pair.b, Deadline::AfterMillis(2000));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, RequestsRoundTrip) {
  ReportRequest report{7, 3, 1.5, -2.5};
  Request decoded;
  ASSERT_TRUE(DecodeRequest(EncodeReport(report), &decoded).ok());
  ASSERT_EQ(decoded.type, MsgType::kReport);
  EXPECT_EQ(decoded.report.id, 7);
  EXPECT_EQ(decoded.report.t, 3);
  EXPECT_EQ(decoded.report.x, 1.5);
  EXPECT_EQ(decoded.report.y, -2.5);

  PredictRequest predict;
  predict.id = 9;
  predict.tq = 100;
  predict.k = 3;
  predict.deadline_us = 5000;
  ASSERT_TRUE(DecodeRequest(EncodePredict(predict), &decoded).ok());
  ASSERT_EQ(decoded.type, MsgType::kPredict);
  EXPECT_EQ(decoded.predict.id, 9);
  EXPECT_EQ(decoded.predict.tq, 100);
  EXPECT_EQ(decoded.predict.k, 3);
  EXPECT_EQ(decoded.predict.deadline_us, 5000u);

  ReplFetchRequest fetch;
  fetch.name = "wal/wal-0-1.log";
  fetch.offset = 4096;
  fetch.max_bytes = 1024;
  ASSERT_TRUE(DecodeRequest(EncodeReplFetch(fetch), &decoded).ok());
  ASSERT_EQ(decoded.type, MsgType::kReplFetch);
  EXPECT_EQ(decoded.repl_fetch.name, fetch.name);
  EXPECT_EQ(decoded.repl_fetch.offset, 4096u);
  EXPECT_EQ(decoded.repl_fetch.max_bytes, 1024u);
}

TEST(ProtocolTest, MalformedRequestIsDataLoss) {
  Request decoded;
  EXPECT_EQ(DecodeRequest("", &decoded).code(), StatusCode::kDataLoss);
  EXPECT_EQ(DecodeRequest("\x63", &decoded).code(), StatusCode::kDataLoss);
  std::string truncated = EncodePredict(PredictRequest{});
  truncated.pop_back();
  EXPECT_EQ(DecodeRequest(truncated, &decoded).code(),
            StatusCode::kDataLoss);
  std::string padded = EncodePing();
  padded.push_back('x');  // trailing garbage must not decode
  EXPECT_EQ(DecodeRequest(padded, &decoded).code(), StatusCode::kDataLoss);
}

TEST(ProtocolTest, ReplyEnvelopeTransportsStatusVerbatim) {
  ReplyInfo info;
  info.role = ServerRole::kReplica;
  info.generation = 12;
  info.staleness_us = 3456;
  info.stale_degraded = true;
  const Status busy =
      Status::Unavailable("server busy [retry-after-us=1500]");
  const std::string payload = EncodeReply(busy, info, "");

  ReplyInfo decoded_info;
  std::string body;
  Status transported;
  ASSERT_TRUE(
      DecodeReply(payload, &decoded_info, &body, &transported).ok());
  EXPECT_EQ(transported.code(), StatusCode::kUnavailable);
  EXPECT_EQ(transported.message(), busy.message());
  EXPECT_EQ(decoded_info.role, ServerRole::kReplica);
  EXPECT_EQ(decoded_info.generation, 12u);
  EXPECT_EQ(decoded_info.staleness_us, 3456u);
  EXPECT_TRUE(decoded_info.stale_degraded);
  EXPECT_TRUE(body.empty());
}

TEST(ProtocolTest, PredictionBodyRoundTripsAllFields) {
  std::vector<Prediction> predictions(2);
  predictions[0].location = Point(1.0, 2.0);
  predictions[0].score = 0.75;
  predictions[0].source = PredictionSource::kPattern;
  predictions[0].pattern_id = 5;
  predictions[0].consequence_region = 2;
  predictions[0].confidence = 0.5;
  predictions[0].uncertainty = BoundingBox(Point(0.0, 0.0), Point(3.0, 3.0));
  predictions[1].location = Point(-4.0, 5.0);
  predictions[1].source = PredictionSource::kMotionFunction;
  predictions[1].degraded = DegradedReason::kPatternUnavailable;

  std::vector<Prediction> decoded;
  ASSERT_TRUE(
      DecodePredictionsBody(EncodePredictionsBody(predictions), &decoded)
          .ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].location.x, 1.0);
  EXPECT_EQ(decoded[0].score, 0.75);
  EXPECT_EQ(decoded[0].source, PredictionSource::kPattern);
  EXPECT_EQ(decoded[0].pattern_id, 5);
  EXPECT_EQ(decoded[0].consequence_region, 2);
  EXPECT_EQ(decoded[0].confidence, 0.5);
  EXPECT_FALSE(decoded[0].uncertainty.IsEmpty());
  EXPECT_EQ(decoded[0].uncertainty.max().x, 3.0);
  EXPECT_EQ(decoded[1].source, PredictionSource::kMotionFunction);
  EXPECT_EQ(decoded[1].degraded, DegradedReason::kPatternUnavailable);
  EXPECT_TRUE(decoded[1].uncertainty.IsEmpty());
}

TEST(ProtocolTest, ReplStateBodyRoundTrips) {
  std::vector<WireSegment> segments = {{0, 1, 2, 4096}, {3, 7, 2, 128}};
  uint64_t generation = 0;
  std::vector<WireSegment> decoded;
  ASSERT_TRUE(DecodeReplStateBody(EncodeReplStateBody(9, segments),
                                  &generation, &decoded)
                  .ok());
  EXPECT_EQ(generation, 9u);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[1].shard, 3);
  EXPECT_EQ(decoded[1].seq, 7u);
  EXPECT_EQ(decoded[1].base_gen, 2u);
  EXPECT_EQ(decoded[1].size, 128u);
}

TEST(ProtocolTest, FetchableFileWhitelist) {
  bool is_wal = false;
  EXPECT_TRUE(IsFetchableStoreFile("CURRENT", &is_wal));
  EXPECT_FALSE(is_wal);
  EXPECT_TRUE(IsFetchableStoreFile("MANIFEST-12", &is_wal));
  EXPECT_TRUE(IsFetchableStoreFile("7-3.csv", &is_wal));
  EXPECT_TRUE(IsFetchableStoreFile("7-3.model", &is_wal));
  EXPECT_TRUE(IsFetchableStoreFile("wal/wal-0-2.log", &is_wal));
  EXPECT_TRUE(is_wal);

  EXPECT_FALSE(IsFetchableStoreFile("", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("../etc/passwd", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("/etc/passwd", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("wal/../CURRENT", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("MANIFEST-", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("MANIFEST-01", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("7-3.csv.bak", &is_wal));
  EXPECT_FALSE(IsFetchableStoreFile("quarantine/7-3.csv", &is_wal));
}

}  // namespace
}  // namespace hpm
