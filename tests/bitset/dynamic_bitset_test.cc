#include "bitset/dynamic_bitset.h"

#include <gtest/gtest.h>

#include "proptest/proptest.h"

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace hpm {
namespace {

TEST(DynamicBitsetTest, DefaultIsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitsetTest, SetAndTest) {
  DynamicBitset b(70);  // Spans two words.
  EXPECT_EQ(b.size(), 70u);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Set(63, false);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(DynamicBitsetTest, FromStringMatchesPaperOrder) {
  // Paper's printing: leftmost character = most significant bit.
  const DynamicBitset b = DynamicBitset::FromString("00101");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_TRUE(b.Test(0));
  EXPECT_FALSE(b.Test(1));
  EXPECT_TRUE(b.Test(2));
  EXPECT_FALSE(b.Test(3));
  EXPECT_FALSE(b.Test(4));
  EXPECT_EQ(b.ToString(), "00101");
}

TEST(DynamicBitsetTest, ToStringRoundTrip) {
  const std::vector<std::string> cases = {"0", "1", "10", "0100001",
                                          "1000011", "1111111111"};
  for (const auto& s : cases) {
    EXPECT_EQ(DynamicBitset::FromString(s).ToString(), s);
  }
}

TEST(DynamicBitsetTest, BitwiseOps) {
  const auto a = DynamicBitset::FromString("1100");
  const auto b = DynamicBitset::FromString("1010");
  EXPECT_EQ((a & b).ToString(), "1000");
  EXPECT_EQ((a | b).ToString(), "1110");
  EXPECT_EQ((a ^ b).ToString(), "0110");
}

TEST(DynamicBitsetTest, InPlaceOps) {
  auto a = DynamicBitset::FromString("1100");
  a |= DynamicBitset::FromString("0011");
  EXPECT_EQ(a.ToString(), "1111");
  a &= DynamicBitset::FromString("0110");
  EXPECT_EQ(a.ToString(), "0110");
  a ^= DynamicBitset::FromString("0110");
  EXPECT_TRUE(a.None());
}

TEST(DynamicBitsetTest, ContainsMatchesPaperContain) {
  // Contain(pk1, pk2) iff pk1 & pk2 == pk2.
  const auto big = DynamicBitset::FromString("10111");
  EXPECT_TRUE(big.Contains(DynamicBitset::FromString("00101")));
  EXPECT_TRUE(big.Contains(DynamicBitset::FromString("10111")));
  EXPECT_TRUE(big.Contains(DynamicBitset::FromString("00000")));
  EXPECT_FALSE(big.Contains(DynamicBitset::FromString("01000")));
  EXPECT_FALSE(
      DynamicBitset::FromString("00101").Contains(big));
}

TEST(DynamicBitsetTest, AnyCommon) {
  const auto a = DynamicBitset::FromString("0101");
  EXPECT_TRUE(a.AnyCommon(DynamicBitset::FromString("0100")));
  EXPECT_FALSE(a.AnyCommon(DynamicBitset::FromString("1010")));
  EXPECT_FALSE(a.AnyCommon(DynamicBitset::FromString("0000")));
}

TEST(DynamicBitsetTest, DifferenceCountMatchesPaperDefinition) {
  // Difference(pk1, pk2) = Size(pk1 XOR (pk1 AND pk2)).
  const auto a = DynamicBitset::FromString("1110");
  const auto b = DynamicBitset::FromString("0111");
  EXPECT_EQ(a.DifferenceCount(b), 1u);  // Bit 3 only in a.
  EXPECT_EQ(b.DifferenceCount(a), 1u);  // Bit 0 only in b.
  EXPECT_EQ(a.DifferenceCount(a), 0u);
  const auto manual = (a ^ (a & b)).Count();
  EXPECT_EQ(a.DifferenceCount(b), manual);
}

TEST(DynamicBitsetTest, HighestSetBit) {
  EXPECT_EQ(DynamicBitset(10).HighestSetBit(), -1);
  EXPECT_EQ(DynamicBitset::FromString("00101").HighestSetBit(), 2);
  DynamicBitset b(130);
  b.Set(129);
  b.Set(5);
  EXPECT_EQ(b.HighestSetBit(), 129);
}

TEST(DynamicBitsetTest, SetBitsAscending) {
  DynamicBitset b(100);
  b.Set(3);
  b.Set(64);
  b.Set(99);
  const std::vector<size_t> expected = {3, 64, 99};
  EXPECT_EQ(b.SetBits(), expected);
}

TEST(DynamicBitsetTest, ResizeGrowZeroFills) {
  auto b = DynamicBitset::FromString("111");
  b.Resize(70);
  EXPECT_EQ(b.size(), 70u);
  EXPECT_EQ(b.Count(), 3u);
  EXPECT_FALSE(b.Test(69));
}

TEST(DynamicBitsetTest, ResizeShrinkTruncates) {
  DynamicBitset b(70);
  b.Set(69);
  b.Set(1);
  b.Resize(10);
  EXPECT_EQ(b.Count(), 1u);
  EXPECT_TRUE(b.Test(1));
}

TEST(DynamicBitsetTest, ShrinkThenGrowDoesNotResurrectBits) {
  DynamicBitset b(64);
  b.Set(63);
  b.Resize(32);
  b.Resize(64);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitsetTest, EqualityIncludesSize) {
  const auto a = DynamicBitset::FromString("0101");
  EXPECT_EQ(a, DynamicBitset::FromString("0101"));
  EXPECT_NE(a, DynamicBitset::FromString("1101"));
  EXPECT_NE(a, DynamicBitset::FromString("00101"));  // Different size.
}

TEST(DynamicBitsetTest, HashDistinguishesTypicalKeys) {
  const auto a = DynamicBitset::FromString("0101");
  const auto b = DynamicBitset::FromString("1010");
  const auto c = DynamicBitset::FromString("0101");
  EXPECT_EQ(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(DynamicBitsetTest, MemoryBytesTracksWords) {
  EXPECT_EQ(DynamicBitset(0).MemoryBytes(), 0u);
  EXPECT_EQ(DynamicBitset(1).MemoryBytes(), 8u);
  EXPECT_EQ(DynamicBitset(64).MemoryBytes(), 8u);
  EXPECT_EQ(DynamicBitset(65).MemoryBytes(), 16u);
}

TEST(DynamicBitsetTest, WordViewExposesPackedBits) {
  DynamicBitset b(70);  // Two words; positions 70..127 are tail.
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  ASSERT_EQ(b.num_words(), 2u);
  EXPECT_EQ(b.words()[0], (uint64_t{1} << 63) | 1u);
  EXPECT_EQ(b.words()[1], (uint64_t{1} << 5) | 1u);
}

TEST(DynamicBitsetTest, WordViewTailStaysZeroThroughMutation) {
  // The zero-tail invariant is what lets FrozenTpt and the wordops
  // predicates scan whole words without masking: it must survive every
  // mutation path, including shrink (which orphans previously-set bits).
  DynamicBitset b(100);
  for (size_t i = 0; i < 100; ++i) b.Set(i);
  b.Resize(70);
  ASSERT_EQ(b.num_words(), 2u);
  EXPECT_EQ(b.words()[1] >> 6, 0u) << "bits beyond size() must be zero";
  DynamicBitset all(70);
  for (size_t i = 0; i < 70; ++i) all.Set(i);
  b ^= all;
  EXPECT_EQ(b.words()[0], 0u);
  EXPECT_EQ(b.words()[1], 0u);
}

TEST(DynamicBitsetTest, FromWordsRoundTripsWordView) {
  const uint64_t seed = proptest::SeedForTest(12);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (const size_t n : {1u, 63u, 64u, 65u, 130u, 300u}) {
    DynamicBitset b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) b.Set(i);
    }
    const DynamicBitset rebuilt =
        DynamicBitset::FromWords(b.words(), b.num_words(), b.size());
    EXPECT_EQ(rebuilt, b) << "size " << n;
  }
}

TEST(DynamicBitsetDeathTest, FromWordsRejectsDirtyTail) {
  // FromWords trusts its caller to have validated the tail (the FrozenTpt
  // parser does); handing it a word with bits past `bits` is a
  // programming error, not a recoverable condition.
  const uint64_t dirty = uint64_t{1} << 10;
  EXPECT_DEATH((void)DynamicBitset::FromWords(&dirty, 1, 10), "HPM_CHECK");
}

TEST(DynamicBitsetDeathTest, FromWordsRejectsWordCountMismatch) {
  const uint64_t words[2] = {1, 0};
  EXPECT_DEATH((void)DynamicBitset::FromWords(words, 2, 64), "HPM_CHECK");
}

TEST(DynamicBitsetDeathTest, OutOfRangeAborts) {
  DynamicBitset b(8);
  EXPECT_DEATH(b.Set(8), "HPM_CHECK");
  EXPECT_DEATH((void)b.Test(8), "HPM_CHECK");
}

TEST(DynamicBitsetDeathTest, SizeMismatchAborts) {
  DynamicBitset a(8), b(9);
  EXPECT_DEATH((void)(a & b), "HPM_CHECK");
  EXPECT_DEATH((void)a.Contains(b), "HPM_CHECK");
  EXPECT_DEATH((void)a.AnyCommon(b), "HPM_CHECK");
  EXPECT_DEATH((void)a.DifferenceCount(b), "HPM_CHECK");
}

/// Property sweep: random bitsets obey the algebraic identities the TPT
/// relies on.
class BitsetPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetPropertyTest, AlgebraicIdentitiesHold) {
  const size_t n = GetParam();
  const uint64_t seed = proptest::SeedForTest(n * 31 + 7);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  for (int round = 0; round < 50; ++round) {
    DynamicBitset a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) a.Set(i);
      if (rng.Bernoulli(0.3)) b.Set(i);
    }
    // Count splits over the difference decomposition.
    EXPECT_EQ(a.Count(),
              (a & b).Count() + a.DifferenceCount(b));
    // Contains iff difference is zero.
    EXPECT_EQ(a.Contains(b), b.DifferenceCount(a) == 0);
    // AnyCommon iff AND non-empty.
    EXPECT_EQ(a.AnyCommon(b), (a & b).Any());
    // De Morgan-ish: |a| + |b| = |a|b| + |a&b|.
    EXPECT_EQ(a.Count() + b.Count(), (a | b).Count() + (a & b).Count());
    // XOR = union minus intersection.
    EXPECT_EQ((a ^ b).Count(), (a | b).Count() - (a & b).Count());
    // SetBits count agrees with Count.
    EXPECT_EQ(a.SetBits().size(), a.Count());
    // Round trip through string.
    EXPECT_EQ(DynamicBitset::FromString(a.ToString()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitsetPropertyTest,
                         ::testing::Values(1, 7, 63, 64, 65, 128, 300));

}  // namespace
}  // namespace hpm
