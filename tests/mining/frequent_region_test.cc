#include "mining/frequent_region.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

/// A trajectory with `subs` periods of length `period`; on each day the
/// object visits fixed anchor points (one per offset) plus tiny noise,
/// so DBSCAN finds one tight region per offset.
Trajectory MakePeriodicData(int subs, Timestamp period, double noise,
                            uint64_t seed = 3) {
  Random rng(seed);
  std::vector<Point> anchors;
  for (Timestamp t = 0; t < period; ++t) {
    anchors.push_back(
        {100.0 * static_cast<double>(t) + 50.0, 200.0});
  }
  Trajectory traj;
  for (int s = 0; s < subs; ++s) {
    for (Timestamp t = 0; t < period; ++t) {
      Point p = anchors[static_cast<size_t>(t)];
      p.x += rng.Gaussian(0, noise);
      p.y += rng.Gaussian(0, noise);
      traj.Append(p);
    }
  }
  return traj;
}

FrequentRegionParams Params(Timestamp period, double eps, int min_pts,
                            int limit = 0) {
  FrequentRegionParams params;
  params.period = period;
  params.dbscan.eps = eps;
  params.dbscan.min_pts = min_pts;
  params.limit_sub_trajectories = limit;
  return params;
}

TEST(FrequentRegionTest, OneRegionPerOffsetOnCleanData) {
  const Trajectory traj = MakePeriodicData(20, 5, 1.0);
  auto result = MineFrequentRegions(traj, Params(5, 10.0, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region_set.NumRegions(), 5u);
  EXPECT_EQ(result->region_set.NumOccupiedOffsets(), 5u);
  for (Timestamp t = 0; t < 5; ++t) {
    const auto ids = result->region_set.RegionsAtOffset(t);
    ASSERT_EQ(ids.size(), 1u);
    const FrequentRegion& r = result->region_set.Region(ids[0]);
    EXPECT_EQ(r.offset, t);
    EXPECT_EQ(r.index_at_offset, 0);
    EXPECT_EQ(r.support, 20);
    EXPECT_NEAR(r.center.x, 100.0 * static_cast<double>(t) + 50.0, 2.0);
    EXPECT_NEAR(r.center.y, 200.0, 2.0);
    EXPECT_TRUE(r.mbr.Contains(r.center));
  }
}

TEST(FrequentRegionTest, RegionIdsAscendWithOffset) {
  const Trajectory traj = MakePeriodicData(10, 8, 0.5);
  auto result = MineFrequentRegions(traj, Params(8, 10.0, 4));
  ASSERT_TRUE(result.ok());
  const auto& regions = result->region_set.regions();
  for (size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ(regions[i].id, static_cast<int>(i));
    if (i > 0) {
      EXPECT_GE(regions[i].offset, regions[i - 1].offset);
    }
  }
}

TEST(FrequentRegionTest, VisitsCoverEveryOffsetOnCleanData) {
  const Trajectory traj = MakePeriodicData(12, 6, 0.5);
  auto result = MineFrequentRegions(traj, Params(6, 10.0, 4));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->visits.size(), 12u);
  for (const auto& visits : result->visits) {
    EXPECT_EQ(visits.size(), 6u);
    for (size_t i = 1; i < visits.size(); ++i) {
      EXPECT_LT(visits[i - 1].offset, visits[i].offset);
    }
  }
}

TEST(FrequentRegionTest, LimitSubTrajectoriesReducesSupport) {
  const Trajectory traj = MakePeriodicData(20, 4, 0.5);
  auto limited = MineFrequentRegions(traj, Params(4, 10.0, 4, 5));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->visits.size(), 5u);
  for (const auto& r : limited->region_set.regions()) {
    EXPECT_EQ(r.support, 5);
  }
}

TEST(FrequentRegionTest, HighMinPtsSuppressesRegions) {
  const Trajectory traj = MakePeriodicData(5, 4, 0.5);
  auto result = MineFrequentRegions(traj, Params(4, 10.0, 10));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region_set.NumRegions(), 0u);
  for (const auto& visits : result->visits) EXPECT_TRUE(visits.empty());
}

TEST(FrequentRegionTest, TwoAlternativeRoutesGiveTwoRegions) {
  // Half the days at y=0, half at y=1000: two regions per offset.
  Random rng(5);
  Trajectory traj;
  const Timestamp period = 3;
  for (int s = 0; s < 20; ++s) {
    const double y = (s % 2 == 0) ? 0.0 : 1000.0;
    for (Timestamp t = 0; t < period; ++t) {
      traj.Append({100.0 * static_cast<double>(t) + rng.Gaussian(0, 1),
                   y + rng.Gaussian(0, 1)});
    }
  }
  auto result = MineFrequentRegions(traj, Params(period, 10.0, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->region_set.NumRegions(), 6u);
  for (Timestamp t = 0; t < period; ++t) {
    EXPECT_EQ(result->region_set.RegionsAtOffset(t).size(), 2u);
  }
}

TEST(FrequentRegionTest, FindContainingRegion) {
  const Trajectory traj = MakePeriodicData(20, 3, 1.0);
  auto result = MineFrequentRegions(traj, Params(3, 10.0, 4));
  ASSERT_TRUE(result.ok());
  const FrequentRegionSet& set = result->region_set;
  const FrequentRegion& r0 = set.Region(set.RegionsAtOffset(0)[0]);
  EXPECT_EQ(set.FindContainingRegion(0, r0.center), r0.id);
  // A far-away point matches nothing.
  EXPECT_EQ(set.FindContainingRegion(0, {9999, 9999}), -1);
  // Out-of-range offsets match nothing.
  EXPECT_EQ(set.FindContainingRegion(-1, r0.center), -1);
  EXPECT_EQ(set.FindContainingRegion(99, r0.center), -1);
}

TEST(FrequentRegionTest, FindNearbyRegionUsesSlack) {
  const Trajectory traj = MakePeriodicData(20, 3, 1.0);
  auto result = MineFrequentRegions(traj, Params(3, 10.0, 4));
  ASSERT_TRUE(result.ok());
  const FrequentRegionSet& set = result->region_set;
  const FrequentRegion& r0 = set.Region(set.RegionsAtOffset(0)[0]);
  const Point outside{r0.mbr.max().x + 5.0, r0.center.y};
  EXPECT_EQ(set.FindContainingRegion(0, outside), -1);
  EXPECT_EQ(set.FindNearbyRegion(0, outside, 6.0), r0.id);
}

TEST(FrequentRegionTest, ErrorsPropagate) {
  const Trajectory traj = MakePeriodicData(3, 4, 0.5);
  // Period longer than data.
  EXPECT_EQ(MineFrequentRegions(traj, Params(100, 10.0, 4))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Bad DBSCAN parameters.
  EXPECT_EQ(
      MineFrequentRegions(traj, Params(4, -1.0, 4)).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(FrequentRegionTest, SupportEqualsSumOfMemberships) {
  const Trajectory traj = MakePeriodicData(15, 5, 1.0);
  auto result = MineFrequentRegions(traj, Params(5, 10.0, 4));
  ASSERT_TRUE(result.ok());
  // Sum of supports equals the number of recorded visits.
  size_t total_visits = 0;
  for (const auto& visits : result->visits) total_visits += visits.size();
  int total_support = 0;
  for (const auto& r : result->region_set.regions()) {
    total_support += r.support;
  }
  EXPECT_EQ(static_cast<size_t>(total_support), total_visits);
}

}  // namespace
}  // namespace hpm
