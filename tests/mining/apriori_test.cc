#include "mining/apriori.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"

namespace hpm {
namespace {

/// Builds a region set from (id, offset) pairs; geometry is irrelevant to
/// the miner, only offsets matter.
FrequentRegionSet MakeRegions(const std::vector<Timestamp>& offsets) {
  FrequentRegionSet set;
  set.set_period(100);
  for (size_t i = 0; i < offsets.size(); ++i) {
    FrequentRegion r;
    r.id = static_cast<int>(i);
    r.offset = offsets[i];
    r.center = {static_cast<double>(i), 0};
    r.mbr.Extend(r.center);
    r.support = 1;
    set.AddRegion(r);
  }
  return set;
}

std::vector<Transaction> MakeTransactions(
    const std::vector<std::vector<int>>& item_lists, size_t num_regions) {
  std::vector<Transaction> out;
  for (const auto& items : item_lists) {
    std::vector<RegionVisit> visits;
    for (int id : items) visits.push_back({0, id});
    out.emplace_back(visits, num_regions);
  }
  return out;
}

AprioriParams Params(double min_conf, int min_supp, int max_len = 3,
                     Timestamp window = 0, bool pruning = true) {
  AprioriParams p;
  p.min_confidence = min_conf;
  p.min_support = min_supp;
  p.max_pattern_length = max_len;
  p.premise_window = window;
  p.enable_pruning = pruning;
  return p;
}

const TrajectoryPattern* FindPattern(const AprioriResult& result,
                                     const std::vector<int>& premise,
                                     int consequence) {
  for (const auto& p : result.patterns) {
    if (p.premise == premise && p.consequence == consequence) return &p;
  }
  return nullptr;
}

TEST(AprioriTest, ParameterValidation) {
  const auto regions = MakeRegions({0, 1});
  const auto txns = MakeTransactions({{0, 1}}, 2);
  EXPECT_EQ(MineTrajectoryPatterns(txns, regions, Params(-0.1, 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MineTrajectoryPatterns(txns, regions, Params(1.1, 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MineTrajectoryPatterns(txns, regions, Params(0.5, 0))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MineTrajectoryPatterns(txns, regions, Params(0.5, 1, 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  AprioriParams bad = Params(0.5, 1);
  bad.premise_window = -1;
  EXPECT_EQ(MineTrajectoryPatterns(txns, regions, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AprioriTest, EmptyInputsYieldNoPatterns) {
  const auto regions = MakeRegions({});
  auto result =
      MineTrajectoryPatterns({}, regions, Params(0.3, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(AprioriTest, PairRuleConfidenceExact) {
  // Region 0 (offset 0) appears in 4 transactions; {0,1} co-occur in 2.
  const auto regions = MakeRegions({0, 5});
  const auto txns =
      MakeTransactions({{0, 1}, {0, 1}, {0}, {0}}, 2);
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.3, 2));
  ASSERT_TRUE(result.ok());
  const TrajectoryPattern* p = FindPattern(*result, {0}, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->confidence, 0.5);
  EXPECT_EQ(p->support, 2);
}

TEST(AprioriTest, MinConfidenceFilters) {
  const auto regions = MakeRegions({0, 5});
  const auto txns =
      MakeTransactions({{0, 1}, {0, 1}, {0}, {0}}, 2);
  auto strict = MineTrajectoryPatterns(txns, regions, Params(0.6, 2));
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(FindPattern(*strict, {0}, 1), nullptr);
}

TEST(AprioriTest, MinSupportFilters) {
  const auto regions = MakeRegions({0, 5});
  const auto txns = MakeTransactions({{0, 1}, {0}}, 2);
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.0, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(FindPattern(*result, {0}, 1), nullptr);
}

TEST(AprioriTest, ConsequenceAlwaysMaxOffset) {
  // Items at offsets 0 < 3 < 7; all rules must conclude at the latest
  // offset of their item set (pruning rule 1).
  const auto regions = MakeRegions({0, 3, 7});
  const auto txns = MakeTransactions(
      {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1}}, 3);
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.0, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->patterns.empty());
  for (const auto& p : result->patterns) {
    const Timestamp cons_offset = regions.Region(p.consequence).offset;
    Timestamp prev = -1;
    for (int id : p.premise) {
      const Timestamp o = regions.Region(id).offset;
      EXPECT_GT(o, prev);          // Strictly increasing premise.
      EXPECT_LT(o, cons_offset);   // All premise offsets precede it.
      prev = o;
    }
  }
  // The 3-item set yields the Jane-style rule {0,1} -> 2 with conf 3/4
  // when the premise {0,1} occurred 4 times.
  const TrajectoryPattern* jane = FindPattern(*result, {0, 1}, 2);
  ASSERT_NE(jane, nullptr);
  EXPECT_DOUBLE_EQ(jane->confidence, 0.75);
}

TEST(AprioriTest, SameOffsetItemsNeverCombine) {
  // Regions 0 and 1 share offset 2: no rule may join them.
  const auto regions = MakeRegions({2, 2, 6});
  const auto txns = MakeTransactions({{0, 1, 2}, {0, 1, 2}}, 3);
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.0, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(FindPattern(*result, {0, 1}, 2), nullptr);
  // But each may predict region 2 alone.
  EXPECT_NE(FindPattern(*result, {0}, 2), nullptr);
  EXPECT_NE(FindPattern(*result, {1}, 2), nullptr);
  // And neither predicts the other (equal offsets are not "later").
  EXPECT_EQ(FindPattern(*result, {0}, 1), nullptr);
}

TEST(AprioriTest, MaxPatternLengthBoundsPremise) {
  const auto regions = MakeRegions({0, 1, 2, 3});
  const auto txns =
      MakeTransactions({{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}}, 4);
  auto short_rules =
      MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 2));
  ASSERT_TRUE(short_rules.ok());
  for (const auto& p : short_rules->patterns) {
    EXPECT_EQ(p.premise.size(), 1u);
  }
  auto long_rules =
      MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 4));
  ASSERT_TRUE(long_rules.ok());
  size_t max_premise = 0;
  for (const auto& p : long_rules->patterns) {
    max_premise = std::max(max_premise, p.premise.size());
  }
  EXPECT_EQ(max_premise, 3u);
}

TEST(AprioriTest, PremiseWindowConstrainsSpan) {
  // Regions at offsets 0, 10, 20. With window 5 the premise {0,10} (span
  // 10) is disallowed, so no 2-premise rule appears; with window 0
  // (unbounded) it does.
  const auto regions = MakeRegions({0, 10, 20});
  const auto txns =
      MakeTransactions({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 3);
  auto bounded =
      MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 3, 5));
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(FindPattern(*bounded, {0, 1}, 2), nullptr);
  auto unbounded =
      MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 3, 0));
  ASSERT_TRUE(unbounded.ok());
  EXPECT_NE(FindPattern(*unbounded, {0, 1}, 2), nullptr);
}

TEST(AprioriTest, StatsCountFrequentItemsets) {
  const auto regions = MakeRegions({0, 1, 2});
  const auto txns = MakeTransactions({{0, 1, 2}, {0, 1, 2}}, 3);
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 3));
  ASSERT_TRUE(result.ok());
  // 3 singletons + 3 pairs + 1 triple.
  EXPECT_EQ(result->stats.num_frequent_itemsets, 7u);
  EXPECT_EQ(result->stats.patterns_emitted, result->patterns.size());
  // Pairs {0,1},{0,2},{1,2} and triple {0,1,2} each emit one rule.
  EXPECT_EQ(result->patterns.size(), 4u);
}

TEST(AprioriTest, UnprunedModeCountsDominatedRules) {
  const auto regions = MakeRegions({0, 1, 2});
  const auto txns =
      MakeTransactions({{0, 1, 2}, {0, 1, 2}, {0, 1}}, 3);
  auto pruned = MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 3));
  auto unpruned = MineTrajectoryPatterns(txns, regions,
                                         Params(0.0, 2, 3, 0, false));
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());
  // Emitted (valid) patterns identical either way.
  EXPECT_EQ(pruned->patterns.size(), unpruned->patterns.size());
  EXPECT_EQ(pruned->stats.rules_pruned_time_order, 0u);
  EXPECT_EQ(pruned->stats.rules_pruned_multi_consequence, 0u);
  // Unpruned mode observed dominated rules of both kinds.
  EXPECT_GT(unpruned->stats.rules_pruned_time_order, 0u);
  EXPECT_GT(unpruned->stats.rules_pruned_multi_consequence, 0u);
}

TEST(AprioriTest, Theorem1MultiConsequenceConfidenceNeverHigher) {
  // Verify the theorem numerically in unpruned counting: for item set
  // {0,1,2}, conf({0} -> {1,2}) <= conf({0} -> {1}).
  const auto regions = MakeRegions({0, 1, 2});
  const auto txns = MakeTransactions(
      {{0, 1, 2}, {0, 1, 2}, {0, 1}, {0}}, 3);
  // N(0)=4, N(0,1)=3, N(0,1,2)=2.
  // conf(0->1) = 3/4; conf(0 -> 1^2) = 2/4. Theorem 1 holds.
  auto result = MineTrajectoryPatterns(txns, regions, Params(0.0, 2, 3));
  ASSERT_TRUE(result.ok());
  const TrajectoryPattern* single = FindPattern(*result, {0}, 1);
  ASSERT_NE(single, nullptr);
  EXPECT_DOUBLE_EQ(single->confidence, 0.75);
  EXPECT_GE(single->confidence, 2.0 / 4.0);
}

TEST(AprioriTest, ToStringRendersRule) {
  TrajectoryPattern p;
  p.premise = {0, 1};
  p.consequence = 3;
  p.confidence = 0.5;
  EXPECT_EQ(p.ToString(), "R0 ^ R1 -(0.50)-> R3");
}

/// Property test: mined pairs agree with brute-force counting on random
/// transaction databases.
class AprioriPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AprioriPropertyTest, PairRulesMatchBruteForce) {
  const int num_regions = GetParam();
  Random rng(static_cast<uint64_t>(num_regions) * 13);
  // Distinct offsets so any ordered pair is a candidate.
  std::vector<Timestamp> offsets;
  for (int i = 0; i < num_regions; ++i) offsets.push_back(i);
  const auto regions = MakeRegions(offsets);

  std::vector<std::vector<int>> item_lists(20);
  for (auto& items : item_lists) {
    for (int r = 0; r < num_regions; ++r) {
      if (rng.Bernoulli(0.4)) items.push_back(r);
    }
  }
  const auto txns = MakeTransactions(item_lists, offsets.size());

  const double min_conf = 0.3;
  const int min_supp = 2;
  auto result = MineTrajectoryPatterns(txns, regions,
                                       Params(min_conf, min_supp, 2));
  ASSERT_TRUE(result.ok());

  // Brute force: every ordered pair (a, b), a < b by offset.
  std::set<std::pair<int, int>> expected;
  for (int a = 0; a < num_regions; ++a) {
    for (int b = a + 1; b < num_regions; ++b) {
      int supp_a = 0, supp_ab = 0;
      for (const auto& items : item_lists) {
        const bool has_a =
            std::find(items.begin(), items.end(), a) != items.end();
        const bool has_b =
            std::find(items.begin(), items.end(), b) != items.end();
        supp_a += has_a;
        supp_ab += has_a && has_b;
      }
      if (supp_ab >= min_supp && supp_a >= min_supp &&
          static_cast<double>(supp_ab) / supp_a >= min_conf) {
        expected.insert({a, b});
      }
    }
  }
  std::set<std::pair<int, int>> mined;
  for (const auto& p : result->patterns) {
    ASSERT_EQ(p.premise.size(), 1u);
    mined.insert({p.premise[0], p.consequence});
  }
  EXPECT_EQ(mined, expected);
}

INSTANTIATE_TEST_SUITE_P(UniverseSizes, AprioriPropertyTest,
                         ::testing::Values(3, 5, 8, 12));

/// Property test for 2-premise (triple) rules against brute force.
class AprioriTriplePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AprioriTriplePropertyTest, TripleRulesMatchBruteForce) {
  const int num_regions = GetParam();
  Random rng(static_cast<uint64_t>(num_regions) * 29 + 3);
  std::vector<Timestamp> offsets;
  for (int i = 0; i < num_regions; ++i) offsets.push_back(i);
  const auto regions = MakeRegions(offsets);

  std::vector<std::vector<int>> item_lists(24);
  for (auto& items : item_lists) {
    for (int r = 0; r < num_regions; ++r) {
      if (rng.Bernoulli(0.5)) items.push_back(r);
    }
  }
  const auto txns = MakeTransactions(item_lists, offsets.size());

  const double min_conf = 0.4;
  const int min_supp = 3;
  auto result = MineTrajectoryPatterns(
      txns, regions, Params(min_conf, min_supp, 3, /*window=*/0));
  ASSERT_TRUE(result.ok());

  auto support = [&item_lists](const std::vector<int>& items) {
    int count = 0;
    for (const auto& txn : item_lists) {
      bool all = true;
      for (int item : items) {
        if (std::find(txn.begin(), txn.end(), item) == txn.end()) {
          all = false;
          break;
        }
      }
      count += all;
    }
    return count;
  };

  // Brute force: every ordered triple (a < b < c by offset) emits the
  // rule {a,b} -> c when the itemset is frequent and confident.
  std::set<std::tuple<int, int, int>> expected;
  for (int a = 0; a < num_regions; ++a) {
    for (int b = a + 1; b < num_regions; ++b) {
      for (int c = b + 1; c < num_regions; ++c) {
        const int supp_abc = support({a, b, c});
        const int supp_ab = support({a, b});
        if (supp_abc >= min_supp && supp_ab > 0 &&
            static_cast<double>(supp_abc) / supp_ab >= min_conf) {
          expected.insert({a, b, c});
        }
      }
    }
  }
  std::set<std::tuple<int, int, int>> mined;
  for (const auto& p : result->patterns) {
    if (p.premise.size() != 2) continue;
    mined.insert({p.premise[0], p.premise[1], p.consequence});
    // Confidence agrees with brute force.
    EXPECT_NEAR(p.confidence,
                static_cast<double>(
                    support({p.premise[0], p.premise[1], p.consequence})) /
                    support(p.premise),
                1e-12);
  }
  EXPECT_EQ(mined, expected);
}

INSTANTIATE_TEST_SUITE_P(UniverseSizes, AprioriTriplePropertyTest,
                         ::testing::Values(4, 6, 9));

}  // namespace
}  // namespace hpm
