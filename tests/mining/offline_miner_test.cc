// The one-shot offline pass must be exactly the three pipeline stages
// it packages (discovery -> transactions -> Apriori), and its
// region-remapping helper must agree with the labels discovery itself
// produced — the contracts the incremental path builds on.

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "mining/offline_miner.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 8;

/// A history of `periods` noisy laps over a fixed route: every offset
/// forms one tight cluster, so discovery finds one region per offset.
Trajectory PatternedHistory(int periods, uint64_t seed) {
  Random rng(seed);
  Trajectory history;
  for (int p = 0; p < periods; ++p) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      history.Append({100.0 * static_cast<double>(t) + rng.Gaussian(0, 1.0),
                      50.0 + rng.Gaussian(0, 1.0)});
    }
  }
  return history;
}

FrequentRegionParams RegionParams() {
  FrequentRegionParams params;
  params.period = kPeriod;
  params.dbscan.eps = 10.0;
  params.dbscan.min_pts = 3;
  return params;
}

AprioriParams MiningParams() {
  AprioriParams params;
  params.min_support = 3;
  params.min_confidence = 0.3;
  params.max_pattern_length = 3;
  return params;
}

TEST(OfflineMinerTest, MatchesStagesRunSeparately) {
  const Trajectory history = PatternedHistory(6, 7);
  const StatusOr<OfflineMineResult> offline =
      MineOffline(history, RegionParams(), MiningParams());
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  StatusOr<FrequentRegionMiningResult> discovery =
      MineFrequentRegions(history, RegionParams());
  ASSERT_TRUE(discovery.ok());
  const std::vector<Transaction> transactions =
      BuildTransactions(*discovery);
  StatusOr<AprioriResult> mined = MineTrajectoryPatterns(
      transactions, discovery->region_set, MiningParams());
  ASSERT_TRUE(mined.ok());

  EXPECT_EQ(offline->discovery.region_set.NumRegions(),
            discovery->region_set.NumRegions());
  ASSERT_EQ(offline->transactions.size(), transactions.size());
  for (size_t i = 0; i < transactions.size(); ++i) {
    EXPECT_EQ(offline->transactions[i].items(), transactions[i].items());
  }
  ASSERT_EQ(offline->mined.patterns.size(), mined->patterns.size());
  for (size_t i = 0; i < mined->patterns.size(); ++i) {
    EXPECT_EQ(offline->mined.patterns[i].premise,
              mined->patterns[i].premise);
    EXPECT_EQ(offline->mined.patterns[i].consequence,
              mined->patterns[i].consequence);
    EXPECT_EQ(offline->mined.patterns[i].support,
              mined->patterns[i].support);
    EXPECT_EQ(offline->mined.patterns[i].confidence,
              mined->patterns[i].confidence);
  }
}

TEST(OfflineMinerTest, FindsPatternsOnPatternedData) {
  const StatusOr<OfflineMineResult> offline =
      MineOffline(PatternedHistory(6, 11), RegionParams(), MiningParams());
  ASSERT_TRUE(offline.ok());
  EXPECT_EQ(offline->discovery.region_set.NumRegions(),
            static_cast<size_t>(kPeriod));
  EXPECT_EQ(offline->transactions.size(), 6u);
  EXPECT_FALSE(offline->mined.patterns.empty());
}

TEST(OfflineMinerTest, RejectsShortHistory) {
  Trajectory history;
  history.Append({1.0, 2.0});
  EXPECT_FALSE(MineOffline(history, RegionParams(), MiningParams()).ok());
}

TEST(OfflineMinerTest, RemapAgreesWithDiscoveryLabels) {
  const Trajectory history = PatternedHistory(6, 13);
  const StatusOr<OfflineMineResult> offline =
      MineOffline(history, RegionParams(), MiningParams());
  ASSERT_TRUE(offline.ok());
  const FrequentRegionSet& regions = offline->discovery.region_set;

  // Re-map each complete period geometrically; on this clean data every
  // point sits inside its offset's region MBR, so the remapped visits
  // must reproduce the discovery labels transaction-for-transaction.
  for (size_t p = 0; p * kPeriod < history.size(); ++p) {
    std::vector<Point> points(
        history.points().begin() + static_cast<long>(p * kPeriod),
        history.points().begin() + static_cast<long>((p + 1) * kPeriod));
    const std::vector<RegionVisit> visits =
        MapPeriodPointsToVisits(regions, points, /*slack=*/0.0);
    const Transaction remapped(visits, regions.NumRegions());
    EXPECT_EQ(remapped.items(), offline->transactions[p].items())
        << "period " << p;
  }
}

TEST(OfflineMinerTest, RemapSkipsFarPoints) {
  const Trajectory history = PatternedHistory(6, 17);
  const StatusOr<OfflineMineResult> offline =
      MineOffline(history, RegionParams(), MiningParams());
  ASSERT_TRUE(offline.ok());

  std::vector<Point> far(static_cast<size_t>(kPeriod),
                         Point{1e6, 1e6});
  EXPECT_TRUE(MapPeriodPointsToVisits(offline->discovery.region_set, far,
                                      /*slack=*/0.0)
                  .empty());
}

}  // namespace
}  // namespace hpm
