#include "mining/transaction.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

TEST(TransactionTest, BuildsSortedDistinctItems) {
  const std::vector<RegionVisit> visits = {
      {0, 2}, {1, 0}, {2, 2}, {3, 5}};
  Transaction t(visits, 8);
  EXPECT_EQ(t.items(), (std::vector<int>{0, 2, 5}));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(2));
  EXPECT_TRUE(t.Contains(5));
  EXPECT_FALSE(t.Contains(1));
}

TEST(TransactionTest, EmptyVisits) {
  Transaction t({}, 4);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.bits().None());
}

TEST(TransactionTest, ContainsAllSubsetCheck) {
  Transaction t({{0, 1}, {1, 3}, {2, 4}}, 6);
  DynamicBitset subset(6);
  subset.Set(1);
  subset.Set(4);
  EXPECT_TRUE(t.ContainsAll(subset));
  subset.Set(5);
  EXPECT_FALSE(t.ContainsAll(subset));
  EXPECT_TRUE(t.ContainsAll(DynamicBitset(6)));  // Empty subset.
}

TEST(TransactionTest, BuildTransactionsFromMiningResult) {
  FrequentRegionMiningResult mining;
  mining.region_set.set_period(4);
  for (int i = 0; i < 3; ++i) {
    FrequentRegion r;
    r.id = i;
    r.offset = i;
    r.center = {static_cast<double>(i), 0};
    r.mbr.Extend(r.center);
    r.support = 2;
    mining.region_set.AddRegion(r);
  }
  mining.visits = {{{0, 0}, {1, 1}}, {{2, 2}}, {}};
  const auto transactions = BuildTransactions(mining);
  ASSERT_EQ(transactions.size(), 3u);
  EXPECT_EQ(transactions[0].items(), (std::vector<int>{0, 1}));
  EXPECT_EQ(transactions[1].items(), (std::vector<int>{2}));
  EXPECT_TRUE(transactions[2].empty());
}

class MapMovementsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_.set_period(10);
    // Region 0 at offset 2 around (100, 100); region 1 at offset 3
    // around (200, 200).
    FrequentRegion r0;
    r0.id = 0;
    r0.offset = 2;
    r0.center = {100, 100};
    r0.mbr = BoundingBox({95, 95}, {105, 105});
    r0.support = 5;
    set_.AddRegion(r0);
    FrequentRegion r1;
    r1.id = 1;
    r1.offset = 3;
    r1.center = {200, 200};
    r1.mbr = BoundingBox({195, 195}, {205, 205});
    r1.support = 5;
    set_.AddRegion(r1);
  }
  FrequentRegionSet set_;
};

TEST_F(MapMovementsTest, MatchesByOffsetAndContainment) {
  const std::vector<TimedPoint> recent = {
      {2, {100, 100}},  // In region 0.
      {3, {200, 200}},  // In region 1.
  };
  EXPECT_EQ(MapMovementsToRegions(set_, recent),
            (std::vector<int>{0, 1}));
}

TEST_F(MapMovementsTest, WrongOffsetDoesNotMatch) {
  const std::vector<TimedPoint> recent = {{5, {100, 100}}};
  EXPECT_TRUE(MapMovementsToRegions(set_, recent).empty());
}

TEST_F(MapMovementsTest, TimeWrapsModuloPeriod) {
  // Absolute time 12 has offset 2 in a period of 10.
  const std::vector<TimedPoint> recent = {{12, {100, 100}}};
  EXPECT_EQ(MapMovementsToRegions(set_, recent), std::vector<int>{0});
}

TEST_F(MapMovementsTest, SlackAdmitsNearMisses) {
  const std::vector<TimedPoint> recent = {{2, {108, 100}}};
  EXPECT_TRUE(MapMovementsToRegions(set_, recent, 0.0).empty());
  EXPECT_EQ(MapMovementsToRegions(set_, recent, 5.0),
            std::vector<int>{0});
}

TEST_F(MapMovementsTest, DuplicatesCollapse) {
  const std::vector<TimedPoint> recent = {
      {2, {100, 100}}, {12, {101, 101}}};  // Both map to region 0.
  EXPECT_EQ(MapMovementsToRegions(set_, recent), std::vector<int>{0});
}

TEST(TransactionDeathTest, RegionIdOutOfUniverseAborts) {
  const std::vector<RegionVisit> visits = {{0, 9}};
  EXPECT_DEATH(Transaction(visits, 4), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
