// Unit coverage for the incremental pattern maintainer: window
// bookkeeping, exact count maintenance against the offline Apriori
// oracle, promote/demote crossings and drift, the candidate memory
// bound, Prime()'s replay equivalence and the metric hooks. The
// full randomized differential guarantee lives in
// tests/proptest/prop_incremental_mining_test.cc.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "mining/incremental_miner.h"
#include "mining/offline_miner.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 8;

FrequentRegionParams RegionParams() {
  FrequentRegionParams params;
  params.period = kPeriod;
  params.dbscan.eps = 10.0;
  params.dbscan.min_pts = 3;
  return params;
}

AprioriParams MiningParams() {
  AprioriParams params;
  params.min_support = 3;
  params.min_confidence = 0.3;
  params.max_pattern_length = 3;
  return params;
}

IncrementalMinerOptions MinerOptions() {
  IncrementalMinerOptions options;
  options.window_periods = 6;
  return options;
}

/// One noisy lap over the fixed route (offset t at x ~ 100 t).
std::vector<Point> RouteLap(Random* rng) {
  std::vector<Point> lap;
  for (Timestamp t = 0; t < kPeriod; ++t) {
    lap.push_back({100.0 * static_cast<double>(t) + rng->Gaussian(0, 1.0),
                   50.0 + rng->Gaussian(0, 1.0)});
  }
  return lap;
}

/// A lap far away from every discovered region.
std::vector<Point> FarLap() {
  return std::vector<Point>(static_cast<size_t>(kPeriod), Point{1e6, 1e6});
}

Trajectory Laps(int periods, uint64_t seed) {
  Random rng(seed);
  Trajectory history;
  for (int p = 0; p < periods; ++p) {
    for (const Point& point : RouteLap(&rng)) history.Append(point);
  }
  return history;
}

FrequentRegionSet DiscoverRegions(const Trajectory& history) {
  StatusOr<FrequentRegionMiningResult> discovery =
      MineFrequentRegions(history, RegionParams());
  EXPECT_TRUE(discovery.ok());
  return discovery->region_set;
}

void Feed(IncrementalMiner* miner, const Trajectory& history) {
  for (const Point& point : history.points()) miner->Observe(point);
}

/// The offline oracle over the miner's retained window under the
/// miner's adopted region universe: re-map each window period
/// geometrically, then run the exact offline Apriori.
AprioriResult OfflineOverWindow(const IncrementalMiner& miner) {
  const FrequentRegionSet& regions = *miner.regions();
  const Trajectory window = miner.WindowTrajectory();
  std::vector<Transaction> transactions;
  for (size_t start = 0; start + static_cast<size_t>(kPeriod) <=
                         window.size();
       start += static_cast<size_t>(kPeriod)) {
    std::vector<Point> points(
        window.points().begin() + static_cast<long>(start),
        window.points().begin() +
            static_cast<long>(start + static_cast<size_t>(kPeriod)));
    transactions.emplace_back(
        MapPeriodPointsToVisits(regions, points, /*slack=*/0.0),
        regions.NumRegions());
  }
  StatusOr<AprioriResult> mined =
      MineTrajectoryPatterns(transactions, regions, MiningParams());
  EXPECT_TRUE(mined.ok());
  return *mined;
}

std::string DescribePatterns(const std::vector<TrajectoryPattern>& ps) {
  std::string out;
  for (const TrajectoryPattern& p : ps) {
    out += "{";
    for (int id : p.premise) out += std::to_string(id) + ",";
    out += "=>" + std::to_string(p.consequence) +
           " s=" + std::to_string(p.support) + "} ";
  }
  return out;
}

/// The maintained set must equal the offline rule set over the same
/// window: same rules, same supports, bit-identical confidences.
void ExpectMatchesOffline(const IncrementalMiner& miner) {
  AprioriResult offline = OfflineOverWindow(miner);
  std::sort(offline.patterns.begin(), offline.patterns.end(),
            [](const TrajectoryPattern& a, const TrajectoryPattern& b) {
              if (a.premise.size() != b.premise.size()) {
                return a.premise.size() < b.premise.size();
              }
              if (a.premise != b.premise) return a.premise < b.premise;
              return a.consequence < b.consequence;
            });
  const std::vector<TrajectoryPattern> maintained = miner.CurrentPatterns();
  ASSERT_EQ(maintained.size(), offline.patterns.size())
      << "maintained: " << DescribePatterns(maintained)
      << " offline: " << DescribePatterns(offline.patterns);
  for (size_t i = 0; i < maintained.size(); ++i) {
    EXPECT_EQ(maintained[i].premise, offline.patterns[i].premise);
    EXPECT_EQ(maintained[i].consequence, offline.patterns[i].consequence);
    EXPECT_EQ(maintained[i].support, offline.patterns[i].support);
    EXPECT_EQ(maintained[i].confidence, offline.patterns[i].confidence);
  }
}

TEST(IncrementalMinerTest, WindowBookkeepingBeforeRegions) {
  IncrementalMiner miner(MinerOptions(), kPeriod, MiningParams());
  EXPECT_FALSE(miner.has_regions());
  Feed(&miner, Laps(3, 1));
  miner.Observe({0.0, 0.0});
  EXPECT_EQ(miner.total_observed(), 3u * kPeriod + 1);
  EXPECT_EQ(miner.window_end(), 3u * kPeriod);
  EXPECT_EQ(miner.WindowSize(), 3u);
  // No regions yet: points buffer, but nothing is mined.
  EXPECT_EQ(miner.stats().transactions, 0u);
  EXPECT_EQ(miner.CurrentPatterns().size(), 0u);
  EXPECT_EQ(miner.drift(), 0.0);
}

TEST(IncrementalMinerTest, WindowEvictsOldestPeriod) {
  IncrementalMinerOptions options;
  options.window_periods = 2;
  IncrementalMiner miner(options, kPeriod, MiningParams());
  Feed(&miner, Laps(5, 2));
  EXPECT_EQ(miner.WindowSize(), 2u);
  EXPECT_EQ(miner.WindowTrajectory().size(), 2u * kPeriod);
  // window_end keeps counting absolute samples even as entries expire.
  EXPECT_EQ(miner.window_end(), 5u * kPeriod);
}

TEST(IncrementalMinerTest, AdoptRegionsRecountsWindowExactly) {
  const Trajectory history = Laps(6, 3);
  IncrementalMiner miner(MinerOptions(), kPeriod, MiningParams());
  Feed(&miner, history);
  miner.AdoptRegions(DiscoverRegions(history));
  ASSERT_TRUE(miner.has_regions());
  // Every window period maps to the full route: each single-region
  // support equals the window size.
  for (int id = 0; id < static_cast<int>(miner.regions()->NumRegions());
       ++id) {
    EXPECT_EQ(miner.SupportOf({id}), static_cast<int>(miner.WindowSize()));
  }
  ExpectMatchesOffline(miner);
}

TEST(IncrementalMinerTest, StreamingMatchesOfflineAfterMorePeriods) {
  const Trajectory bootstrap = Laps(6, 4);
  IncrementalMiner miner(MinerOptions(), kPeriod, MiningParams());
  Feed(&miner, bootstrap);
  miner.AdoptRegions(DiscoverRegions(bootstrap));
  // Keep streaming: pattern periods and far periods interleave, the
  // window slides, counts go up and down — and the maintained set must
  // track the offline oracle at every period boundary.
  Random rng(5);
  for (int p = 0; p < 10; ++p) {
    const std::vector<Point> lap =
        (p % 3 == 2) ? FarLap() : RouteLap(&rng);
    for (const Point& point : lap) miner.Observe(point);
    ExpectMatchesOffline(miner);
  }
}

TEST(IncrementalMinerTest, CrossingsMoveDriftAndStats) {
  const Trajectory bootstrap = Laps(6, 6);
  // Slack covers the route noise, so calm laps are fully matched and
  // the decay phase below is driven by the decay factor alone.
  IncrementalMinerOptions options = MinerOptions();
  options.region_match_slack = 5.0;
  IncrementalMiner miner(options, kPeriod, MiningParams());
  Feed(&miner, bootstrap);
  miner.AdoptRegions(DiscoverRegions(bootstrap));
  EXPECT_EQ(miner.drift(), 0.0);  // adoption re-bases, it is not drift

  // Far periods push route periods out of the 6-period window; once
  // support falls below min_support the sets demote and drift rises.
  const uint64_t promoted_before = miner.stats().promoted;
  for (int p = 0; p < 6; ++p) {
    for (const Point& point : FarLap()) miner.Observe(point);
  }
  EXPECT_GT(miner.stats().demoted, 0u);
  EXPECT_GT(miner.drift(), 0.0);
  EXPECT_GT(miner.stats().unmatched_points, 0u);

  const double peak = miner.drift();
  // Window now holds only unmatched periods; feeding route periods back
  // re-promotes (crossings again) — but afterwards calm repetition
  // decays the score multiplicatively.
  Random rng(7);
  for (int p = 0; p < 6; ++p) {
    for (const Point& point : RouteLap(&rng)) miner.Observe(point);
  }
  EXPECT_GT(miner.stats().promoted, promoted_before);
  double drift = miner.drift();
  for (int p = 0; p < 8; ++p) {
    for (const Point& point : RouteLap(&rng)) miner.Observe(point);
    EXPECT_LE(miner.drift(), drift + 1e-9);
    drift = miner.drift();
  }
  EXPECT_LT(drift, peak);
}

TEST(IncrementalMinerTest, CandidateBoundEvictsDeterministically) {
  const Trajectory bootstrap = Laps(6, 8);
  IncrementalMinerOptions options = MinerOptions();
  options.max_candidates = 4;
  IncrementalMiner bounded(options, kPeriod, MiningParams());
  Feed(&bounded, bootstrap);
  bounded.AdoptRegions(DiscoverRegions(bootstrap));
  EXPECT_LE(bounded.NumTrackedItemsets(), 4u);
  EXPECT_GT(bounded.stats().candidates_evicted, 0u);

  // Determinism: the same feed yields the same surviving candidate set.
  IncrementalMiner again(options, kPeriod, MiningParams());
  Feed(&again, bootstrap);
  again.AdoptRegions(DiscoverRegions(bootstrap));
  EXPECT_EQ(bounded.NumTrackedItemsets(), again.NumTrackedItemsets());
  EXPECT_EQ(bounded.stats().candidates_evicted,
            again.stats().candidates_evicted);
  const std::vector<TrajectoryPattern> a = bounded.CurrentPatterns();
  const std::vector<TrajectoryPattern> b = again.CurrentPatterns();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].premise, b[i].premise);
    EXPECT_EQ(a[i].consequence, b[i].consequence);
  }
}

TEST(IncrementalMinerTest, PrimeReplaysToIdenticalState) {
  // Live miner: adopt after 6 periods, then keep streaming 7 more.
  const Trajectory bootstrap = Laps(6, 9);
  const FrequentRegionSet regions = DiscoverRegions(bootstrap);
  IncrementalMiner live(MinerOptions(), kPeriod, MiningParams());
  Feed(&live, bootstrap);
  live.AdoptRegions(regions);
  const size_t adopted_at = live.window_end();
  Trajectory full = bootstrap;
  Random rng(10);
  for (int p = 0; p < 7; ++p) {
    const std::vector<Point> lap =
        (p % 2 == 0) ? RouteLap(&rng) : FarLap();
    for (const Point& point : lap) {
      live.Observe(point);
      full.Append(point);
    }
  }

  // Primed miner: rebuilt from (history, adopted_at, regions) alone —
  // the crash-recovery shape. State must match the live miner exactly.
  IncrementalMiner primed(MinerOptions(), kPeriod, MiningParams());
  primed.Prime(full, adopted_at, &regions);
  EXPECT_EQ(primed.window_end(), live.window_end());
  EXPECT_EQ(primed.WindowSize(), live.WindowSize());
  EXPECT_EQ(primed.NumTrackedItemsets(), live.NumTrackedItemsets());
  EXPECT_EQ(primed.drift(), live.drift());
  const std::vector<TrajectoryPattern> expected = live.CurrentPatterns();
  const std::vector<TrajectoryPattern> actual = primed.CurrentPatterns();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].premise, expected[i].premise);
    EXPECT_EQ(actual[i].consequence, expected[i].consequence);
    EXPECT_EQ(actual[i].support, expected[i].support);
    EXPECT_EQ(actual[i].confidence, expected[i].confidence);
  }
}

TEST(IncrementalMinerTest, MetricHooksMirrorStats) {
  MetricsRegistry registry;
  MinerMetricHooks hooks;
  hooks.transactions = registry.GetCounter("miner.transactions");
  hooks.unmatched_points = registry.GetCounter("miner.unmatched_points");
  hooks.promoted = registry.GetCounter("miner.promoted");
  hooks.demoted = registry.GetCounter("miner.demoted");
  hooks.candidates_evicted = registry.GetCounter("miner.candidates_evicted");

  const Trajectory bootstrap = Laps(6, 12);
  IncrementalMiner miner(MinerOptions(), kPeriod, MiningParams());
  miner.set_metric_hooks(hooks);
  Feed(&miner, bootstrap);
  miner.AdoptRegions(DiscoverRegions(bootstrap));
  for (int p = 0; p < 6; ++p) {
    for (const Point& point : FarLap()) miner.Observe(point);
  }
  const MetricsSnapshot snapshot = registry.TakeSnapshot();
  EXPECT_EQ(snapshot.counter("miner.transactions"),
            miner.stats().transactions);
  EXPECT_EQ(snapshot.counter("miner.unmatched_points"),
            miner.stats().unmatched_points);
  EXPECT_EQ(snapshot.counter("miner.demoted"), miner.stats().demoted);
  EXPECT_GT(snapshot.counter("miner.demoted"), 0u);
}

}  // namespace
}  // namespace hpm
