// Property suite: random fault schedules against the serving and
// persistence layers. The contracts under test:
//   * a fault schedule never crashes the store and never turns into a
//     non-degraded wrong answer — queries either match the fault-free
//     replay exactly or are flagged degraded (motion-function source),
//   * once faults stop, behaviour returns to fault-free-identical,
//   * a save killed at any random write point leaves the directory
//     loadable at the last committed state.
//
// Deadline degradation needs no hooks and runs in every build; the
// fault-schedule properties arm the injector and skip themselves when
// the hooks are compiled out.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

ObjectStoreOptions StoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  return options;
}

struct FaultCase {
  uint64_t seed = 0;
  /// Per-object noisy periodic routes, replayed in object order.
  std::vector<std::vector<Point>> reports;
  /// Query horizons (prediction lengths), straddling the FQP/BQP split.
  std::vector<Timestamp> deltas;
  /// Probability an armed site fires per hit.
  double fault_probability = 0.0;
};

FaultCase GenCase(Random& rng) {
  FaultCase c;
  c.seed = rng.NextUint64();
  const int num_objects = static_cast<int>(1 + rng.Uniform(3));
  const int periods = static_cast<int>(5 + rng.Uniform(3));
  for (int i = 0; i < num_objects; ++i) {
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    std::vector<Point> reports;
    for (int d = 0; d < periods; ++d) {
      for (Timestamp t = 0; t < kPeriod; ++t) {
        Point p = route[static_cast<size_t>(t)];
        p.x += rng.Gaussian(0.0, 2.0);
        p.y += rng.Gaussian(0.0, 2.0);
        reports.push_back(p);
      }
    }
    c.reports.push_back(std::move(reports));
  }
  const int num_deltas = static_cast<int>(2 + rng.Uniform(4));
  for (int i = 0; i < num_deltas; ++i) {
    c.deltas.push_back(static_cast<Timestamp>(1 + rng.Uniform(12)));
  }
  c.fault_probability = 0.1 + 0.8 * rng.NextDouble();
  return c;
}

std::string Ingest(MovingObjectStore& store, const FaultCase& input) {
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = static_cast<ObjectId>(i) * 7 + 1;
    for (const Point& p : input.reports[i]) {
      const Status status = store.ReportLocation(id, p);
      if (!status.ok()) {
        return "ingest failed for object " + std::to_string(id) + ": " +
               status.ToString();
      }
    }
  }
  return "";
}

ObjectId IdOf(size_t index) { return static_cast<ObjectId>(index) * 7 + 1; }

/// One comparable answer: flattened locations + sources + reasons.
struct Answer {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::vector<Point> locations;
  std::vector<PredictionSource> sources;
  std::vector<DegradedReason> reasons;
};

Answer Ask(const MovingObjectStore& store, ObjectId id, Timestamp tq,
           Deadline deadline = Deadline::Infinite()) {
  Answer answer;
  const auto result = store.PredictLocation(id, tq, 2, deadline);
  answer.ok = result.ok();
  answer.code = result.status().code();
  if (result.ok()) {
    for (const Prediction& p : *result) {
      answer.locations.push_back(p.location);
      answer.sources.push_back(p.source);
      answer.reasons.push_back(p.degraded);
    }
  }
  return answer;
}

bool SameAnswer(const Answer& a, const Answer& b) {
  if (a.ok != b.ok || a.code != b.code) return false;
  if (a.locations.size() != b.locations.size()) return false;
  for (size_t i = 0; i < a.locations.size(); ++i) {
    if (!(a.locations[i] == b.locations[i]) ||
        a.sources[i] != b.sources[i] || a.reasons[i] != b.reasons[i]) {
      return false;
    }
  }
  return true;
}

// --- P0: expired deadlines degrade, in any build -----------------------

std::string CheckDeadlineDegradation(const FaultCase& input) {
  FaultInjector::Global().Reset();
  MovingObjectStore store(StoreOptions());
  std::string failure = Ingest(store, input);
  if (!failure.empty()) return failure;

  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = IdOf(i);
    const bool trained = store.GetPredictor(id).ok();
    const Timestamp now =
        static_cast<Timestamp>(store.HistoryLength(id)) - 1;
    for (const Timestamp delta : input.deltas) {
      const Answer timely = Ask(store, id, now + delta);
      const Answer rushed =
          Ask(store, id, now + delta, Deadline::Expired());
      if (!timely.ok || !rushed.ok) {
        return "query failed (object " + std::to_string(id) + ", delta " +
               std::to_string(delta) + ")";
      }
      for (size_t j = 0; j < rushed.reasons.size(); ++j) {
        if (trained &&
            rushed.reasons[j] != DegradedReason::kDeadlineExceeded) {
          return "expired deadline did not degrade (object " +
                 std::to_string(id) + ")";
        }
        if (rushed.sources[j] != PredictionSource::kMotionFunction) {
          return "degraded answer not from the motion function";
        }
      }
      // Degradation is deterministic: asking again matches.
      if (!SameAnswer(rushed,
                      Ask(store, id, now + delta, Deadline::Expired()))) {
        return "degraded answer not deterministic";
      }
    }
  }
  return "";
}

TEST(PropFaultTest, ExpiredDeadlinesAlwaysDegradeGracefully) {
  Property<FaultCase> property("deadline-degradation", GenCase,
                               CheckDeadlineDegradation);
  RunnerOptions options;
  options.num_cases = 8;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P1: random pattern-side fault schedules ---------------------------

#ifdef HPM_ENABLE_FAULTS

std::string CheckPatternFaultSchedule(const FaultCase& input) {
  FaultInjector::Global().Reset();
  MovingObjectStore store(StoreOptions());
  std::string failure = Ingest(store, input);
  if (!failure.empty()) return failure;

  // Fault-free reference pass (queries are read-only).
  std::vector<Answer> clean;
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const Timestamp now =
        static_cast<Timestamp>(store.HistoryLength(IdOf(i))) - 1;
    for (const Timestamp delta : input.deltas) {
      clean.push_back(Ask(store, IdOf(i), now + delta));
    }
  }

  // Faulty pass: pattern lookups fail with probability p.
  FaultInjector::Global().Seed(input.seed);
  FaultRule rule;
  rule.probability = input.fault_probability;
  FaultInjector::Global().Arm("core/pattern_lookup", rule);

  size_t q = 0;
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = IdOf(i);
    const bool trained = store.GetPredictor(id).ok();
    const Timestamp now =
        static_cast<Timestamp>(store.HistoryLength(id)) - 1;
    for (const Timestamp delta : input.deltas) {
      const Answer faulty = Ask(store, id, now + delta);
      const Answer& reference = clean[q++];
      if (faulty.ok != reference.ok || faulty.code != reference.code) {
        return "fault schedule changed a query's status (object " +
               std::to_string(id) + ", delta " + std::to_string(delta) +
               ")";
      }
      if (!faulty.ok) continue;
      const bool degraded =
          !faulty.reasons.empty() &&
          faulty.reasons.front() == DegradedReason::kPatternUnavailable;
      if (degraded) {
        if (!trained) return "untrained object produced a degraded answer";
        for (const PredictionSource source : faulty.sources) {
          if (source != PredictionSource::kMotionFunction) {
            return "degraded answer not from the motion function";
          }
        }
      } else if (!SameAnswer(faulty, reference)) {
        // The wrong-answer clause: anything not flagged degraded must be
        // byte-identical to the fault-free answer.
        return "non-degraded answer differs from fault-free replay "
               "(object " +
               std::to_string(id) + ", delta " + std::to_string(delta) +
               ")";
      }
    }
  }

  // Faults stop: behaviour must return to fault-free-identical.
  FaultInjector::Global().Disarm("core/pattern_lookup");
  q = 0;
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const Timestamp now =
        static_cast<Timestamp>(store.HistoryLength(IdOf(i))) - 1;
    for (const Timestamp delta : input.deltas) {
      if (!SameAnswer(Ask(store, IdOf(i), now + delta), clean[q++])) {
        return "behaviour did not recover after faults stopped";
      }
    }
  }
  return "";
}

TEST(PropFaultTest, PatternFaultSchedulesNeverCorruptAnswers) {
  Property<FaultCase> property("pattern-fault-schedule", GenCase,
                               CheckPatternFaultSchedule);
  RunnerOptions options;
  options.num_cases = 8;
  const proptest::RunResult result = property.Run(options);
  FaultInjector::Global().Reset();
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P2: random training fault schedules -------------------------------

std::string CheckTrainFaultSchedule(const FaultCase& input) {
  FaultInjector::Global().Reset();

  // Clean twin: what the fleet looks like with no faults.
  MovingObjectStore clean(StoreOptions());
  std::string failure = Ingest(clean, input);
  if (!failure.empty()) return "clean twin: " + failure;

  // Faulty replay: training may fail; ingestion must survive it.
  FaultInjector::Global().Seed(input.seed);
  FaultRule rule;
  rule.probability = input.fault_probability;
  FaultInjector::Global().Arm("core/train", rule);
  MovingObjectStore faulty(StoreOptions());
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = IdOf(i);
    for (const Point& p : input.reports[i]) {
      const Status status = faulty.ReportLocation(id, p);
      if (!status.ok() && status.code() != StatusCode::kUnavailable) {
        return "unexpected ingest error under train faults: " +
               status.ToString();
      }
    }
  }
  FaultInjector::Global().Disarm("core/train");

  // Histories are appended before training runs — they never regress.
  for (size_t i = 0; i < input.reports.size(); ++i) {
    if (faulty.HistoryLength(IdOf(i)) != clean.HistoryLength(IdOf(i))) {
      return "train faults corrupted an object's history";
    }
  }

  // Every object still answers queries, and any trained model is sound.
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = IdOf(i);
    const Timestamp now =
        static_cast<Timestamp>(faulty.HistoryLength(id)) - 1;
    const Answer answer = Ask(faulty, id, now + input.deltas.front());
    if (!answer.ok) {
      return "object stopped answering after train faults";
    }
    const auto predictor = faulty.GetPredictor(id);
    if (predictor.ok() && !(*predictor)->tpt().CheckInvariants().ok()) {
      return "train faults left a structurally broken model";
    }
  }

  // With faults gone, the next batches train successfully: after two more
  // clean periods every object has a model (the clean twin has one by
  // construction, since periods >= min_training_periods).
  for (size_t i = 0; i < input.reports.size(); ++i) {
    const ObjectId id = IdOf(i);
    for (size_t s = 0; s < 2 * static_cast<size_t>(kPeriod); ++s) {
      const Point& p =
          input.reports[i][s % input.reports[i].size()];
      const Status status = faulty.ReportLocation(id, p);
      if (!status.ok()) {
        return "ingest failed after faults stopped: " + status.ToString();
      }
    }
    if (!faulty.GetPredictor(id).ok()) {
      return "object failed to train after faults stopped";
    }
  }
  return "";
}

TEST(PropFaultTest, TrainFaultSchedulesNeverCorruptState) {
  Property<FaultCase> property("train-fault-schedule", GenCase,
                               CheckTrainFaultSchedule);
  RunnerOptions options;
  options.num_cases = 6;
  const proptest::RunResult result = property.Run(options);
  FaultInjector::Global().Reset();
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P3: random save-kill schedules ------------------------------------

std::string CheckSaveKillSchedule(const FaultCase& input) {
  FaultInjector::Global().Reset();
  MovingObjectStore store(StoreOptions());
  std::string failure = Ingest(store, input);
  if (!failure.empty()) return failure;

  const std::string dir = std::string(::testing::TempDir()) +
                          "/prop_fault_store_" + std::to_string(input.seed);
  std::filesystem::remove_all(dir);
  if (!store.SaveToDirectory(dir).ok()) return "clean save failed";

  const char* const kill_sites[] = {"store/save_object",
                                    "store/save_manifest",
                                    "store/save_commit", "io/atomic_write"};
  Random rng(input.seed);
  for (int round = 0; round < 4; ++round) {
    const char* site = kill_sites[rng.Uniform(4)];
    FaultInjector::Global().Reset();
    FaultRule rule;
    rule.from_nth_call = static_cast<int64_t>(1 + rng.Uniform(8));
    FaultInjector::Global().Arm(site, rule);
    const Status killed = store.SaveToDirectory(dir);
    FaultInjector::Global().Reset();

    // Killed or not, the directory must load to the store's state (it is
    // unchanged since the clean save, so every committed generation —
    // including one from a save that outran the kill point — serves it).
    auto restored = MovingObjectStore::LoadFromDirectory(dir, StoreOptions());
    if (!restored.ok()) {
      return std::string("unrecoverable after killing ") + site + " (" +
             (killed.ok() ? "save survived" : killed.ToString()) +
             "): " + restored.status().ToString();
    }
    for (size_t i = 0; i < input.reports.size(); ++i) {
      const ObjectId id = IdOf(i);
      if (restored->HistoryLength(id) != store.HistoryLength(id)) {
        return std::string("recovered history differs after killing ") +
               site;
      }
      const Timestamp now =
          static_cast<Timestamp>(store.HistoryLength(id)) - 1;
      const Answer expected = Ask(store, id, now + input.deltas.front());
      const Answer actual = Ask(*restored, id, now + input.deltas.front());
      if (!SameAnswer(expected, actual)) {
        return std::string("recovered answers differ after killing ") +
               site;
      }
    }
  }
  std::filesystem::remove_all(dir);
  return "";
}

TEST(PropFaultTest, SaveKillSchedulesAlwaysRecoverCommittedState) {
  Property<FaultCase> property("save-kill-schedule", GenCase,
                               CheckSaveKillSchedule);
  RunnerOptions options;
  options.num_cases = 6;
  const proptest::RunResult result = property.Run(options);
  FaultInjector::Global().Reset();
  EXPECT_TRUE(result.ok) << result.message;
}

#else  // !HPM_ENABLE_FAULTS

TEST(PropFaultTest, PatternFaultSchedulesNeverCorruptAnswers) {
  GTEST_SKIP() << "fault hooks compiled out";
}
TEST(PropFaultTest, TrainFaultSchedulesNeverCorruptState) {
  GTEST_SKIP() << "fault hooks compiled out";
}
TEST(PropFaultTest, SaveKillSchedulesAlwaysRecoverCommittedState) {
  GTEST_SKIP() << "fault hooks compiled out";
}

#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
