// Property suite: the stall-interleaved batch executor
// (server/batch_executor.h) is a pure scheduling optimisation. The
// contracts under test:
//   * differential — PredictLocationBatch answers every slot
//     bit-identically (locations, scores, confidences, sources,
//     degraded stamps, pattern ids, statuses) to the sequential
//     PredictLocation calls it amortises, for any id multiset mixing
//     trained, cold, duplicate and unknown objects, under an infinite
//     deadline and under deterministic rung-1 deadline pressure,
//   * interleaving width is unobservable — stores answering the same
//     workload with width = 1 (strictly sequential execution) and an
//     arbitrary width / step budget agree on every answer and on every
//     accounting counter; only batch.interleaved may differ, and it is
//     exactly 0 at width 1,
//   * the Account stage reconciles — a store serving batches and a
//     store serving the equivalent singles agree on objects_evaluated,
//     motion_fits and degraded_predictions; admitted/shed and latency
//     samples land under predict_batch vs predict respectively, and no
//     admission ticket leaks,
//   * (with -DHPM_ENABLE_FAULTS=ON) an `always`-armed pattern-lookup
//     fault degrades batched and sequential answers identically
//     (order-independent schedules only: the batch admits queries in
//     locality order, so count-based schedules would legitimately hit
//     different queries).
// Every failure replays from its seed.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct ReportOp {
  ObjectId id = 0;
  Point location;
};

struct BatchCase {
  std::vector<ReportOp> ops;
  /// Query id multiset: known ids (some trained, some cold), duplicates
  /// and never-reported ids, in random order.
  std::vector<ObjectId> query_ids;
  Timestamp query_delta = 1;
  size_t width = 8;
  size_t step_entries = 32;
};

ObjectStoreOptions BatchStoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 4;
  options.query_threads = 2;
  // Rung 1 trips on any finite deadline: deterministic pressure without
  // clocks, identical for the batched and the sequential path.
  options.degrade_min_headroom =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::hours(1));
  return options;
}

BatchCase GenBatchCase(Random& rng) {
  BatchCase c;
  const int num_objects = static_cast<int>(1 + rng.Uniform(4));
  std::vector<ObjectId> ids;
  std::vector<std::vector<Point>> routes;
  std::vector<int> next_step(static_cast<size_t>(num_objects), 0);
  for (int i = 0; i < num_objects; ++i) {
    ids.push_back(static_cast<ObjectId>(i) * 13 + 7);
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    routes.push_back(std::move(route));
  }
  const int num_ops = static_cast<int>(rng.Uniform(
      60ull * static_cast<uint64_t>(num_objects)));
  for (int i = 0; i < num_ops; ++i) {
    const size_t obj = rng.Uniform(static_cast<uint64_t>(num_objects));
    const int step = next_step[obj]++;
    Point p = routes[obj][static_cast<size_t>(step) % kPeriod];
    p.x += rng.Gaussian(0.0, 2.0);
    p.y += rng.Gaussian(0.0, 2.0);
    c.ops.push_back({ids[obj], p});
  }
  const int num_queries = static_cast<int>(1 + rng.Uniform(12));
  for (int i = 0; i < num_queries; ++i) {
    if (rng.Uniform(5) == 0) {
      c.query_ids.push_back(10007 + static_cast<ObjectId>(rng.Uniform(3)));
    } else {
      c.query_ids.push_back(ids[rng.Uniform(
          static_cast<uint64_t>(num_objects))]);
    }
  }
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(12));
  c.width = 1 + rng.Uniform(8);
  c.step_entries = rng.Uniform(4) == 0 ? 0 : 1 + rng.Uniform(48);
  return c;
}

std::string Replay(MovingObjectStore& store,
                   const std::vector<ReportOp>& ops) {
  for (const ReportOp& op : ops) {
    const Status status = store.ReportLocation(op.id, op.location);
    if (!status.ok()) return "ReportLocation failed: " + status.ToString();
  }
  return "";
}

Timestamp QueryTime(const MovingObjectStore& store, Timestamp delta) {
  Timestamp max_now = 0;
  for (const ObjectId id : store.ObjectIds()) {
    max_now = std::max(max_now,
                       static_cast<Timestamp>(store.HistoryLength(id)));
  }
  return max_now + delta;
}

std::string DiffPredictions(const std::vector<Prediction>& a,
                            const std::vector<Prediction>& b) {
  if (a.size() != b.size()) return "prediction counts differ";
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].location == b[i].location)) return "location differs";
    if (a[i].score != b[i].score) return "score differs";
    if (a[i].confidence != b[i].confidence) return "confidence differs";
    if (a[i].source != b[i].source) return "source differs";
    if (a[i].degraded != b[i].degraded) return "degraded reason differs";
    if (a[i].pattern_id != b[i].pattern_id) return "pattern id differs";
  }
  return "";
}

/// Slot-by-slot comparison of a batch answer against per-id singles
/// taken from `reference` (may be the same store — queries are
/// read-only).
std::string DiffBatchAgainstSingles(
    const std::vector<StatusOr<std::vector<Prediction>>>& batch,
    MovingObjectStore& reference, const std::vector<ObjectId>& ids,
    Timestamp tq, Deadline deadline) {
  if (batch.size() != ids.size()) return "batch size mismatch";
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto single = reference.PredictLocation(ids[i], tq, 2, deadline);
    if (batch[i].ok() != single.ok() ||
        batch[i].status().code() != single.status().code()) {
      return "slot " + std::to_string(i) + " (object " +
             std::to_string(ids[i]) + "): status " +
             batch[i].status().ToString() + " != " +
             single.status().ToString();
    }
    if (!batch[i].ok()) continue;
    const std::string diff = DiffPredictions(*batch[i], *single);
    if (!diff.empty()) {
      return "slot " + std::to_string(i) + " (object " +
             std::to_string(ids[i]) + "): " + diff;
    }
  }
  return "";
}

std::vector<BatchCase> ShrinkBatchCase(const BatchCase& input) {
  std::vector<BatchCase> out;
  for (std::vector<ReportOp>& fewer : proptest::ShrinkVector(input.ops)) {
    BatchCase c = input;
    c.ops = std::move(fewer);
    out.push_back(std::move(c));
  }
  for (std::vector<ObjectId>& fewer :
       proptest::ShrinkVector(input.query_ids)) {
    if (fewer.empty()) continue;  // An empty batch asks nothing.
    BatchCase c = input;
    c.query_ids = std::move(fewer);
    out.push_back(std::move(c));
  }
  return out;
}

// --- P1: batched == sequential, relaxed and under deadline pressure ----

std::string CheckBatchMatchesSequential(const BatchCase& input) {
  ObjectStoreOptions options = BatchStoreOptions();
  options.batch.width = input.width;
  options.batch.step_entries = input.step_entries;
  MovingObjectStore store(options);
  const std::string failure = Replay(store, input.ops);
  if (!failure.empty()) return failure;
  const Timestamp tq = QueryTime(store, input.query_delta);

  // Relaxed: the infinite deadline never sheds, so trained objects take
  // the full pattern path through the interleaved traversals.
  {
    const auto batch = store.PredictLocationBatch(input.query_ids, tq, 2);
    const std::string diff = DiffBatchAgainstSingles(
        batch, store, input.query_ids, tq, Deadline::Infinite());
    if (!diff.empty()) return "relaxed: " + diff;
  }

  // Pressured: a finite deadline under an hour of required headroom
  // sheds every trained object to its stamped RMF answer — in both
  // paths, by the same shared preamble.
  {
    const Deadline deadline = Deadline::AfterMillis(50);
    const auto batch =
        store.PredictLocationBatch(input.query_ids, tq, 2, deadline);
    const std::string diff = DiffBatchAgainstSingles(
        batch, store, input.query_ids, tq, Deadline::AfterMillis(50));
    if (!diff.empty()) return "pressured: " + diff;
    for (size_t i = 0; i < input.query_ids.size(); ++i) {
      if (!batch[i].ok()) continue;
      const bool trained = store.GetPredictor(input.query_ids[i]).ok();
      const DegradedReason reason = batch[i]->front().degraded;
      if (trained && reason != DegradedReason::kOverloaded) {
        return "trained object " + std::to_string(input.query_ids[i]) +
               " not shed under pressure";
      }
      if (!trained && reason != DegradedReason::kNone) {
        return "cold object " + std::to_string(input.query_ids[i]) +
               " wrongly stamped degraded";
      }
    }
  }
  if (store.InFlight() != 0) return "admission ticket leaked";
  return "";
}

TEST(PropBatchExecTest, BatchAnswersBitIdenticallyToSequentialSingles) {
  Property<BatchCase> property("batch-vs-sequential", GenBatchCase,
                               CheckBatchMatchesSequential);
  property.WithShrinker(ShrinkBatchCase);
  RunnerOptions options;
  options.num_cases = 10;
  options.max_shrink_checks = 30;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P2: interleaving width is unobservable ----------------------------

std::string CheckWidthIsUnobservable(const BatchCase& input) {
  ObjectStoreOptions sequential_options = BatchStoreOptions();
  sequential_options.batch.width = 1;
  ObjectStoreOptions interleaved_options = BatchStoreOptions();
  interleaved_options.batch.width = std::max<size_t>(2, input.width);
  interleaved_options.batch.step_entries = input.step_entries;

  MovingObjectStore sequential(sequential_options);
  MovingObjectStore interleaved(interleaved_options);
  std::string failure = Replay(sequential, input.ops);
  if (!failure.empty()) return "sequential: " + failure;
  failure = Replay(interleaved, input.ops);
  if (!failure.empty()) return "interleaved: " + failure;
  const Timestamp tq = QueryTime(sequential, input.query_delta);

  const auto a = sequential.PredictLocationBatch(input.query_ids, tq, 2);
  const auto b = interleaved.PredictLocationBatch(input.query_ids, tq, 2);
  if (a.size() != b.size()) return "batch sizes differ";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].ok() != b[i].ok() ||
        a[i].status().code() != b[i].status().code()) {
      return "slot " + std::to_string(i) + ": status differs across widths";
    }
    if (!a[i].ok()) continue;
    const std::string diff = DiffPredictions(*a[i], *b[i]);
    if (!diff.empty()) {
      return "slot " + std::to_string(i) + ": " + diff +
             " across widths";
    }
  }

  // Accounting must agree exactly; only the interleave counter may
  // differ, and strictly-sequential execution never interleaves.
  const MetricsSnapshot sa = sequential.metrics_snapshot();
  const MetricsSnapshot sb = interleaved.metrics_snapshot();
  for (const char* name :
       {"store.objects_evaluated", "store.motion_fits",
        "store.degraded_predictions", "store.admitted.predict_batch"}) {
    if (sa.counter(name) != sb.counter(name)) {
      return std::string(name) + " differs across widths";
    }
  }
  if (sa.counter("batch.interleaved") != 0) {
    return "width-1 batch claims interleaved work";
  }
  return "";
}

TEST(PropBatchExecTest, InterleavingWidthIsUnobservable) {
  Property<BatchCase> property("width-unobservable", GenBatchCase,
                               CheckWidthIsUnobservable);
  property.WithShrinker(ShrinkBatchCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 24;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P3: the Account stage reconciles batches against singles ----------

std::string CheckBatchAccountingReconciles(const BatchCase& input) {
  MovingObjectStore batched(BatchStoreOptions());
  MovingObjectStore singles(BatchStoreOptions());
  std::string failure = Replay(batched, input.ops);
  if (!failure.empty()) return "batched: " + failure;
  failure = Replay(singles, input.ops);
  if (!failure.empty()) return "singles: " + failure;
  const Timestamp tq = QueryTime(batched, input.query_delta);

  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const auto batch =
        batched.PredictLocationBatch(input.query_ids, tq + round, 2);
    if (batch.size() != input.query_ids.size()) return "batch size wrong";
    for (const ObjectId id : input.query_ids) {
      (void)singles.PredictLocation(id, tq + round, 2);
    }
  }

  const MetricsSnapshot sa = batched.metrics_snapshot();
  const MetricsSnapshot sb = singles.metrics_snapshot();
  // The per-object work is the same work, whichever door it came in.
  for (const char* name : {"store.objects_evaluated", "store.motion_fits",
                           "store.degraded_predictions"}) {
    if (sa.counter(name) != sb.counter(name)) {
      return std::string(name) + ": batch " +
             std::to_string(sa.counter(name)) + " != singles " +
             std::to_string(sb.counter(name));
    }
  }
  // The admission/latency accounting lands under the respective op.
  const uint64_t queries =
      static_cast<uint64_t>(kRounds) * input.query_ids.size();
  if (sa.counter("store.admitted.predict_batch") !=
      static_cast<uint64_t>(kRounds)) {
    return "admitted.predict_batch != batch calls";
  }
  if (sa.counter("store.admitted.predict") != 0) {
    return "batch store charged singles";
  }
  if (sb.counter("store.admitted.predict") != queries) {
    return "admitted.predict != single calls";
  }
  const auto* batch_histogram = sa.histogram("op.predict_batch_us");
  if (batch_histogram == nullptr ||
      batch_histogram->count != static_cast<uint64_t>(kRounds)) {
    return "predict_batch latency sample count wrong";
  }
  if (batched.InFlight() != 0 || singles.InFlight() != 0) {
    return "admission ticket leaked";
  }
  return "";
}

TEST(PropBatchExecTest, AccountingReconcilesBatchesAgainstSingles) {
  Property<BatchCase> property("batch-accounting", GenBatchCase,
                               CheckBatchAccountingReconciles);
  property.WithShrinker(ShrinkBatchCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 24;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P4: order-independent fault schedules degrade both paths alike ----

#ifdef HPM_ENABLE_FAULTS

std::string CheckAlwaysFaultDegradesBothPathsAlike(const BatchCase& input) {
  FaultInjector::Global().Reset();
  ObjectStoreOptions options = BatchStoreOptions();
  options.batch.width = input.width;
  options.batch.step_entries = input.step_entries;
  MovingObjectStore store(options);
  const std::string failure = Replay(store, input.ops);
  if (!failure.empty()) return failure;
  const Timestamp tq = QueryTime(store, input.query_delta);

  // `always` is the only order-independent schedule: the batch admits
  // queries in shard/model locality order, so a count-based rule would
  // legitimately fire on different queries than sequential issue order.
  FaultRule rule;
  rule.always = true;
  rule.code = StatusCode::kUnavailable;
  FaultInjector::Global().Arm("core/pattern_lookup", rule);

  const auto batch = store.PredictLocationBatch(input.query_ids, tq, 2);
  const std::string diff = DiffBatchAgainstSingles(
      batch, store, input.query_ids, tq, Deadline::Infinite());
  if (!diff.empty()) {
    FaultInjector::Global().Reset();
    return "under fault: " + diff;
  }
  for (size_t i = 0; i < input.query_ids.size(); ++i) {
    if (!batch[i].ok()) continue;
    const bool trained = store.GetPredictor(input.query_ids[i]).ok();
    if (trained &&
        batch[i]->front().degraded != DegradedReason::kPatternUnavailable) {
      FaultInjector::Global().Reset();
      return "trained object " + std::to_string(input.query_ids[i]) +
             " not stamped kPatternUnavailable";
    }
  }
  FaultInjector::Global().Reset();
  return "";
}

TEST(PropBatchExecTest, AlwaysFaultSchedulesDegradeBothPathsAlike) {
  Property<BatchCase> property("batch-under-faults", GenBatchCase,
                               CheckAlwaysFaultDegradesBothPathsAlike);
  property.WithShrinker(ShrinkBatchCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 24;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

#else  // !HPM_ENABLE_FAULTS

TEST(PropBatchExecTest, AlwaysFaultSchedulesDegradeBothPathsAlike) {
  GTEST_SKIP() << "fault hooks compiled out";
}

#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
