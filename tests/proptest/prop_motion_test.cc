// Property suite: motion functions vs closed-form linear motion. On an
// exactly-linear track l(t) = l0 + v*t both the linear model and the
// RMF recurrence (which can express linear motion exactly, e.g.
// l_t = 2*l_{t-1} - l_{t-2}) must reproduce the closed form.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "motion/linear_motion.h"
#include "motion/recursive_motion.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct LinearCase {
  Trajectory track;
  Timestamp horizon = 1;
};

constexpr Timestamp kMaxHorizon = 40;

LinearCase GenCase(Random& rng) {
  LinearCase c;
  const size_t n = 3 + rng.Uniform(28);
  const BoundingBox extent({0.0, 0.0}, {10000.0, 10000.0});
  c.track = proptest::LinearTrack(rng, n, extent, kMaxHorizon);
  c.horizon = static_cast<Timestamp>(1 + rng.Uniform(kMaxHorizon));
  return c;
}

Point ClosedForm(const LinearCase& input, Timestamp tq) {
  const Point l0 = input.track.At(0);
  const Point v = input.track.size() > 1
                      ? input.track.At(1) - input.track.At(0)
                      : Point{0.0, 0.0};
  return l0 + v * static_cast<double>(tq);
}

std::string CheckModel(MotionFunction& model, const LinearCase& input,
                       double tolerance) {
  const Timestamp now = static_cast<Timestamp>(input.track.size()) - 1;
  const std::vector<TimedPoint> recent =
      input.track.RecentMovements(now, static_cast<int>(input.track.size()));
  const Status fit = model.Fit(recent);
  if (!fit.ok()) {
    return model.Name() + " failed to fit a linear track: " +
           fit.ToString();
  }
  const Timestamp tq = now + input.horizon;
  const StatusOr<Point> predicted = model.Predict(tq);
  if (!predicted.ok()) {
    return model.Name() + " failed to predict: " +
           predicted.status().ToString();
  }
  const Point expected = ClosedForm(input, tq);
  const double error = Distance(*predicted, expected);
  if (error > tolerance) {
    return model.Name() + " off closed form by " + std::to_string(error) +
           " at horizon " + std::to_string(input.horizon) + " (expected " +
           expected.ToString() + ", got " + predicted->ToString() + ")";
  }
  return "";
}

TEST(PropMotionTest, LinearModelReproducesClosedFormExactly) {
  Property<LinearCase> property(
      "linear-motion-vs-closed-form", GenCase, [](const LinearCase& input) {
        LinearMotionFunction model;
        return CheckModel(model, input, 1e-6);
      });
  RunnerOptions options;
  options.num_cases = 150;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(PropMotionTest, RmfReproducesClosedFormOnLinearTracks) {
  Property<LinearCase> property(
      "rmf-vs-closed-form", GenCase, [](const LinearCase& input) {
        // The fitted recurrence is exact up to least-squares rounding,
        // which the forward iteration can amplify ~quadratically in the
        // horizon; the tolerance stays far below any real model bug.
        RecursiveMotionFunction model;
        return CheckModel(model, input, 1e-2);
      });
  RunnerOptions options;
  options.num_cases = 100;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
