// Property suite: random schedules against the overload-control layer.
// The contracts under test:
//   * a CircuitBreaker driven by any outcome/clock schedule makes only
//     legal transitions and is never stuck open — once the dependency
//     heals and the cooldown elapses, a bounded number of probes closes
//     it again,
//   * an AdmissionController under any admit/release/advance schedule
//     never exceeds its in-flight cap or banks more than `burst` tokens,
//     its rejections carry honest retry-after hints, and it never
//     permanently starves a patient client,
//   * (with -DHPM_ENABLE_FAULTS=ON) random per-shard fault schedules
//     against the store never fail a fleet query outright and never
//     leave a shard permanently starved: after faults clear, full
//     service returns within one half-open probe round.
// All time flows through injected manual clocks, so every failure
// replays from its seed.

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/admission.h"
#include "common/circuit_breaker.h"
#include "common/fault_injection.h"
#include "common/retry.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

using BreakerClock = CircuitBreakerOptions::Clock;
using State = CircuitBreaker::State;

struct ManualClock {
  BreakerClock::time_point now{};
  std::function<BreakerClock::time_point()> fn() {
    return [this] { return now; };
  }
  void Advance(std::chrono::microseconds d) { now += d; }
};

// --- P0: breaker schedules — legal transitions, never stuck open -------

struct BreakerCase {
  int window = 4;
  int min_samples = 2;
  double failure_threshold = 0.5;
  int half_open_successes = 1;
  /// Operation stream: 0 = Allow(+success), 1 = Allow(+failure),
  /// 2 = advance clock by half the cooldown, 3 = advance past cooldown.
  std::vector<int> ops;
};

BreakerCase GenBreakerCase(Random& rng) {
  BreakerCase c;
  c.window = static_cast<int>(2 + rng.Uniform(6));
  c.min_samples = 1 + static_cast<int>(rng.Uniform(
                          static_cast<uint64_t>(c.window)));
  c.failure_threshold = 0.25 + 0.75 * rng.NextDouble();
  c.half_open_successes = static_cast<int>(1 + rng.Uniform(3));
  const int num_ops = static_cast<int>(20 + rng.Uniform(120));
  for (int i = 0; i < num_ops; ++i) {
    c.ops.push_back(static_cast<int>(rng.Uniform(4)));
  }
  return c;
}

std::string CheckBreakerSchedule(const BreakerCase& input) {
  ManualClock clock;
  CircuitBreakerOptions options;
  options.window = input.window;
  options.min_samples = input.min_samples;
  options.failure_threshold = input.failure_threshold;
  options.open_duration = std::chrono::microseconds(1000);
  options.half_open_successes = input.half_open_successes;
  options.clock = clock.fn();
  CircuitBreaker breaker(options);

  std::string illegal;
  breaker.SetStateListener([&](State from, State to) {
    const bool legal = (from == State::kClosed && to == State::kOpen) ||
                       (from == State::kOpen && to == State::kHalfOpen) ||
                       (from == State::kHalfOpen && to == State::kClosed) ||
                       (from == State::kHalfOpen && to == State::kOpen);
    if (!legal) {
      illegal = std::string("illegal transition ") +
                CircuitBreaker::StateName(from) + " -> " +
                CircuitBreaker::StateName(to);
    }
  });

  for (const int op : input.ops) {
    switch (op) {
      case 0:
        if (breaker.state() == State::kClosed && !breaker.Allow()) {
          return "closed breaker refused a call";
        }
        if (breaker.Allow()) breaker.RecordSuccess();
        break;
      case 1:
        if (breaker.Allow()) breaker.RecordFailure();
        break;
      case 2:
        clock.Advance(std::chrono::microseconds(500));
        break;
      default:
        clock.Advance(std::chrono::microseconds(1100));
        break;
    }
    if (!illegal.empty()) return illegal;
  }

  // Liveness: the dependency heals. After one cooldown, at most
  // half_open_successes probes (plus one failed-probe allowance already
  // excluded — no failures from here on) must close the breaker.
  clock.Advance(std::chrono::microseconds(1100));
  for (int probe = 0; probe < input.half_open_successes + 1; ++probe) {
    if (breaker.state() == State::kClosed) break;
    if (breaker.Allow()) breaker.RecordSuccess();
  }
  if (breaker.state() != State::kClosed) {
    return std::string("breaker stuck ") +
           CircuitBreaker::StateName(breaker.state()) +
           " after the dependency healed";
  }
  if (!breaker.Allow()) return "closed breaker refused after recovery";
  return illegal;
}

TEST(PropOverloadTest, BreakerSchedulesNeverStickOpen) {
  Property<BreakerCase> property("breaker-schedule", GenBreakerCase,
                                 CheckBreakerSchedule);
  RunnerOptions options;
  options.num_cases = 40;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P1: admission schedules — caps hold, hints are honest -------------

struct AdmissionCase {
  double tokens_per_second = 100.0;
  double burst = 1.0;
  int max_in_flight = 0;
  /// 0 = admit, 1 = release oldest ticket, 2 = advance ~one token,
  /// 3 = advance a long stretch.
  std::vector<int> ops;
};

AdmissionCase GenAdmissionCase(Random& rng) {
  AdmissionCase c;
  c.tokens_per_second = 10.0 + 1000.0 * rng.NextDouble();
  c.burst = 1.0 + 4.0 * rng.NextDouble();
  c.max_in_flight = static_cast<int>(rng.Uniform(5));  // 0 = unlimited.
  const int num_ops = static_cast<int>(30 + rng.Uniform(150));
  for (int i = 0; i < num_ops; ++i) {
    c.ops.push_back(static_cast<int>(rng.Uniform(4)));
  }
  return c;
}

std::string CheckAdmissionSchedule(const AdmissionCase& input) {
  ManualClock clock;
  AdmissionOptions options;
  options.tokens_per_second = input.tokens_per_second;
  options.burst = input.burst;
  options.max_in_flight = input.max_in_flight;
  options.clock = clock.fn();
  AdmissionController controller(options);
  const auto one_token = std::chrono::microseconds(static_cast<int64_t>(
      1e6 / input.tokens_per_second + 1.0));

  std::vector<AdmissionTicket> held;
  for (const int op : input.ops) {
    switch (op) {
      case 0: {
        auto ticket = controller.Admit("prop");
        if (ticket.ok()) {
          held.push_back(std::move(*ticket));
        } else {
          if (ticket.status().code() != StatusCode::kUnavailable) {
            return "rejection was not kUnavailable: " +
                   ticket.status().ToString();
          }
          if (!RetryAfterHint(ticket.status()).has_value()) {
            return "rejection carried no retry-after hint: " +
                   ticket.status().ToString();
          }
        }
        break;
      }
      case 1:
        if (!held.empty()) {
          held.back().Release();
          held.pop_back();
        }
        break;
      case 2:
        clock.Advance(one_token);
        break;
      default:
        clock.Advance(std::chrono::seconds(10));
        break;
    }
    // Safety: the gauge and the bucket never exceed their caps.
    if (input.max_in_flight > 0 &&
        controller.in_flight() > input.max_in_flight) {
      return "in-flight gauge exceeded its cap";
    }
    if (controller.in_flight() != static_cast<int>(held.size())) {
      return "in-flight gauge out of sync with live tickets";
    }
    if (controller.available_tokens() > input.burst + 1e-9) {
      return "token bucket banked more than burst";
    }
  }

  // No permanent starvation: release everything, wait out any hint, and
  // a patient client is admitted.
  held.clear();
  clock.Advance(std::chrono::seconds(10));
  auto ticket = controller.Admit("patient");
  if (!ticket.ok()) {
    return "patient client starved after idle refill: " +
           ticket.status().ToString();
  }
  return "";
}

TEST(PropOverloadTest, AdmissionSchedulesKeepCapsAndNeverStarve) {
  Property<AdmissionCase> property("admission-schedule", GenAdmissionCase,
                                   CheckAdmissionSchedule);
  RunnerOptions options;
  options.num_cases = 40;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P2: shard fault schedules against the store -----------------------

#ifdef HPM_ENABLE_FAULTS

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct ShardFaultCase {
  uint64_t seed = 0;
  int num_shards = 4;
  int num_objects = 3;
  /// Rounds of (armed-shard bitmask, queries per round).
  std::vector<uint32_t> round_masks;
};

ShardFaultCase GenShardFaultCase(Random& rng) {
  ShardFaultCase c;
  c.seed = rng.NextUint64();
  c.num_shards = static_cast<int>(2 + rng.Uniform(4));
  c.num_objects = static_cast<int>(2 + rng.Uniform(3));
  const int rounds = static_cast<int>(2 + rng.Uniform(4));
  for (int r = 0; r < rounds; ++r) {
    c.round_masks.push_back(static_cast<uint32_t>(
        rng.Uniform(1u << c.num_shards)));
  }
  return c;
}

ObjectStoreOptions ShardStoreOptions(const ShardFaultCase& input,
                                     ManualClock* clock) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = input.num_shards;
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_threshold = 0.5;
  options.breaker.open_duration = std::chrono::microseconds(1000);
  options.breaker.half_open_successes = 1;  // One probe restores service.
  options.breaker.clock = clock->fn();
  return options;
}

std::string CheckShardFaultSchedule(const ShardFaultCase& input) {
  FaultInjector::Global().Reset();
  ManualClock clock;
  MovingObjectStore store(ShardStoreOptions(input, &clock));

  Random data_rng(input.seed);
  Timestamp max_now = 0;
  for (ObjectId id = 0; id < input.num_objects; ++id) {
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(data_rng, kExtent));
    }
    for (int day = 0; day < 5; ++day) {
      for (Timestamp t = 0; t < kPeriod; ++t) {
        Point p = route[static_cast<size_t>(t)];
        p.x += data_rng.Gaussian(0.0, 2.0);
        p.y += data_rng.Gaussian(0.0, 2.0);
        const Status status = store.ReportLocation(id, p);
        if (!status.ok()) return "ingest failed: " + status.ToString();
      }
    }
    max_now = std::max(max_now,
                       static_cast<Timestamp>(store.HistoryLength(id)));
  }
  const Timestamp tq = max_now + 3;
  const BoundingBox everywhere({-1e9, -1e9}, {1e9, 1e9});

  for (const uint32_t mask : input.round_masks) {
    for (int s = 0; s < input.num_shards; ++s) {
      if (mask & (1u << s)) {
        FaultRule rule;
        rule.always = true;
        FaultInjector::Global().Arm(ShardQueryFaultSite(s), rule);
      } else {
        FaultInjector::Global().Disarm(ShardQueryFaultSite(s));
      }
    }
    for (int q = 0; q < 3; ++q) {
      auto hits = store.PredictiveRangeQuery(everywhere, tq);
      // Invariant 1: shard faults never fail the query outright.
      if (!hits.ok()) {
        return "fleet query failed under shard faults: " +
               hits.status().ToString();
      }
      // Invariant 2: partiality is consistent with the skip list.
      if (hits->partial != !hits->skipped_shards.empty()) {
        return "partial flag inconsistent with skipped_shards";
      }
      // Invariant 3: a fault-free, breaker-closed pass covers everyone.
      if (mask == 0 && !hits->partial &&
          hits->hits.size() !=
              static_cast<size_t>(input.num_objects)) {
        return "clean full query missed objects";
      }
    }
    clock.Advance(std::chrono::microseconds(1100));
  }

  // Heal everything: no shard may stay starved. After the cooldown, one
  // probe round (half_open_successes=1) restores full service.
  for (int s = 0; s < input.num_shards; ++s) {
    FaultInjector::Global().Disarm(ShardQueryFaultSite(s));
  }
  clock.Advance(std::chrono::microseconds(1100));
  auto probe = store.PredictiveRangeQuery(everywhere, tq);  // Probes open shards.
  if (!probe.ok()) return "probe query failed";
  auto recovered = store.PredictiveRangeQuery(everywhere, tq);
  if (!recovered.ok()) return "recovered query failed";
  if (recovered->partial) {
    std::string open;
    for (int s = 0; s < store.num_shards(); ++s) {
      open += std::string(" shard") + std::to_string(s) + "=" +
              CircuitBreaker::StateName(store.BreakerState(s));
    }
    return "shard permanently starved after faults cleared:" + open;
  }
  if (recovered->hits.size() != static_cast<size_t>(input.num_objects)) {
    return "recovered query missed objects";
  }
  return "";
}

TEST(PropOverloadTest, ShardFaultSchedulesNeverStarveAShard) {
  Property<ShardFaultCase> property("shard-fault-schedule",
                                    GenShardFaultCase,
                                    CheckShardFaultSchedule);
  RunnerOptions options;
  options.num_cases = 6;
  const proptest::RunResult result = property.Run(options);
  FaultInjector::Global().Reset();
  EXPECT_TRUE(result.ok) << result.message;
}

#else  // !HPM_ENABLE_FAULTS

TEST(PropOverloadTest, ShardFaultSchedulesNeverStarveAShard) {
  GTEST_SKIP() << "fault hooks compiled out";
}

#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
