// Property suite: the incremental miner is an exact re-expression of
// the offline pipeline. Across random streams, drift schedules and
// window lengths, the maintained pattern set must equal a from-scratch
// Apriori over the same window (P1); a sync-mode store rebuild must
// produce a byte-identical model file to HybridPredictor::Train over
// the miner's window, frozen TPT included (P2); and a store that
// crashes mid-stream — with or without a snapshot — must replay its
// journal through the miner into the same pattern state and serving
// answers as an uninterrupted reference (P3).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "core/hybrid_predictor.h"
#include "datagen/report_stream.h"
#include "mining/incremental_miner.h"
#include "mining/offline_miner.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct MiningCase {
  ReportStreamConfig stream;
  int total_periods = 8;
  /// P1: periods observed before regions are discovered and adopted.
  int adopt_after = 4;
  int window_periods = 4;
  int min_support = 2;
  double min_confidence = 0.2;
  int max_pattern_length = 3;
  double slack = 4.0;
  /// P3: SaveToDirectory after this many reports; SIZE_MAX = never.
  size_t save_point = SIZE_MAX;
  /// P3: reports ingested before the crash.
  size_t kill_point = 0;
};

MiningCase GenCase(Random& rng) {
  MiningCase c;
  c.stream.num_objects = static_cast<int>(1 + rng.Uniform(3));
  c.stream.period = static_cast<Timestamp>(6 + rng.Uniform(7));
  c.stream.pattern_probability = 0.85 + 0.15 * rng.NextDouble();
  c.stream.noise_sigma = 2.0 * rng.NextDouble();
  c.stream.drift_every_periods = static_cast<int>(rng.Uniform(5));
  c.stream.drift_fraction = 0.3 + 0.7 * rng.NextDouble();
  c.stream.seed = rng.NextUint64();
  c.total_periods = static_cast<int>(6 + rng.Uniform(9));
  c.adopt_after = static_cast<int>(3 + rng.Uniform(3));
  c.window_periods = static_cast<int>(2 + rng.Uniform(5));
  c.min_support = static_cast<int>(2 + rng.Uniform(3));
  c.min_confidence = 0.2 + 0.3 * rng.NextDouble();
  c.max_pattern_length = static_cast<int>(2 + rng.Uniform(3));
  c.slack = 10.0 * rng.NextDouble();
  const size_t total = static_cast<size_t>(c.total_periods) *
                       static_cast<size_t>(c.stream.period) *
                       static_cast<size_t>(c.stream.num_objects);
  c.kill_point = 1 + rng.Uniform(total);
  if (rng.Uniform(2) == 0) c.save_point = rng.Uniform(c.kill_point);
  return c;
}

AprioriParams MiningParams(const MiningCase& c) {
  AprioriParams params;
  params.min_support = c.min_support;
  params.min_confidence = c.min_confidence;
  params.max_pattern_length = c.max_pattern_length;
  return params;
}

FrequentRegionParams RegionParams(const MiningCase& c) {
  FrequentRegionParams params;
  params.period = c.stream.period;
  params.dbscan.eps = 15.0;
  params.dbscan.min_pts = 3;
  return params;
}

std::string CaseDir(const char* stem) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir = std::string(::testing::TempDir()) + "/" + stem +
                          "_" + std::to_string(counter.fetch_add(1)) + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

std::string DescribePattern(const TrajectoryPattern& p) {
  std::string out = "{";
  for (int id : p.premise) out += std::to_string(id) + " ";
  out += "=> " + std::to_string(p.consequence) +
         ", supp=" + std::to_string(p.support) +
         ", conf=" + std::to_string(p.confidence) + "}";
  return out;
}

/// "" when the two pattern sets match exactly (after sorting `offline`
/// into the miner's (premise size, premise, consequence) order).
std::string ComparePatternSets(std::vector<TrajectoryPattern> offline,
                               const std::vector<TrajectoryPattern>& miner) {
  std::sort(offline.begin(), offline.end(),
            [](const TrajectoryPattern& a, const TrajectoryPattern& b) {
              if (a.premise.size() != b.premise.size()) {
                return a.premise.size() < b.premise.size();
              }
              if (a.premise != b.premise) return a.premise < b.premise;
              return a.consequence < b.consequence;
            });
  if (offline.size() != miner.size()) {
    return "pattern count differs: offline " +
           std::to_string(offline.size()) + " vs miner " +
           std::to_string(miner.size());
  }
  for (size_t i = 0; i < offline.size(); ++i) {
    if (offline[i].premise != miner[i].premise ||
        offline[i].consequence != miner[i].consequence ||
        offline[i].support != miner[i].support ||
        offline[i].confidence != miner[i].confidence) {
      return "pattern " + std::to_string(i) + " differs: offline " +
             DescribePattern(offline[i]) + " vs miner " +
             DescribePattern(miner[i]);
    }
  }
  return "";
}

// ---- P1: miner == offline Apriori over the same window ----------------

std::string CheckMinerMatchesOfflineOverWindow(const MiningCase& input) {
  ReportStreamConfig config = input.stream;
  config.num_objects = 1;  // miner-level property: one object suffices
  ReportStream stream(config);

  IncrementalMinerOptions options;
  options.window_periods = input.window_periods;
  options.region_match_slack = input.slack;
  IncrementalMiner miner(options, config.period, MiningParams(input));

  // Warm up without regions, then discover over the observed prefix and
  // adopt — the store's bootstrap handoff in miniature.
  Trajectory prefix;
  for (int p = 0; p < input.adopt_after; ++p) {
    for (const StreamedReport& r :
         stream.Take(static_cast<size_t>(config.period))) {
      miner.Observe(r.location);
      prefix.Append(r.location);
    }
  }
  const StatusOr<FrequentRegionMiningResult> discovery =
      MineFrequentRegions(prefix, RegionParams(input));
  if (!discovery.ok() || discovery->region_set.NumRegions() == 0) {
    return "";  // nothing clustered: the property is vacuous here
  }
  miner.AdoptRegions(discovery->region_set);

  const int remaining = input.total_periods - input.adopt_after;
  for (int p = 0; p < remaining; ++p) {
    for (const StreamedReport& r :
         stream.Take(static_cast<size_t>(config.period))) {
      miner.Observe(r.location);
    }
    // At every period boundary, the maintained set must equal a fresh
    // offline mine over exactly the miner's retained window.
    const Trajectory window = miner.WindowTrajectory();
    std::vector<Transaction> transactions;
    for (size_t start = 0; start + static_cast<size_t>(config.period) <=
                           window.size();
         start += static_cast<size_t>(config.period)) {
      std::vector<Point> points(
          window.points().begin() + static_cast<long>(start),
          window.points().begin() +
              static_cast<long>(start + static_cast<size_t>(config.period)));
      transactions.emplace_back(
          MapPeriodPointsToVisits(*miner.regions(), points, input.slack),
          miner.regions()->NumRegions());
    }
    const StatusOr<AprioriResult> offline = MineTrajectoryPatterns(
        transactions, *miner.regions(), MiningParams(input));
    if (!offline.ok()) {
      return "offline oracle failed: " + offline.status().ToString();
    }
    const std::string failure =
        ComparePatternSets(offline->patterns, miner.CurrentPatterns());
    if (!failure.empty()) {
      return "after period " + std::to_string(input.adopt_after + p + 1) +
             ": " + failure;
    }
  }
  return "";
}

// ---- P2 / P3: store-level properties ----------------------------------

ObjectStoreOptions StoreOptions(const MiningCase& c, const std::string& dir) {
  ObjectStoreOptions options;
  options.predictor.regions = RegionParams(c);
  options.predictor.mining = MiningParams(c);
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 2;
  options.rebuild.incremental = true;
  options.rebuild.background = false;  // deterministic inline rebuilds
  options.rebuild.drift_threshold = 1.5;
  options.rebuild.miner.window_periods = c.window_periods + 2;
  if (!dir.empty()) options.durability.wal_dir = dir + "/wal";
  return options;
}

/// Feeds reports [from, to) of the case's stream. A report whose inline
/// drift-rebuild legitimately fails (e.g. the drifted window no longer
/// clusters) still lands in history/miner/journal, so those statuses
/// are tolerated — determinism, not success, is the property.
void FeedStore(MovingObjectStore& store, const MiningCase& c, size_t from,
               size_t to) {
  ReportStream stream(c.stream);
  size_t i = 0;
  while (i < to) {
    const StreamedReport r = stream.Next();
    if (i >= from) (void)store.ReportLocation(r.object_id, r.location);
    ++i;
  }
}

std::string CheckSyncRebuildIsBitIdenticalToTrain(const MiningCase& input) {
  MovingObjectStore store(StoreOptions(input, ""));
  const size_t total = static_cast<size_t>(input.total_periods) *
                       static_cast<size_t>(input.stream.period) *
                       static_cast<size_t>(input.stream.num_objects);
  FeedStore(store, input, 0, total);
  (void)store.FlushRebuilds();  // may legitimately fail on drifted data

  const std::string dir = CaseDir("prop_incr_rebuild");
  std::filesystem::create_directories(dir);
  for (const ObjectId id : store.ObjectIds()) {
    const auto predictor = store.GetPredictor(id);
    if (!predictor.ok()) continue;  // never bootstrapped
    const auto state = store.MinerState(id);
    if (!state.ok()) return "MinerState: " + state.status().ToString();
    if (state->window_end > state->consumed_samples) continue;  // unflushed
    const StatusOr<std::unique_ptr<HybridPredictor>> reference =
        HybridPredictor::Train(state->window,
                               StoreOptions(input, "").predictor);
    if (!reference.ok()) {
      return "reference train failed where the rebuild succeeded: " +
             reference.status().ToString();
    }
    const std::string served_path =
        dir + "/served_" + std::to_string(id) + ".hpm";
    const std::string reference_path =
        dir + "/reference_" + std::to_string(id) + ".hpm";
    Status saved = (*predictor)->SaveToFile(served_path);
    if (saved.ok()) saved = (*reference)->SaveToFile(reference_path);
    if (!saved.ok()) return "save: " + saved.ToString();
    if (ReadFileBytes(served_path) != ReadFileBytes(reference_path)) {
      return "object " + std::to_string(id) +
             ": served model differs from Train(miner window)";
    }
  }
  std::filesystem::remove_all(dir);
  return "";
}

std::string CheckCrashReplayConvergesThroughMiner(const MiningCase& input) {
  const std::string dir = CaseDir("prop_incr_crash");
  MovingObjectStore reference(StoreOptions(input, ""));
  FeedStore(reference, input, 0, input.kill_point);
  {
    MovingObjectStore durable(StoreOptions(input, dir));
    if (!durable.wal_durable()) return "journal failed to open";
    if (input.save_point < input.kill_point) {
      FeedStore(durable, input, 0, input.save_point);
      const Status saved = durable.SaveToDirectory(dir);
      if (!saved.ok()) return "save: " + saved.ToString();
      FeedStore(durable, input, input.save_point, input.kill_point);
    } else {
      FeedStore(durable, input, 0, input.kill_point);
    }
    // Crash: dropped with no further persistence.
  }
  auto recovered =
      MovingObjectStore::LoadFromDirectory(dir, StoreOptions(input, dir));
  if (!recovered.ok()) {
    return "recovery failed: " + recovered.status().ToString();
  }
  const Status ref_flush = reference.FlushRebuilds();
  const Status rec_flush = recovered->FlushRebuilds();
  if (ref_flush.ok() != rec_flush.ok()) {
    return "flush outcome diverged: reference " + ref_flush.ToString() +
           " vs recovered " + rec_flush.ToString();
  }

  if (reference.ObjectIds() != recovered->ObjectIds()) {
    return "fleet membership differs after recovery";
  }
  for (const ObjectId id : reference.ObjectIds()) {
    const auto want = reference.MinerState(id);
    const auto got = recovered->MinerState(id);
    if (!want.ok() || !got.ok()) return "MinerState failed after recovery";
    if (want->window_end != got->window_end ||
        want->consumed_samples != got->consumed_samples) {
      return "object " + std::to_string(id) + ": miner position differs (" +
             std::to_string(want->window_end) + "/" +
             std::to_string(want->consumed_samples) + " vs " +
             std::to_string(got->window_end) + "/" +
             std::to_string(got->consumed_samples) + ")";
    }
    std::string failure = ComparePatternSets(want->patterns, got->patterns);
    if (!failure.empty()) {
      return "object " + std::to_string(id) + ": " + failure;
    }
    const Timestamp tq =
        static_cast<Timestamp>(reference.HistoryLength(id)) + 3;
    const auto want_pred = reference.PredictLocation(id, tq, 2);
    const auto got_pred = recovered->PredictLocation(id, tq, 2);
    if (want_pred.ok() != got_pred.ok()) {
      return "prediction status differs for object " + std::to_string(id);
    }
    if (want_pred.ok()) {
      if (want_pred->size() != got_pred->size()) {
        return "prediction count differs for object " + std::to_string(id);
      }
      for (size_t i = 0; i < want_pred->size(); ++i) {
        if (!((*want_pred)[i].location == (*got_pred)[i].location) ||
            (*want_pred)[i].score != (*got_pred)[i].score) {
          return "prediction differs for object " + std::to_string(id);
        }
      }
    }
  }
  std::filesystem::remove_all(dir);  // only on success: keep evidence
  return "";
}

TEST(PropIncrementalMining, MinerMatchesOfflineOverWindow) {
  Property<MiningCase> property("miner_matches_offline", GenCase,
                                CheckMinerMatchesOfflineOverWindow);
  RunnerOptions options;
  options.num_cases = 25;
  const auto result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(PropIncrementalMining, SyncRebuildIsBitIdenticalToTrain) {
  Property<MiningCase> property("sync_rebuild_bit_identical", GenCase,
                                CheckSyncRebuildIsBitIdenticalToTrain);
  RunnerOptions options;
  options.num_cases = 8;
  const auto result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(PropIncrementalMining, CrashReplayConvergesThroughMiner) {
  Property<MiningCase> property("incremental_crash_replay", GenCase,
                                CheckCrashReplayConvergesThroughMiner);
  RunnerOptions options;
  options.num_cases = 8;
  const auto result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
