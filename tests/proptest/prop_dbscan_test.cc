// Property suite: grid-accelerated DBSCAN vs a naive O(n^2) oracle.
// Core points, cluster connectivity, border attachment and noise must
// all match the textbook definitions on random inputs.

#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/dbscan.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct DbscanCase {
  std::vector<Point> points;
  DbscanParams params;
};

DbscanCase GenCase(Random& rng) {
  DbscanCase c;
  c.params.eps = rng.UniformDouble(8.0, 40.0);
  c.params.min_pts = static_cast<int>(2 + rng.Uniform(5));
  const BoundingBox extent({0.0, 0.0}, {1000.0, 1000.0});
  // A few Gaussian blobs (clusterable) plus uniform background noise.
  const int blobs = static_cast<int>(rng.Uniform(4));
  for (int b = 0; b < blobs; ++b) {
    const Point center = proptest::RandomPoint(rng, extent);
    const double stddev = rng.UniformDouble(2.0, 25.0);
    const int members = static_cast<int>(2 + rng.Uniform(30));
    for (int i = 0; i < members; ++i) {
      c.points.push_back({center.x + rng.Gaussian(0.0, stddev),
                          center.y + rng.Gaussian(0.0, stddev)});
    }
  }
  const int background = static_cast<int>(rng.Uniform(40));
  for (int i = 0; i < background; ++i) {
    c.points.push_back(proptest::RandomPoint(rng, extent));
  }
  return c;
}

/// Union-find over point indices.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

std::string CheckAgainstOracle(const DbscanCase& input) {
  const StatusOr<DbscanResult> result =
      Dbscan(input.points, input.params);
  if (!result.ok()) return "Dbscan failed: " + result.status().ToString();
  const std::vector<int>& labels = result->labels;
  const size_t n = input.points.size();
  if (labels.size() != n) return "label count mismatch";

  // Oracle: quadratic neighbourhood counts -> core flags.
  const double eps = input.params.eps;
  std::vector<bool> core(n, false);
  for (size_t i = 0; i < n; ++i) {
    int neighbours = 0;
    for (size_t j = 0; j < n; ++j) {
      if (Distance(input.points[i], input.points[j]) <= eps) ++neighbours;
    }
    core[i] = neighbours >= input.params.min_pts;
  }

  // Connected components of the core-core eps graph.
  DisjointSets components(n);
  for (size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (core[j] && Distance(input.points[i], input.points[j]) <= eps) {
        components.Union(i, j);
      }
    }
  }

  int max_label = -1;
  for (size_t i = 0; i < n; ++i) {
    max_label = std::max(max_label, labels[i]);
    if (labels[i] < DbscanResult::kNoise ||
        labels[i] >= result->num_clusters) {
      return "label " + std::to_string(labels[i]) + " out of range at " +
             std::to_string(i);
    }
    if (core[i]) {
      if (labels[i] == DbscanResult::kNoise) {
        return "core point " + std::to_string(i) + " labelled noise";
      }
      continue;
    }
    // Non-core: must be noise iff no core point reaches it; otherwise
    // it must carry the label of some core point within eps.
    bool reachable = false;
    bool label_matches_reacher = false;
    for (size_t j = 0; j < n; ++j) {
      if (!core[j] || Distance(input.points[i], input.points[j]) > eps) {
        continue;
      }
      reachable = true;
      if (labels[i] == labels[j]) label_matches_reacher = true;
    }
    if (!reachable && labels[i] != DbscanResult::kNoise) {
      return "unreachable point " + std::to_string(i) +
             " assigned to cluster " + std::to_string(labels[i]);
    }
    if (reachable &&
        (labels[i] == DbscanResult::kNoise || !label_matches_reacher)) {
      return "border point " + std::to_string(i) +
             " not attached to any reaching cluster";
    }
  }
  if (max_label + 1 != result->num_clusters) {
    return "num_clusters=" + std::to_string(result->num_clusters) +
           " but max label is " + std::to_string(max_label);
  }

  // Core points agree with the component structure in both directions.
  for (size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (!core[j]) continue;
      const bool same_component =
          components.Find(i) == components.Find(j);
      const bool same_label = labels[i] == labels[j];
      if (same_component != same_label) {
        return "core points " + std::to_string(i) + " and " +
               std::to_string(j) +
               (same_component ? " split one density component"
                               : " merged two density components");
      }
    }
  }
  return "";
}

std::vector<DbscanCase> ShrinkCase(const DbscanCase& input) {
  std::vector<DbscanCase> out;
  for (std::vector<Point>& fewer : proptest::ShrinkVector(input.points)) {
    out.push_back({std::move(fewer), input.params});
  }
  return out;
}

TEST(PropDbscanTest, MatchesQuadraticOracle) {
  Property<DbscanCase> property("dbscan-vs-naive-oracle", GenCase,
                                CheckAgainstOracle);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 60;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
