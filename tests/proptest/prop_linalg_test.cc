// Property suite: Householder QR least squares vs Gaussian elimination
// on random well-conditioned systems — two independent solver families
// must produce the same solution.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct SquareSystem {
  Matrix a;
  Matrix b;
};

SquareSystem GenSquareSystem(Random& rng) {
  const size_t n = 1 + rng.Uniform(8);
  const size_t rhs = 1 + rng.Uniform(3);
  return {proptest::RandomWellConditionedMatrix(rng, n),
          proptest::RandomMatrix(rng, n, rhs, -10.0, 10.0)};
}

std::string CheckSquareAgreement(const SquareSystem& input) {
  const StatusOr<Matrix> gauss = SolveLinearSystem(input.a, input.b);
  const StatusOr<Matrix> qr = SolveLeastSquaresQr(input.a, input.b);
  if (!gauss.ok()) {
    return "Gaussian elimination failed on a well-conditioned system: " +
           gauss.status().ToString();
  }
  if (!qr.ok()) {
    return "QR failed on a well-conditioned system: " +
           qr.status().ToString();
  }
  const double diff = gauss->MaxAbsDiff(*qr);
  if (diff > 1e-8) {
    return "solvers disagree by " + std::to_string(diff) + " on A =\n" +
           input.a.ToString();
  }
  return "";
}

TEST(PropLinalgTest, QrMatchesGaussianEliminationOnSquareSystems) {
  Property<SquareSystem> property("qr-vs-gaussian-square", GenSquareSystem,
                                  CheckSquareAgreement);
  RunnerOptions options;
  options.num_cases = 150;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

/// Overdetermined consistent system: B = A * X0 with full-rank tall A,
/// so the least-squares minimiser is exactly X0.
struct TallSystem {
  Matrix a;
  Matrix x0;
};

TallSystem GenTallSystem(Random& rng) {
  const size_t cols = 1 + rng.Uniform(5);
  const size_t rows = cols + 1 + rng.Uniform(8);
  const size_t rhs = 1 + rng.Uniform(2);
  Matrix a = proptest::RandomMatrix(rng, rows, cols, -1.0, 1.0);
  // A diagonally-boosted top block guarantees full column rank.
  for (size_t i = 0; i < cols; ++i) a(i, i) += static_cast<double>(cols);
  return {std::move(a), proptest::RandomMatrix(rng, cols, rhs, -5.0, 5.0)};
}

std::string CheckTallRecovery(const TallSystem& input) {
  const Matrix b = input.a * input.x0;
  const StatusOr<Matrix> solved = SolveLeastSquaresQr(input.a, b);
  if (!solved.ok()) {
    return "QR failed on a full-rank tall system: " +
           solved.status().ToString();
  }
  const double diff = solved->MaxAbsDiff(input.x0);
  if (diff > 1e-8) {
    return "QR missed the exact least-squares solution by " +
           std::to_string(diff);
  }
  return "";
}

TEST(PropLinalgTest, QrRecoversExactSolutionOfConsistentTallSystems) {
  Property<TallSystem> property("qr-consistent-tall", GenTallSystem,
                                CheckTallRecovery);
  RunnerOptions options;
  options.num_cases = 150;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
