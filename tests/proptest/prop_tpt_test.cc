// Property suite: TptTree vs BruteForceStore (paper §V / Fig. 11b).
// The signature tree is an index, not a filter — on any pattern set and
// any query key it must return exactly the linear scan's result set, in
// both search modes, including after RemoveIf-triggered restructuring.
// A deliberately corrupted tree (one flipped pattern-key bit) must be
// caught by the same differential check.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "tpt/brute_force_store.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct TptCase {
  std::vector<IndexedPattern> patterns;
  std::vector<PatternKey> queries;
};

std::vector<int> SortedIds(const std::vector<const IndexedPattern*>& hits) {
  std::vector<int> ids;
  ids.reserve(hits.size());
  for (const IndexedPattern* hit : hits) ids.push_back(hit->pattern_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string ModeName(SearchMode mode) {
  return mode == SearchMode::kPremiseAndConsequence ? "FQP" : "BQP";
}

/// The differential oracle: every query must retrieve identical pattern
/// sets from the tree and the linear scan, under both search modes.
std::string DifferentialFailure(const TptTree& tpt,
                                const BruteForceStore& brute,
                                const std::vector<PatternKey>& queries) {
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const SearchMode mode : {SearchMode::kPremiseAndConsequence,
                                  SearchMode::kConsequenceOnly}) {
      const std::vector<int> tree_ids =
          SortedIds(tpt.Search(queries[q], mode));
      const std::vector<int> scan_ids =
          SortedIds(brute.Search(queries[q], mode));
      if (tree_ids != scan_ids) {
        return "query " + std::to_string(q) + " (" + queries[q].ToString() +
               ", " + ModeName(mode) + ") returned " +
               std::to_string(tree_ids.size()) + " patterns from the TPT vs " +
               std::to_string(scan_ids.size()) + " from the brute-force scan";
      }
    }
  }
  return "";
}

TptCase GenCase(Random& rng) {
  TptCase c;
  const size_t premise_length = 4 + rng.Uniform(24);
  const size_t consequence_length = 1 + rng.Uniform(6);
  const int count = static_cast<int>(rng.Uniform(120));
  const double density = rng.UniformDouble(0.05, 0.5);
  c.patterns = proptest::RandomPatternSet(rng, count, premise_length,
                                          consequence_length, density);
  const int num_queries = static_cast<int>(4 + rng.Uniform(8));
  for (int i = 0; i < num_queries; ++i) {
    c.queries.push_back(proptest::RandomPatternKey(
        rng, premise_length, consequence_length, rng.UniformDouble(0.05, 0.4)));
  }
  // Exact keys of a few patterns, so matches are guaranteed to occur.
  for (size_t i = 0; i < c.patterns.size() && i < 4; ++i) {
    c.queries.push_back(c.patterns[i * c.patterns.size() / 4].key);
  }
  return c;
}

std::string CheckDifferential(const TptCase& input) {
  // Small node capacities force multi-level trees even on small sets.
  TptTree::Options tree_options;
  tree_options.max_node_entries = 6;
  tree_options.min_node_entries = 2;
  StatusOr<TptTree> tpt = TptTree::BulkLoad(input.patterns, tree_options);
  if (!tpt.ok()) return "BulkLoad failed: " + tpt.status().ToString();
  BruteForceStore brute;
  for (const IndexedPattern& pattern : input.patterns) {
    const Status status = brute.Insert(pattern);
    if (!status.ok()) return "brute Insert failed: " + status.ToString();
  }

  Status invariants = tpt->CheckInvariants();
  if (!invariants.ok()) {
    return "TPT invariants broken after bulk load: " + invariants.ToString();
  }
  std::string failure = DifferentialFailure(*tpt, brute, input.queries);
  if (!failure.empty()) return failure;

  // Evict the low-confidence half from both stores; the restructured
  // tree must still answer exactly like a scan of the survivors.
  const double confidence_bar = 0.5;
  const auto evicted = [confidence_bar](const IndexedPattern& p) {
    return p.confidence < confidence_bar;
  };
  tpt->RemoveIf(evicted);
  BruteForceStore surviving;
  for (const IndexedPattern& pattern : input.patterns) {
    if (!evicted(pattern)) {
      const Status status = surviving.Insert(pattern);
      if (!status.ok()) return "re-insert failed: " + status.ToString();
    }
  }
  if (tpt->size() != surviving.size()) {
    return "RemoveIf kept " + std::to_string(tpt->size()) +
           " patterns, expected " + std::to_string(surviving.size());
  }
  invariants = tpt->CheckInvariants();
  if (!invariants.ok()) {
    return "TPT invariants broken after RemoveIf: " + invariants.ToString();
  }
  failure = DifferentialFailure(*tpt, surviving, input.queries);
  if (!failure.empty()) return "after RemoveIf: " + failure;
  return "";
}

std::vector<TptCase> ShrinkCase(const TptCase& input) {
  std::vector<TptCase> out;
  for (std::vector<IndexedPattern>& fewer :
       proptest::ShrinkVector(input.patterns)) {
    // Keep ids dense so the id comparison stays meaningful.
    for (size_t i = 0; i < fewer.size(); ++i) {
      fewer[i].pattern_id = static_cast<int>(i);
    }
    out.push_back({std::move(fewer), input.queries});
  }
  for (std::vector<PatternKey>& fewer :
       proptest::ShrinkVector(input.queries)) {
    if (!fewer.empty()) out.push_back({input.patterns, std::move(fewer)});
  }
  return out;
}

TEST(PropTptTest, SearchMatchesBruteForceOnRandomPatternSets) {
  Property<TptCase> property("tpt-vs-brute-force", GenCase,
                             CheckDifferential);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 60;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// Fault injection: flip one premise bit of one pattern's key on the copy
// that goes into the TPT. The differential oracle must flag the
// discrepancy — this is the suite proving the harness has teeth.
TEST(PropTptTest, CatchesInjectedKeyMutation) {
  Random rng(proptest::SeedForTest(20260805));
  SCOPED_TRACE(proptest::ReplayLine(proptest::SeedForTest(20260805)));
  const size_t premise_length = 12;
  const size_t consequence_length = 3;
  std::vector<IndexedPattern> patterns = proptest::RandomPatternSet(
      rng, 40, premise_length, consequence_length, 0.25);

  // Pick a victim and the premise bit to flip.
  const size_t victim = rng.Uniform(patterns.size());
  const std::vector<size_t> set_bits =
      patterns[victim].key.premise().SetBits();
  const size_t flipped_bit = set_bits[rng.Uniform(set_bits.size())];

  BruteForceStore brute;
  for (const IndexedPattern& pattern : patterns) {
    ASSERT_TRUE(brute.Insert(pattern).ok());
  }
  std::vector<IndexedPattern> mutated = patterns;
  mutated[victim].key.mutable_premise().Set(flipped_bit, false);
  StatusOr<TptTree> tpt = TptTree::BulkLoad(std::move(mutated));
  ASSERT_TRUE(tpt.ok()) << tpt.status().ToString();

  // Probe whose only premise '1' is the flipped bit: the scan still
  // matches the victim, the corrupted tree cannot.
  DynamicBitset probe_premise(premise_length);
  probe_premise.Set(flipped_bit);
  const PatternKey probe(probe_premise, patterns[victim].key.consequence());
  const std::string failure = DifferentialFailure(*tpt, brute, {probe});
  EXPECT_FALSE(failure.empty())
      << "differential oracle missed a flipped pattern-key bit";
}

}  // namespace
}  // namespace hpm
