// Property suite: DynamicBitset vs a std::vector<bool> oracle. Every
// word-packed operation must agree with the obvious bit-at-a-time
// implementation on random inputs.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bitset/dynamic_bitset.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

/// A pair of equal-size bitsets plus the target size of a Resize step.
struct BitsetCase {
  DynamicBitset a;
  DynamicBitset b;
  size_t resize_to = 0;
};

std::vector<bool> ToBools(const DynamicBitset& bits) {
  std::vector<bool> out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) out[i] = bits.Test(i);
  return out;
}

std::string DescribeMismatch(const std::string& what,
                             const BitsetCase& input) {
  return what + "\n  a = " + input.a.ToString() +
         "\n  b = " + input.b.ToString();
}

BitsetCase GenCase(Random& rng) {
  BitsetCase c;
  // Sizes straddle the 64-bit word boundaries on purpose.
  const size_t size = rng.Uniform(200);
  const double density = rng.UniformDouble(0.05, 0.95);
  c.a = proptest::RandomBitset(rng, size, density);
  c.b = proptest::RandomBitset(rng, size, density);
  c.resize_to = rng.Uniform(260);
  return c;
}

std::string CheckAlgebra(const BitsetCase& input) {
  const std::vector<bool> a = ToBools(input.a);
  const std::vector<bool> b = ToBools(input.b);
  const size_t n = a.size();

  size_t count_a = 0, common = 0, difference = 0;
  bool contains = true;
  int highest = -1;
  for (size_t i = 0; i < n; ++i) {
    if (a[i]) {
      ++count_a;
      highest = static_cast<int>(i);
      if (!b[i]) ++difference;
    }
    if (a[i] && b[i]) ++common;
    if (b[i] && !a[i]) contains = false;
  }
  if (input.a.Count() != count_a) {
    return DescribeMismatch("Count() disagrees with the oracle", input);
  }
  if (input.a.HighestSetBit() != highest) {
    return DescribeMismatch("HighestSetBit() disagrees", input);
  }
  if (input.a.Contains(input.b) != contains) {
    return DescribeMismatch("Contains() disagrees", input);
  }
  if (input.a.AnyCommon(input.b) != (common > 0)) {
    return DescribeMismatch("AnyCommon() disagrees", input);
  }
  if (input.a.DifferenceCount(input.b) != difference) {
    return DescribeMismatch("DifferenceCount() disagrees", input);
  }

  const DynamicBitset and_result = input.a & input.b;
  const DynamicBitset or_result = input.a | input.b;
  const DynamicBitset xor_result = input.a ^ input.b;
  for (size_t i = 0; i < n; ++i) {
    if (and_result.Test(i) != (a[i] && b[i])) {
      return DescribeMismatch("operator& wrong at bit " + std::to_string(i),
                              input);
    }
    if (or_result.Test(i) != (a[i] || b[i])) {
      return DescribeMismatch("operator| wrong at bit " + std::to_string(i),
                              input);
    }
    if (xor_result.Test(i) != (a[i] != b[i])) {
      return DescribeMismatch("operator^ wrong at bit " + std::to_string(i),
                              input);
    }
  }

  // SetBits must list exactly the oracle's set positions, ascending.
  const std::vector<size_t> set_bits = input.a.SetBits();
  size_t expected_index = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a[i]) continue;
    if (expected_index >= set_bits.size() ||
        set_bits[expected_index] != i) {
      return DescribeMismatch("SetBits() disagrees", input);
    }
    ++expected_index;
  }
  if (expected_index != set_bits.size()) {
    return DescribeMismatch("SetBits() has extra positions", input);
  }

  // String round-trip and hashing of equal values.
  const DynamicBitset reparsed =
      DynamicBitset::FromString(input.a.ToString());
  if (reparsed != input.a || reparsed.Hash() != input.a.Hash()) {
    return DescribeMismatch("ToString/FromString round-trip broke", input);
  }

  // Resize keeps the surviving prefix and zeroes everything new.
  DynamicBitset resized = input.a;
  resized.Resize(input.resize_to);
  for (size_t i = 0; i < input.resize_to; ++i) {
    const bool expected = i < n ? a[i] : false;
    if (resized.Test(i) != expected) {
      return DescribeMismatch(
          "Resize(" + std::to_string(input.resize_to) +
              ") wrong at bit " + std::to_string(i),
          input);
    }
  }
  return "";
}

std::vector<BitsetCase> ShrinkCase(const BitsetCase& input) {
  std::vector<BitsetCase> out;
  for (DynamicBitset& smaller : proptest::ShrinkBitset(input.a)) {
    out.push_back({std::move(smaller), input.b, input.resize_to});
  }
  for (DynamicBitset& smaller : proptest::ShrinkBitset(input.b)) {
    out.push_back({input.a, std::move(smaller), input.resize_to});
  }
  return out;
}

TEST(PropBitsetTest, AlgebraMatchesVectorBoolOracle) {
  Property<BitsetCase> property("bitset-vs-vector-bool", GenCase,
                                CheckAlgebra);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 200;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
