// Property suite: FrozenTpt vs the mutable TptTree it was frozen from.
// The arena layout is a pure representation change — on any pattern set
// and any query key, Search must return *bit-identical* results: the
// same pattern ids in the same order, the same confidences and
// consequence regions, and the same TptSearchStats-visible pruning
// (nodes_visited/entries_tested), in both search modes. The same must
// hold for a frozen tree that made a round trip through its wire form
// (AppendTo -> Parse).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "tpt/frozen_tpt.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

struct FrozenCase {
  std::vector<IndexedPattern> patterns;
  std::vector<PatternKey> queries;
};

std::string ModeName(SearchMode mode) {
  return mode == SearchMode::kPremiseAndConsequence ? "FQP" : "BQP";
}

/// Exact-order, exact-payload comparison of one query's results plus the
/// layout-independent stats fields. `label` names the frozen variant
/// ("frozen", "reparsed") in failure messages.
std::string CompareSearch(const TptTree& tree, const FrozenTpt& frozen,
                          const PatternKey& query, SearchMode mode,
                          const std::string& label) {
  TptSearchStats tree_stats, frozen_stats;
  const std::vector<const IndexedPattern*> tree_hits =
      tree.Search(query, mode, &tree_stats);
  const std::vector<const IndexedPattern*> frozen_hits =
      frozen.Search(query, mode, &frozen_stats);

  const std::string what = label + " " + ModeName(mode) + " search ";
  if (tree_hits.size() != frozen_hits.size()) {
    return what + "returned " + std::to_string(frozen_hits.size()) +
           " hits, mutable tree " + std::to_string(tree_hits.size());
  }
  for (size_t i = 0; i < tree_hits.size(); ++i) {
    if (tree_hits[i]->pattern_id != frozen_hits[i]->pattern_id) {
      return what + "hit " + std::to_string(i) + " is pattern " +
             std::to_string(frozen_hits[i]->pattern_id) + ", mutable tree " +
             std::to_string(tree_hits[i]->pattern_id) +
             " (order must be identical)";
    }
    if (tree_hits[i]->confidence != frozen_hits[i]->confidence ||
        tree_hits[i]->consequence_region !=
            frozen_hits[i]->consequence_region ||
        !(tree_hits[i]->key == frozen_hits[i]->key)) {
      return what + "hit " + std::to_string(i) +
             " payload differs from the mutable tree's";
    }
  }
  if (tree_stats.nodes_visited != frozen_stats.nodes_visited ||
      tree_stats.entries_tested != frozen_stats.entries_tested) {
    return what + "visited " + std::to_string(frozen_stats.nodes_visited) +
           " nodes / tested " + std::to_string(frozen_stats.entries_tested) +
           " entries, mutable tree " +
           std::to_string(tree_stats.nodes_visited) + " / " +
           std::to_string(tree_stats.entries_tested) +
           " (pruning must be identical)";
  }
  // blocks_scanned is the frozen layout's own cost metric: zero on the
  // pointer tree, and between one part-scan per tested entry (BQP, or
  // FQP with every consequence test failing) and two (FQP with every
  // consequence test passing).
  if (tree_stats.blocks_scanned != 0) {
    return what + "mutable tree reported nonzero blocks_scanned";
  }
  const size_t lo = frozen_stats.entries_tested;
  const size_t hi = mode == SearchMode::kPremiseAndConsequence
                        ? 2 * frozen_stats.entries_tested
                        : frozen_stats.entries_tested;
  if (frozen_stats.blocks_scanned < lo || frozen_stats.blocks_scanned > hi) {
    return what + "blocks_scanned " +
           std::to_string(frozen_stats.blocks_scanned) +
           " outside [" + std::to_string(lo) + ", " + std::to_string(hi) +
           "] for " + std::to_string(frozen_stats.entries_tested) +
           " entries tested";
  }
  return "";
}

FrozenCase GenCase(Random& rng) {
  FrozenCase c;
  const size_t premise_length = 4 + rng.Uniform(24);
  const size_t consequence_length = 1 + rng.Uniform(6);
  const int count = static_cast<int>(rng.Uniform(120));
  const double density = rng.UniformDouble(0.05, 0.5);
  c.patterns = proptest::RandomPatternSet(rng, count, premise_length,
                                          consequence_length, density);
  const int num_queries = static_cast<int>(4 + rng.Uniform(8));
  for (int i = 0; i < num_queries; ++i) {
    c.queries.push_back(proptest::RandomPatternKey(
        rng, premise_length, consequence_length, rng.UniformDouble(0.05, 0.4)));
  }
  // Exact keys of a few patterns, so matches are guaranteed to occur.
  for (size_t i = 0; i < c.patterns.size() && i < 4; ++i) {
    c.queries.push_back(c.patterns[i * c.patterns.size() / 4].key);
  }
  return c;
}

std::string CheckFrozenDifferential(const FrozenCase& input) {
  // Small node capacities force multi-level trees even on small sets.
  TptTree::Options tree_options;
  tree_options.max_node_entries = 6;
  tree_options.min_node_entries = 2;
  StatusOr<TptTree> tree = TptTree::BulkLoad(input.patterns, tree_options);
  if (!tree.ok()) return "BulkLoad failed: " + tree.status().ToString();

  const FrozenTpt frozen = FrozenTpt::Freeze(*tree);
  if (frozen.size() != tree->size()) {
    return "Freeze kept " + std::to_string(frozen.size()) +
           " patterns, expected " + std::to_string(tree->size());
  }
  if (frozen.Height() != tree->Height()) {
    return "Freeze height " + std::to_string(frozen.Height()) +
           " != builder height " + std::to_string(tree->Height());
  }
  Status invariants = frozen.CheckInvariants();
  if (!invariants.ok()) {
    return "frozen invariants broken after Freeze: " + invariants.ToString();
  }

  // Wire-format round trip must reproduce the frozen tree exactly.
  std::string wire;
  frozen.AppendTo(&wire);
  size_t consumed = 0;
  StatusOr<FrozenTpt> reparsed =
      FrozenTpt::Parse(wire.data(), wire.size(), &consumed);
  if (!reparsed.ok()) {
    return "Parse of freshly serialized arena failed: " +
           reparsed.status().ToString();
  }
  if (consumed != wire.size()) {
    return "Parse consumed " + std::to_string(consumed) + " of " +
           std::to_string(wire.size()) + " section bytes";
  }
  invariants = reparsed->CheckInvariants();
  if (!invariants.ok()) {
    return "frozen invariants broken after Parse: " + invariants.ToString();
  }

  for (size_t q = 0; q < input.queries.size(); ++q) {
    for (const SearchMode mode : {SearchMode::kPremiseAndConsequence,
                                  SearchMode::kConsequenceOnly}) {
      const std::string at = "query " + std::to_string(q) + ": ";
      std::string failure =
          CompareSearch(*tree, frozen, input.queries[q], mode, "frozen");
      if (!failure.empty()) return at + failure;
      failure = CompareSearch(*tree, *reparsed, input.queries[q], mode,
                              "reparsed");
      if (!failure.empty()) return at + failure;
    }
  }
  return "";
}

std::vector<FrozenCase> ShrinkCase(const FrozenCase& input) {
  std::vector<FrozenCase> out;
  for (std::vector<IndexedPattern>& fewer :
       proptest::ShrinkVector(input.patterns)) {
    // Keep ids dense so the id comparison stays meaningful.
    for (size_t i = 0; i < fewer.size(); ++i) {
      fewer[i].pattern_id = static_cast<int>(i);
    }
    out.push_back({std::move(fewer), input.queries});
  }
  for (std::vector<PatternKey>& fewer :
       proptest::ShrinkVector(input.queries)) {
    if (!fewer.empty()) out.push_back({input.patterns, std::move(fewer)});
  }
  return out;
}

TEST(PropTptFrozenTest, FrozenSearchIsBitIdenticalToMutableTree) {
  Property<FrozenCase> property("frozen-tpt-vs-mutable", GenCase,
                                CheckFrozenDifferential);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 60;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// The default-capacity tree (32-entry nodes) exercises the wide-node
// packed-block scan; a quick fixed-seed pass proves the property is not
// an artifact of the tiny test capacities above.
TEST(PropTptFrozenTest, FrozenSearchMatchesAtDefaultNodeCapacity) {
  Random rng(proptest::SeedForTest(20260805));
  SCOPED_TRACE(proptest::ReplayLine(proptest::SeedForTest(20260805)));
  std::vector<IndexedPattern> patterns =
      proptest::RandomPatternSet(rng, 400, 48, 8, 0.2);
  StatusOr<TptTree> tree = TptTree::BulkLoad(patterns);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const FrozenTpt frozen = FrozenTpt::Freeze(*tree);
  for (int i = 0; i < 32; ++i) {
    const PatternKey query =
        proptest::RandomPatternKey(rng, 48, 8, rng.UniformDouble(0.05, 0.4));
    for (const SearchMode mode : {SearchMode::kPremiseAndConsequence,
                                  SearchMode::kConsequenceOnly}) {
      const std::string failure =
          CompareSearch(*tree, frozen, query, mode, "frozen");
      EXPECT_EQ(failure, "");
    }
  }
}

}  // namespace
}  // namespace hpm
