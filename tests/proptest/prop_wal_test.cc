// Property suite: crash-replay equivalence for the write-ahead report
// journal. A store that dies at a random kill point — under any sync
// policy, with or without a mid-stream snapshot — must recover from disk
// into a store observably identical to one that executed the same prefix
// uninterrupted: same fleet, same histories, same rejected-report
// accounting, same trained-model predictions. A second property tears a
// random number of bytes off a random segment tail and demands recovery
// stay a clean per-object prefix that converges back to the reference
// once the lost suffix is re-reported.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "io/wal.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct WalOp {
  ObjectId id = 0;
  Point location;
  bool malformed = false;  ///< Sent with a gapped timestamp: rejected.
};

struct WalCase {
  std::vector<WalOp> ops;
  /// Ops executed before the crash (the rest never happened).
  size_t kill_point = 0;
  /// SaveToDirectory after this many ops; SIZE_MAX = never.
  size_t save_point = SIZE_MAX;
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;
  int num_shards = 2;
};

ObjectStoreOptions StoreOptions(const WalCase& c, const std::string& dir) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = c.num_shards;
  if (!dir.empty()) {
    options.durability.wal_dir = dir + "/wal";
    options.durability.sync_policy = c.sync_policy;
    // Tiny segments so realistic cases exercise size rotation too.
    options.durability.max_segment_bytes = 512;
  }
  return options;
}

WalCase GenCase(Random& rng) {
  WalCase c;
  const int num_objects = static_cast<int>(1 + rng.Uniform(4));
  std::vector<std::vector<Point>> routes;
  for (int i = 0; i < num_objects; ++i) {
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    routes.push_back(std::move(route));
  }
  std::vector<int> next_step(static_cast<size_t>(num_objects), 0);
  const int num_ops = static_cast<int>(
      rng.Uniform(50ull * static_cast<uint64_t>(num_objects)));
  for (int i = 0; i < num_ops; ++i) {
    const size_t obj = rng.Uniform(static_cast<uint64_t>(num_objects));
    WalOp op;
    op.id = static_cast<ObjectId>(obj) * 13 + 7;  // spread across shards
    if (rng.Uniform(10) == 0) {
      op.malformed = true;
      op.location = routes[obj][0];
    } else {
      const int step = next_step[obj]++;
      Point p = routes[obj][static_cast<size_t>(step) % kPeriod];
      p.x += rng.Gaussian(0.0, 2.0);
      p.y += rng.Gaussian(0.0, 2.0);
      op.location = p;
    }
    c.ops.push_back(op);
  }
  c.kill_point = c.ops.empty() ? 0 : rng.Uniform(c.ops.size() + 1);
  if (!c.ops.empty() && rng.Uniform(2) == 0) {
    c.save_point = rng.Uniform(c.kill_point + 1);
  }
  switch (rng.Uniform(3)) {
    case 0:
      c.sync_policy = WalSyncPolicy::kEveryRecord;
      break;
    case 1:
      c.sync_policy = WalSyncPolicy::kInterval;
      break;
    default:
      c.sync_policy = WalSyncPolicy::kNone;
      break;
  }
  c.num_shards = static_cast<int>(1 + rng.Uniform(4));
  return c;
}

/// A unique on-disk scratch directory per executed case.
std::string CaseDir(const char* stem) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir = std::string(::testing::TempDir()) + "/" + stem +
                          "_" +
                          std::to_string(counter.fetch_add(1)) + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Executes one op; the malformed flavour must be rejected.
std::string Apply(MovingObjectStore& store, const WalOp& op) {
  if (op.malformed) {
    const Timestamp gap =
        static_cast<Timestamp>(store.HistoryLength(op.id)) + 3;
    if (store.ReportLocationAt(op.id, gap, op.location).ok()) {
      return "gapped report unexpectedly accepted";
    }
    return "";
  }
  const Status status = store.ReportLocation(op.id, op.location);
  if (!status.ok()) return "ReportLocation failed: " + status.ToString();
  return "";
}

std::string CompareServing(const MovingObjectStore& reference,
                           const MovingObjectStore& recovered) {
  if (reference.ObjectIds() != recovered.ObjectIds()) {
    return "fleet membership differs after recovery";
  }
  for (const ObjectId id : reference.ObjectIds()) {
    if (reference.HistoryLength(id) != recovered.HistoryLength(id)) {
      return "history length differs for object " + std::to_string(id) +
             ": " + std::to_string(reference.HistoryLength(id)) + " vs " +
             std::to_string(recovered.HistoryLength(id));
    }
    if (reference.RejectedReports(id) != recovered.RejectedReports(id)) {
      return "rejected-report count differs for object " +
             std::to_string(id);
    }
    if (reference.GetPredictor(id).ok() != recovered.GetPredictor(id).ok()) {
      return "trained-model presence differs for object " +
             std::to_string(id);
    }
    const Timestamp tq =
        static_cast<Timestamp>(reference.HistoryLength(id)) - 1 + 5;
    const auto expected = reference.PredictLocation(id, tq, 2);
    const auto actual = recovered.PredictLocation(id, tq, 2);
    if (expected.ok() != actual.ok()) {
      return "prediction status differs for object " + std::to_string(id);
    }
    if (expected.ok()) {
      if (expected->size() != actual->size()) {
        return "prediction count differs for object " + std::to_string(id);
      }
      for (size_t i = 0; i < expected->size(); ++i) {
        if (!((*expected)[i].location == (*actual)[i].location) ||
            (*expected)[i].score != (*actual)[i].score) {
          return "prediction differs for object " + std::to_string(id);
        }
      }
    }
  }
  return "";
}

std::string CheckCrashReplayMatchesUninterrupted(const WalCase& input) {
  const std::string dir = CaseDir("prop_wal_replay");
  // The reference store executes the kill-point prefix uninterrupted and
  // never touches disk.
  MovingObjectStore reference(StoreOptions(input, ""));
  {
    MovingObjectStore durable(StoreOptions(input, dir));
    if (!durable.wal_durable()) return "journal failed to open";
    for (size_t i = 0; i < input.kill_point; ++i) {
      std::string failure = Apply(durable, input.ops[i]);
      if (!failure.empty()) return "durable: " + failure;
      failure = Apply(reference, input.ops[i]);
      if (!failure.empty()) return "reference: " + failure;
      if (i == input.save_point) {
        const Status saved = durable.SaveToDirectory(dir);
        if (!saved.ok()) return "save: " + saved.ToString();
        if (!durable.wal_durable()) return "save degraded the journal";
      }
    }
    // Crash: the store object is dropped with no further persistence.
  }
  auto recovered =
      MovingObjectStore::LoadFromDirectory(dir, StoreOptions(input, dir));
  if (!recovered.ok()) {
    return "recovery failed: " + recovered.status().ToString();
  }
  if (!recovered->wal_durable()) return "recovered store is not durable";
  std::string failure = CompareServing(reference, *recovered);
  if (!failure.empty()) return failure;
  // Ids whose every report was rejected never join ObjectIds(), but
  // their rejection tally is journaled and must survive the crash too.
  for (const WalOp& op : input.ops) {
    if (reference.RejectedReports(op.id) !=
        recovered->RejectedReports(op.id)) {
      return "rejected-report count differs for object " +
             std::to_string(op.id);
    }
  }
  std::filesystem::remove_all(dir);  // only on success: keep evidence
  return "";
}

std::string CheckTornTailRecoversPrefixAndConverges(const WalCase& input) {
  if (input.kill_point == 0) return "";
  const std::string dir = CaseDir("prop_wal_torn");
  MovingObjectStore reference(StoreOptions(input, ""));
  {
    MovingObjectStore durable(StoreOptions(input, dir));
    if (!durable.wal_durable()) return "journal failed to open";
    for (size_t i = 0; i < input.kill_point; ++i) {
      std::string failure = Apply(durable, input.ops[i]);
      if (!failure.empty()) return "durable: " + failure;
      failure = Apply(reference, input.ops[i]);
      if (!failure.empty()) return "reference: " + failure;
    }
  }
  // Tear bytes off the tail of the last segment — the shape any crash
  // that outruns the page cache leaves behind.
  const std::vector<WalSegmentInfo> segments =
      ListWalSegments(dir + "/wal");
  if (segments.empty()) return "no segments written";
  const std::string& victim = segments.back().path;
  const uintmax_t size = std::filesystem::file_size(victim);
  const uintmax_t cut =
      1 + input.kill_point % (size > 1 ? size - 1 : 1);
  std::filesystem::resize_file(victim, size - cut);

  auto recovered =
      MovingObjectStore::LoadFromDirectory(dir, StoreOptions(input, dir));
  if (!recovered.ok()) {
    return "recovery failed: " + recovered.status().ToString();
  }
  // Every recovered history must be a prefix of the reference's.
  for (const ObjectId id : recovered->ObjectIds()) {
    if (recovered->HistoryLength(id) > reference.HistoryLength(id)) {
      return "recovered history longer than ever reported for object " +
             std::to_string(id);
    }
  }
  // Re-report what the torn tail lost: the fleet converges back to the
  // reference (same histories from the same values → same serving).
  for (const ObjectId id : reference.ObjectIds()) {
    const size_t have = recovered->HistoryLength(id);
    const size_t want = reference.HistoryLength(id);
    if (have >= want) continue;
    // Replay this object's reports in order, skipping the recovered
    // prefix.
    size_t seen = 0;
    for (size_t i = 0; i < input.kill_point; ++i) {
      const WalOp& op = input.ops[i];
      if (op.id != id || op.malformed) continue;
      if (seen++ < have) continue;
      const Status status = recovered->ReportLocation(id, op.location);
      if (!status.ok()) {
        return "refill failed for object " + std::to_string(id) + ": " +
               status.ToString();
      }
    }
    if (recovered->HistoryLength(id) != want) {
      return "refill did not converge for object " + std::to_string(id);
    }
  }
  // Rejections recorded before the torn tail may be lost with it; only
  // histories and models must converge, so compare those.
  for (const ObjectId id : reference.ObjectIds()) {
    if (reference.HistoryLength(id) != recovered->HistoryLength(id)) {
      return "history differs after refill for object " +
             std::to_string(id);
    }
    if (reference.GetPredictor(id).ok() !=
        recovered->GetPredictor(id).ok()) {
      return "model presence differs after refill for object " +
             std::to_string(id);
    }
  }
  std::filesystem::remove_all(dir);
  return "";
}

std::vector<WalCase> ShrinkCase(const WalCase& input) {
  std::vector<WalCase> out;
  for (std::vector<WalOp>& fewer : proptest::ShrinkVector(input.ops)) {
    WalCase smaller = input;
    smaller.kill_point = std::min(smaller.kill_point, fewer.size());
    if (smaller.save_point != SIZE_MAX) {
      smaller.save_point = std::min(smaller.save_point, smaller.kill_point);
    }
    smaller.ops = std::move(fewer);
    out.push_back(std::move(smaller));
  }
  return out;
}

TEST(PropWalTest, CrashReplayMatchesUninterruptedStore) {
  Property<WalCase> property("wal-crash-replay-vs-uninterrupted", GenCase,
                             CheckCrashReplayMatchesUninterrupted);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 10;
  options.max_shrink_checks = 30;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(PropWalTest, TornTailRecoversCleanPrefixAndConverges) {
  Property<WalCase> property("wal-torn-tail-prefix", GenCase,
                             CheckTornTailRecoversPrefixAndConverges);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 30;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
