// Property suite: the unified query pipeline is a pure refactor of the
// serving path. The contracts under test:
//   * observability is non-intrusive — a store with a trace sink
//     installed and metrics snapshots taken mid-workload answers every
//     query bit-identically (locations, scores, confidences, sources,
//     degraded reasons, skipped shards) to an unobserved store replaying
//     the same seeded workload,
//   * the overload ladder's degraded stamps are consistent (trained
//     objects shed to RMF are stamped kOverloaded, untrained objects
//     never are) and the degraded-prediction metric counts exactly the
//     stamped answers,
//   * the Account stage is the single accounting point — per-op metric
//     counters reconcile exactly with the aggregate OverloadStats under
//     any random admitted/shed interleaving, and no admission ticket
//     leaks (InFlight() returns to 0),
//   * (with -DHPM_ENABLE_FAULTS=ON) deterministic `always` fault
//     schedules on shard fan-out sites skip exactly the armed shards.
// Every failure replays from its seed.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct ReportOp {
  ObjectId id = 0;
  Point location;
};

struct PipelineCase {
  std::vector<ReportOp> ops;
  std::vector<BoundingBox> range_queries;
  Timestamp query_delta = 1;
};

ObjectStoreOptions PipelineStoreOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 4;
  options.query_threads = 2;
  return options;
}

PipelineCase GenPipelineCase(Random& rng) {
  PipelineCase c;
  const int num_objects = static_cast<int>(1 + rng.Uniform(4));
  std::vector<ObjectId> ids;
  std::vector<std::vector<Point>> routes;
  std::vector<int> next_step(static_cast<size_t>(num_objects), 0);
  for (int i = 0; i < num_objects; ++i) {
    ids.push_back(static_cast<ObjectId>(i) * 13 + 7);
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    routes.push_back(std::move(route));
  }
  const int num_ops = static_cast<int>(rng.Uniform(
      50ull * static_cast<uint64_t>(num_objects)));
  for (int i = 0; i < num_ops; ++i) {
    const size_t obj = rng.Uniform(static_cast<uint64_t>(num_objects));
    const int step = next_step[obj]++;
    Point p = routes[obj][static_cast<size_t>(step) % kPeriod];
    p.x += rng.Gaussian(0.0, 2.0);
    p.y += rng.Gaussian(0.0, 2.0);
    c.ops.push_back({ids[obj], p});
  }
  const int num_ranges = static_cast<int>(1 + rng.Uniform(3));
  for (int i = 0; i < num_ranges; ++i) {
    c.range_queries.push_back(proptest::RandomBox(rng, kExtent));
  }
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(12));
  return c;
}

std::string Replay(MovingObjectStore& store,
                   const std::vector<ReportOp>& ops) {
  for (const ReportOp& op : ops) {
    const Status status = store.ReportLocation(op.id, op.location);
    if (!status.ok()) return "ReportLocation failed: " + status.ToString();
  }
  return "";
}

/// Exact, field-complete prediction comparison — "bit-identical" means
/// every observable field, not just the location.
std::string DiffPredictions(const std::vector<Prediction>& a,
                            const std::vector<Prediction>& b) {
  if (a.size() != b.size()) return "prediction counts differ";
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].location == b[i].location)) return "location differs";
    if (a[i].score != b[i].score) return "score differs";
    if (a[i].confidence != b[i].confidence) return "confidence differs";
    if (a[i].source != b[i].source) return "source differs";
    if (a[i].degraded != b[i].degraded) return "degraded reason differs";
    if (a[i].pattern_id != b[i].pattern_id) return "pattern id differs";
  }
  return "";
}

/// Canonical id-sorted fleet answer (merge order among equal scores is
/// shard-dependent and not part of the contract).
std::vector<std::pair<ObjectId, Prediction>> CanonicalHits(
    const std::vector<RangeHit>& hits) {
  std::vector<std::pair<ObjectId, Prediction>> out;
  out.reserve(hits.size());
  for (const RangeHit& hit : hits) out.push_back({hit.id, hit.prediction});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

std::string DiffFleet(const FleetQueryResult& a, const FleetQueryResult& b) {
  if (a.partial != b.partial) return "partial flag differs";
  if (a.skipped_shards != b.skipped_shards) return "skipped shards differ";
  const auto ca = CanonicalHits(a.hits);
  const auto cb = CanonicalHits(b.hits);
  if (ca.size() != cb.size()) return "hit counts differ";
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ca[i].first != cb[i].first) return "hit ids differ";
    const std::string diff =
        DiffPredictions({ca[i].second}, {cb[i].second});
    if (!diff.empty()) return "hit " + std::to_string(ca[i].first) +
                              ": " + diff;
  }
  return "";
}

// --- P1: observability is non-intrusive --------------------------------

std::string CheckObservedMatchesUnobserved(const PipelineCase& input) {
  ObjectStoreOptions observed_options = PipelineStoreOptions();
  size_t traces_seen = 0;
  observed_options.trace_sink = [&traces_seen](const char*, const Trace&) {
    ++traces_seen;
  };
  MovingObjectStore observed(observed_options);
  MovingObjectStore plain(PipelineStoreOptions());

  std::string failure = Replay(observed, input.ops);
  if (!failure.empty()) return "observed: " + failure;
  failure = Replay(plain, input.ops);
  if (!failure.empty()) return "plain: " + failure;
  // Mid-workload snapshots must not perturb anything either.
  (void)observed.metrics_snapshot();

  if (observed.ObjectIds() != plain.ObjectIds()) {
    return "fleet membership differs under observation";
  }
  std::vector<ObjectId> ids = plain.ObjectIds();
  Timestamp max_now = 0;
  for (const ObjectId id : ids) {
    max_now = std::max(max_now,
                       static_cast<Timestamp>(plain.HistoryLength(id)));
    const Timestamp tq =
        static_cast<Timestamp>(plain.HistoryLength(id)) - 1 +
        input.query_delta;
    const auto a = observed.PredictLocation(id, tq, 2);
    const auto b = plain.PredictLocation(id, tq, 2);
    if (a.ok() != b.ok() || a.status().code() != b.status().code()) {
      return "prediction status differs for object " + std::to_string(id);
    }
    if (a.ok()) {
      const std::string diff = DiffPredictions(*a, *b);
      if (!diff.empty()) {
        return "object " + std::to_string(id) + ": " + diff;
      }
    }
  }

  // Batch answers must equal the singles, element by element.
  if (!ids.empty()) {
    const Timestamp tq = max_now + input.query_delta;
    const auto batch = observed.PredictLocationBatch(ids, tq, 2);
    if (batch.size() != ids.size()) return "batch size mismatch";
    for (size_t i = 0; i < ids.size(); ++i) {
      const auto single = plain.PredictLocation(ids[i], tq, 2);
      if (batch[i].ok() != single.ok()) {
        return "batch/single status differs for object " +
               std::to_string(ids[i]);
      }
      if (batch[i].ok()) {
        const std::string diff = DiffPredictions(*batch[i], *single);
        if (!diff.empty()) {
          return "batch object " + std::to_string(ids[i]) + ": " + diff;
        }
      }
    }

    for (const BoundingBox& range : input.range_queries) {
      const auto a = observed.PredictiveRangeQuery(range, tq);
      const auto b = plain.PredictiveRangeQuery(range, tq);
      if (a.ok() != b.ok()) return "range status differs";
      if (a.ok()) {
        const std::string diff = DiffFleet(*a, *b);
        if (!diff.empty()) return "range: " + diff;
      }
    }
    const auto a = observed.PredictiveNearestNeighbors(
        input.ops.empty() ? Point{0, 0} : input.ops.front().location, tq, 3);
    const auto b = plain.PredictiveNearestNeighbors(
        input.ops.empty() ? Point{0, 0} : input.ops.front().location, tq, 3);
    if (a.ok() != b.ok()) return "kNN status differs";
    if (a.ok()) {
      const std::string diff = DiffFleet(*a, *b);
      if (!diff.empty()) return "kNN: " + diff;
    }
  }

  if (traces_seen == 0 && !input.ops.empty()) {
    return "trace sink never invoked despite being installed";
  }
  return "";
}

std::vector<PipelineCase> ShrinkPipelineCase(const PipelineCase& input) {
  std::vector<PipelineCase> out;
  for (std::vector<ReportOp>& fewer : proptest::ShrinkVector(input.ops)) {
    out.push_back({std::move(fewer), input.range_queries,
                   input.query_delta});
  }
  return out;
}

TEST(PropPipelineTest, ObservedStoreAnswersBitIdenticallyToUnobserved) {
  Property<PipelineCase> property("observed-vs-unobserved",
                                  GenPipelineCase,
                                  CheckObservedMatchesUnobserved);
  property.WithShrinker(ShrinkPipelineCase);
  RunnerOptions options;
  options.num_cases = 10;
  options.max_shrink_checks = 30;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P2: degraded stamps are consistent and exactly counted ------------

std::string CheckDegradedStampsAreCounted(const PipelineCase& input) {
  ObjectStoreOptions options = PipelineStoreOptions();
  // Rung 1 trips on any finite deadline: deterministic without clocks.
  options.degrade_min_headroom =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::hours(1));
  MovingObjectStore store(options);
  std::string failure = Replay(store, input.ops);
  if (!failure.empty()) return failure;

  uint64_t expect_degraded = 0;
  for (const ObjectId id : store.ObjectIds()) {
    if (store.HistoryLength(id) < 2) continue;  // Unpredictable yet.
    const bool trained = store.GetPredictor(id).ok();
    const Timestamp tq =
        static_cast<Timestamp>(store.HistoryLength(id)) - 1 +
        input.query_delta;
    const auto shed =
        store.PredictLocation(id, tq, 1, Deadline::AfterMillis(50));
    if (!shed.ok()) {
      return "shed prediction failed: " + shed.status().ToString();
    }
    const DegradedReason reason = shed->front().degraded;
    if (trained && reason != DegradedReason::kOverloaded) {
      return "trained object " + std::to_string(id) +
             " not stamped kOverloaded under rung 1";
    }
    if (!trained && reason != DegradedReason::kNone) {
      return "untrained object " + std::to_string(id) +
             " wrongly stamped degraded";
    }
    if (reason == DegradedReason::kOverloaded) ++expect_degraded;

    // An infinite deadline never sheds, whatever the ladder config.
    const auto full = store.PredictLocation(id, tq, 1);
    if (!full.ok()) return "full prediction failed";
    if (full->front().degraded != DegradedReason::kNone) {
      return "infinite-deadline answer wrongly degraded";
    }
  }

  const MetricsSnapshot snap = store.metrics_snapshot();
  if (snap.counter("store.degraded_predictions") != expect_degraded) {
    return "degraded metric " +
           std::to_string(snap.counter("store.degraded_predictions")) +
           " != observed degraded answers " +
           std::to_string(expect_degraded);
  }
  if (store.overload_stats().degraded_overload != expect_degraded) {
    return "OverloadStats.degraded_overload disagrees with the metric";
  }
  return "";
}

TEST(PropPipelineTest, DegradedStampsAreConsistentAndExactlyCounted) {
  Property<PipelineCase> property("degraded-stamps-counted",
                                  GenPipelineCase,
                                  CheckDegradedStampsAreCounted);
  property.WithShrinker(ShrinkPipelineCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 24;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P3: single accounting point — metrics reconcile exactly -----------

struct AccountingCase {
  /// Operation stream: 0 = report, 1 = predict, 2 = batch, 3 = range,
  /// 4 = kNN, 5 = refill one admission token.
  std::vector<int> ops;
  double burst = 1.0;
};

AccountingCase GenAccountingCase(Random& rng) {
  AccountingCase c;
  c.burst = 1.0 + static_cast<double>(rng.Uniform(3));
  const int num_ops = static_cast<int>(10 + rng.Uniform(60));
  for (int i = 0; i < num_ops; ++i) {
    c.ops.push_back(static_cast<int>(rng.Uniform(6)));
  }
  return c;
}

std::string CheckAccountingReconciles(const AccountingCase& input) {
  using AdmissionClock = AdmissionOptions::Clock;
  AdmissionClock::time_point now{};
  ObjectStoreOptions options = PipelineStoreOptions();
  options.query_threads = 1;
  options.admission.tokens_per_second = 1.0;
  options.admission.burst = input.burst;
  options.admission.clock = [&now] { return now; };
  MovingObjectStore store(options);

  // Expected per-op admitted/shed, mirrored from entry-point statuses.
  uint64_t admitted[5] = {0, 0, 0, 0, 0};
  uint64_t shed[5] = {0, 0, 0, 0, 0};
  auto tally = [&](int op, StatusCode code) -> std::string {
    if (code == StatusCode::kUnavailable) {
      ++shed[op];
    } else if (code == StatusCode::kOk || code == StatusCode::kNotFound ||
               code == StatusCode::kFailedPrecondition) {
      ++admitted[op];
    } else {
      return "unexpected status code in accounting workload";
    }
    return "";
  };

  ObjectId next_id = 0;
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  for (const int op : input.ops) {
    std::string failure;
    switch (op) {
      case 0:
        failure = tally(0, store.ReportLocation(next_id++ % 7,
                                                {1.0, 2.0})
                               .code());
        break;
      case 1:
        failure =
            tally(1, store.PredictLocation(3, 1000).status().code());
        break;
      case 2: {
        const auto results = store.PredictLocationBatch({3, 4}, 1000);
        failure = tally(2, results.front().status().code());
        break;
      }
      case 3:
        failure = tally(
            3, store.PredictiveRangeQuery(everywhere, 1000).status().code());
        break;
      case 4:
        failure = tally(
            4,
            store.PredictiveNearestNeighbors({0, 0}, 1000, 1)
                .status()
                .code());
        break;
      default:
        now += std::chrono::seconds(1);  // Refill one token.
        break;
    }
    if (!failure.empty()) return failure;
  }

  const MetricsSnapshot snap = store.metrics_snapshot();
  const char* kOps[5] = {"report", "predict", "predict_batch", "range",
                         "nearest"};
  uint64_t total_admitted = 0;
  uint64_t total_shed = 0;
  for (int op = 0; op < 5; ++op) {
    const std::string name(kOps[op]);
    if (snap.counter("store.admitted." + name) != admitted[op]) {
      return "admitted counter mismatch for op " + name;
    }
    if (snap.counter("store.shed." + name) != shed[op]) {
      return "shed counter mismatch for op " + name;
    }
    // Every pipeline instantiation records exactly one total-latency
    // sample, admitted or shed.
    const auto* histogram = snap.histogram("op." + name + "_us");
    if (histogram == nullptr ||
        histogram->count != admitted[op] + shed[op]) {
      return "op latency sample count mismatch for op " + name;
    }
    total_admitted += admitted[op];
    total_shed += shed[op];
  }
  const OverloadStats stats = store.overload_stats();
  if (stats.admitted != total_admitted || stats.shed != total_shed) {
    return "aggregate OverloadStats disagrees with per-op metrics";
  }
  if (store.InFlight() != 0) return "admission ticket leaked";
  return "";
}

TEST(PropPipelineTest, AccountingReconcilesAcrossRandomInterleavings) {
  Property<AccountingCase> property(
      "accounting-reconciles", GenAccountingCase,
      CheckAccountingReconciles);
  RunnerOptions options;
  options.num_cases = 20;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

// --- P4: fault schedules skip exactly the armed shards -----------------

#ifdef HPM_ENABLE_FAULTS

struct FaultMaskCase {
  int num_shards = 4;
  std::vector<uint32_t> masks;
};

FaultMaskCase GenFaultMaskCase(Random& rng) {
  FaultMaskCase c;
  c.num_shards = static_cast<int>(2 + rng.Uniform(5));
  const int rounds = static_cast<int>(1 + rng.Uniform(5));
  for (int r = 0; r < rounds; ++r) {
    c.masks.push_back(
        static_cast<uint32_t>(rng.Uniform(1u << c.num_shards)));
  }
  return c;
}

std::string CheckFaultMasksSkipExactlyArmedShards(
    const FaultMaskCase& input) {
  FaultInjector::Global().Reset();
  ObjectStoreOptions options = PipelineStoreOptions();
  options.num_shards = input.num_shards;
  // Neutralise the breaker so skipped_shards reflects only this round's
  // armed mask, not history from earlier rounds.
  options.breaker.window = 1 << 20;
  options.breaker.min_samples = 1 << 20;
  MovingObjectStore store(options);
  for (ObjectId id = 0; id < 6; ++id) {
    const Status status = store.ReportLocation(id, {1.0 * id, 2.0});
    if (!status.ok()) return status.ToString();
    const Status second = store.ReportLocation(id, {1.0 * id + 1, 3.0});
    if (!second.ok()) return second.ToString();
  }

  uint64_t expect_skipped = 0;
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  for (const uint32_t mask : input.masks) {
    std::vector<int> armed;
    for (int s = 0; s < input.num_shards; ++s) {
      if ((mask >> s) & 1u) {
        FaultRule rule;
        rule.always = true;
        rule.code = StatusCode::kUnavailable;
        FaultInjector::Global().Arm(ShardQueryFaultSite(s), rule);
        armed.push_back(s);
      } else {
        FaultInjector::Global().Disarm(ShardQueryFaultSite(s));
      }
    }
    const auto result = store.PredictiveRangeQuery(everywhere, 100);
    if (!result.ok()) {
      FaultInjector::Global().Reset();
      return "range query failed outright: " + result.status().ToString();
    }
    if (result->skipped_shards != armed) {
      FaultInjector::Global().Reset();
      return "skipped_shards != armed shards for mask " +
             std::to_string(mask);
    }
    if (result->partial != !armed.empty()) {
      FaultInjector::Global().Reset();
      return "partial flag inconsistent with armed mask";
    }
    expect_skipped += armed.size();
  }
  FaultInjector::Global().Reset();

  if (store.metrics_snapshot().counter("store.shards_skipped") !=
      expect_skipped) {
    return "shards_skipped metric does not sum the armed masks";
  }
  if (store.overload_stats().shards_skipped != expect_skipped) {
    return "OverloadStats.shards_skipped disagrees with the metric";
  }
  return "";
}

TEST(PropPipelineTest, FaultSchedulesSkipExactlyTheArmedShards) {
  Property<FaultMaskCase> property("fault-masks-skip-armed",
                                   GenFaultMaskCase,
                                   CheckFaultMasksSkipExactlyArmedShards);
  RunnerOptions options;
  options.num_cases = 12;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

#else  // !HPM_ENABLE_FAULTS

TEST(PropPipelineTest, FaultSchedulesSkipExactlyTheArmedShards) {
  GTEST_SKIP() << "fault hooks compiled out";
}

#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
