// Property suite: metamorphic query laws on a randomly trained store.
// No oracle computes the "right" answer here; instead, related queries
// must relate correctly: growing a range window can only gain hits, and
// asking for more neighbours or more predictions extends — never
// reorders — the shorter answer.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct MetamorphicCase {
  std::vector<Trajectory> histories;
  BoundingBox base_range;
  double grow_x = 0.0;
  double grow_y = 0.0;
  Point knn_target;
  Timestamp query_delta = 1;
};

MetamorphicCase GenCase(Random& rng) {
  MetamorphicCase c;
  const int objects = static_cast<int>(2 + rng.Uniform(4));
  for (int i = 0; i < objects; ++i) {
    const int periods = static_cast<int>(2 + rng.Uniform(5));
    c.histories.push_back(proptest::PeriodicHistory(
        rng, kPeriod, periods, kExtent, rng.UniformDouble(1.0, 3.0)));
  }
  c.base_range = proptest::RandomBox(rng, kExtent);
  c.grow_x = rng.UniformDouble(0.0, 3000.0);
  c.grow_y = rng.UniformDouble(0.0, 3000.0);
  c.knn_target = proptest::RandomPoint(rng, kExtent);
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(15));
  return c;
}

std::set<ObjectId> HitIds(const std::vector<RangeHit>& hits) {
  std::set<ObjectId> ids;
  for (const RangeHit& hit : hits) ids.insert(hit.id);
  return ids;
}

std::string CheckMetamorphicLaws(const MetamorphicCase& input) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 4;
  options.query_threads = 1;

  MovingObjectStore store(options);
  Timestamp max_now = 0;
  for (size_t i = 0; i < input.histories.size(); ++i) {
    const Status status = store.ReportTrajectory(
        static_cast<ObjectId>(i) * 11 + 3, input.histories[i]);
    if (!status.ok()) return "ReportTrajectory failed: " + status.ToString();
    max_now = std::max(
        max_now, static_cast<Timestamp>(input.histories[i].size()));
  }
  const Timestamp tq = max_now + input.query_delta;

  // Law 1: range-query monotonicity — a window that grows in every
  // direction can lose no hit.
  const BoundingBox grown(
      {input.base_range.min().x - input.grow_x,
       input.base_range.min().y - input.grow_y},
      {input.base_range.max().x + input.grow_x,
       input.base_range.max().y + input.grow_y});
  const auto small_hits = store.PredictiveRangeQuery(input.base_range, tq);
  const auto big_hits = store.PredictiveRangeQuery(grown, tq);
  if (!small_hits.ok() || !big_hits.ok()) {
    return "range query failed: " +
           (small_hits.ok() ? big_hits.status() : small_hits.status())
               .ToString();
  }
  const std::set<ObjectId> small_ids = HitIds(small_hits->hits);
  const std::set<ObjectId> big_ids = HitIds(big_hits->hits);
  for (const ObjectId id : small_ids) {
    if (big_ids.count(id) == 0) {
      return "object " + std::to_string(id) +
             " matched the small window but not the grown one";
    }
  }

  // Law 2: kNN k-prefix consistency — nearest-first order must agree
  // between n and n+m neighbours on the shared prefix.
  const int n = 2;
  const int extra = 3;
  const auto knn_short =
      store.PredictiveNearestNeighbors(input.knn_target, tq, n);
  const auto knn_long =
      store.PredictiveNearestNeighbors(input.knn_target, tq, n + extra);
  if (!knn_short.ok() || !knn_long.ok()) {
    return "kNN failed: " +
           (knn_short.ok() ? knn_long.status() : knn_short.status())
               .ToString();
  }
  if (knn_short->hits.size() >
      std::min(static_cast<size_t>(n), knn_long->hits.size())) {
    return "kNN returned more than the requested n";
  }
  for (size_t i = 0; i < knn_short->hits.size(); ++i) {
    if (knn_short->hits[i].id != knn_long->hits[i].id) {
      return "kNN prefix diverges at position " + std::to_string(i);
    }
  }

  // Law 3: top-k prefix consistency of point predictions.
  for (const ObjectId id : store.ObjectIds()) {
    const Timestamp object_tq =
        static_cast<Timestamp>(store.HistoryLength(id)) - 1 +
        input.query_delta;
    const auto top1 = store.PredictLocation(id, object_tq, 1);
    const auto top3 = store.PredictLocation(id, object_tq, 3);
    if (top1.ok() != top3.ok()) {
      return "top-k status differs for object " + std::to_string(id);
    }
    if (!top1.ok()) continue;
    if (top1->size() > 1) {
      return "k=1 returned " + std::to_string(top1->size()) + " predictions";
    }
    if (top3->size() < top1->size()) {
      return "k=3 returned fewer predictions than k=1";
    }
    for (size_t i = 0; i < top1->size(); ++i) {
      if (!((*top1)[i].location == (*top3)[i].location) ||
          (*top1)[i].score != (*top3)[i].score) {
        return "top-k prefix diverges for object " + std::to_string(id);
      }
    }
  }
  return "";
}

TEST(PropQueryMetamorphicTest, RangeGrowthAndPrefixLawsHold) {
  Property<MetamorphicCase> property("query-metamorphic-laws", GenCase,
                                     CheckMetamorphicLaws);
  RunnerOptions options;
  options.num_cases = 15;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
