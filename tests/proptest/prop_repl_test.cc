// Property suite: a replica that bootstrapped at a random point in a
// random workload, synced over a real loopback connection, and was
// optionally killed and restarted, converges to a store observably
// identical to the primary — same fleet, same histories, same
// rejected-report tallies, same predictions — and, because training is
// deterministic and replication re-runs the exact ingest path, its
// serialized snapshot (object files AND trained models) is
// bit-identical to the primary's, byte for byte.

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "net/client.h"
#include "net/server.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"
#include "server/replication.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct ReplOp {
  ObjectId id = 0;
  Point location;
  bool malformed = false;  ///< Sent with a gapped timestamp: rejected.
};

struct ReplCase {
  std::vector<ReplOp> ops;
  /// The replica bootstraps after this many ops.
  size_t bootstrap_point = 0;
  /// Primary SaveToDirectory after this many ops; SIZE_MAX = never.
  size_t save_point = SIZE_MAX;
  /// Kill the replica process after the mid-workload sync and restart it
  /// from its own disk before the final sync.
  bool restart_replica = false;
  int num_shards = 2;
};

ObjectStoreOptions StoreOptions(const ReplCase& c, const std::string& dir) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = c.num_shards;
  if (!dir.empty()) {
    options.durability.wal_dir = dir + "/wal";
    options.durability.sync_policy = WalSyncPolicy::kNone;
    // Tiny segments so realistic cases exercise multi-segment shipping.
    options.durability.max_segment_bytes = 512;
  }
  return options;
}

ReplCase GenCase(Random& rng) {
  ReplCase c;
  const int num_objects = static_cast<int>(1 + rng.Uniform(3));
  std::vector<std::vector<Point>> routes;
  for (int i = 0; i < num_objects; ++i) {
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    routes.push_back(std::move(route));
  }
  std::vector<int> next_step(static_cast<size_t>(num_objects), 0);
  const int num_ops = static_cast<int>(
      rng.Uniform(50ull * static_cast<uint64_t>(num_objects)));
  for (int i = 0; i < num_ops; ++i) {
    const size_t obj = rng.Uniform(static_cast<uint64_t>(num_objects));
    ReplOp op;
    op.id = static_cast<ObjectId>(obj) * 13 + 7;  // spread across shards
    if (rng.Uniform(12) == 0) {
      op.malformed = true;
      op.location = routes[obj][0];
    } else {
      const int step = next_step[obj]++;
      Point p = routes[obj][static_cast<size_t>(step) % kPeriod];
      p.x += rng.Gaussian(0.0, 2.0);
      p.y += rng.Gaussian(0.0, 2.0);
      op.location = p;
    }
    c.ops.push_back(op);
  }
  c.bootstrap_point = c.ops.empty() ? 0 : rng.Uniform(c.ops.size() + 1);
  if (!c.ops.empty() && rng.Uniform(3) != 0) {
    c.save_point = rng.Uniform(c.ops.size() + 1);
  }
  c.restart_replica = rng.Uniform(2) == 0;
  c.num_shards = static_cast<int>(1 + rng.Uniform(4));
  return c;
}

std::string CaseDir(const char* stem) {
  static std::atomic<uint64_t> counter{0};
  const std::string dir = std::string(::testing::TempDir()) + "/" + stem +
                          "_" + std::to_string(counter.fetch_add(1)) + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Apply(MovingObjectStore& store, const ReplOp& op) {
  if (op.malformed) {
    const Timestamp gap =
        static_cast<Timestamp>(store.HistoryLength(op.id)) + 3;
    if (store.ReportLocationAt(op.id, gap, op.location).ok()) {
      return "gapped report unexpectedly accepted";
    }
    return "";
  }
  const Status status = store.ReportLocation(op.id, op.location);
  if (!status.ok()) return "ReportLocation failed: " + status.ToString();
  return "";
}

std::string CompareServing(const MovingObjectStore& primary,
                           const MovingObjectStore& replica) {
  if (primary.ObjectIds() != replica.ObjectIds()) {
    return "fleet membership differs";
  }
  for (const ObjectId id : primary.ObjectIds()) {
    if (primary.HistoryLength(id) != replica.HistoryLength(id)) {
      return "history length differs for object " + std::to_string(id) +
             ": " + std::to_string(primary.HistoryLength(id)) + " vs " +
             std::to_string(replica.HistoryLength(id));
    }
    if (primary.RejectedReports(id) != replica.RejectedReports(id)) {
      return "rejected-report count differs for object " +
             std::to_string(id);
    }
    if (primary.GetPredictor(id).ok() != replica.GetPredictor(id).ok()) {
      return "trained-model presence differs for object " +
             std::to_string(id);
    }
    const Timestamp tq =
        static_cast<Timestamp>(primary.HistoryLength(id)) - 1 + 5;
    const auto expected = primary.PredictLocation(id, tq, 2);
    const auto actual = replica.PredictLocation(id, tq, 2);
    if (expected.ok() != actual.ok()) {
      return "prediction status differs for object " + std::to_string(id);
    }
    if (expected.ok()) {
      if (expected->size() != actual->size()) {
        return "prediction count differs for object " + std::to_string(id);
      }
      for (size_t i = 0; i < expected->size(); ++i) {
        if (!((*expected)[i].location == (*actual)[i].location) ||
            (*expected)[i].score != (*actual)[i].score) {
          return "prediction differs for object " + std::to_string(id);
        }
      }
    }
  }
  return "";
}

std::string ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "cannot open " + path;
  out->clear();
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return "";
}

/// Saves both stores and demands their snapshots carry identical bytes
/// per object file — generation numbers may differ (the two stores have
/// different save histories), so files are matched by their "<id>-"
/// stem, not their full name.
std::string CompareSnapshotBytes(const MovingObjectStore& primary,
                                 const MovingObjectStore& replica) {
  const std::string primary_out = CaseDir("prop_repl_snap_p");
  const std::string replica_out = CaseDir("prop_repl_snap_r");
  Status saved = primary.SaveToDirectory(primary_out);
  if (!saved.ok()) return "primary save: " + saved.ToString();
  saved = replica.SaveToDirectory(replica_out);
  if (!saved.ok()) return "replica save: " + saved.ToString();

  const auto index = [](const std::string& dir,
                        std::map<std::string, std::string>* files)
      -> std::string {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string name = entry.path().filename().string();
      const std::string ext = entry.path().extension().string();
      if (ext != ".csv" && ext != ".model") continue;
      // "<id>-<gen>.csv" → key "<id>.csv": generation-independent.
      const size_t dash = name.find('-');
      if (dash == std::string::npos) continue;
      std::string contents;
      std::string failure = ReadFileBytes(entry.path().string(), &contents);
      if (!failure.empty()) return failure;
      (*files)[name.substr(0, dash) + ext] = std::move(contents);
    }
    return "";
  };
  std::map<std::string, std::string> want, got;
  std::string failure = index(primary_out, &want);
  if (!failure.empty()) return failure;
  failure = index(replica_out, &got);
  if (!failure.empty()) return failure;

  if (want.size() != got.size()) {
    return "snapshot file sets differ: " + std::to_string(want.size()) +
           " vs " + std::to_string(got.size());
  }
  for (const auto& [key, bytes] : want) {
    const auto it = got.find(key);
    if (it == got.end()) return "replica snapshot is missing " + key;
    if (it->second != bytes) {
      return "snapshot bytes differ for " + key + " (" +
             std::to_string(bytes.size()) + " vs " +
             std::to_string(it->second.size()) + " bytes)";
    }
  }
  std::filesystem::remove_all(primary_out);
  std::filesystem::remove_all(replica_out);
  return "";
}

std::string CheckReplicaConvergesBitIdentically(const ReplCase& input) {
  const std::string primary_dir = CaseDir("prop_repl_p");
  const std::string replica_dir = CaseDir("prop_repl_r");
  std::filesystem::create_directories(primary_dir + "/wal");

  MovingObjectStore primary(StoreOptions(input, primary_dir));
  if (!primary.wal_durable()) return "primary journal failed to open";

  HpmServerOptions server_options;
  server_options.data_dir = primary_dir;
  server_options.wal_dir = primary_dir + "/wal";
  StatusOr<std::unique_ptr<HpmServer>> server =
      HpmServer::Start(&primary, server_options);
  if (!server.ok()) return "server: " + server.status().ToString();

  HpmClientOptions client_options;
  client_options.port = (*server)->port();
  HpmClient client(client_options);
  client.set_sleep_fn([](std::chrono::microseconds) {});

  // Workload prefix, then bootstrap, then the rest; the primary may
  // snapshot (and rotate + retire journal) anywhere along the way.
  std::unique_ptr<MovingObjectStore> replica;
  std::unique_ptr<ReplicaHealth> health;
  std::unique_ptr<Replicator> replicator;
  const auto build_replica = [&]() -> std::string {
    replicator.reset();
    replica.reset();
    StatusOr<MovingObjectStore> loaded = MovingObjectStore::LoadFromDirectory(
        replica_dir, StoreOptions(input, ""));
    if (loaded.ok()) {
      replica =
          std::make_unique<MovingObjectStore>(std::move(*loaded));
    } else {
      replica = std::make_unique<MovingObjectStore>(StoreOptions(input, ""));
    }
    health = std::make_unique<ReplicaHealth>();
    ReplicatorOptions options;
    options.data_dir = replica_dir;
    replicator = std::make_unique<Replicator>(
        &client, replica.get(), health.get(), replica->generation(), options);
    const Status caught_up = replicator->CatchUpFromMirror();
    if (!caught_up.ok()) return "catch-up: " + caught_up.ToString();
    return "";
  };

  for (size_t i = 0; i <= input.ops.size(); ++i) {
    if (i == input.bootstrap_point) {
      StatusOr<uint64_t> gen = BootstrapReplica(client, replica_dir);
      if (!gen.ok()) return "bootstrap: " + gen.status().ToString();
      std::string failure = build_replica();
      if (!failure.empty()) return failure;
      const Status synced = replicator->SyncOnce();
      if (!synced.ok()) return "mid sync: " + synced.ToString();
    }
    if (i == input.save_point) {
      const Status saved = primary.SaveToDirectory(primary_dir);
      if (!saved.ok()) return "save: " + saved.ToString();
    }
    if (i == input.ops.size()) break;
    const std::string failure = Apply(primary, input.ops[i]);
    if (!failure.empty()) return failure;
  }

  if (input.restart_replica) {
    std::string failure = build_replica();
    if (!failure.empty()) return failure;
  }
  const Status synced = replicator->SyncOnce();
  if (!synced.ok()) return "final sync: " + synced.ToString();
  if (replicator->resync_required()) return "unexpected resync_required";

  std::string failure = CompareServing(primary, *replica);
  if (!failure.empty()) return failure;
  // Ids whose every report was rejected never join ObjectIds(); their
  // tallies replicate through the journal all the same.
  for (const ReplOp& op : input.ops) {
    if (primary.RejectedReports(op.id) != replica->RejectedReports(op.id)) {
      return "rejected-report count differs for object " +
             std::to_string(op.id);
    }
  }
  failure = CompareSnapshotBytes(primary, *replica);
  if (!failure.empty()) return failure;

  replicator.reset();
  server->reset();
  std::filesystem::remove_all(primary_dir);  // only on success
  std::filesystem::remove_all(replica_dir);
  return "";
}

std::vector<ReplCase> ShrinkCase(const ReplCase& input) {
  std::vector<ReplCase> out;
  for (std::vector<ReplOp>& fewer : proptest::ShrinkVector(input.ops)) {
    ReplCase smaller = input;
    smaller.bootstrap_point = std::min(smaller.bootstrap_point, fewer.size());
    if (smaller.save_point != SIZE_MAX) {
      smaller.save_point = std::min(smaller.save_point, fewer.size());
    }
    smaller.ops = std::move(fewer);
    out.push_back(std::move(smaller));
  }
  return out;
}

TEST(PropReplTest, ReplicaConvergesBitIdenticallyToPrimary) {
  Property<ReplCase> property("repl-replica-vs-primary", GenCase,
                              CheckReplicaConvergesBitIdentically);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 8;
  options.max_shrink_checks = 20;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
