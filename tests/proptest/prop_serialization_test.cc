// Property suite: serialization round-trips on randomized instances. A
// trained model written by SaveToFile and read back by LoadFromFile must
// be observably identical (regions, patterns, summary, and — since the
// bytes are written raw — bit-identical predictions); a store saved to a
// directory must restore to the same fleet.

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid_predictor.h"
#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 12;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

HybridPredictorOptions PredictorOptions() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 12.0;
  options.regions.dbscan.min_pts = 3;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 2;
  options.distant_threshold = 6;
  options.region_match_slack = 6.0;
  return options;
}

/// Unique scratch path per invocation (checks may not reuse paths:
/// shrinking re-runs the check many times in one process).
std::string ScratchPath(const std::string& stem) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "hpm_" + stem + "_" +
         std::to_string(counter.fetch_add(1));
}

struct ModelCase {
  Trajectory history;
  Timestamp query_delta = 1;
};

ModelCase GenModelCase(Random& rng) {
  ModelCase c;
  const int periods = static_cast<int>(5 + rng.Uniform(4));
  c.history = proptest::PeriodicHistory(rng, kPeriod, periods, kExtent,
                                        rng.UniformDouble(1.0, 3.0));
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(2 * kPeriod));
  return c;
}

std::string CheckModelRoundTrip(const ModelCase& input) {
  StatusOr<std::unique_ptr<HybridPredictor>> trained =
      HybridPredictor::Train(input.history, PredictorOptions());
  if (!trained.ok()) return "Train failed: " + trained.status().ToString();
  const HybridPredictor& original = **trained;

  const std::string path = ScratchPath("model");
  const Status saved = original.SaveToFile(path);
  if (!saved.ok()) return "SaveToFile failed: " + saved.ToString();
  StatusOr<std::unique_ptr<HybridPredictor>> loaded =
      HybridPredictor::LoadFromFile(path);
  std::filesystem::remove(path);
  if (!loaded.ok()) {
    return "LoadFromFile failed: " + loaded.status().ToString();
  }
  const HybridPredictor& restored = **loaded;

  if (restored.regions().NumRegions() != original.regions().NumRegions()) {
    return "region count changed across the round trip";
  }
  for (size_t i = 0; i < original.regions().NumRegions(); ++i) {
    const FrequentRegion& a = original.regions().Region(static_cast<int>(i));
    const FrequentRegion& b = restored.regions().Region(static_cast<int>(i));
    if (a.offset != b.offset || a.index_at_offset != b.index_at_offset ||
        a.support != b.support || !(a.center == b.center) ||
        a.mbr.ToString() != b.mbr.ToString()) {
      return "region " + std::to_string(i) + " changed across the round trip";
    }
  }
  if (restored.patterns().size() != original.patterns().size()) {
    return "pattern count changed across the round trip";
  }
  for (size_t i = 0; i < original.patterns().size(); ++i) {
    const TrajectoryPattern& a = original.patterns()[i];
    const TrajectoryPattern& b = restored.patterns()[i];
    if (a.premise != b.premise || a.consequence != b.consequence ||
        a.confidence != b.confidence || a.support != b.support) {
      return "pattern " + std::to_string(i) + " changed across the round trip";
    }
  }
  if (restored.summary().num_sub_trajectories !=
      original.summary().num_sub_trajectories) {
    return "sub-trajectory count changed across the round trip";
  }

  // The rebuilt index must answer queries exactly like the original.
  PredictiveQuery query;
  const Timestamp now = static_cast<Timestamp>(input.history.size()) - 1;
  query.recent_movements = input.history.RecentMovements(now, 6);
  query.current_time = now;
  query.query_time = now + input.query_delta;
  query.k = 3;
  const StatusOr<std::vector<Prediction>> before = original.Predict(query);
  const StatusOr<std::vector<Prediction>> after = restored.Predict(query);
  if (before.ok() != after.ok() ||
      before.status().code() != after.status().code()) {
    return "prediction status changed across the round trip";
  }
  if (before.ok()) {
    if (before->size() != after->size()) {
      return "prediction count changed across the round trip";
    }
    for (size_t i = 0; i < before->size(); ++i) {
      if (!((*before)[i].location == (*after)[i].location) ||
          (*before)[i].score != (*after)[i].score ||
          (*before)[i].source != (*after)[i].source) {
        return "prediction " + std::to_string(i) +
               " changed across the round trip";
      }
    }
  }
  return "";
}

TEST(PropSerializationTest, ModelRoundTripPreservesEverything) {
  Property<ModelCase> property("model-save-load-round-trip", GenModelCase,
                               CheckModelRoundTrip);
  property.WithShrinker([](const ModelCase& input) {
    std::vector<ModelCase> out;
    for (Trajectory& shorter : proptest::ShrinkTrajectory(input.history)) {
      out.push_back({std::move(shorter), input.query_delta});
    }
    return out;
  });
  RunnerOptions options;
  options.num_cases = 15;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

struct StoreCase {
  std::vector<Trajectory> histories;
  Timestamp query_delta = 1;
};

StoreCase GenStoreCase(Random& rng) {
  StoreCase c;
  const int objects = static_cast<int>(1 + rng.Uniform(3));
  for (int i = 0; i < objects; ++i) {
    // Lengths straddle the training threshold so manifests carry both
    // modelled and model-less objects.
    const int periods = static_cast<int>(2 + rng.Uniform(6));
    c.histories.push_back(proptest::PeriodicHistory(
        rng, kPeriod, periods, kExtent, rng.UniformDouble(1.0, 3.0)));
  }
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(kPeriod));
  return c;
}

std::string CheckStoreRoundTrip(const StoreCase& input) {
  ObjectStoreOptions options;
  options.predictor = PredictorOptions();
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 6;
  options.num_shards = 4;
  options.query_threads = 1;

  MovingObjectStore store(options);
  for (size_t i = 0; i < input.histories.size(); ++i) {
    const Status status = store.ReportTrajectory(
        static_cast<ObjectId>(i) * 17, input.histories[i]);
    if (!status.ok()) {
      return "ReportTrajectory failed: " + status.ToString();
    }
  }

  const std::string dir = ScratchPath("store");
  const Status saved = store.SaveToDirectory(dir);
  if (!saved.ok()) return "SaveToDirectory failed: " + saved.ToString();
  StatusOr<MovingObjectStore> loaded =
      MovingObjectStore::LoadFromDirectory(dir, options);
  std::filesystem::remove_all(dir);
  if (!loaded.ok()) {
    return "LoadFromDirectory failed: " + loaded.status().ToString();
  }

  if (loaded->ObjectIds() != store.ObjectIds()) {
    return "object ids changed across the round trip";
  }
  for (const ObjectId id : store.ObjectIds()) {
    if (loaded->HistoryLength(id) != store.HistoryLength(id)) {
      return "history length changed for object " + std::to_string(id);
    }
    const bool had_model = store.GetPredictor(id).ok();
    if (loaded->GetPredictor(id).ok() != had_model) {
      return "trained-model presence changed for object " +
             std::to_string(id);
    }
    const Timestamp tq = static_cast<Timestamp>(store.HistoryLength(id)) -
                         1 + input.query_delta;
    const auto before = store.PredictLocation(id, tq, 2);
    const auto after = loaded->PredictLocation(id, tq, 2);
    if (before.ok() != after.ok() ||
        before.status().code() != after.status().code()) {
      return "prediction status changed for object " + std::to_string(id);
    }
    if (before.ok()) {
      if (before->size() != after->size()) {
        return "prediction count changed for object " + std::to_string(id);
      }
      for (size_t i = 0; i < before->size(); ++i) {
        if (!((*before)[i].location == (*after)[i].location)) {
          return "prediction changed for object " + std::to_string(id);
        }
      }
    }
  }
  return "";
}

TEST(PropSerializationTest, StoreDirectoryRoundTripPreservesFleet) {
  Property<StoreCase> property("store-save-load-round-trip", GenStoreCase,
                               CheckStoreRoundTrip);
  RunnerOptions options;
  options.num_cases = 10;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
