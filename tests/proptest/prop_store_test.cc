// Property suite: the sharded MovingObjectStore vs a single-shard,
// single-threaded reference store. Sharding and query fan-out are pure
// serving-layer mechanics — replaying one random op sequence into both
// configurations must leave observably identical fleets.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proptest/generators.h"
#include "proptest/proptest.h"
#include "proptest/shrink.h"
#include "server/object_store.h"

namespace hpm {
namespace {

using proptest::Property;
using proptest::RunnerOptions;

constexpr Timestamp kPeriod = 10;
const BoundingBox kExtent({0.0, 0.0}, {10000.0, 10000.0});

struct StoreOp {
  ObjectId id = 0;
  Point location;
};

struct WorkloadCase {
  std::vector<StoreOp> ops;
  std::vector<BoundingBox> range_queries;
  Timestamp query_delta = 1;
};

ObjectStoreOptions StoreOptions(int num_shards, int query_threads) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 12.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 5;
  options.predictor.region_match_slack = 6.0;
  options.min_training_periods = 4;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = num_shards;
  options.query_threads = query_threads;
  return options;
}

WorkloadCase GenCase(Random& rng) {
  WorkloadCase c;
  const int num_objects = static_cast<int>(1 + rng.Uniform(5));
  // Sparse ids so objects land in different shards of the sharded store.
  std::vector<ObjectId> ids;
  std::vector<std::vector<Point>> routes;
  std::vector<int> next_step(static_cast<size_t>(num_objects), 0);
  for (int i = 0; i < num_objects; ++i) {
    ids.push_back(static_cast<ObjectId>(i) * 13 + 7);
    std::vector<Point> route;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      route.push_back(proptest::RandomPoint(rng, kExtent));
    }
    routes.push_back(std::move(route));
  }
  // Interleaved reports; lengths straddle train/retrain thresholds.
  const int num_ops = static_cast<int>(rng.Uniform(60ull *
                                                   static_cast<uint64_t>(
                                                       num_objects)));
  for (int i = 0; i < num_ops; ++i) {
    const size_t obj = rng.Uniform(static_cast<uint64_t>(num_objects));
    const int step = next_step[obj]++;
    Point p = routes[obj][static_cast<size_t>(step) % kPeriod];
    p.x += rng.Gaussian(0.0, 2.0);
    p.y += rng.Gaussian(0.0, 2.0);
    c.ops.push_back({ids[obj], p});
  }
  const int num_ranges = static_cast<int>(1 + rng.Uniform(3));
  for (int i = 0; i < num_ranges; ++i) {
    c.range_queries.push_back(proptest::RandomBox(rng, kExtent));
  }
  c.query_delta = static_cast<Timestamp>(1 + rng.Uniform(15));
  return c;
}

std::string Replay(MovingObjectStore& store,
                   const std::vector<StoreOp>& ops) {
  for (const StoreOp& op : ops) {
    const Status status = store.ReportLocation(op.id, op.location);
    if (!status.ok()) return "ReportLocation failed: " + status.ToString();
  }
  return "";
}

/// Canonical form of a fleet-query answer: id-sorted, because hit order
/// among equal scores legitimately depends on shard merge order.
std::vector<std::pair<ObjectId, Point>> CanonicalHits(
    const std::vector<RangeHit>& hits) {
  std::vector<std::pair<ObjectId, Point>> out;
  out.reserve(hits.size());
  for (const RangeHit& hit : hits) {
    out.push_back({hit.id, hit.prediction.location});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

bool SameHits(const std::vector<std::pair<ObjectId, Point>>& a,
              const std::vector<std::pair<ObjectId, Point>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || !(a[i].second == b[i].second)) {
      return false;
    }
  }
  return true;
}

std::string CheckShardedMatchesReference(const WorkloadCase& input) {
  MovingObjectStore sharded(StoreOptions(/*num_shards=*/8,
                                         /*query_threads=*/2));
  MovingObjectStore reference(StoreOptions(/*num_shards=*/1,
                                           /*query_threads=*/1));
  std::string failure = Replay(sharded, input.ops);
  if (!failure.empty()) return "sharded: " + failure;
  failure = Replay(reference, input.ops);
  if (!failure.empty()) return "reference: " + failure;

  if (sharded.NumObjects() != reference.NumObjects() ||
      sharded.ObjectIds() != reference.ObjectIds()) {
    return "fleet membership differs between sharded and reference";
  }
  for (const ObjectId id : reference.ObjectIds()) {
    if (sharded.HistoryLength(id) != reference.HistoryLength(id)) {
      return "history length differs for object " + std::to_string(id);
    }
    if (sharded.GetPredictor(id).ok() != reference.GetPredictor(id).ok()) {
      return "trained-model presence differs for object " +
             std::to_string(id);
    }
    const Timestamp tq = static_cast<Timestamp>(
                             reference.HistoryLength(id)) -
                         1 + input.query_delta;
    const auto sharded_prediction = sharded.PredictLocation(id, tq, 2);
    const auto reference_prediction = reference.PredictLocation(id, tq, 2);
    if (sharded_prediction.ok() != reference_prediction.ok() ||
        sharded_prediction.status().code() !=
            reference_prediction.status().code()) {
      return "point-prediction status differs for object " +
             std::to_string(id);
    }
    if (sharded_prediction.ok()) {
      if (sharded_prediction->size() != reference_prediction->size()) {
        return "prediction count differs for object " + std::to_string(id);
      }
      for (size_t i = 0; i < sharded_prediction->size(); ++i) {
        if (!((*sharded_prediction)[i].location ==
              (*reference_prediction)[i].location) ||
            (*sharded_prediction)[i].score !=
                (*reference_prediction)[i].score) {
          return "prediction " + std::to_string(i) +
                 " differs for object " + std::to_string(id);
        }
      }
    }
  }

  // Fleet queries evaluated at a shared horizon past every history.
  Timestamp max_now = 0;
  for (const ObjectId id : reference.ObjectIds()) {
    max_now = std::max(
        max_now, static_cast<Timestamp>(reference.HistoryLength(id)));
  }
  const Timestamp tq = max_now + input.query_delta;
  for (const BoundingBox& range : input.range_queries) {
    const auto sharded_hits = sharded.PredictiveRangeQuery(range, tq);
    const auto reference_hits = reference.PredictiveRangeQuery(range, tq);
    if (sharded_hits.ok() != reference_hits.ok()) {
      return "range-query status differs";
    }
    if (sharded_hits.ok() &&
        !SameHits(CanonicalHits(sharded_hits->hits),
                  CanonicalHits(reference_hits->hits))) {
      return "range-query hits differ on " + range.ToString();
    }
  }
  if (!input.ops.empty()) {
    const Point target = input.ops.front().location;
    const auto sharded_nn =
        sharded.PredictiveNearestNeighbors(target, tq, 3);
    const auto reference_nn =
        reference.PredictiveNearestNeighbors(target, tq, 3);
    if (sharded_nn.ok() != reference_nn.ok()) {
      return "kNN status differs";
    }
    if (sharded_nn.ok() && !SameHits(CanonicalHits(sharded_nn->hits),
                                     CanonicalHits(reference_nn->hits))) {
      return "kNN hits differ";
    }
  }
  return "";
}

std::vector<WorkloadCase> ShrinkCase(const WorkloadCase& input) {
  std::vector<WorkloadCase> out;
  for (std::vector<StoreOp>& fewer : proptest::ShrinkVector(input.ops)) {
    out.push_back({std::move(fewer), input.range_queries,
                   input.query_delta});
  }
  return out;
}

TEST(PropStoreTest, ShardedStoreMatchesSingleShardReference) {
  Property<WorkloadCase> property("sharded-store-vs-reference", GenCase,
                                  CheckShardedMatchesReference);
  property.WithShrinker(ShrinkCase);
  RunnerOptions options;
  options.num_cases = 12;
  options.max_shrink_checks = 40;
  const proptest::RunResult result = property.Run(options);
  EXPECT_TRUE(result.ok) << result.message;
}

}  // namespace
}  // namespace hpm
