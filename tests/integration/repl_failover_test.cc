// Three-process failover drill over loopback: a primary `hpm_tool
// serve`, a replica following it, and this test process as the client.
// The primary is killed with SIGKILL mid-service; the replica must keep
// serving (stamped stale, then degraded-stale), refuse writes, and —
// once a fresh primary process replays the journal on the same
// directory — converge back to fresh reads with no acknowledged report
// lost anywhere.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/client.h"
#include "net/socket.h"

namespace hpm {
namespace {

constexpr ObjectId kObject = 7;

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name +
                          "_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Reserves a loopback port by binding and immediately releasing it, so
/// a restarted primary can come back on the address its replica knows.
int ReservePort() {
  StatusOr<Listener> listener = Listener::Bind("127.0.0.1", 0, 1);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  return listener.ok() ? listener->port() : 0;
}

class FailoverTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (pid_t pid : children_) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
      }
    }
  }

  /// fork+exec `hpm_tool serve <args...>`; the child's stdout is
  /// silenced, stderr passes through for ctest logs.
  pid_t Spawn(const std::vector<std::string>& serve_args) {
    std::vector<std::string> args = {HPM_TOOL_PATH, "serve"};
    args.insert(args.end(), serve_args.begin(), serve_args.end());
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::FILE* null = std::freopen("/dev/null", "w", stdout);
      (void)null;
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(HPM_TOOL_PATH, argv.data());
      ::_exit(127);
    }
    EXPECT_GT(pid, 0);
    if (pid > 0) children_.push_back(pid);
    return pid;
  }

  void Kill9(pid_t pid) {
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    ASSERT_EQ(::waitpid(pid, nullptr, 0), pid);
    for (pid_t& child : children_) {
      if (child == pid) child = -1;
    }
  }

  /// Waits (≤15s) until `port_file` exists with a parseable port.
  int AwaitPort(const std::string& port_file) {
    for (int i = 0; i < 1500; ++i) {
      std::FILE* f = std::fopen(port_file.c_str(), "rb");
      if (f != nullptr) {
        int port = 0;
        const int matched = std::fscanf(f, "%d", &port);
        std::fclose(f);
        if (matched == 1 && port > 0) return port;
      }
      ::usleep(10000);
    }
    ADD_FAILURE() << "server never published " << port_file;
    return 0;
  }

  static HpmClientOptions ClientOptions(int port) {
    HpmClientOptions options;
    options.port = port;
    return options;
  }

  /// Polls `predicate` every 20ms for up to ~15s.
  template <typename Predicate>
  bool Await(Predicate predicate) {
    for (int i = 0; i < 750; ++i) {
      if (predicate()) return true;
      ::usleep(20000);
    }
    return false;
  }

  std::vector<pid_t> children_;
};

TEST_F(FailoverTest, ReplicaServesThroughPrimaryDeathAndReconverges) {
  const std::string primary_dir = FreshDir("failover_primary");
  const std::string replica_dir = FreshDir("failover_replica");
  const std::string primary_port_file = primary_dir + ".port";
  const std::string replica_port_file = replica_dir + ".port";
  std::filesystem::remove(primary_port_file);
  std::filesystem::remove(replica_port_file);
  const int primary_port = ReservePort();
  ASSERT_GT(primary_port, 0);
  const std::string primary_addr =
      "127.0.0.1:" + std::to_string(primary_port);

  // --- A primary comes up and acknowledges a batch of reports. --------
  const pid_t primary_pid =
      Spawn({"--dir", primary_dir, "--port", std::to_string(primary_port),
             "--port-file", primary_port_file, "--threads", "2"});
  ASSERT_GT(AwaitPort(primary_port_file), 0);

  HpmClient primary(ClientOptions(primary_port));
  constexpr int kAcked = 30;
  for (int t = 0; t < kAcked; ++t) {
    ReportRequest report;
    report.id = kObject;
    report.x = 10.0 * t;
    report.y = 5.0 * t;
    StatusOr<ReplyInfo> acked = primary.Report(report);
    ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  }
  StatusOr<PredictReply> want = primary.Predict({kObject, kAcked + 2, 1, 0});
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_FALSE(want->predictions.empty());

  // --- A replica bootstraps, follows, and serves identical answers. ---
  const pid_t replica_pid = Spawn(
      {"--dir", replica_dir, "--replica-of", primary_addr, "--port-file",
       replica_port_file, "--poll-ms", "50", "--stale-ms", "500"});
  (void)replica_pid;
  const int replica_port = AwaitPort(replica_port_file);
  ASSERT_GT(replica_port, 0);
  HpmClient replica(ClientOptions(replica_port));

  StatusOr<PredictReply> got = Status::Unavailable("not yet");
  ASSERT_TRUE(Await([&] {
    got = replica.Predict({kObject, kAcked + 2, 1, 0});
    return got.ok() && !got->predictions.empty() &&
           got->predictions[0].location == want->predictions[0].location;
  })) << "replica never converged: " << got.status().ToString();
  EXPECT_EQ(got->info.role, ServerRole::kReplica);
  EXPECT_FALSE(got->info.stale_degraded);

  // Writes are the primary's job.
  StatusOr<ReplyInfo> refused =
      replica.Report({kObject, -1, 0.0, 0.0});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // --- kill -9 the primary. The replica keeps answering, stamped
  // degraded-stale once its sync window lapses. ------------------------
  Kill9(primary_pid);
  ASSERT_TRUE(Await([&] {
    StatusOr<ReplyInfo> ping = replica.Ping();
    return ping.ok() && ping->stale_degraded;
  })) << "replica never flagged degraded-stale after primary death";
  got = replica.Predict({kObject, kAcked + 2, 1, 0});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_FALSE(got->predictions.empty());
  EXPECT_EQ(got->predictions[0].location.x, want->predictions[0].location.x);
  EXPECT_EQ(got->predictions[0].location.y, want->predictions[0].location.y);

  // --- A fresh primary process replays the journal on the same
  // directory and port. --------------------------------------------------
  std::filesystem::remove(primary_port_file);
  Spawn({"--dir", primary_dir, "--port", std::to_string(primary_port),
         "--port-file", primary_port_file, "--threads", "2"});
  ASSERT_GT(AwaitPort(primary_port_file), 0);
  HpmClient revived(ClientOptions(primary_port));

  // No acknowledged report was lost: the object's clock is exactly at
  // kAcked, so the report for tick kAcked (and only that tick) lands.
  StatusOr<ReplyInfo> wrong_tick =
      revived.Report({kObject, kAcked - 1, 1.0, 1.0});
  EXPECT_FALSE(wrong_tick.ok());
  StatusOr<ReplyInfo> next_tick =
      revived.Report({kObject, kAcked, 10.0 * kAcked, 5.0 * kAcked});
  ASSERT_TRUE(next_tick.ok()) << next_tick.status().ToString();

  // --- The replica reconnects, catches up past the restart, and drops
  // its degraded stamp. -------------------------------------------------
  want = revived.Predict({kObject, kAcked + 5, 1, 0});
  ASSERT_TRUE(want.ok());
  ASSERT_FALSE(want->predictions.empty());
  ASSERT_TRUE(Await([&] {
    got = replica.Predict({kObject, kAcked + 5, 1, 0});
    return got.ok() && !got->predictions.empty() &&
           got->predictions[0].location == want->predictions[0].location &&
           !got->info.stale_degraded;
  })) << "replica never reconverged after primary restart";
}

}  // namespace
}  // namespace hpm
