// End-to-end pipeline tests: dataset generation -> discovery -> mining ->
// TPT -> hybrid prediction -> evaluation, on scaled-down versions of the
// paper's experimental setup.

#include <gtest/gtest.h>

#include "core/hybrid_predictor.h"
#include "datagen/datasets.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "mining/transaction.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 60;
constexpr int kTrainSubs = 40;
constexpr int kTotalSubs = 50;

PeriodicGeneratorConfig SmallConfig(DatasetKind kind) {
  PeriodicGeneratorConfig config = DefaultConfig(kind);
  config.period = kPeriod;
  config.num_sub_trajectories = kTotalSubs;
  return config;
}

HybridPredictorOptions Options() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 30.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = kTrainSubs;
  options.mining.min_confidence = 0.3;
  options.mining.min_support = 3;
  options.mining.max_pattern_length = 3;
  options.mining.premise_window = 5;
  options.distant_threshold = 15;
  options.time_relaxation = 2;
  options.region_match_slack = 10.0;
  return options;
}

WorkloadConfig Workload(Timestamp length, uint64_t seed = 5) {
  WorkloadConfig c;
  c.num_queries = 30;
  c.recent_length = 8;
  c.prediction_length = length;
  c.seed = seed;
  return c;
}

class IntegrationTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(IntegrationTest, FullPipelineTrainsAndAnswers) {
  const Dataset dataset = MakeDataset(GetParam(), SmallConfig(GetParam()));
  auto predictor = HybridPredictor::Train(dataset.trajectory, Options());
  ASSERT_TRUE(predictor.ok()) << predictor.status().ToString();
  EXPECT_GT((*predictor)->summary().num_frequent_regions, 0u);
  EXPECT_GT((*predictor)->summary().num_patterns, 0u);
  EXPECT_TRUE((*predictor)->tpt().CheckInvariants().ok());

  auto cases =
      MakeQueryCases(dataset.trajectory, kPeriod, kTrainSubs, Workload(10));
  ASSERT_TRUE(cases.ok());
  auto result = EvaluateHpm(**predictor, *cases);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->pattern_answers + result->motion_answers, 30);
}

TEST_P(IntegrationTest, HpmNeverMuchWorseThanRmfAtDistantTime) {
  // Paper Fig. 5: "HPM errors do not exceed RMF errors throughout".
  const Dataset dataset = MakeDataset(GetParam(), SmallConfig(GetParam()));
  auto predictor = HybridPredictor::Train(dataset.trajectory, Options());
  ASSERT_TRUE(predictor.ok());
  auto cases =
      MakeQueryCases(dataset.trajectory, kPeriod, kTrainSubs, Workload(30));
  ASSERT_TRUE(cases.ok());
  auto hpm = EvaluateHpm(**predictor, *cases);
  auto rmf = EvaluateRmf(*cases);
  ASSERT_TRUE(hpm.ok());
  ASSERT_TRUE(rmf.ok());
  // Allow slack for sampling noise at this reduced scale (the strict
  // claim is exercised at full scale by bench/fig5), but HPM must not
  // lose badly.
  EXPECT_LT(hpm->mean_error, rmf->mean_error * 1.35);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, IntegrationTest,
                         ::testing::Values(DatasetKind::kBike,
                                           DatasetKind::kCow,
                                           DatasetKind::kCar,
                                           DatasetKind::kAirplane));

TEST(IntegrationBikeTest, StrongPatternsBeatRmfClearlyAtLongHorizon) {
  const Dataset dataset =
      MakeDataset(DatasetKind::kBike, SmallConfig(DatasetKind::kBike));
  auto predictor = HybridPredictor::Train(dataset.trajectory, Options());
  ASSERT_TRUE(predictor.ok());
  auto cases =
      MakeQueryCases(dataset.trajectory, kPeriod, kTrainSubs, Workload(40));
  ASSERT_TRUE(cases.ok());
  auto hpm = EvaluateHpm(**predictor, *cases);
  auto rmf = EvaluateRmf(*cases);
  ASSERT_TRUE(hpm.ok());
  ASSERT_TRUE(rmf.ok());
  EXPECT_LT(hpm->mean_error * 2.0, rmf->mean_error);
}

TEST(IntegrationMiningTest, MorePatternsWithLargerEps) {
  // Paper Fig. 7(a): the number of patterns grows with Eps. Strict
  // monotonicity can dip locally when a large Eps merges two routes'
  // clusters into one region, so compare the sweep's endpoints.
  const Dataset dataset =
      MakeDataset(DatasetKind::kBike, SmallConfig(DatasetKind::kBike));
  std::vector<size_t> counts;
  for (const double eps : {10.0, 30.0, 60.0}) {
    HybridPredictorOptions options = Options();
    options.regions.dbscan.eps = eps;
    auto predictor = HybridPredictor::Train(dataset.trajectory, options);
    ASSERT_TRUE(predictor.ok());
    counts.push_back((*predictor)->summary().num_patterns);
  }
  EXPECT_GT(counts.back(), counts.front());
  EXPECT_GT(counts.back(), 0u);
}

TEST(IntegrationMiningTest, FewerPatternsWithHigherMinPts) {
  // Paper Fig. 8(a): the number of patterns falls as MinPts rises.
  const Dataset dataset =
      MakeDataset(DatasetKind::kCar, SmallConfig(DatasetKind::kCar));
  size_t previous = SIZE_MAX;
  for (const int min_pts : {3, 10, 25}) {
    HybridPredictorOptions options = Options();
    options.regions.dbscan.min_pts = min_pts;
    auto predictor = HybridPredictor::Train(dataset.trajectory, options);
    ASSERT_TRUE(predictor.ok());
    EXPECT_LE((*predictor)->summary().num_patterns, previous);
    previous = (*predictor)->summary().num_patterns;
  }
}

TEST(IntegrationMiningTest, FewerPatternsWithHigherConfidence) {
  // Paper Fig. 9(a).
  const Dataset dataset =
      MakeDataset(DatasetKind::kCow, SmallConfig(DatasetKind::kCow));
  size_t previous = SIZE_MAX;
  for (const double conf : {0.0, 0.4, 0.8}) {
    HybridPredictorOptions options = Options();
    options.mining.min_confidence = conf;
    auto predictor = HybridPredictor::Train(dataset.trajectory, options);
    ASSERT_TRUE(predictor.ok());
    EXPECT_LE((*predictor)->summary().num_patterns, previous);
    previous = (*predictor)->summary().num_patterns;
  }
}

TEST(IntegrationMiningTest, StrongerPatternDataYieldsMorePatterns) {
  // Bike (f = 0.9) must discover more patterns than Airplane (f = 0.4)
  // under identical mining parameters — the premise of every
  // per-dataset contrast in §VII.
  const Dataset bike =
      MakeDataset(DatasetKind::kBike, SmallConfig(DatasetKind::kBike));
  const Dataset airplane = MakeDataset(DatasetKind::kAirplane,
                                       SmallConfig(DatasetKind::kAirplane));
  auto bike_predictor = HybridPredictor::Train(bike.trajectory, Options());
  auto airplane_predictor =
      HybridPredictor::Train(airplane.trajectory, Options());
  ASSERT_TRUE(bike_predictor.ok());
  ASSERT_TRUE(airplane_predictor.ok());
  EXPECT_GT((*bike_predictor)->summary().num_patterns,
            (*airplane_predictor)->summary().num_patterns);
}

TEST(IntegrationCountersTest, MotionFallbackRateFallsWithMoreHistory) {
  // Paper Fig. 10's mechanism: more sub-trajectories -> more patterns ->
  // fewer RMF calls.
  const Dataset dataset =
      MakeDataset(DatasetKind::kCar, SmallConfig(DatasetKind::kCar));
  auto cases =
      MakeQueryCases(dataset.trajectory, kPeriod, kTrainSubs, Workload(10));
  ASSERT_TRUE(cases.ok());

  size_t fallbacks_small = 0, fallbacks_large = 0;
  {
    HybridPredictorOptions options = Options();
    options.regions.limit_sub_trajectories = 6;
    auto predictor = HybridPredictor::Train(dataset.trajectory, options);
    ASSERT_TRUE(predictor.ok());
    ASSERT_TRUE(EvaluateHpm(**predictor, *cases).ok());
    fallbacks_small = (*predictor)->counters().motion_fallbacks;
  }
  {
    auto predictor = HybridPredictor::Train(dataset.trajectory, Options());
    ASSERT_TRUE(predictor.ok());
    ASSERT_TRUE(EvaluateHpm(**predictor, *cases).ok());
    fallbacks_large = (*predictor)->counters().motion_fallbacks;
  }
  EXPECT_LE(fallbacks_large, fallbacks_small);
}

TEST(IntegrationDeterminismTest, IdenticalRunsProduceIdenticalModels) {
  // Everything is seeded: two full pipelines over the same inputs must
  // agree bit-for-bit in patterns and answers (this is what makes every
  // bench table reproducible).
  const Dataset a =
      MakeDataset(DatasetKind::kCar, SmallConfig(DatasetKind::kCar));
  const Dataset b =
      MakeDataset(DatasetKind::kCar, SmallConfig(DatasetKind::kCar));
  auto pa = HybridPredictor::Train(a.trajectory, Options());
  auto pb = HybridPredictor::Train(b.trajectory, Options());
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  ASSERT_EQ((*pa)->summary().num_patterns, (*pb)->summary().num_patterns);
  ASSERT_EQ((*pa)->summary().num_frequent_regions,
            (*pb)->summary().num_frequent_regions);
  for (size_t i = 0; i < (*pa)->patterns().size(); ++i) {
    EXPECT_EQ((*pa)->patterns()[i].premise, (*pb)->patterns()[i].premise);
    EXPECT_EQ((*pa)->patterns()[i].consequence,
              (*pb)->patterns()[i].consequence);
    EXPECT_DOUBLE_EQ((*pa)->patterns()[i].confidence,
                     (*pb)->patterns()[i].confidence);
  }
  auto cases = MakeQueryCases(a.trajectory, kPeriod, kTrainSubs,
                              Workload(20));
  ASSERT_TRUE(cases.ok());
  for (const QueryCase& qc : *cases) {
    auto ra = (*pa)->Predict(qc.query);
    auto rb = (*pb)->Predict(qc.query);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->front().location, rb->front().location);
    EXPECT_DOUBLE_EQ(ra->front().score, rb->front().score);
  }
}

TEST(IntegrationUncertaintyTest, PatternAnswersCarryRegionMbr) {
  const Dataset dataset =
      MakeDataset(DatasetKind::kBike, SmallConfig(DatasetKind::kBike));
  auto predictor = HybridPredictor::Train(dataset.trajectory, Options());
  ASSERT_TRUE(predictor.ok());
  auto cases = MakeQueryCases(dataset.trajectory, kPeriod, kTrainSubs,
                              Workload(10));
  ASSERT_TRUE(cases.ok());
  int pattern_answers = 0;
  for (const QueryCase& qc : *cases) {
    auto predictions = (*predictor)->Predict(qc.query);
    ASSERT_TRUE(predictions.ok());
    const Prediction& top = predictions->front();
    if (top.source == PredictionSource::kPattern) {
      ++pattern_answers;
      ASSERT_FALSE(top.uncertainty.IsEmpty());
      // The returned location is the region's centroid, inside its MBR.
      EXPECT_TRUE(top.uncertainty.Contains(top.location));
    } else {
      EXPECT_TRUE(top.uncertainty.IsEmpty());
    }
  }
  EXPECT_GT(pattern_answers, 0);
}

TEST(IntegrationPruningTest, PruningPreservesEmittedPatterns) {
  // Theorem 1 in vivo: pruning changes the candidate accounting but not
  // the set of prediction-usable patterns.
  const Dataset dataset =
      MakeDataset(DatasetKind::kCow, SmallConfig(DatasetKind::kCow));
  auto discovery =
      MineFrequentRegions(dataset.trajectory, Options().regions);
  ASSERT_TRUE(discovery.ok());
  const auto transactions = BuildTransactions(*discovery);

  AprioriParams pruned = Options().mining;
  AprioriParams unpruned = pruned;
  unpruned.enable_pruning = false;
  auto with = MineTrajectoryPatterns(transactions, discovery->region_set,
                                     pruned);
  auto without = MineTrajectoryPatterns(transactions, discovery->region_set,
                                        unpruned);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->patterns.size(), without->patterns.size());
  const size_t extra = without->stats.rules_pruned_time_order +
                       without->stats.rules_pruned_multi_consequence;
  EXPECT_GT(extra, 0u);
}

}  // namespace
}  // namespace hpm
