// The paper's worked "Jane" example (Fig. 3, Tables I-III, §V-C, §VI-B)
// reproduced end to end: five frequent regions, four trajectory
// patterns, their pattern keys, the TPT search for Jane's query, and the
// exact ranking arithmetic of Forward Query Processing.

#include <gtest/gtest.h>

#include <set>

#include "core/similarity.h"
#include "tpt/key_tables.h"
#include "tpt/tpt_tree.h"

namespace hpm {
namespace {

/// Table I's five regions: R0^0 (Home, offset 0), R1^0 (City) and R1^1
/// (Shopping centre) at offset 1, R2^0 (Work) and R2^1 (Beach) at
/// offset 2.
FrequentRegionSet JaneRegions() {
  FrequentRegionSet set;
  set.set_period(3);
  struct Spec {
    Timestamp offset;
    Point center;
  };
  const std::vector<Spec> specs = {
      {0, {100, 100}},   // Home.
      {1, {500, 500}},   // City.
      {1, {500, 100}},   // Shopping centre.
      {2, {900, 500}},   // Work place.
      {2, {900, 100}},   // Beach.
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    FrequentRegion r;
    r.id = static_cast<int>(i);
    r.offset = specs[i].offset;
    r.center = specs[i].center;
    r.mbr = BoundingBox(specs[i].center - Point{10, 10},
                        specs[i].center + Point{10, 10});
    r.support = 10;
    set.AddRegion(r);
  }
  return set;
}

/// Fig. 3's four patterns with the paper's confidences.
std::vector<TrajectoryPattern> JanePatterns() {
  return {
      {{0}, 1, 0.9, 9},     // P0: R0 -> R1^0 (city), 0.9.
      {{0}, 2, 0.8, 8},     // P1: R0 -> R1^1 (shopping), 0.8.
      {{0, 1}, 3, 0.5, 5},  // P2: R0 ^ R1^0 -> R2^0 (work), 0.5.
      {{0, 2}, 4, 0.4, 4},  // P3: R0 ^ R1^1 -> R2^1 (beach), 0.4.
  };
}

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    regions_ = JaneRegions();
    patterns_ = JanePatterns();
    tables_ = KeyTables::Build(regions_, patterns_);
    for (size_t i = 0; i < patterns_.size(); ++i) {
      IndexedPattern entry;
      entry.key = tables_.EncodePattern(patterns_[i], regions_);
      entry.confidence = patterns_[i].confidence;
      entry.consequence_region = patterns_[i].consequence;
      entry.pattern_id = static_cast<int>(i);
      ASSERT_TRUE(tpt_.Insert(std::move(entry)).ok());
    }
  }
  FrequentRegionSet regions_;
  std::vector<TrajectoryPattern> patterns_;
  KeyTables tables_;
  TptTree tpt_;
};

TEST_F(PaperExampleTest, TableIRegionKeys) {
  // Region keys are 2^id over 5 regions: 00001, 00010, 00100, 01000,
  // 10000 — equivalently, premise keys of single regions.
  for (int id = 0; id < 5; ++id) {
    DynamicBitset expected(5);
    expected.Set(static_cast<size_t>(id));
    PatternKey q = tables_.EncodeQueryInterval({id}, 0, 2);
    EXPECT_EQ(q.premise(), expected);
  }
}

TEST_F(PaperExampleTest, TableIIConsequenceKeys) {
  // Offsets 1 and 2 get time ids 0 and 1: keys 01 and 10.
  EXPECT_EQ(tables_.consequence_key_length(), 2u);
  EXPECT_EQ(tables_.TimeIdForOffset(1), 0);
  EXPECT_EQ(tables_.TimeIdForOffset(2), 1);
}

TEST_F(PaperExampleTest, TableIIIPatternKeys) {
  const std::vector<std::string> expected = {"0100001", "0100001",
                                             "1000011", "1000101"};
  for (size_t i = 0; i < patterns_.size(); ++i) {
    EXPECT_EQ(tables_.EncodePattern(patterns_[i], regions_).ToString(),
              expected[i])
        << "pattern " << i;
  }
}

TEST_F(PaperExampleTest, SectionVIBQueryKeyAndCandidates) {
  // Jane's recent movements are R0^0 and R1^0, tq = 2; the query key is
  // 1000011 and exactly the two offset-2 patterns intersect it (the
  // shadowed entries of Fig. 4).
  auto qkey = tables_.EncodeQuery({0, 1}, 2);
  ASSERT_TRUE(qkey.ok());
  EXPECT_EQ(qkey->ToString(), "1000011");

  const auto hits =
      tpt_.Search(*qkey, SearchMode::kPremiseAndConsequence);
  ASSERT_EQ(hits.size(), 2u);
  std::set<int> ids;
  for (const auto* hit : hits) ids.insert(hit->pattern_id);
  EXPECT_EQ(ids, (std::set<int>{2, 3}));
}

TEST_F(PaperExampleTest, SectionVIBRankingArithmetic) {
  // §VI-B: Sp(1000011, 1000011) = 1 x 0.5 = 0.5 and
  // Sp(1000101, 1000011) = 0.33 x 0.4 = 0.132 with the linear weights.
  auto qkey = tables_.EncodeQuery({0, 1}, 2);
  ASSERT_TRUE(qkey.ok());

  const PatternKey p2 = tables_.EncodePattern(patterns_[2], regions_);
  const PatternKey p3 = tables_.EncodePattern(patterns_[3], regions_);

  const double sr2 = PremiseSimilarity(p2.premise(), qkey->premise(),
                                       WeightFunction::kLinear);
  const double sr3 = PremiseSimilarity(p3.premise(), qkey->premise(),
                                       WeightFunction::kLinear);
  EXPECT_NEAR(sr2, 1.0, 1e-12);
  EXPECT_NEAR(sr3, 1.0 / 3.0, 1e-9);

  const double sp2 = sr2 * patterns_[2].confidence;
  const double sp3 = sr3 * patterns_[3].confidence;
  EXPECT_NEAR(sp2, 0.5, 1e-12);
  EXPECT_NEAR(sp3, 0.132, 2e-3);  // Paper rounds 0.33 x 0.4.
  EXPECT_GT(sp2, sp3);  // Work place outranks beach, as in the paper.
}

TEST_F(PaperExampleTest, TopOneReturnsWorkPlaceCentre) {
  // With k = 1 only the centre of R2^0 (work place) is returned.
  auto qkey = tables_.EncodeQuery({0, 1}, 2);
  ASSERT_TRUE(qkey.ok());
  const auto hits =
      tpt_.Search(*qkey, SearchMode::kPremiseAndConsequence);
  const IndexedPattern* best = nullptr;
  double best_score = -1.0;
  for (const auto* hit : hits) {
    const double score =
        PremiseSimilarity(hit->key.premise(), qkey->premise(),
                          WeightFunction::kLinear) *
        hit->confidence;
    if (score > best_score) {
      best_score = score;
      best = hit;
    }
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->consequence_region, 3);  // R2^0, the work place.
  EXPECT_EQ(regions_.Region(best->consequence_region).center,
            Point(900, 500));
}

TEST_F(PaperExampleTest, FigureFourSharedKeysGroupTogether) {
  // P0 and P1 share the key 0100001; a query for offset 1 from R0 finds
  // both patterns (city and shopping centre).
  auto qkey = tables_.EncodeQuery({0}, 1);
  ASSERT_TRUE(qkey.ok());
  EXPECT_EQ(qkey->ToString(), "0100001");
  const auto hits =
      tpt_.Search(*qkey, SearchMode::kPremiseAndConsequence);
  std::set<int> ids;
  for (const auto* hit : hits) ids.insert(hit->pattern_id);
  EXPECT_EQ(ids, (std::set<int>{0, 1}));
}

}  // namespace
}  // namespace hpm
