#include "baselines/markov.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

MarkovOptions Options(double cell = 100.0, double extent = 1000.0) {
  MarkovOptions o;
  o.cell_size = cell;
  o.extent = extent;
  return o;
}

TEST(MarkovTest, TrainValidation) {
  Trajectory t;
  t.Append({0, 0});
  EXPECT_EQ(MarkovPredictor::Train(t, Options()).status().code(),
            StatusCode::kFailedPrecondition);
  t.Append({1, 1});
  EXPECT_EQ(
      MarkovPredictor::Train(t, Options(0.0)).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      MarkovPredictor::Train(t, Options(10.0, -1.0)).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_TRUE(MarkovPredictor::Train(t, Options()).ok());
}

TEST(MarkovTest, CellGeometryRoundTrips) {
  Trajectory t;
  t.Append({0, 0});
  t.Append({1, 1});
  auto m = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  ASSERT_TRUE(m.ok());
  // A point maps to the cell whose centre it is near.
  const Point p{250, 850};
  const int64_t cell = m->CellOf(p);
  const Point center = m->CellCenter(cell);
  EXPECT_NEAR(center.x, 250, 50.0);
  EXPECT_NEAR(center.y, 850, 50.0);
  // Out-of-extent points clamp to boundary cells, never crash.
  EXPECT_EQ(m->CellOf({-50, 2000}), m->CellOf({0, 999}));
}

TEST(MarkovTest, LearnsDeterministicChain) {
  // The object marches right one cell per tick.
  Trajectory t;
  for (int rep = 0; rep < 5; ++rep) {
    for (int i = 0; i < 9; ++i) {
      t.Append({i * 100.0 + 50.0, 50.0});
    }
  }
  auto m = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  ASSERT_TRUE(m.ok());
  const std::vector<TimedPoint> recent = {{0, {50.0, 50.0}}};
  auto p = m->Predict(recent, 4);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 450.0, 1e-9);
  EXPECT_NEAR(p->y, 50.0, 1e-9);
}

TEST(MarkovTest, TransitionProbabilities) {
  // From cell A: 3 times to B, 1 time to C.
  Trajectory t;
  auto a = Point{50, 50};
  auto b = Point{150, 50};
  auto c = Point{50, 150};
  for (int i = 0; i < 3; ++i) {
    t.Append(a);
    t.Append(b);
  }
  t.Append(a);
  t.Append(c);
  auto m = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  ASSERT_TRUE(m.ok());
  // Note transitions b->a and c... also counted; check a's row.
  const int64_t cell_a = m->CellOf(a);
  const int64_t cell_b = m->CellOf(b);
  const int64_t cell_c = m->CellOf(c);
  EXPECT_NEAR(m->TransitionProbability(cell_a, cell_b), 0.75, 1e-9);
  EXPECT_NEAR(m->TransitionProbability(cell_a, cell_c), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(m->TransitionProbability(cell_a, 99), 0.0);
  EXPECT_DOUBLE_EQ(m->TransitionProbability(12345, cell_a), 0.0);
}

TEST(MarkovTest, AbsorbingCellStopsWalk) {
  // Chain ends at the right edge; a long-horizon query parks there.
  Trajectory t;
  for (int i = 0; i < 5; ++i) t.Append({i * 100.0 + 50.0, 50.0});
  auto m = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  ASSERT_TRUE(m.ok());
  const std::vector<TimedPoint> recent = {{0, {450.0, 50.0}}};
  auto p = m->Predict(recent, 100);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->x, 450.0, 1e-9);
}

TEST(MarkovTest, PredictValidation) {
  Trajectory t;
  t.Append({0, 0});
  t.Append({1, 1});
  auto m = MarkovPredictor::Train(t, Options());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Predict({}, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(m->Predict({{10, {0, 0}}}, 5).status().code(),
            StatusCode::kInvalidArgument);
  // tq == tc returns the current cell centre.
  auto p = m->Predict({{10, {0, 0}}}, 10);
  ASSERT_TRUE(p.ok());
}

TEST(MarkovTest, CellSizeChangesAnswer) {
  // The paper's §II-B criticism: accuracy depends on cell size. With a
  // diagonal mover, a coarse grid snaps the prediction far from truth.
  Trajectory t;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 10; ++i) {
      t.Append({i * 100.0 + 10.0, i * 100.0 + 10.0});
    }
  }
  const std::vector<TimedPoint> recent = {{0, {10.0, 10.0}}};
  auto fine = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  auto coarse = MarkovPredictor::Train(t, Options(500.0, 1000.0));
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  const Point actual{510.0, 510.0};
  auto fine_p = fine->Predict(recent, 5);
  auto coarse_p = coarse->Predict(recent, 5);
  ASSERT_TRUE(fine_p.ok());
  ASSERT_TRUE(coarse_p.ok());
  EXPECT_LT(Distance(*fine_p, actual), Distance(*coarse_p, actual));
}

TEST(MarkovTest, ActiveCellCount) {
  Trajectory t;
  for (int i = 0; i < 5; ++i) t.Append({i * 100.0 + 50.0, 50.0});
  auto m = MarkovPredictor::Train(t, Options(100.0, 1000.0));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->NumActiveCells(), 4u);  // Last cell has no outgoing edge.
}

}  // namespace
}  // namespace hpm
