// End-to-end tests for the hpm_tool CLI: each subcommand is executed as
// a real process against temp files.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <string>

namespace hpm {
namespace {

std::string ToolPath() {
  // ctest runs test binaries from the build tree; the tool sits in
  // build/tools/ relative to the build root. HPM_TOOL may override.
  if (const char* env = std::getenv("HPM_TOOL")) return env;
  return std::string(HPM_TOOL_PATH);
}

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunTool(const std::string& args) {
  const std::string command = ToolPath() + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string Tmp(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(HpmToolTest, NoArgumentsShowsUsage) {
  const RunResult r = RunTool("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(HpmToolTest, UnknownCommandShowsUsage) {
  EXPECT_EQ(RunTool("frobnicate").exit_code, 2);
}

TEST(HpmToolTest, UnknownFlagRejected) {
  const RunResult r =
      RunTool("generate --out /tmp/x.csv --bogus 1 --kind car");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown flag --bogus"), std::string::npos);
}

TEST(HpmToolTest, GenerateRequiresOut) {
  const RunResult r = RunTool("generate --kind bike");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--out"), std::string::npos);
}

TEST(HpmToolTest, GenerateRejectsBadKind) {
  const RunResult r = RunTool("generate --kind submarine --out /tmp/x.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown --kind"), std::string::npos);
}

TEST(HpmToolTest, FullPipelineGenerateTrainInfoPredict) {
  const std::string csv = Tmp("tool_history.csv");
  const std::string model = Tmp("tool_model.bin");

  const RunResult gen = RunTool(
      "generate --kind car --out " + csv + " --period 60 --days 30");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote 1800 samples"), std::string::npos);

  const RunResult train =
      RunTool("train --history " + csv + " --model " + model +
          " --period 60 --eps 30 --min-pts 4 --distant 20");
  ASSERT_EQ(train.exit_code, 0) << train.output;
  EXPECT_NE(train.output.find("trained on 30 sub-trajectories"),
            std::string::npos);

  const RunResult info = RunTool("info --model " + model);
  ASSERT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("period (T):          60"),
            std::string::npos);
  EXPECT_NE(info.output.find("trajectory patterns:"), std::string::npos);

  const RunResult near = RunTool("predict --model " + model + " --history " +
                             csv + " --now 1770 --horizon 10");
  ASSERT_EQ(near.exit_code, 0) << near.output;
  EXPECT_NE(near.output.find("near-time, FQP"), std::string::npos);

  const RunResult far = RunTool("predict --model " + model + " --history " +
                            csv + " --now 1770 --horizon 25 --k 2");
  ASSERT_EQ(far.exit_code, 0) << far.output;
  EXPECT_NE(far.output.find("distant-time, BQP"), std::string::npos);
}

TEST(HpmToolTest, EvaluateComparesAgainstBaselines) {
  const std::string csv = Tmp("tool_eval.csv");
  const std::string model = Tmp("tool_eval.bin");
  ASSERT_EQ(RunTool("generate --kind car --out " + csv +
                    " --period 60 --days 40")
                .exit_code,
            0);
  ASSERT_EQ(RunTool("train --history " + csv + " --model " + model +
                    " --period 60 --distant 20 --train-subs 30")
                .exit_code,
            0);
  const RunResult r = RunTool("evaluate --model " + model + " --history " +
                              csv + " --length 25 --queries 20");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("held-out periods 30..39"), std::string::npos);
  EXPECT_NE(r.output.find("HPM"), std::string::npos);
  EXPECT_NE(r.output.find("RMF"), std::string::npos);
  EXPECT_NE(r.output.find("Linear"), std::string::npos);
}

TEST(HpmToolTest, EvaluateRequiresHeldOutPeriods) {
  const std::string csv = Tmp("tool_eval2.csv");
  const std::string model = Tmp("tool_eval2.bin");
  ASSERT_EQ(RunTool("generate --kind bike --out " + csv +
                    " --period 40 --days 10")
                .exit_code,
            0);
  ASSERT_EQ(RunTool("train --history " + csv + " --model " + model +
                    " --period 40 --distant 15")
                .exit_code,
            0);
  const RunResult r =
      RunTool("evaluate --model " + model + " --history " + csv);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("held-out"), std::string::npos);
}

TEST(HpmToolTest, TrainRejectsMissingHistoryFile) {
  const RunResult r = RunTool("train --history /nonexistent.csv --model " +
                          Tmp("m.bin"));
  EXPECT_EQ(r.exit_code, 1);
}

TEST(HpmToolTest, PredictValidatesNowAndHorizon) {
  const std::string csv = Tmp("tool_history2.csv");
  const std::string model = Tmp("tool_model2.bin");
  ASSERT_EQ(RunTool("generate --kind bike --out " + csv +
                " --period 40 --days 10")
                .exit_code,
            0);
  ASSERT_EQ(RunTool("train --history " + csv + " --model " + model +
                " --period 40 --distant 15")
                .exit_code,
            0);
  EXPECT_EQ(RunTool("predict --model " + model + " --history " + csv +
                " --horizon 5")
                .exit_code,
            1);  // Missing --now.
  EXPECT_EQ(RunTool("predict --model " + model + " --history " + csv +
                " --now 99999 --horizon 5")
                .exit_code,
            1);  // Beyond history.
  EXPECT_EQ(RunTool("predict --model " + model + " --history " + csv +
                " --now 100 --horizon 0")
                .exit_code,
            1);  // Bad horizon.
}

TEST(HpmToolTest, ThroughputReportsBothWorkloads) {
  const RunResult r = RunTool(
      "throughput --shards 2 --threads 2 --clients 2 --objects 4 "
      "--ops 50");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2 shards"), std::string::npos);
  EXPECT_NE(r.output.find("2 fan-out threads"), std::string::npos);
  EXPECT_NE(r.output.find("ingest"), std::string::npos);
  EXPECT_NE(r.output.find("query"), std::string::npos);
}

TEST(HpmToolTest, FaultcheckRunsOrReportsMissingHooks) {
  const std::string dir = Tmp("tool_faultcheck");
  const RunResult r = RunTool("faultcheck --seed 7 --dir " + dir);
#ifdef HPM_ENABLE_FAULTS
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("faultcheck --seed 7"), std::string::npos);
  EXPECT_NE(r.output.find("core/pattern_lookup"), std::string::npos);
#else
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("HPM_ENABLE_FAULTS"), std::string::npos);
#endif
}

TEST(HpmToolTest, ThroughputValidatesFlags) {
  EXPECT_EQ(RunTool("throughput --shards 0").exit_code, 1);
  EXPECT_EQ(RunTool("throughput --threads 0").exit_code, 1);
  EXPECT_EQ(RunTool("throughput --clients 8 --objects 4").exit_code, 1);
}

TEST(HpmToolTest, StatsDumpsObservabilityJson) {
  const RunResult r =
      RunTool("stats --seed 3 --objects 4 --ops 120 --shards 2 --threads 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // The three sections of the dump, with the documented metric names.
  EXPECT_NE(r.output.find("\"overload\""), std::string::npos);
  EXPECT_NE(r.output.find("\"stages\""), std::string::npos);
  EXPECT_NE(r.output.find("\"metrics\""), std::string::npos);
  EXPECT_NE(r.output.find("\"store.admitted.predict\""), std::string::npos);
  EXPECT_NE(r.output.find("\"stage.fanout_us\""), std::string::npos);
  EXPECT_NE(r.output.find("\"p99_us\""), std::string::npos);
  // Malformed-report traffic is part of the canned workload, so the
  // rejection counters must be live.
  EXPECT_EQ(r.output.find("\"reports_rejected\": 0"), std::string::npos);
}

TEST(HpmToolTest, StatsValidatesFlags) {
  EXPECT_EQ(RunTool("stats --shards 0").exit_code, 1);
  EXPECT_EQ(RunTool("stats --ops 0").exit_code, 1);
  EXPECT_EQ(RunTool("stats --bogus 1").exit_code, 1);
}

TEST(HpmToolTest, WalVerifyAcceptsAnEmptyJournalDirectory) {
  // A directory with no segments yet is a valid (fresh) journal; a
  // health check against it must not page anyone.
  const std::string dir = Tmp("wal_verify_empty");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const RunResult r = RunTool("wal --dir " + dir + " --verify 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("empty journal is valid"), std::string::npos)
      << r.output;
}

TEST(HpmToolTest, WalVerifyRejectsAMissingJournalDirectory) {
  // A missing directory is a wrong path, not a clean journal.
  const std::string dir = Tmp("wal_verify_missing");
  std::filesystem::remove_all(dir);
  const RunResult r = RunTool("wal --dir " + dir + " --verify 1");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("does not exist"), std::string::npos) << r.output;
}

TEST(HpmToolTest, ServeValidatesFlags) {
  EXPECT_EQ(RunTool("serve").exit_code, 1);  // --dir is required
  EXPECT_EQ(RunTool("serve --dir " + Tmp("serve_flags") +
                    " --replica-of not-an-addr")
                .exit_code,
            1);
}

}  // namespace
}  // namespace hpm
