#include "io/csv.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace hpm {
namespace {

TEST(CsvTest, ParsesMinimalFile) {
  auto t = ParseTrajectoryCsv("t,x,y\n0,1.5,2.5\n1,3.0,4.0\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(t->At(0), Point(1.5, 2.5));
  EXPECT_EQ(t->At(1), Point(3.0, 4.0));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto t = ParseTrajectoryCsv(
      "# GPS export\n\nt,x,y\n# day one\n0,1,1\n\n1,2,2\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST(CsvTest, HandlesCrLf) {
  auto t = ParseTrajectoryCsv("t,x,y\r\n0,1,1\r\n1,2,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST(CsvTest, EmptyTrajectoryAfterHeaderIsOk) {
  auto t = ParseTrajectoryCsv("t,x,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->empty());
}

TEST(CsvTest, RejectsMissingHeader) {
  auto t = ParseTrajectoryCsv("0,1,1\n");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("header"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseTrajectoryCsv("").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("# only a comment\n").ok());
}

TEST(CsvTest, RejectsWrongFieldCount) {
  auto t = ParseTrajectoryCsv("t,x,y\n0,1\n");
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(t.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,1,2,3\n").ok());
}

TEST(CsvTest, RejectsNonConsecutiveTimestamps) {
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n1,1,1\n").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,1,1\n2,2,2\n").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,1,1\n0,2,2\n").ok());
}

TEST(CsvTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\nzero,1,1\n").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,abc,1\n").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,1,\n").ok());
  EXPECT_FALSE(ParseTrajectoryCsv("t,x,y\n0,1.5x,2\n").ok());
}

TEST(CsvTest, FormatRoundTrips) {
  Trajectory original;
  original.Append({1.25, -3.5});
  original.Append({1e4, 0.000123});
  const std::string csv = FormatTrajectoryCsv(original);
  auto parsed = ParseTrajectoryCsv(csv);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_NEAR(parsed->At(0).x, 1.25, 1e-6);
  EXPECT_NEAR(parsed->At(0).y, -3.5, 1e-6);
  EXPECT_NEAR(parsed->At(1).x, 1e4, 1e-2);
  EXPECT_NEAR(parsed->At(1).y, 0.000123, 1e-6);
}

TEST(CsvTest, FileRoundTrip) {
  Trajectory original;
  for (int i = 0; i < 20; ++i) {
    original.Append({i * 1.5, i * -0.25});
  }
  const std::string path =
      std::string(::testing::TempDir()) + "/trajectory.csv";
  ASSERT_TRUE(WriteTrajectoryCsv(original, path).ok());
  auto loaded = ReadTrajectoryCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded->points()[i].x, original.points()[i].x, 1e-6);
    EXPECT_NEAR(loaded->points()[i].y, original.points()[i].y, 1e-6);
  }
}

TEST(CsvTest, RandomJunkNeverCrashes) {
  // Fuzz-ish robustness: arbitrary byte soup must produce a clean
  // Status (or in freak cases a valid parse), never a crash.
  Random rng(7);
  const std::string alphabet = "0123456789.,-+eE tx y#\n\r\"abc";
  for (int round = 0; round < 200; ++round) {
    std::string junk;
    const size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      junk += alphabet[rng.Uniform(alphabet.size())];
    }
    (void)ParseTrajectoryCsv(junk);
  }
  // Prefix-valid input with junk appended must fail cleanly too.
  const std::string valid = "t,x,y\n0,1,1\n1,2,2\n";
  for (int round = 0; round < 50; ++round) {
    std::string mutated = valid;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = alphabet[rng.Uniform(alphabet.size())];
    (void)ParseTrajectoryCsv(mutated);
  }
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadTrajectoryCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CsvTest, WriteToBadPathFails) {
  Trajectory t;
  t.Append({0, 0});
  EXPECT_EQ(WriteTrajectoryCsv(t, "/nonexistent/dir/out.csv").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpm
