// Unit tests for the write-ahead report journal (io/wal): frame
// round-trips, segment rotation and retirement, torn-tail truncation at
// every byte offset, mid-log corruption detection, the interval sync
// policy under an injected clock, and the fault-site torn-prefix shape.
//
// The disk-shape tests vandalise real files; the fault cases need the
// compiled-in hooks and skip themselves in plain builds.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "io/wal.h"

namespace hpm {
namespace {

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

WalRecord Report(int64_t id, int64_t t) {
  WalRecord record;
  record.type = WalRecord::Type::kReport;
  record.id = id;
  record.t = t;
  record.x = 10.0 * static_cast<double>(t) + 0.25;
  record.y = -3.5 * static_cast<double>(id);
  return record;
}

WalRecord Rejected(int64_t id) {
  WalRecord record;
  record.type = WalRecord::Type::kRejected;
  record.id = id;
  return record;
}

WalRecord Baseline(int64_t id, int64_t tally) {
  WalRecord record;
  record.type = WalRecord::Type::kRejectedBaseline;
  record.id = id;
  record.t = tally;
  return record;
}

void ExpectSameRecord(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.id, b.id);
  if (a.type != WalRecord::Type::kRejected) {
    EXPECT_EQ(a.t, b.t);
  }
  if (a.type == WalRecord::Type::kReport) {
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
  }
}

std::string ReadRaw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

void WriteRaw(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(WalTest, AppendedRecordsReadBackExactly) {
  const std::string dir = FreshDir("wal_roundtrip");
  auto writer = WalWriter::Open(dir, /*shard=*/2, /*seq=*/7,
                                /*base_gen=*/3, WalWriterOptions{});
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  std::vector<WalRecord> written = {Report(1, 0), Report(1, 1), Rejected(9),
                                    Baseline(9, 4), Report(-4, 0)};
  for (const WalRecord& record : written) {
    bool synced = false;
    ASSERT_TRUE((*writer)->Append(record, &synced).ok());
    EXPECT_TRUE(synced);  // default policy is kEveryRecord
  }

  auto contents =
      ReadWalSegment((*writer)->segment_path(), /*truncate_torn_tail=*/false);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->header_ok);
  EXPECT_EQ(contents->shard, 2);
  EXPECT_EQ(contents->seq, 7u);
  EXPECT_EQ(contents->base_gen, 3u);
  EXPECT_FALSE(contents->corrupt);
  EXPECT_EQ(contents->truncated_bytes, 0u);
  ASSERT_EQ(contents->records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    ExpectSameRecord(written[i], contents->records[i]);
  }

  const std::vector<WalSegmentInfo> segments = ListWalSegments(dir);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_TRUE(segments[0].header_ok);
  EXPECT_EQ(segments[0].shard, 2);
  EXPECT_EQ(segments[0].seq, 7u);
  EXPECT_EQ(segments[0].base_gen, 3u);
}

TEST_F(WalTest, SizeRotationRollsToNextSequence) {
  const std::string dir = FreshDir("wal_size_rotation");
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kNone;
  options.max_segment_bytes = 128;  // a few records per segment
  auto writer = WalWriter::Open(dir, 0, 0, 1, options);
  ASSERT_TRUE(writer.ok());

  constexpr int kRecords = 20;
  for (int64_t t = 0; t < kRecords; ++t) {
    ASSERT_TRUE((*writer)->Append(Report(0, t), nullptr).ok());
  }

  const std::vector<WalSegmentInfo> segments = ListWalSegments(dir);
  ASSERT_GT(segments.size(), 1u);
  int64_t next_t = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_TRUE(segments[i].header_ok);
    EXPECT_EQ(segments[i].seq, static_cast<uint64_t>(i));
    EXPECT_EQ(segments[i].base_gen, 1u);  // size rotation keeps base_gen
    auto contents = ReadWalSegment(segments[i].path, false);
    ASSERT_TRUE(contents.ok());
    for (const WalRecord& record : contents->records) {
      EXPECT_EQ(record.t, next_t++);  // no record lost or reordered
    }
  }
  EXPECT_EQ(next_t, kRecords);
}

TEST_F(WalTest, ExplicitRotationStampsNewBaseGen) {
  const std::string dir = FreshDir("wal_explicit_rotation");
  auto writer = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Report(0, 0), nullptr).ok());
  ASSERT_TRUE((*writer)->Rotate(/*new_base_gen=*/5).ok());
  EXPECT_EQ((*writer)->seq(), 1u);
  EXPECT_EQ((*writer)->base_gen(), 5u);
  ASSERT_TRUE((*writer)->Append(Report(0, 1), nullptr).ok());

  const std::vector<WalSegmentInfo> segments = ListWalSegments(dir);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].base_gen, 0u);
  EXPECT_EQ(segments[1].base_gen, 5u);
}

TEST_F(WalTest, RetireBelowDeletesOnlyCoveredClosedSegments) {
  const std::string dir = FreshDir("wal_retire");
  auto writer = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Report(0, 0), nullptr).ok());
  ASSERT_TRUE((*writer)->Rotate(1).ok());
  ASSERT_TRUE((*writer)->Append(Report(0, 1), nullptr).ok());
  ASSERT_TRUE((*writer)->Rotate(2).ok());

  // A foreign shard's segment must never be touched.
  auto other = WalWriter::Open(dir, 1, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(other.ok());

  ASSERT_TRUE((*writer)->RetireBelow(1).ok());
  std::vector<uint64_t> shard0_seqs;
  size_t shard1_count = 0;
  for (const WalSegmentInfo& info : ListWalSegments(dir)) {
    if (info.shard == 0) shard0_seqs.push_back(info.seq);
    if (info.shard == 1) ++shard1_count;
  }
  // seq 0 (base_gen 0 < 1) retired; seq 1 (base_gen 1) and the active
  // seq 2 remain; shard 1 untouched.
  EXPECT_EQ(shard0_seqs, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(shard1_count, 1u);
}

TEST_F(WalTest, TornTailTruncatesAtEveryByteOffset) {
  const std::string dir = FreshDir("wal_torn_tail");
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kNone;
  auto writer = WalWriter::Open(dir, 0, 0, 0, options);
  ASSERT_TRUE(writer.ok());
  constexpr int kRecords = 3;
  for (int64_t t = 0; t < kRecords; ++t) {
    ASSERT_TRUE((*writer)->Append(Report(7, t), nullptr).ok());
  }
  const std::string path = (*writer)->segment_path();
  writer->reset();
  const std::string full = ReadRaw(path);

  // Frame boundaries: where a scan of the intact file stops each record.
  auto intact = ReadWalSegment(path, false);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->records.size(), static_cast<size_t>(kRecords));

  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string torn_path = dir + "/wal-1-0.log";
    std::filesystem::remove(torn_path);
    WriteRaw(torn_path, full.substr(0, cut));

    auto scanned = ReadWalSegment(torn_path, /*truncate_torn_tail=*/true);
    ASSERT_TRUE(scanned.ok()) << "cut " << cut;
    EXPECT_FALSE(scanned->corrupt) << "cut " << cut;
    // Whatever survived must be an exact record prefix, and the cut
    // bytes past the last whole frame must be reported.
    for (size_t i = 0; i < scanned->records.size(); ++i) {
      ExpectSameRecord(intact->records[i], scanned->records[i]);
    }
    const size_t kept = cut - scanned->truncated_bytes;
    EXPECT_EQ(std::filesystem::file_size(torn_path), kept) << "cut " << cut;

    // After physical truncation a second scan is clean.
    auto rescanned = ReadWalSegment(torn_path, false);
    ASSERT_TRUE(rescanned.ok());
    EXPECT_EQ(rescanned->truncated_bytes, 0u) << "cut " << cut;
    EXPECT_EQ(rescanned->records.size(), scanned->records.size());
  }
}

TEST_F(WalTest, MidLogCorruptionIsReportedNotTruncated) {
  const std::string dir = FreshDir("wal_mid_corruption");
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kNone;
  auto writer = WalWriter::Open(dir, 0, 0, 0, options);
  ASSERT_TRUE(writer.ok());
  for (int64_t t = 0; t < 4; ++t) {
    ASSERT_TRUE((*writer)->Append(Report(7, t), nullptr).ok());
  }
  const std::string path = (*writer)->segment_path();
  writer->reset();

  std::string content = ReadRaw(path);
  // Flip a byte well inside the record area but before the final frame.
  content[content.size() / 2] ^= 0x5a;
  WriteRaw(path, content);

  auto scanned = ReadWalSegment(path, /*truncate_torn_tail=*/true);
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(scanned->corrupt);
  EXPECT_LT(scanned->records.size(), 4u);
  // Corruption is never "repaired" by truncation: the file is evidence.
  EXPECT_EQ(std::filesystem::file_size(path), content.size());
}

TEST_F(WalTest, CorruptFinalFrameCountsAsTornTail) {
  const std::string dir = FreshDir("wal_corrupt_tail");
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kNone;
  auto writer = WalWriter::Open(dir, 0, 0, 0, options);
  ASSERT_TRUE(writer.ok());
  for (int64_t t = 0; t < 2; ++t) {
    ASSERT_TRUE((*writer)->Append(Report(7, t), nullptr).ok());
  }
  const std::string path = (*writer)->segment_path();
  writer->reset();

  std::string content = ReadRaw(path);
  content.back() ^= 0x5a;  // inside the last frame's payload
  WriteRaw(path, content);

  // A bad checksum on the physically last frame is indistinguishable
  // from a crash mid-overwrite: treated as a torn tail.
  auto scanned = ReadWalSegment(path, /*truncate_torn_tail=*/false);
  ASSERT_TRUE(scanned.ok());
  EXPECT_FALSE(scanned->corrupt);
  EXPECT_GT(scanned->truncated_bytes, 0u);
  EXPECT_EQ(scanned->records.size(), 1u);
}

TEST_F(WalTest, IntervalPolicySyncsOnInjectedClock) {
  const std::string dir = FreshDir("wal_interval_sync");
  auto fake_now = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::time_point{});
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kInterval;
  options.sync_interval = std::chrono::microseconds(1000);
  options.clock = [fake_now] { return *fake_now; };
  auto writer = WalWriter::Open(dir, 0, 0, 0, options);
  ASSERT_TRUE(writer.ok());

  bool synced = true;
  ASSERT_TRUE((*writer)->Append(Report(0, 0), &synced).ok());
  EXPECT_FALSE(synced);  // clock has not advanced past the interval

  *fake_now += std::chrono::microseconds(999);
  ASSERT_TRUE((*writer)->Append(Report(0, 1), &synced).ok());
  EXPECT_FALSE(synced);

  *fake_now += std::chrono::microseconds(1);  // exactly the interval
  ASSERT_TRUE((*writer)->Append(Report(0, 2), &synced).ok());
  EXPECT_TRUE(synced);

  // The sync reset the window.
  ASSERT_TRUE((*writer)->Append(Report(0, 3), &synced).ok());
  EXPECT_FALSE(synced);
}

TEST_F(WalTest, NonePolicyNeverReportsSync) {
  const std::string dir = FreshDir("wal_none_sync");
  WalWriterOptions options;
  options.sync_policy = WalSyncPolicy::kNone;
  auto writer = WalWriter::Open(dir, 0, 0, 0, options);
  ASSERT_TRUE(writer.ok());
  for (int64_t t = 0; t < 5; ++t) {
    bool synced = true;
    ASSERT_TRUE((*writer)->Append(Report(0, t), &synced).ok());
    EXPECT_FALSE(synced);
  }
  // The data still hit the file (page cache): process-crash durable.
  auto contents = ReadWalSegment((*writer)->segment_path(), false);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 5u);
}

TEST_F(WalTest, OpenRefusesExistingSegment) {
  const std::string dir = FreshDir("wal_open_excl");
  auto writer = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  auto clash = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  EXPECT_FALSE(clash.ok());  // O_EXCL: never append into recovered data
}

TEST_F(WalTest, AppendFaultLeavesRealTornPrefixAndBreaksWriter) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("wal_append_fault");
  auto writer = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(Report(0, 0), nullptr).ok());

  FaultRule rule;
  rule.always = true;
  FaultInjector::Global().Arm("wal/append", rule);
  EXPECT_FALSE((*writer)->Append(Report(0, 1), nullptr).ok());
  FaultInjector::Global().Reset();
  // Broken stays broken: the store's signal to degrade.
  EXPECT_FALSE((*writer)->Append(Report(0, 2), nullptr).ok());

  // The half-written frame is exactly a torn tail; replay keeps the
  // acknowledged record and drops the unacknowledged prefix.
  auto scanned =
      ReadWalSegment((*writer)->segment_path(), /*truncate_torn_tail=*/true);
  ASSERT_TRUE(scanned.ok());
  EXPECT_FALSE(scanned->corrupt);
  EXPECT_GT(scanned->truncated_bytes, 0u);
  ASSERT_EQ(scanned->records.size(), 1u);
  EXPECT_EQ(scanned->records[0].t, 0);
#endif
}

TEST_F(WalTest, SyncFaultBreaksWriter) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("wal_sync_fault");
  auto writer = WalWriter::Open(dir, 0, 0, 0, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  FaultRule rule;
  rule.always = true;
  FaultInjector::Global().Arm("wal/sync", rule);
  EXPECT_FALSE((*writer)->Append(Report(0, 0), nullptr).ok());
  FaultInjector::Global().Reset();
  EXPECT_FALSE((*writer)->Sync().ok());
#endif
}

}  // namespace
}  // namespace hpm
