#include "io/svg.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

BoundingBox Viewport() { return BoundingBox({0, 0}, {100, 50}); }

TEST(SvgTest, DocumentStructure) {
  SvgWriter svg(Viewport(), 800.0);
  const std::string doc = svg.ToString();
  EXPECT_EQ(doc.find("<?xml"), 0u);
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  // Aspect ratio preserved: 100x50 data -> 800x400 pixels.
  EXPECT_NE(doc.find("width=\"800.00\""), std::string::npos);
  EXPECT_NE(doc.find("height=\"400.00\""), std::string::npos);
}

TEST(SvgTest, PolylineMapsCoordinates) {
  SvgWriter svg(Viewport(), 800.0);
  svg.AddPolyline({{0, 0}, {100, 50}}, "#ff0000", 2.0);
  const std::string doc = svg.ToString();
  // (0,0) maps to the bottom-left pixel (0, 400); (100,50) to (800, 0).
  EXPECT_NE(doc.find("0.00,400.00"), std::string::npos);
  EXPECT_NE(doc.find("800.00,0.00"), std::string::npos);
  EXPECT_NE(doc.find("stroke=\"#ff0000\""), std::string::npos);
}

TEST(SvgTest, CircleFilledAndOutlined) {
  SvgWriter svg(Viewport());
  svg.AddCircle({50, 25}, 5.0, "blue", /*filled=*/true);
  svg.AddCircle({50, 25}, 5.0, "green", /*filled=*/false);
  const std::string doc = svg.ToString();
  EXPECT_NE(doc.find("fill=\"blue\""), std::string::npos);
  EXPECT_NE(doc.find("fill=\"none\" stroke=\"green\""),
            std::string::npos);
}

TEST(SvgTest, RectUsesTopLeftAnchor) {
  SvgWriter svg(Viewport(), 800.0);
  svg.AddRect(BoundingBox({10, 10}, {20, 20}), "#000000");
  const std::string doc = svg.ToString();
  // Top-left of the box in pixel space: x = 80, y = 400 - 160 = 240.
  EXPECT_NE(doc.find("x=\"80.00\" y=\"240.00\""), std::string::npos);
  EXPECT_NE(doc.find("width=\"80.00\" height=\"80.00\""),
            std::string::npos);
}

TEST(SvgTest, TextIsEscaped) {
  SvgWriter svg(Viewport());
  svg.AddText({1, 1}, "a<b & \"c\"");
  const std::string doc = svg.ToString();
  EXPECT_NE(doc.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_EQ(doc.find("a<b"), std::string::npos);
}

TEST(SvgTest, TrajectoryConvenience) {
  Trajectory t;
  t.Append({0, 0});
  t.Append({50, 25});
  t.Append({100, 50});
  SvgWriter svg(Viewport());
  svg.AddTrajectory(t, "#123456");
  EXPECT_NE(svg.ToString().find("#123456"), std::string::npos);
}

TEST(SvgTest, FileRoundTrip) {
  SvgWriter svg(Viewport());
  svg.AddCircle({10, 10}, 2.0, "red");
  const std::string path = std::string(::testing::TempDir()) + "/t.svg";
  ASSERT_TRUE(svg.WriteToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  ASSERT_GT(std::fread(buf, 1, 5, f), 0u);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, 5), "<?xml");
}

TEST(SvgTest, WriteToBadPathFails) {
  SvgWriter svg(Viewport());
  EXPECT_FALSE(svg.WriteToFile("/nonexistent/dir/x.svg").ok());
}

TEST(SvgDeathTest, BadViewportAborts) {
  EXPECT_DEATH(SvgWriter(BoundingBox(), 800.0), "HPM_CHECK");
  EXPECT_DEATH(SvgWriter(BoundingBox({0, 0}, {0, 10}), 800.0),
               "HPM_CHECK");
  EXPECT_DEATH(SvgWriter(Viewport(), 0.0), "HPM_CHECK");
}

TEST(SvgDeathTest, DegeneratePolylineAborts) {
  SvgWriter svg(Viewport());
  EXPECT_DEATH(svg.AddPolyline({{1, 1}}, "red"), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
