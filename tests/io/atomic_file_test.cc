// Fault sweep for io/atomic_file: every failing write path — short write
// (torn data), fsync failure (EIO/ENOSPC at flush), and the post-durable
// pre-rename crash window — must leave the previous file contents intact
// and the temp file removed. A second sweep drives the same sites through
// a full store save and proves the previous generation stays loadable.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "io/atomic_file.h"
#include "server/object_store.h"

namespace hpm {
namespace {

const char* const kWriteFaultSites[] = {
    "io/atomic_write_data",  // short write: half the content, then EIO
    "io/atomic_write_sync",  // flush succeeded, device sync failed
    "io/atomic_write",       // durable temp, crash before rename
};

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class AtomicFileFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(AtomicFileFaultTest, RoundTripWithoutFaults) {
  const std::string dir = FreshDir("atomic_roundtrip");
  const std::string path = dir + "/target";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer than before").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second, longer than before");
}

TEST_F(AtomicFileFaultTest, EveryFailingWritePathPreservesOldContent) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("atomic_fault_sweep");
  const std::string path = dir + "/target";
  const std::string old_content = "the previous, durable content\n";
  ASSERT_TRUE(AtomicWriteFile(path, old_content).ok());

  for (const char* site : kWriteFaultSites) {
    for (const StatusCode code :
         {StatusCode::kUnavailable, StatusCode::kDataLoss}) {
      FaultInjector::Global().Reset();
      FaultRule rule;
      rule.always = true;
      rule.code = code;
      FaultInjector::Global().Arm(site, rule);

      const Status status =
          AtomicWriteFile(path, "replacement that must not land");
      ASSERT_FALSE(status.ok()) << site;
      EXPECT_EQ(status.code(), code) << site;
      EXPECT_GE(FaultInjector::Global().fires(site), 1) << site;

      FaultInjector::Global().Reset();
      auto read = ReadFileToString(path);
      ASSERT_TRUE(read.ok()) << site;
      EXPECT_EQ(*read, old_content) << site;
      // No torn temp file left behind to confuse a later recovery scan.
      EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << site;
    }
  }

  // Faults gone: the write goes through again.
  ASSERT_TRUE(AtomicWriteFile(path, "after the storm").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "after the storm");
#endif
}

TEST_F(AtomicFileFaultTest, FailingSaveLeavesPreviousGenerationLoadable) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  // The same sweep through the store: a save killed by a short write or
  // sync failure at any of its files must leave the committed generation
  // untouched and loadable.
  const std::string dir = FreshDir("atomic_fault_store");
  ObjectStoreOptions options;
  MovingObjectStore store(options);
  for (ObjectId id = 0; id < 3; ++id) {
    for (Timestamp t = 0; t < 10; ++t) {
      ASSERT_TRUE(
          store
              .ReportLocation(id, {static_cast<double>(t), 100.0 * id})
              .ok());
    }
  }
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());

  for (const char* site : kWriteFaultSites) {
    FaultInjector::Global().Reset();
    FaultRule rule;
    rule.always = true;  // every retry fails too: a dead device
    FaultInjector::Global().Arm(site, rule);
    ASSERT_TRUE(store.ReportLocation(0, {999.0, 999.0}).ok());
    EXPECT_FALSE(store.SaveToDirectory(dir).ok()) << site;

    FaultInjector::Global().Reset();
    auto restored = MovingObjectStore::LoadFromDirectory(dir, options);
    ASSERT_TRUE(restored.ok())
        << site << ": " << restored.status().ToString();
    // The committed generation is one behind the in-memory store by
    // exactly the reports since the last good save.
    EXPECT_EQ(restored->ObjectIds(), store.ObjectIds()) << site;
  }
#endif
}

}  // namespace
}  // namespace hpm
