// RetryOnEintr / WriteAllFd / ReadFullFd semantics.

#include "io/eintr.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <string>

#include "gtest/gtest.h"

namespace hpm {
namespace {

TEST(EintrTest, RetriesWhileErrnoIsEintr) {
  int calls = 0;
  const int result = RetryOnEintr([&]() -> int {
    if (++calls < 4) {
      errno = EINTR;
      return -1;
    }
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 4);
}

TEST(EintrTest, DoesNotRetryOtherErrors) {
  int calls = 0;
  const int result = RetryOnEintr([&]() -> int {
    ++calls;
    errno = EIO;
    return -1;
  });
  EXPECT_EQ(result, -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(calls, 1);
}

TEST(EintrTest, WriteAllAndReadFullRoundTripThroughAPipe) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(1000, 'q');
  ASSERT_EQ(WriteAllFd(fds[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::close(fds[1]);
  std::string read_back(payload.size(), '\0');
  ASSERT_EQ(ReadFullFd(fds[0], read_back.data(), read_back.size()),
            static_cast<ssize_t>(payload.size()));
  EXPECT_EQ(read_back, payload);
  // EOF: a full read against a closed writer returns the short count.
  char extra = 0;
  EXPECT_EQ(ReadFullFd(fds[0], &extra, 1), 0);
  ::close(fds[0]);
}

TEST(EintrTest, WriteAllFailsOnBadFd) {
  const std::string payload = "x";
  EXPECT_LT(WriteAllFd(-1, payload.data(), payload.size()), 0);
}

}  // namespace
}  // namespace hpm
