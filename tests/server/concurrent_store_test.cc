// Concurrency tests for the sharded MovingObjectStore. Built and run
// under -fsanitize=thread in CI (cmake -DHPM_SANITIZE=thread); the
// assertions here cover what the sanitizer cannot: no lost reports and
// a final state identical to single-threaded ingestion.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;
constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kPeriodsPerObject = 7;  // Crosses train + retrain thresholds.

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions Options() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 4;
  options.query_threads = 2;
  return options;
}

/// Deterministic per-object noise so concurrent and single-threaded
/// ingestion see byte-identical trajectories. `base` comes from
/// proptest::SeedForTest, so a failure replays via HPM_PROP_SEED.
Point NoisySample(ObjectId id, Timestamp t, uint64_t base) {
  Random rng(base ^
             (static_cast<uint64_t>(id) * 7919 + static_cast<uint64_t>(t)));
  Point p = Route(id, t);
  p.x += rng.Gaussian(0, 1.0);
  p.y += rng.Gaussian(0, 1.0);
  return p;
}

// N writers own disjoint objects; M readers hammer point, range, kNN,
// and batch queries plus the metadata accessors while ingestion runs.
// Afterwards the store must hold exactly what a single-threaded store
// fed the same samples holds.
TEST(ConcurrentStoreTest, ParallelWritersAndReadersKeepStateExact) {
  const uint64_t seed = proptest::SeedForTest(7919);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  MovingObjectStore store(Options());
  const Timestamp samples = kPeriodsPerObject * kPeriod;

  std::atomic<bool> stop{false};
  std::atomic<int> writer_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, &writer_failures, w, samples, seed] {
      const ObjectId id = w;  // Disjoint: one object per writer.
      for (Timestamp t = 0; t < samples; ++t) {
        if (!store.ReportLocation(id, NoisySample(id, t, seed)).ok()) {
          writer_failures.fetch_add(1);
          return;
        }
      }
    });
  }

  std::vector<std::thread> readers;
  std::atomic<int> reader_failures{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &reader_failures, r] {
      const BoundingBox everywhere{{-1e7, -1e7}, {1e7, 1e7}};
      const std::vector<ObjectId> all_ids = {0, 1, 2, 3};
      int rounds = 0;
      while (!stop.load()) {
        ++rounds;
        // Metadata snapshots must be internally consistent.
        const std::vector<ObjectId> ids = store.ObjectIds();
        if (!std::is_sorted(ids.begin(), ids.end())) {
          reader_failures.fetch_add(1);
          return;
        }
        for (ObjectId id : ids) {
          const size_t len = store.HistoryLength(id);
          if (len == 0) {  // Listed objects have at least one report.
            reader_failures.fetch_add(1);
            return;
          }
          // Point query far in the future is always after "now".
          auto point = store.PredictLocation(id, 1000000 + rounds);
          if (!point.ok() &&
              point.status().code() != StatusCode::kFailedPrecondition) {
            reader_failures.fetch_add(1);
            return;
          }
        }
        switch (r % 3) {
          case 0: {
            auto hits = store.PredictiveRangeQuery(everywhere,
                                                   1000000 + rounds);
            if (!hits.ok()) reader_failures.fetch_add(1);
            break;
          }
          case 1: {
            auto hits = store.PredictiveNearestNeighbors(
                {0.0, 0.0}, 1000000 + rounds, 2);
            if (!hits.ok()) reader_failures.fetch_add(1);
            break;
          }
          default: {
            auto batch =
                store.PredictLocationBatch(all_ids, 1000000 + rounds);
            if (batch.size() != all_ids.size()) reader_failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(writer_failures.load(), 0);
  EXPECT_EQ(reader_failures.load(), 0);

  // No lost reports.
  ASSERT_EQ(store.NumObjects(), static_cast<size_t>(kWriters));
  for (ObjectId id = 0; id < kWriters; ++id) {
    EXPECT_EQ(store.HistoryLength(id), static_cast<size_t>(samples));
  }

  // Deterministic final state: a single-threaded store fed the same
  // samples must agree on every prediction and on the trained models'
  // pattern sets.
  MovingObjectStore reference(Options());
  for (ObjectId id = 0; id < kWriters; ++id) {
    for (Timestamp t = 0; t < samples; ++t) {
      ASSERT_TRUE(reference.ReportLocation(id, NoisySample(id, t, seed)).ok());
    }
  }
  const Timestamp tq = samples + 3;
  for (ObjectId id = 0; id < kWriters; ++id) {
    auto concurrent_model = store.GetPredictor(id);
    auto reference_model = reference.GetPredictor(id);
    ASSERT_EQ(concurrent_model.ok(), reference_model.ok());
    if (concurrent_model.ok()) {
      EXPECT_EQ((*concurrent_model)->patterns().size(),
                (*reference_model)->patterns().size());
    }
    auto got = store.PredictLocation(id, tq, 3);
    auto want = reference.PredictLocation(id, tq, 3);
    ASSERT_EQ(got.ok(), want.ok());
    if (!got.ok()) continue;
    ASSERT_EQ(got->size(), want->size());
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].location.x, (*want)[i].location.x);
      EXPECT_EQ((*got)[i].location.y, (*want)[i].location.y);
      EXPECT_EQ((*got)[i].score, (*want)[i].score);
      EXPECT_EQ((*got)[i].source, (*want)[i].source);
    }
  }
}

// Regression test for the ObjectIds()/HistoryLength() satellite: both
// must be safe (and sane) while ReportLocation runs on other threads.
TEST(ConcurrentStoreTest, MetadataReadsDuringConcurrentReports) {
  MovingObjectStore store(Options());
  constexpr Timestamp kSamples = 2 * kPeriod;  // Below training threshold.

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (Timestamp t = 0; t < kSamples; ++t) {
        ASSERT_TRUE(store.ReportLocation(w, Route(w, t)).ok());
      }
    });
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &failures] {
      size_t max_seen = 0;
      while (!stop.load()) {
        const std::vector<ObjectId> ids = store.ObjectIds();
        if (ids.size() > static_cast<size_t>(kWriters) ||
            !std::is_sorted(ids.begin(), ids.end())) {
          failures.fetch_add(1);
          return;
        }
        size_t total = 0;
        for (ObjectId id = 0; id < kWriters; ++id) {
          total += store.HistoryLength(id);
        }
        if (total < max_seen ||  // Histories only grow.
            total > static_cast<size_t>(kWriters) * kSamples) {
          failures.fetch_add(1);
          return;
        }
        max_seen = total;
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.ObjectIds(),
            (std::vector<ObjectId>{0, 1, 2, 3}));
  for (ObjectId id = 0; id < kWriters; ++id) {
    EXPECT_EQ(store.HistoryLength(id), static_cast<size_t>(kSamples));
  }
}

// Model snapshots handed out by GetPredictor stay valid and give the
// same answers after later retrains swap the live model.
TEST(ConcurrentStoreTest, SnapshotsSurviveRetrains) {
  const uint64_t seed = proptest::SeedForTest(7919);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  ObjectStoreOptions options = Options();
  MovingObjectStore store(options);
  const Timestamp trained = options.min_training_periods * kPeriod;
  for (Timestamp t = 0; t < trained; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, NoisySample(0, t, seed)).ok());
  }
  auto snapshot = store.GetPredictor(0);
  ASSERT_TRUE(snapshot.ok());

  PredictiveQuery query;
  query.current_time = trained - 1;
  query.query_time = trained + 2;
  query.k = 3;
  Trajectory so_far;
  for (Timestamp t = 0; t < trained; ++t) {
    so_far.Append(NoisySample(0, t, seed));
  }
  query.recent_movements = so_far.RecentMovements(trained - 1, 5);
  auto before = (*snapshot)->Predict(query);
  ASSERT_TRUE(before.ok());

  // Drive two more retrain batches; the live model is replaced.
  for (Timestamp t = trained; t < trained + 4 * kPeriod; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, NoisySample(0, t, seed)).ok());
  }
  auto live = store.GetPredictor(0);
  ASSERT_TRUE(live.ok());
  EXPECT_NE(snapshot->get(), live->get());
  EXPECT_GE((*live)->patterns().size(), (*snapshot)->patterns().size());

  // The old snapshot still answers, identically.
  auto after = (*snapshot)->Predict(query);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), before->size());
  for (size_t i = 0; i < after->size(); ++i) {
    EXPECT_EQ((*after)[i].location.x, (*before)[i].location.x);
    EXPECT_EQ((*after)[i].location.y, (*before)[i].location.y);
    EXPECT_EQ((*after)[i].score, (*before)[i].score);
  }
}

// DrainContinuousEvents is safe while reporters are generating events.
TEST(ConcurrentStoreTest, ContinuousEventsUnderConcurrentReporters) {
  MovingObjectStore store(Options());
  // A band each route crosses mid-period.
  const BoundingBox band{{400.0, 0.0}, {1200.0, 1e6}};
  const int query_id = store.RegisterContinuousQuery(band, 2);
  EXPECT_GE(query_id, 1);

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, w] {
      for (Timestamp t = 0; t < 3 * kPeriod; ++t) {
        ASSERT_TRUE(store.ReportLocation(w, Route(w, t)).ok());
      }
    });
  }
  std::atomic<bool> stop{false};
  size_t drained = 0;
  std::thread drainer([&store, &stop, &drained] {
    while (!stop.load()) {
      drained += store.DrainContinuousEvents().size();
    }
  });
  for (std::thread& t : writers) t.join();
  stop.store(true);
  drainer.join();
  drained += store.DrainContinuousEvents().size();

  // Every route repeatedly enters and leaves the band: events must
  // have been produced, and none may be double-delivered (each drain
  // clears the queue atomically, so the total is at most one flip per
  // report).
  EXPECT_GT(drained, 0u);
  EXPECT_LE(drained, static_cast<size_t>(kWriters) * 3 * kPeriod);
}

}  // namespace
}  // namespace hpm
