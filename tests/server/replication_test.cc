// Primary/replica replication: bootstrap, journal-tail shipping, mirror
// healing, divergence detection, and (in fault builds) kill-point sweeps
// over the fetch and apply paths.
//
// Everything runs in-process over loopback: a primary MovingObjectStore
// with a journal + an HpmServer in front, and a replica store fed by a
// Replicator. The differential model checks live in prop_repl_test.cc.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "io/wal.h"
#include "net/client.h"
#include "net/server.h"
#include "server/object_store.h"
#include "server/replication.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions Options() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 4;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string content;
  char buf[4096];
  size_t n = 0;
  while (f != nullptr && (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  if (f != nullptr) std::fclose(f);
  return content;
}

/// A primary store + server and one replica store + replicator, all over
/// loopback.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef HPM_ENABLE_FAULTS
    FaultInjector::Global().Reset();
#endif
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    primary_dir_ = FreshDir(std::string("repl_p_") + info->name());
    replica_dir_ = FreshDir(std::string("repl_r_") + info->name());
    std::filesystem::create_directories(primary_dir_ + "/wal");

    ObjectStoreOptions options = Options();
    options.durability.wal_dir = primary_dir_ + "/wal";
    options.durability.sync_policy = WalSyncPolicy::kNone;
    primary_ = std::make_unique<MovingObjectStore>(options);
  }

  void TearDown() override {
#ifdef HPM_ENABLE_FAULTS
    FaultInjector::Global().Reset();
#endif
  }

  void StartServer() {
    HpmServerOptions options;
    options.data_dir = primary_dir_;
    options.wal_dir = primary_dir_ + "/wal";
    StatusOr<std::unique_ptr<HpmServer>> server =
        HpmServer::Start(primary_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);

    HpmClientOptions client_options;
    client_options.port = server_->port();
    client_ = std::make_unique<HpmClient>(client_options);
    client_->set_sleep_fn([](std::chrono::microseconds) {});
  }

  /// Appends `periods` full periods for `id` to the primary.
  void Feed(ObjectId id, int periods) {
    const Timestamp start = static_cast<Timestamp>(primary_->HistoryLength(id));
    for (Timestamp t = start; t < start + periods * kPeriod; ++t) {
      ASSERT_TRUE(primary_->ReportLocation(id, Route(id, t)).ok());
    }
  }

  /// Bootstraps replica_dir_ from the primary and builds the replica
  /// store (journal-less: the mirror belongs to the primary's bytes) and
  /// its Replicator.
  void BuildReplica() {
    replicator_.reset();
    StatusOr<uint64_t> gen = BootstrapReplica(*client_, replica_dir_);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
    if (*gen == 0) {
      replica_ = std::make_unique<MovingObjectStore>(Options());
    } else {
      StatusOr<MovingObjectStore> loaded =
          MovingObjectStore::LoadFromDirectory(replica_dir_, Options());
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      replica_ = std::make_unique<MovingObjectStore>(std::move(*loaded));
    }
    health_ = std::make_unique<ReplicaHealth>();
    ReplicatorOptions options;
    options.data_dir = replica_dir_;
    replicator_ = std::make_unique<Replicator>(client_.get(), replica_.get(),
                                               health_.get(),
                                               replica_->generation(), options);
    ASSERT_TRUE(replicator_->CatchUpFromMirror().ok());
  }

  /// Rebuilds the replica store + replicator from what is already on the
  /// replica's disk — the killed-and-restarted follower. Returns the
  /// mirror catch-up status (an error flags divergence, not a crash).
  Status RestartReplica() {
    replicator_.reset();
    replica_.reset();
    StatusOr<MovingObjectStore> loaded =
        MovingObjectStore::LoadFromDirectory(replica_dir_, Options());
    if (loaded.ok()) {
      replica_ = std::make_unique<MovingObjectStore>(std::move(*loaded));
    } else {
      // Journal-only replica: no snapshot was ever bootstrapped.
      replica_ = std::make_unique<MovingObjectStore>(Options());
    }
    health_ = std::make_unique<ReplicaHealth>();
    ReplicatorOptions options;
    options.data_dir = replica_dir_;
    replicator_ = std::make_unique<Replicator>(client_.get(), replica_.get(),
                                               health_.get(),
                                               replica_->generation(), options);
    return replicator_->CatchUpFromMirror();
  }

  void ExpectConverged(const std::vector<ObjectId>& ids) {
    for (ObjectId id : ids) {
      EXPECT_EQ(replica_->HistoryLength(id), primary_->HistoryLength(id))
          << "object " << id;
      EXPECT_EQ(replica_->RejectedReports(id), primary_->RejectedReports(id))
          << "object " << id;
      const Timestamp tq =
          static_cast<Timestamp>(primary_->HistoryLength(id)) + 3;
      StatusOr<std::vector<Prediction>> want =
          primary_->PredictLocation(id, tq, 2);
      StatusOr<std::vector<Prediction>> got =
          replica_->PredictLocation(id, tq, 2);
      ASSERT_EQ(want.ok(), got.ok()) << "object " << id;
      if (!want.ok()) continue;
      ASSERT_EQ(want->size(), got->size()) << "object " << id;
      for (size_t i = 0; i < want->size(); ++i) {
        EXPECT_EQ((*want)[i].location.x, (*got)[i].location.x);
        EXPECT_EQ((*want)[i].location.y, (*got)[i].location.y);
        EXPECT_EQ((*want)[i].score, (*got)[i].score);
        EXPECT_EQ((*want)[i].source, (*got)[i].source);
      }
    }
  }

  std::string primary_dir_;
  std::string replica_dir_;
  std::unique_ptr<MovingObjectStore> primary_;
  std::unique_ptr<HpmServer> server_;
  std::unique_ptr<HpmClient> client_;
  std::unique_ptr<MovingObjectStore> replica_;
  std::unique_ptr<ReplicaHealth> health_;
  std::unique_ptr<Replicator> replicator_;
};

TEST_F(ReplicationTest, BootstrapSnapshotPlusJournalTailConverges) {
  // Snapshot (gen 1) + a journal tail on top of it + rejected-report
  // tallies that only the journal carries.
  Feed(1, 6);
  Feed(2, 6);
  EXPECT_FALSE(primary_->ReportLocation(1, Point(std::nan(""), 0.0)).ok());
  EXPECT_FALSE(primary_->ReportLocation(1, Point(std::nan(""), 0.0)).ok());
  ASSERT_TRUE(primary_->SaveToDirectory(primary_dir_).ok());
  Feed(1, 1);
  EXPECT_FALSE(primary_->ReportLocation(2, Point(0.0, std::nan(""))).ok());
  StartServer();

  BuildReplica();
  EXPECT_EQ(replica_->generation(), 1u);
  ASSERT_TRUE(replicator_->SyncOnce().ok())
      << replicator_->last_status().ToString();
  ExpectConverged({1, 2});
  EXPECT_EQ(health_->generation.load(), primary_->generation());
  EXPECT_EQ(health_->lag_bytes.load(), 0u);
  EXPECT_GT(replicator_->applied_records(), 0u);
  EXPECT_FALSE(replicator_->resync_required());
}

TEST_F(ReplicationTest, NeverSavedPrimaryReplicatesFromPureJournal) {
  Feed(1, 2);
  StartServer();
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());
  ExpectConverged({1});

  // The replica keeps following ongoing writes, including ones that
  // arrive over the wire.
  Feed(1, 1);
  ReportRequest wire;
  wire.id = 1;
  wire.x = Route(1, 0).x;
  wire.y = Route(1, 0).y;
  ASSERT_TRUE(client_->Report(wire).ok());
  const uint64_t before = replicator_->applied_records();
  ASSERT_TRUE(replicator_->SyncOnce().ok());
  EXPECT_GT(replicator_->applied_records(), before);
  ExpectConverged({1});
}

TEST_F(ReplicationTest, RestartedReplicaCatchesUpFromItsMirror) {
  Feed(1, 6);
  ASSERT_TRUE(primary_->SaveToDirectory(primary_dir_).ok());
  Feed(1, 2);
  StartServer();
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());

  // Kill the replica process (drop its in-memory store) and restart it
  // from disk: snapshot + mirror replay must reconverge, and the next
  // sync must pick up writes that happened while it was down.
  Feed(1, 1);
  ASSERT_TRUE(RestartReplica().ok());
  ASSERT_TRUE(replicator_->SyncOnce().ok());
  ExpectConverged({1});
}

TEST_F(ReplicationTest, TornMirrorTailIsTruncatedAndRefetched) {
  Feed(1, 3);
  StartServer();
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());

  // Tear the tail of every mirrored segment — the replica crashed
  // mid-fetch. Restart must truncate the torn bytes and refetch them.
  const std::string mirror = replica_dir_ + "/wal";
  std::vector<WalSegmentInfo> segments = ListWalSegments(mirror);
  ASSERT_FALSE(segments.empty());
  for (const WalSegmentInfo& segment : segments) {
    std::FILE* f = std::fopen(segment.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "\x40\x00\x00\x00half-a-frame";
    ASSERT_GT(std::fwrite(torn, 1, sizeof(torn) - 1, f), 0u);
    std::fclose(f);
  }

  ASSERT_TRUE(RestartReplica().ok());
  ASSERT_TRUE(replicator_->SyncOnce().ok())
      << replicator_->last_status().ToString();
  ExpectConverged({1});
  // The mirror is byte-identical to the primary's journal again.
  for (const WalSegmentInfo& segment : ListWalSegments(mirror)) {
    const std::string name =
        std::filesystem::path(segment.path).filename().string();
    EXPECT_EQ(ReadFileBytes(segment.path),
              ReadFileBytes(primary_dir_ + "/wal/" + name))
        << name;
  }
}

TEST_F(ReplicationTest, JournalGapFlipsResyncRequired) {
  Feed(1, 2);
  StartServer();
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());

  // A mirror segment whose first record is beyond the object's clock —
  // the primary retired journal the replica still needed. The replica
  // must refuse to apply past the gap and demand a re-bootstrap.
  WalWriterOptions wal_options;
  wal_options.sync_policy = WalSyncPolicy::kNone;
  StatusOr<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(replica_dir_ + "/wal", 3, 999, 0, wal_options);
  ASSERT_TRUE(writer.ok());
  WalRecord gap;
  gap.id = 77;
  gap.t = 5;  // object 77 has no history: next tick is 0
  gap.x = 1.0;
  gap.y = 2.0;
  ASSERT_TRUE((*writer)->Append(gap, nullptr).ok());
  writer->reset();

  const Status caught_up = RestartReplica();
  EXPECT_FALSE(caught_up.ok());
  EXPECT_TRUE(replicator_->resync_required());
}

TEST_F(ReplicationTest, LaggingFollowerFlipsPrimaryHealthFlag) {
  StartServer();
  ReplStateRequest lagging;
  lagging.follower_lag_bytes = 64 * 1024 * 1024;
  ASSERT_TRUE(client_->ReplState(lagging).ok());
  EXPECT_TRUE(server_->follower_lagging());
  EXPECT_GE(server_->metrics_snapshot().counter("repl.follower_lagging"), 1u);

  ReplStateRequest caught_up;
  caught_up.follower_lag_bytes = 0;
  ASSERT_TRUE(client_->ReplState(caught_up).ok());
  EXPECT_FALSE(server_->follower_lagging());
}

#ifdef HPM_ENABLE_FAULTS

TEST_F(ReplicationTest, FetchKillPointSweepStillConverges) {
  Feed(1, 6);
  ASSERT_TRUE(primary_->SaveToDirectory(primary_dir_).ok());
  Feed(1, 2);
  StartServer();

  // Count the fetch RPCs one full bootstrap+sync makes...
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());
  const int64_t fetch_calls = FaultInjector::Global().calls("repl/fetch");
  ASSERT_GT(fetch_calls, 0);

  // ...then kill each one in turn. The client retries the injected
  // kUnavailable, so every kill point must still converge.
  for (int64_t k = 1; k <= fetch_calls; ++k) {
    std::filesystem::remove_all(replica_dir_);
    FaultInjector::Global().Reset();
    FaultRule rule;
    rule.nth_call = k;
    rule.max_fires = 1;
    rule.message = "injected fetch failure";
    FaultInjector::Global().Arm("repl/fetch", rule);
    BuildReplica();
    Status synced = replicator_->SyncOnce();
    if (!synced.ok()) synced = replicator_->SyncOnce();
    ASSERT_TRUE(synced.ok()) << "kill point " << k << ": "
                             << synced.ToString();
    ExpectConverged({1});
    EXPECT_FALSE(replicator_->resync_required()) << "kill point " << k;
  }
  FaultInjector::Global().Reset();
}

TEST_F(ReplicationTest, ApplyKillPointSweepStillConverges) {
  Feed(1, 3);
  StartServer();
  BuildReplica();
  ASSERT_TRUE(replicator_->SyncOnce().ok());
  const int64_t apply_calls = FaultInjector::Global().calls("repl/apply");
  ASSERT_GT(apply_calls, 0);

  for (int64_t k = 1; k <= apply_calls; ++k) {
    std::filesystem::remove_all(replica_dir_);
    FaultInjector::Global().Reset();
    FaultRule rule;
    rule.nth_call = k;
    rule.max_fires = 1;
    rule.message = "injected apply failure";
    FaultInjector::Global().Arm("repl/apply", rule);
    BuildReplica();
    // The poisoned sync fails partway; the next one resumes from the
    // cursor and finishes the job.
    Status synced = replicator_->SyncOnce();
    if (!synced.ok()) synced = replicator_->SyncOnce();
    ASSERT_TRUE(synced.ok()) << "kill point " << k << ": "
                             << synced.ToString();
    ExpectConverged({1});
    EXPECT_FALSE(replicator_->resync_required()) << "kill point " << k;
  }
  FaultInjector::Global().Reset();
}

TEST_F(ReplicationTest, TornBootstrapTransferIsRetriedToConvergence) {
  Feed(1, 6);
  ASSERT_TRUE(primary_->SaveToDirectory(primary_dir_).ok());
  StartServer();

  // Tear the first few frame sends of the snapshot transfer (client and
  // server share the process-global site). The client's transport retry
  // reconnects and the bootstrap completes.
  for (int64_t k = 1; k <= 3; ++k) {
    std::filesystem::remove_all(replica_dir_);
    FaultInjector::Global().Reset();
    FaultRule rule;
    rule.nth_call = k;
    rule.max_fires = 1;
    FaultInjector::Global().Arm("net/send", rule);
    BuildReplica();
    ASSERT_TRUE(replicator_->SyncOnce().ok()) << "kill point " << k;
    ExpectConverged({1});
    EXPECT_EQ(FaultInjector::Global().fires("net/send"), 1)
        << "kill point " << k;
  }
  FaultInjector::Global().Reset();
}

#endif  // HPM_ENABLE_FAULTS

}  // namespace
}  // namespace hpm
