// Sanitizer stress battery for the lock-free epoch-protected read path.
// Built and run under -fsanitize=thread (data races between the no-lock
// readers and the publish/retire writers) and under -fsanitize=address
// with an aggressive retire/free churn workload (a view or table freed
// while a pinned reader still dereferences it is a use-after-free the
// sanitizer catches deterministically). scripts/check.sh runs the
// `concurrency` label in both legs.
//
// The assertions cover what the sanitizers cannot: no lost reports, and
// the epoch.* accounting invariants (pins observed, every retirement
// eventually freed, never the other way round).

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "proptest/proptest.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 8;
constexpr int kWriters = 2;
constexpr int kReaders = 3;
// Each writer grows this many objects mid-run; every creation rebuilds
// (publishes + retires) the owning shard's table.
constexpr int kObjectsPerWriter = 3;
constexpr Timestamp kSamplesPerObject = 5 * kPeriod;

/// Retrain on every completed period: maximum WithNewHistory swap (and
/// therefore view retire) pressure per report.
ObjectStoreOptions ChurnOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 4;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 2;
  options.update_batch_periods = 1;
  options.recent_window = 4;
  options.num_shards = 4;
  options.query_threads = 2;
  return options;
}

Point NoisySample(ObjectId id, Timestamp t, uint64_t base) {
  Random rng(base ^
             (static_cast<uint64_t>(id) * 7919 + static_cast<uint64_t>(t)));
  Point p{100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
  p.x += rng.Gaussian(0, 1.0);
  p.y += rng.Gaussian(0, 1.0);
  return p;
}

// Writers continuously swap views (every report) and models (every
// period) and rebuild shard tables (every object creation) while readers
// hammer all four query kinds with no lock to hide behind. Ids that do
// not exist yet exercise the table-miss path.
TEST(EpochStressTest, ReadersSurviveViewSwapsAndShardRebuilds) {
  const uint64_t seed = proptest::SeedForTest(4871);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  MovingObjectStore store(ChurnOptions());

  std::atomic<bool> stop{false};
  std::atomic<int> writer_failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&store, &writer_failures, w, seed] {
      // Objects join the rotation one at a time; each join publishes a
      // rebuilt shard table under live readers.
      for (int alive = 1; alive <= kObjectsPerWriter; ++alive) {
        for (Timestamp t = 0; t < kSamplesPerObject; ++t) {
          for (int o = 0; o < alive; ++o) {
            const ObjectId id = w + o * kWriters;
            // Interleaved rotation: object o is kSamplesPerObject ticks
            // ahead of object o+1, so every object keeps growing (and
            // keeps retraining) for the rest of the run.
            const Timestamp at =
                static_cast<Timestamp>(alive - 1 - o) * kSamplesPerObject +
                t;
            if (!store.ReportLocationAt(id, at, NoisySample(id, at, seed))
                     .ok()) {
              writer_failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }

  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  std::vector<ObjectId> all_ids;
  for (int w = 0; w < kWriters; ++w) {
    for (int o = 0; o < kObjectsPerWriter; ++o) {
      all_ids.push_back(w + o * kWriters);
    }
  }
  all_ids.push_back(9999);  // Never created: permanent table miss.
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &reader_failures, &all_ids, r] {
      const BoundingBox everywhere{{-1e7, -1e7}, {1e7, 1e7}};
      int rounds = 0;
      while (!stop.load()) {
        ++rounds;
        const Timestamp tq = 1000000 + rounds;
        switch ((r + rounds) % 4) {
          case 0:
            for (const ObjectId id : all_ids) {
              const auto got = store.PredictLocation(id, tq, 2);
              if (!got.ok() &&
                  got.status().code() != StatusCode::kNotFound &&
                  got.status().code() != StatusCode::kFailedPrecondition) {
                reader_failures.fetch_add(1);
                return;
              }
            }
            break;
          case 1: {
            const auto hits = store.PredictiveRangeQuery(everywhere, tq);
            if (!hits.ok()) reader_failures.fetch_add(1);
            break;
          }
          case 2: {
            const auto hits =
                store.PredictiveNearestNeighbors({0.0, 0.0}, tq, 3);
            if (!hits.ok()) reader_failures.fetch_add(1);
            break;
          }
          default: {
            const auto batch = store.PredictLocationBatch(all_ids, tq, 2);
            if (batch.size() != all_ids.size()) {
              reader_failures.fetch_add(1);
              break;
            }
            // The sentinel id must always miss; real ids must never
            // surface an unexpected status.
            if (batch.back().ok() ||
                batch.back().status().code() != StatusCode::kNotFound) {
              reader_failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(writer_failures.load(), 0);
  EXPECT_EQ(reader_failures.load(), 0);

  // No lost reports.
  ASSERT_EQ(store.NumObjects(),
            static_cast<size_t>(kWriters * kObjectsPerWriter));
  for (int w = 0; w < kWriters; ++w) {
    for (int o = 0; o < kObjectsPerWriter; ++o) {
      const ObjectId id = w + o * kWriters;
      EXPECT_EQ(store.HistoryLength(id),
                static_cast<size_t>(kObjectsPerWriter - o) *
                    kSamplesPerObject)
          << "object " << id;
    }
  }

  // Epoch accounting invariants. Every query pinned at least once;
  // every report retired at least the replaced view; frees never
  // outrun retirements.
  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_GT(snap.counter("epoch.pinned"), 0u);
  EXPECT_GE(snap.counter("epoch.retired"),
            static_cast<uint64_t>(kWriters) * kObjectsPerWriter *
                kSamplesPerObject - static_cast<uint64_t>(store.NumObjects()));
  EXPECT_LE(snap.counter("epoch.freed"), snap.counter("epoch.retired"));
}

// Aggressive-free churn: one shard, one hot object, every report
// retires the previous view (and every period the previous model's
// view), while readers re-resolve the view pointer in the tightest
// possible loop. Under ASan a premature free is an immediate
// use-after-free; under TSan an unsynchronised publish is a race.
TEST(EpochStressTest, AggressiveFreeChurnOnAHotObject) {
  const uint64_t seed = proptest::SeedForTest(6203);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  ObjectStoreOptions options = ChurnOptions();
  options.num_shards = 1;
  options.query_threads = 1;  // Fan-out inline: readers pin on their own.
  MovingObjectStore store(options);
  constexpr ObjectId kHot = 42;
  constexpr Timestamp kReports = 12 * kPeriod;

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, &reader_failures] {
      int rounds = 0;
      while (!stop.load()) {
        ++rounds;
        const auto got = store.PredictLocation(kHot, 1000000 + rounds, 1);
        if (!got.ok() &&
            got.status().code() != StatusCode::kNotFound &&
            got.status().code() != StatusCode::kFailedPrecondition) {
          reader_failures.fetch_add(1);
          return;
        }
        // GetPredictor's shared snapshot must outlive any later swap.
        const auto model = store.GetPredictor(kHot);
        if (model.ok() && (*model)->patterns().empty() &&
            !(*model)->patterns().empty()) {
          reader_failures.fetch_add(1);  // Unreachable; forces the deref.
          return;
        }
      }
    });
  }

  for (Timestamp t = 0; t < kReports; ++t) {
    ASSERT_TRUE(store.ReportLocation(kHot, NoisySample(kHot, t, seed)).ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // With no reader pinned any more, one further report's auto-reclaim
  // frees everything retired before it: limbo cannot grow without
  // bound under churn.
  ASSERT_TRUE(
      store.ReportLocation(kHot, NoisySample(kHot, kReports, seed)).ok());
  const MetricsSnapshot snap = store.metrics_snapshot();
  const uint64_t retired = snap.counter("epoch.retired");
  const uint64_t freed = snap.counter("epoch.freed");
  EXPECT_GE(retired, static_cast<uint64_t>(kReports));
  EXPECT_LE(freed, retired);
  // Everything except the final report's own retirements must be free.
  EXPECT_GE(freed + 2, static_cast<uint64_t>(kReports) - 1);
}

}  // namespace
}  // namespace hpm
