// Query-pipeline observability tests (ctest labels `overload` +
// `observability`): per-op admitted/shed counters, per-stage latency
// histograms, the single-accounting-point invariant, and per-query
// traces delivered through ObjectStoreOptions::trace_sink.

#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

Trajectory OnePeriod(ObjectId id, Random* rng) {
  Trajectory t;
  for (Timestamp off = 0; off < kPeriod; ++off) {
    Point p = Route(id, off);
    p.x += rng->Gaussian(0, 1.0);
    p.y += rng->Gaussian(0, 1.0);
    t.Append(p);
  }
  return t;
}

ObjectStoreOptions BaseOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 2;
  options.query_threads = 1;  // Inline fan-out: deterministic accounting.
  return options;
}

// ---- Per-op counters -------------------------------------------------------

TEST(QueryPipelineTest, PerOpAdmittedCountersTrackEveryEntryPoint) {
  MovingObjectStore store(BaseOptions());
  ASSERT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(store.ReportLocation(1, {1.0, 1.0}).ok());
  ASSERT_TRUE(store.ReportLocation(1, {2.0, 2.0}).ok());

  ASSERT_TRUE(store.PredictLocation(1, 5).ok());
  // NotFound consumes admission too (the store did the lookup work).
  EXPECT_FALSE(store.PredictLocation(99, 5).ok());
  store.PredictLocationBatch({1, 99}, 5);
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  ASSERT_TRUE(store.PredictiveRangeQuery(everywhere, 5).ok());
  ASSERT_TRUE(store.PredictiveNearestNeighbors({0, 0}, 5, 1).ok());

  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_EQ(snap.counter("store.admitted.report"), 3u);
  EXPECT_EQ(snap.counter("store.admitted.predict"), 2u);
  EXPECT_EQ(snap.counter("store.admitted.predict_batch"), 1u);
  EXPECT_EQ(snap.counter("store.admitted.range"), 1u);
  EXPECT_EQ(snap.counter("store.admitted.nearest"), 1u);
  EXPECT_EQ(snap.counter("store.shed.report"), 0u);
  EXPECT_EQ(snap.counter("store.shed.predict"), 0u);

  // One total-latency sample per admitted call.
  ASSERT_NE(snap.histogram("op.report_us"), nullptr);
  EXPECT_EQ(snap.histogram("op.report_us")->count, 3u);
  EXPECT_EQ(snap.histogram("op.predict_us")->count, 2u);
  EXPECT_EQ(snap.histogram("op.range_us")->count, 1u);
  EXPECT_EQ(snap.histogram("op.nearest_us")->count, 1u);

  // The metrics agree with the overload counters: one accounting point.
  const OverloadStats stats = store.overload_stats();
  EXPECT_EQ(stats.admitted, 8u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST(QueryPipelineTest, ShedCallsCountUnderTheRejectedOp) {
  using AdmissionClock = AdmissionOptions::Clock;
  AdmissionClock::time_point now{};
  ObjectStoreOptions options = BaseOptions();
  options.admission.tokens_per_second = 1.0;
  options.admission.burst = 1.0;
  options.admission.clock = [&now] { return now; };
  MovingObjectStore store(options);

  EXPECT_FALSE(store.PredictLocation(1, 5).ok());  // NotFound, admitted.
  EXPECT_EQ(store.PredictLocation(1, 5).status().code(),
            StatusCode::kUnavailable);  // Token spent: shed.

  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_EQ(snap.counter("store.admitted.predict"), 1u);
  EXPECT_EQ(snap.counter("store.shed.predict"), 1u);
  const OverloadStats stats = store.overload_stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 1u);
  // The pipeline released its ticket on every path.
  EXPECT_EQ(store.InFlight(), 0);
}

// ---- Stage histograms ------------------------------------------------------

TEST(QueryPipelineTest, FleetQueryRecordsEveryStageOnce) {
  MovingObjectStore store(BaseOptions());
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  ASSERT_TRUE(store.PredictiveRangeQuery(everywhere, 5).ok());

  const MetricsSnapshot snap = store.metrics_snapshot();
  for (const char* stage :
       {"stage.admit_us", "stage.plan_us", "stage.fanout_us",
        "stage.merge_us"}) {
    ASSERT_NE(snap.histogram(stage), nullptr) << stage;
    EXPECT_EQ(snap.histogram(stage)->count, 1u) << stage;
  }
}

TEST(QueryPipelineTest, ShedCallRecordsOnlyTheAdmitStage) {
  using AdmissionClock = AdmissionOptions::Clock;
  AdmissionClock::time_point now{};
  ObjectStoreOptions options = BaseOptions();
  options.admission.tokens_per_second = 1.0;
  options.admission.burst = 1.0;
  options.admission.clock = [&now] { return now; };
  MovingObjectStore store(options);

  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  ASSERT_TRUE(store.PredictiveRangeQuery(everywhere, 5).ok());
  EXPECT_FALSE(store.PredictiveRangeQuery(everywhere, 5).ok());

  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_EQ(snap.histogram("stage.admit_us")->count, 2u);
  // The rejected call never planned, fanned out or merged.
  EXPECT_EQ(snap.histogram("stage.plan_us")->count, 1u);
  EXPECT_EQ(snap.histogram("stage.fanout_us")->count, 1u);
  EXPECT_EQ(snap.histogram("stage.merge_us")->count, 1u);
}

// ---- Work counters ---------------------------------------------------------

TEST(QueryPipelineTest, MotionFallbackAndEvaluationCountersFlow) {
  MovingObjectStore store(BaseOptions());
  ASSERT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(store.ReportLocation(1, {1.0, 1.0}).ok());
  ASSERT_TRUE(store.PredictLocation(1, 5).ok());

  const MetricsSnapshot snap = store.metrics_snapshot();
  // Untrained object: one evaluation, answered by one RMF fit.
  EXPECT_EQ(snap.counter("store.objects_evaluated"), 1u);
  EXPECT_EQ(snap.counter("store.motion_fits"), 1u);
  EXPECT_EQ(snap.counter("store.degraded_predictions"), 0u);
}

TEST(QueryPipelineTest, RejectedReportCountsWithoutConsumingAdmission) {
  MovingObjectStore store(BaseOptions());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(store.ReportLocation(7, {nan, 0.0}).code(),
            StatusCode::kInvalidArgument);

  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_EQ(snap.counter("store.reports_rejected"), 1u);
  // Validation precedes admission: nothing was admitted or shed.
  EXPECT_EQ(snap.counter("store.admitted.report"), 0u);
  EXPECT_EQ(snap.counter("store.shed.report"), 0u);
  EXPECT_EQ(store.overload_stats().reports_rejected, 1u);
  EXPECT_EQ(store.RejectedReports(7), 1u);
}

TEST(QueryPipelineTest, DegradedPredictionsCountPerPredictionInMetrics) {
  ObjectStoreOptions options = BaseOptions();
  options.degrade_min_headroom =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::hours(1));
  MovingObjectStore store(options);
  Random rng(41);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  for (Timestamp t = 0; t <= 5; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  const Timestamp now = 5 * kPeriod + 5;

  auto shed = store.PredictLocation(0, now + 5, 1, Deadline::AfterMillis(100));
  ASSERT_TRUE(shed.ok());
  ASSERT_EQ(shed->front().degraded, DegradedReason::kOverloaded);

  const MetricsSnapshot snap = store.metrics_snapshot();
  EXPECT_EQ(snap.counter("store.degraded_predictions"), 1u);
  EXPECT_EQ(store.overload_stats().degraded_overload, 1u);
}

// ---- Traces ----------------------------------------------------------------

struct CapturedTrace {
  std::string op;
  std::vector<TraceSpan> spans;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Collects every finished trace the store hands to its sink.
struct TraceCollector {
  std::mutex mu;
  std::vector<CapturedTrace> traces;

  TraceSink Sink() {
    return [this](const char* op, const Trace& trace) {
      std::lock_guard<std::mutex> lock(mu);
      traces.push_back({op, trace.spans(), trace.counters()});
    };
  }

  const CapturedTrace* FindOp(const std::string& op) {
    std::lock_guard<std::mutex> lock(mu);
    for (const CapturedTrace& t : traces) {
      if (t.op == op) return &t;
    }
    return nullptr;
  }
};

bool HasSpan(const CapturedTrace& trace, const std::string& name,
             int parent) {
  for (const TraceSpan& span : trace.spans) {
    if (span.name == name && span.parent == parent && span.finished) {
      return true;
    }
  }
  return false;
}

TEST(QueryPipelineTest, TraceSinkReceivesStageSpansPerQuery) {
  ObjectStoreOptions options = BaseOptions();
  TraceCollector collector;
  options.trace_sink = collector.Sink();
  MovingObjectStore store(options);

  ASSERT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(store.ReportLocation(1, {1.0, 1.0}).ok());
  ASSERT_TRUE(store.PredictLocation(1, 5).ok());
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  ASSERT_TRUE(store.PredictiveRangeQuery(everywhere, 5).ok());

  // One trace per entry-point call.
  EXPECT_EQ(collector.traces.size(), 4u);

  const CapturedTrace* range = collector.FindOp("range");
  ASSERT_NE(range, nullptr);
  // Root span is the op, stages are its direct children (parent index 0).
  ASSERT_FALSE(range->spans.empty());
  EXPECT_EQ(range->spans[0].name, "range");
  EXPECT_EQ(range->spans[0].parent, -1);
  EXPECT_TRUE(range->spans[0].finished);
  EXPECT_TRUE(HasSpan(*range, "admit", 0));
  EXPECT_TRUE(HasSpan(*range, "plan", 0));
  EXPECT_TRUE(HasSpan(*range, "fanout", 0));
  EXPECT_TRUE(HasSpan(*range, "merge", 0));

  const CapturedTrace* predict = collector.FindOp("predict");
  ASSERT_NE(predict, nullptr);
  EXPECT_EQ(predict->spans[0].name, "predict");
  EXPECT_TRUE(HasSpan(*predict, "admit", 0));
  EXPECT_TRUE(HasSpan(*predict, "fanout", 0));
  // Per-query counters ride along with the trace.
  bool found_evaluated = false;
  for (const auto& [name, value] : predict->counters) {
    if (name == "objects_evaluated") {
      found_evaluated = true;
      EXPECT_EQ(value, 1u);
    }
  }
  EXPECT_TRUE(found_evaluated);
}

TEST(QueryPipelineTest, NoSinkMeansNoTraceOverheadOrCallbacks) {
  MovingObjectStore store(BaseOptions());  // trace_sink unset.
  ASSERT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());
  ASSERT_TRUE(store.ReportLocation(1, {1.0, 1.0}).ok());
  ASSERT_TRUE(store.PredictLocation(1, 5).ok());
  // Nothing to observe — the assertion is that nothing crashed and the
  // metrics side still accounted the calls.
  EXPECT_EQ(store.metrics_snapshot().counter("store.admitted.predict"), 1u);
}

}  // namespace
}  // namespace hpm
