// Graceful-degradation tests: expired deadlines and pattern-side faults
// must produce the RMF motion-function answer with Prediction::degraded
// set — never an error, never a silently wrong pattern answer.
//
// Deadline cases run in every build (Deadline::Expired() needs no fault
// hooks). Fault cases arm the injector and are skipped when the hooks
// are compiled out (plain builds).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

Trajectory OnePeriod(ObjectId id, Random* rng) {
  Trajectory t;
  for (Timestamp off = 0; off < kPeriod; ++off) {
    Point p = Route(id, off);
    p.x += rng->Gaussian(0, 1.0);
    p.y += rng->Gaussian(0, 1.0);
    t.Append(p);
  }
  return t;
}

ObjectStoreOptions Options() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  return options;
}

/// A store with trained objects `0..count-1`, each mid-way through a
/// fresh day so pattern queries succeed.
MovingObjectStore TrainedStore(int count, uint64_t seed) {
  MovingObjectStore store(Options());
  Random rng(seed);
  for (ObjectId id = 0; id < count; ++id) {
    for (int day = 0; day < 5; ++day) {
      EXPECT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 10; ++t) {
      EXPECT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
    }
  }
  return store;
}

/// "Now" on each trained object's clock (5 full days + 11 samples).
constexpr Timestamp kNow = 5 * kPeriod + 10;

class DegradedServingTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(DegradedServingTest, ExpiredDeadlineDegradesToMotionFunction) {
  MovingObjectStore store = TrainedStore(1, 21);

  // With time, the answer comes from a pattern.
  auto timely = store.PredictLocation(0, kNow + 5);
  ASSERT_TRUE(timely.ok());
  EXPECT_EQ(timely->front().source, PredictionSource::kPattern);
  EXPECT_EQ(timely->front().degraded, DegradedReason::kNone);

  // With the deadline already blown, the same query still answers — from
  // the motion function, flagged as degraded.
  auto degraded = store.PredictLocation(0, kNow + 5, 1, Deadline::Expired());
  ASSERT_TRUE(degraded.ok());
  ASSERT_EQ(degraded->size(), 1u);
  EXPECT_EQ(degraded->front().source, PredictionSource::kMotionFunction);
  EXPECT_EQ(degraded->front().degraded, DegradedReason::kDeadlineExceeded);
}

TEST_F(DegradedServingTest, DegradedAnswerMatchesMotionFunctionExactly) {
  // The degraded answer must be the RMF answer — the same one
  // MotionFunctionPredict computes on the identical query.
  MovingObjectStore store = TrainedStore(1, 22);
  auto predictor = store.GetPredictor(0);
  ASSERT_TRUE(predictor.ok());

  // Rebuild the query the store assembles in MakeSnapshot: the last
  // recent_window reported samples, timestamps = report indices.
  const ObjectStoreOptions options = Options();
  PredictiveQuery query;
  for (Timestamp t = 10 - options.recent_window + 1; t <= 10; ++t) {
    query.recent_movements.push_back({kNow - 10 + t, Route(0, t)});
  }
  query.current_time = kNow;
  query.query_time = kNow + 5;

  auto expected = (*predictor)->MotionFunctionPredict(query);
  ASSERT_TRUE(expected.ok());
  auto degraded = store.PredictLocation(0, kNow + 5, 1, Deadline::Expired());
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->front().location, expected->location);
}

TEST_F(DegradedServingTest, FarFutureDeadlineMatchesNoDeadline) {
  MovingObjectStore store = TrainedStore(1, 23);
  auto unbounded = store.PredictLocation(0, kNow + 5);
  auto generous = store.PredictLocation(0, kNow + 5, 1,
                                        Deadline::After(std::chrono::hours(1)));
  ASSERT_TRUE(unbounded.ok());
  ASSERT_TRUE(generous.ok());
  ASSERT_EQ(unbounded->size(), generous->size());
  EXPECT_EQ(unbounded->front().location, generous->front().location);
  EXPECT_EQ(unbounded->front().source, generous->front().source);
  EXPECT_EQ(generous->front().degraded, DegradedReason::kNone);
}

TEST_F(DegradedServingTest, DegradedRangeQueryStillCoversEveryObject) {
  MovingObjectStore store = TrainedStore(2, 24);
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  auto hits =
      store.PredictiveRangeQuery(everywhere, kNow + 5, 3, Deadline::Expired());
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  // No partial coverage: every object answers (degraded), none dropped.
  EXPECT_FALSE(hits->partial);
  ASSERT_EQ(hits->hits.size(), 2u);
  for (const RangeHit& hit : hits->hits) {
    EXPECT_EQ(hit.prediction.degraded, DegradedReason::kDeadlineExceeded);
    EXPECT_EQ(hit.prediction.source, PredictionSource::kMotionFunction);
  }
}

TEST_F(DegradedServingTest, DegradedNearestNeighborsStillAnswer) {
  MovingObjectStore store = TrainedStore(3, 25);
  auto nn = store.PredictiveNearestNeighbors(Route(1, 15), kNow + 5, 2,
                                             Deadline::Expired());
  ASSERT_TRUE(nn.ok()) << nn.status().ToString();
  ASSERT_EQ(nn->hits.size(), 2u);
  EXPECT_EQ(nn->hits[0].prediction.degraded,
            DegradedReason::kDeadlineExceeded);
}

TEST_F(DegradedServingTest, DegradedBatchAnswersEverySlot) {
  MovingObjectStore store = TrainedStore(2, 26);
  const std::vector<ObjectId> ids = {0, 1};
  auto results =
      store.PredictLocationBatch(ids, kNow + 5, 1, Deadline::Expired());
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->front().degraded, DegradedReason::kDeadlineExceeded);
  }
}

TEST_F(DegradedServingTest, CountersTrackDegradedAnswers) {
  MovingObjectStore store = TrainedStore(1, 27);
  auto predictor = store.GetPredictor(0);
  ASSERT_TRUE(predictor.ok());
  (*predictor)->ResetCounters();

  ASSERT_TRUE(store.PredictLocation(0, kNow + 5).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        store.PredictLocation(0, kNow + 5, 1, Deadline::Expired()).ok());
  }
  const QueryCounters counters = (*predictor)->counters();
  EXPECT_EQ(counters.degraded_answers, 3u);
  // Degraded answers are a subset of motion fallbacks, and every query
  // is answered one way or the other.
  EXPECT_GE(counters.motion_fallbacks, counters.degraded_answers);
  EXPECT_EQ(counters.pattern_answers + counters.motion_fallbacks,
            counters.forward_queries + counters.backward_queries);
}

TEST_F(DegradedServingTest, DegradedReasonNames) {
  EXPECT_STREQ(DegradedReasonName(DegradedReason::kNone), "None");
  EXPECT_STREQ(DegradedReasonName(DegradedReason::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(DegradedReasonName(DegradedReason::kPatternUnavailable),
               "PatternUnavailable");
}

TEST_F(DegradedServingTest, ToStringMentionsDegradation) {
  MovingObjectStore store = TrainedStore(1, 28);
  auto degraded = store.PredictLocation(0, kNow + 5, 1, Deadline::Expired());
  ASSERT_TRUE(degraded.ok());
  EXPECT_NE(degraded->front().ToString().find("degraded"),
            std::string::npos);
  EXPECT_NE(degraded->front().ToString().find("DeadlineExceeded"),
            std::string::npos);
}

// --- Fault-hook cases (need -DHPM_ENABLE_FAULTS=ON) --------------------

TEST_F(DegradedServingTest, PatternFaultDegradesToMotionFunction) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  MovingObjectStore store = TrainedStore(1, 29);
  FaultRule rule;
  rule.always = true;
  FaultInjector::Global().Arm("core/pattern_lookup", rule);

  auto degraded = store.PredictLocation(0, kNow + 5);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->front().source, PredictionSource::kMotionFunction);
  EXPECT_EQ(degraded->front().degraded, DegradedReason::kPatternUnavailable);

  // Once the fault clears, pattern answers come back.
  FaultInjector::Global().Disarm("core/pattern_lookup");
  auto recovered = store.PredictLocation(0, kNow + 5);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->front().source, PredictionSource::kPattern);
  EXPECT_EQ(recovered->front().degraded, DegradedReason::kNone);
#endif
}

TEST_F(DegradedServingTest, TransientTrainFaultIsRetriedTransparently) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  // The first Train attempt fails (transient kUnavailable); the store's
  // retry loop absorbs it without surfacing an error to the reporter.
  FaultRule rule;
  rule.nth_call = 1;
  FaultInjector::Global().Arm("core/train", rule);

  MovingObjectStore store(Options());
  Random rng(30);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  EXPECT_TRUE(store.GetPredictor(0).ok());
  EXPECT_EQ(FaultInjector::Global().fires("core/train"), 1);
#endif
}

TEST_F(DegradedServingTest, PersistentTrainFaultSurfacesThenRecovers) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  // A fault that outlasts the retry budget surfaces to the reporter;
  // training succeeds on the next batch once the fault clears.
  FaultRule rule;
  rule.from_nth_call = 1;
  FaultInjector::Global().Arm("core/train", rule);

  MovingObjectStore store(Options());
  Random rng(31);
  for (int day = 0; day < 4; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  const Status failed = store.ReportTrajectory(0, OnePeriod(0, &rng));
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_NE(failed.message().find("train"), std::string::npos);
  EXPECT_EQ(store.GetPredictor(0).status().code(),
            StatusCode::kFailedPrecondition);

  // The history was ingested; the next report retries training.
  FaultInjector::Global().Disarm("core/train");
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  EXPECT_TRUE(store.GetPredictor(0).ok());
#endif
}

}  // namespace
}  // namespace hpm
