// Incremental pattern maintenance + drift-triggered rebuilds
// (RebuildOptions::incremental): scheduler mechanics, the sync-mode
// differential against a from-scratch Train over the miner's window,
// background publication, the rebuild kill points (last-good model
// keeps serving) and WAL-replayed miner convergence.
//
// The kill-point and WAL cases need the compiled-in fault hooks and
// skip themselves in plain builds.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/random.h"
#include "core/hybrid_predictor.h"
#include "server/object_store.h"
#include "server/rebuild_scheduler.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

/// `variant` shifts the whole route, far beyond region_match_slack, so a
/// variant switch makes every report unmatched until a rebuild re-mines.
Point Route(ObjectId id, Timestamp offset, int variant) {
  return {100.0 * static_cast<double>(offset) + 50.0 +
              400.0 * static_cast<double>(variant),
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions StoreOptions(bool background) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.rebuild.incremental = true;
  options.rebuild.background = background;
  options.rebuild.drift_threshold = 1.0;
  options.rebuild.miner.window_periods = 8;
  return options;
}

/// Ingests `periods` noisy laps of the variant's route. Ingest statuses
/// are asserted OK unless `expect_ok` is false (the armed-fault legs,
/// where an inline rebuild failure propagates but the report has
/// already been applied and journaled).
void Feed(MovingObjectStore& store, ObjectId id, int periods, int variant,
          Random* rng, bool expect_ok = true) {
  for (int p = 0; p < periods; ++p) {
    for (Timestamp off = 0; off < kPeriod; ++off) {
      Point point = Route(id, off, variant);
      point.x += rng->Gaussian(0, 1.0);
      point.y += rng->Gaussian(0, 1.0);
      const Status status = store.ReportLocation(id, point);
      if (expect_ok) {
        ASSERT_TRUE(status.ok()) << status.ToString();
      }
    }
  }
}

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  if (f != nullptr) std::fclose(f);
  return content;
}

// ---- RebuildScheduler mechanics ---------------------------------------

TEST(RebuildSchedulerTest, RunsDeduplicatesAndBoundsTheQueue) {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> runs{0};
  RebuildScheduler::Options options;
  options.max_pending = 2;
  RebuildScheduler scheduler(
      options,
      [&](ObjectId) {
        started.store(true);
        while (!release.load()) std::this_thread::yield();
        ++runs;
      },
      [] { return false; });

  // The worker picks up the first id and blocks in the rebuild, leaving
  // the queue itself empty.
  EXPECT_EQ(scheduler.Enqueue(1), RebuildScheduler::EnqueueResult::kQueued);
  while (!started.load()) std::this_thread::yield();

  EXPECT_EQ(scheduler.Enqueue(2), RebuildScheduler::EnqueueResult::kQueued);
  EXPECT_EQ(scheduler.Enqueue(2),
            RebuildScheduler::EnqueueResult::kAlreadyPending);
  EXPECT_EQ(scheduler.Enqueue(3), RebuildScheduler::EnqueueResult::kQueued);
  EXPECT_EQ(scheduler.Enqueue(4), RebuildScheduler::EnqueueResult::kDropped);

  release.store(true);
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(RebuildSchedulerTest, DefersWhileUnderPressure) {
  std::atomic<bool> pressure{true};
  std::atomic<int> runs{0};
  Counter deferred;
  RebuildScheduler::Options options;
  options.defer_backoff = std::chrono::milliseconds(1);
  options.deferred_counter = &deferred;
  RebuildScheduler scheduler(
      options, [&](ObjectId) { ++runs; },
      [&] { return pressure.load(); });

  ASSERT_EQ(scheduler.Enqueue(7), RebuildScheduler::EnqueueResult::kQueued);
  while (deferred.value() < 3) std::this_thread::yield();
  EXPECT_EQ(runs.load(), 0);  // query traffic outranks the rebuild

  pressure.store(false);
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 1);
}

TEST(RebuildSchedulerTest, DestructionDropsQueuedWork) {
  std::atomic<int> runs{0};
  RebuildScheduler::Options options;
  options.defer_backoff = std::chrono::milliseconds(1);
  {
    RebuildScheduler scheduler(
        options, [&](ObjectId) { ++runs; }, [] { return true; });
    scheduler.Enqueue(1);
    scheduler.Enqueue(2);
    // Permanent pressure: the worker only defers until the destructor
    // stops it. Queued-but-unstarted work is dropped, never run.
  }
  EXPECT_EQ(runs.load(), 0);
}

TEST(RebuildSchedulerTest, ThrottleSpacesStartsAndDrainOverridesIt) {
  std::atomic<int> runs{0};
  RebuildScheduler::Options options;
  // Far beyond the test's lifetime: only the first rebuild may start on
  // its own; the second waits until Drain overrides the throttle.
  options.min_start_interval = std::chrono::hours(1);
  RebuildScheduler scheduler(
      options, [&](ObjectId) { ++runs; }, nullptr);
  scheduler.Enqueue(1);
  scheduler.Enqueue(2);
  while (runs.load() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(runs.load(), 1);  // throttled, not lost
  EXPECT_EQ(scheduler.pending(), 1u);
  scheduler.Drain();
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(scheduler.pending(), 0u);
}

// ---- The sync-mode differential ---------------------------------------

TEST(IncrementalRebuildTest, SyncRebuildEqualsTrainOverMinerWindow) {
  MovingObjectStore store(StoreOptions(/*background=*/false));
  Random rng(99);
  Feed(store, 1, 6, /*variant=*/0, &rng);
  ASSERT_TRUE(store.GetPredictor(1).ok());  // bootstrapped at 5 periods
  Feed(store, 1, 6, /*variant=*/1, &rng);   // drift-triggering route change
  ASSERT_TRUE(store.FlushRebuilds().ok());

  const StatusOr<MovingObjectStore::MinerSnapshot> state = store.MinerState(1);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->consumed_samples, state->window_end);  // fully flushed
  EXPECT_EQ(state->window.size(),
            8u * static_cast<size_t>(kPeriod));  // window_periods

  // The served model must be byte-for-byte the model a from-scratch
  // Train over the miner's window produces — the rebuild is a pure
  // function of the window.
  const StatusOr<std::unique_ptr<HybridPredictor>> reference =
      HybridPredictor::Train(state->window, StoreOptions(false).predictor);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const StatusOr<std::shared_ptr<const HybridPredictor>> served =
      store.GetPredictor(1);
  ASSERT_TRUE(served.ok());

  const std::string dir = FreshDir("incremental_rebuild_diff");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  ASSERT_TRUE((*served)->SaveToFile(dir + "/served.hpm").ok());
  ASSERT_TRUE((*reference)->SaveToFile(dir + "/reference.hpm").ok());
  EXPECT_EQ(ReadSmallFile(dir + "/served.hpm"),
            ReadSmallFile(dir + "/reference.hpm"));
  std::filesystem::remove_all(dir);
}

TEST(IncrementalRebuildTest, MinerStateReportsDriftAndPatterns) {
  MovingObjectStore store(StoreOptions(/*background=*/false));
  Random rng(7);
  Feed(store, 1, 6, 0, &rng);
  const StatusOr<MovingObjectStore::MinerSnapshot> state = store.MinerState(1);
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->patterns.empty());
  EXPECT_GT(state->stats.transactions, 0u);
  EXPECT_EQ(store.MinerState(999).status().code(), StatusCode::kNotFound);

  MovingObjectStore legacy{ObjectStoreOptions{}};
  ASSERT_TRUE(legacy.ReportLocation(1, {1.0, 2.0}).ok());
  EXPECT_EQ(legacy.MinerState(1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(legacy.FlushRebuilds().ok());  // no-op in legacy mode
}

// ---- Background publication + metrics ---------------------------------

TEST(IncrementalRebuildTest, BackgroundRebuildPublishesOffTheHotPath) {
  MovingObjectStore store(StoreOptions(/*background=*/true));
  Random rng(13);
  Feed(store, 1, 6, 0, &rng);
  const StatusOr<std::shared_ptr<const HybridPredictor>> before =
      store.GetPredictor(1);
  ASSERT_TRUE(before.ok());

  Feed(store, 1, 8, 1, &rng);  // route change: drift triggers rebuilds
  ASSERT_TRUE(store.FlushRebuilds().ok());

  const MetricsSnapshot snapshot = store.metrics_snapshot();
  EXPECT_GE(snapshot.counter("rebuild.scheduled"), 1u);
  EXPECT_GE(snapshot.counter("rebuild.completed"), 1u);
  EXPECT_EQ(snapshot.counter("rebuild.failed"), 0u);
  // Hooks count periods finalized after the first region adoption (the
  // adoption recount itself is a re-basing, not traffic): 14 fed - 5
  // pre-bootstrap = 9.
  EXPECT_EQ(snapshot.counter("miner.transactions"), 9u);
  EXPECT_GT(snapshot.counter("miner.unmatched_points"), 0u);
  const LatencyHistogram::Snapshot* build_us =
      snapshot.histogram("rebuild.build_us");
  ASSERT_NE(build_us, nullptr);
  EXPECT_GE(build_us->count, snapshot.counter("rebuild.completed"));

  // The swap actually published a new model, and it serves.
  const StatusOr<std::shared_ptr<const HybridPredictor>> after =
      store.GetPredictor(1);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  const Timestamp tq = static_cast<Timestamp>(store.HistoryLength(1)) + 4;
  EXPECT_TRUE(store.PredictLocation(1, tq).ok());
}

// ---- Kill points ------------------------------------------------------

TEST(IncrementalRebuildFaultTest, EveryKillPointLeavesLastGoodServing) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks not compiled in (-DHPM_ENABLE_FAULTS=ON)";
#else
  for (const char* site : {"rebuild/mine", "rebuild/freeze",
                           "rebuild/publish"}) {
    SCOPED_TRACE(site);
    FaultInjector::Global().Reset();
    MovingObjectStore store(StoreOptions(/*background=*/false));
    Random rng(31);
    Feed(store, 1, 6, 0, &rng);  // one pending period past the bootstrap
    const StatusOr<std::shared_ptr<const HybridPredictor>> good =
        store.GetPredictor(1);
    ASSERT_TRUE(good.ok());

    FaultRule rule;
    rule.always = true;
    FaultInjector::Global().Arm(site, rule);
    EXPECT_FALSE(store.FlushRebuilds().ok());

    // The failed rebuild is observable but invisible to serving: the
    // last-good model still answers, nothing was consumed, and ingest
    // keeps flowing (steady route: no drift, so no inline rebuild).
    EXPECT_GE(store.metrics_snapshot().counter("rebuild.failed"), 1u);
    const StatusOr<std::shared_ptr<const HybridPredictor>> still =
        store.GetPredictor(1);
    ASSERT_TRUE(still.ok());
    EXPECT_EQ(good->get(), still->get());
    Feed(store, 1, 1, 0, &rng);
    const Timestamp tq = static_cast<Timestamp>(store.HistoryLength(1)) + 4;
    EXPECT_TRUE(store.PredictLocation(1, tq).ok());

    // The fault heals: the next flush completes and swaps the model.
    FaultInjector::Global().Disarm(site);
    EXPECT_TRUE(store.FlushRebuilds().ok());
    const StatusOr<MovingObjectStore::MinerSnapshot> state =
        store.MinerState(1);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(state->consumed_samples, state->window_end);
    EXPECT_GE(store.metrics_snapshot().counter("rebuild.completed"), 1u);
  }
  FaultInjector::Global().Reset();
#endif
}

TEST(IncrementalRebuildFaultTest, WalReplayConvergesThroughTheMiner) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks not compiled in (-DHPM_ENABLE_FAULTS=ON)";
#else
  const std::string dir = FreshDir("incremental_rebuild_wal");
  ObjectStoreOptions durable_options = StoreOptions(/*background=*/false);
  durable_options.durability.wal_dir = dir + "/wal";

  // The reference store sees the same reports, uninterrupted.
  MovingObjectStore reference(StoreOptions(/*background=*/false));
  {
    MovingObjectStore durable(durable_options);
    ASSERT_TRUE(durable.wal_durable());
    Random rng_a(57);
    Random rng_b(57);
    Feed(durable, 1, 6, 0, &rng_a);
    Feed(reference, 1, 6, 0, &rng_b);

    // From here every rebuild the drifting route triggers dies at the
    // publish step (the inline failure propagates out of ReportLocation,
    // but the report itself is already journaled and applied). The
    // injector is global, so the reference store fails its rebuilds the
    // same way; both converge at the post-crash FlushRebuilds.
    FaultRule rule;
    rule.always = true;
    FaultInjector::Global().Arm("rebuild/publish", rule);
    Feed(durable, 1, 6, 1, &rng_a, /*expect_ok=*/false);
    Feed(reference, 1, 6, 1, &rng_b, /*expect_ok=*/false);
    // Crash: drop the store with rebuilds still failing.
  }
  FaultInjector::Global().Reset();

  StatusOr<MovingObjectStore> recovered =
      MovingObjectStore::LoadFromDirectory(dir, durable_options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_TRUE(reference.FlushRebuilds().ok());
  ASSERT_TRUE(recovered->FlushRebuilds().ok());

  // Replay fed the miner exactly as live ingest did: the recovered
  // store's pattern state and serving answers equal the reference's.
  const StatusOr<MovingObjectStore::MinerSnapshot> want =
      reference.MinerState(1);
  const StatusOr<MovingObjectStore::MinerSnapshot> got =
      recovered->MinerState(1);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->window_end, want->window_end);
  EXPECT_EQ(got->consumed_samples, want->consumed_samples);
  ASSERT_EQ(got->patterns.size(), want->patterns.size());
  for (size_t i = 0; i < want->patterns.size(); ++i) {
    EXPECT_EQ(got->patterns[i].premise, want->patterns[i].premise);
    EXPECT_EQ(got->patterns[i].consequence, want->patterns[i].consequence);
    EXPECT_EQ(got->patterns[i].support, want->patterns[i].support);
    EXPECT_EQ(got->patterns[i].confidence, want->patterns[i].confidence);
  }
  const Timestamp tq = static_cast<Timestamp>(reference.HistoryLength(1)) + 4;
  const auto want_pred = reference.PredictLocation(1, tq, 2);
  const auto got_pred = recovered->PredictLocation(1, tq, 2);
  ASSERT_TRUE(want_pred.ok());
  ASSERT_TRUE(got_pred.ok());
  ASSERT_EQ(want_pred->size(), got_pred->size());
  for (size_t i = 0; i < want_pred->size(); ++i) {
    EXPECT_EQ((*want_pred)[i].location.x, (*got_pred)[i].location.x);
    EXPECT_EQ((*want_pred)[i].location.y, (*got_pred)[i].location.y);
    EXPECT_EQ((*want_pred)[i].score, (*got_pred)[i].score);
  }
  std::filesystem::remove_all(dir);
#endif
}

}  // namespace
}  // namespace hpm
