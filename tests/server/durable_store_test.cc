// Durable-ingest tests: the write-ahead report journal wired through
// MovingObjectStore. Covers crash-replay with and without snapshots,
// rejected-report accounting survival, segment retirement, torn-tail and
// mid-log corruption handling, the quarantine cap, the kill-point sweep
// over every WAL fault site, and the ENOSPC/EIO degradation contract
// (reports keep landing, queries keep answering, the health flag trips).
//
// The fault cases need -DHPM_ENABLE_FAULTS=ON and skip themselves in
// plain builds; everything else runs everywhere.

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "io/wal.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

/// On-disk size of one framed kReport record (frame header + payload).
const size_t kReportFrameBytes = EncodeWalFrame(WalRecord{}).size();

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t % kPeriod) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

ObjectStoreOptions Options(const std::string& dir) {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  options.num_shards = 2;
  if (!dir.empty()) options.durability.wal_dir = dir + "/wal";
  return options;
}

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Both stores must be indistinguishable to a client: same fleet, same
/// histories, same rejection counts, same predictions from the same
/// (replayed-into-existence) models.
void ExpectSameServing(const MovingObjectStore& a,
                       const MovingObjectStore& b) {
  ASSERT_EQ(a.ObjectIds(), b.ObjectIds());
  for (ObjectId id : a.ObjectIds()) {
    ASSERT_EQ(a.HistoryLength(id), b.HistoryLength(id)) << "object " << id;
    EXPECT_EQ(a.RejectedReports(id), b.RejectedReports(id))
        << "object " << id;
    const Timestamp tq =
        static_cast<Timestamp>(a.HistoryLength(id)) - 1 + 5;
    auto pa = a.PredictLocation(id, tq);
    auto pb = b.PredictLocation(id, tq);
    ASSERT_EQ(pa.ok(), pb.ok()) << "object " << id;
    if (pa.ok()) {
      EXPECT_EQ(pa->front().location, pb->front().location)
          << "object " << id;
      EXPECT_EQ(pa->front().source, pb->front().source) << "object " << id;
    }
  }
}

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

/// The segment holding the test object's records: with one reporting
/// object, that is simply the biggest file (the rest hold only headers).
std::string BusiestSegment(const std::string& wal_dir) {
  std::string best;
  uintmax_t best_size = 0;
  for (const WalSegmentInfo& info : ListWalSegments(wal_dir)) {
    std::error_code ec;
    const uintmax_t size = std::filesystem::file_size(info.path, ec);
    if (!ec && size > best_size) {
      best_size = size;
      best = info.path;
    }
  }
  EXPECT_FALSE(best.empty());
  return best;
}

TEST_F(DurableStoreTest, ReplayRecoversReportsNeverSnapshotted) {
  const std::string dir = FreshDir("durable_no_snapshot");
  {
    MovingObjectStore store(Options(dir));
    ASSERT_TRUE(store.wal_enabled());
    ASSERT_TRUE(store.wal_durable());
    for (ObjectId id = 0; id < 3; ++id) {
      for (Timestamp t = 0; t < 7; ++t) {
        ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
      }
    }
    // The store dies without ever saving: every acknowledged report
    // lives only in the journal.
  }
  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->ObjectIds(), (std::vector<ObjectId>{0, 1, 2}));
  for (ObjectId id = 0; id < 3; ++id) {
    EXPECT_EQ(restored->HistoryLength(id), 7u);
  }
  EXPECT_EQ(restored->metrics_snapshot().counter("wal.replayed_records"),
            21u);
  EXPECT_TRUE(restored->wal_durable());
}

TEST_F(DurableStoreTest, ReplayOnTopOfSnapshotMatchesUninterruptedStore) {
  const std::string dir = FreshDir("durable_snapshot_replay");
  // Reference: the same report stream, never interrupted, never durable.
  MovingObjectStore reference((Options("")));
  {
    MovingObjectStore store(Options(dir));
    for (ObjectId id = 0; id < 2; ++id) {
      for (Timestamp t = 0; t < 10; ++t) {
        ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
        ASSERT_TRUE(reference.ReportLocation(id, Route(id, t)).ok());
      }
    }
    ASSERT_TRUE(store.SaveToDirectory(dir).ok());
    // Post-snapshot reports land in segments stamped with the new
    // generation — the crash window replay must close.
    for (ObjectId id = 0; id < 2; ++id) {
      for (Timestamp t = 10; t < 16; ++t) {
        ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
        ASSERT_TRUE(reference.ReportLocation(id, Route(id, t)).ok());
      }
    }
    // Rejections must survive too.
    EXPECT_FALSE(store.ReportLocationAt(0, 99, Route(0, 99)).ok());
    EXPECT_FALSE(reference.ReportLocationAt(0, 99, Route(0, 99)).ok());
  }
  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameServing(reference, *restored);
  EXPECT_EQ(restored->RejectedReports(0), 1u);
}

TEST_F(DurableStoreTest, ReplayRetrainsModelsBitIdentically) {
  const std::string dir = FreshDir("durable_retrain");
  MovingObjectStore reference((Options("")));
  Random rng(404);
  std::vector<Point> noisy;
  for (int day = 0; day < 6; ++day) {
    for (Timestamp off = 0; off < kPeriod; ++off) {
      Point p = Route(0, off);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      noisy.push_back(p);
    }
  }
  {
    MovingObjectStore store(Options(dir));
    for (const Point& p : noisy) {
      ASSERT_TRUE(store.ReportLocation(0, p).ok());
      ASSERT_TRUE(reference.ReportLocation(0, p).ok());
    }
    ASSERT_TRUE(store.GetPredictor(0).ok());  // training fired live
  }
  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Replay re-runs the training thresholds: the recovered store has a
  // model again and predicts exactly like the never-crashed store.
  ASSERT_TRUE(restored->GetPredictor(0).ok());
  ExpectSameServing(reference, *restored);
}

TEST_F(DurableStoreTest, SaveRetiresCoveredSegments) {
  const std::string dir = FreshDir("durable_retire");
  MovingObjectStore store(Options(dir));
  for (Timestamp t = 0; t < 5; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());  // gen 1
  for (Timestamp t = 5; t < 10; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());  // gen 2
  for (Timestamp t = 10; t < 15; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());  // gen 3

  // Segments stamped before gen-1 (= 2) are covered by both loadable
  // generations and must be gone; newer ones must survive.
  for (const WalSegmentInfo& info : ListWalSegments(dir + "/wal")) {
    ASSERT_TRUE(info.header_ok) << info.path;
    EXPECT_GE(info.base_gen, 2u) << info.path;
  }
  // The journal still recovers the full state.
  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok());
  ExpectSameServing(store, *restored);
}

TEST_F(DurableStoreTest, TornTailIsTruncatedAndCounted) {
  const std::string dir = FreshDir("durable_torn_tail");
  std::string segment;
  {
    MovingObjectStore store(Options(dir));
    for (Timestamp t = 0; t < 6; ++t) {
      ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    }
    segment = BusiestSegment(dir + "/wal");
  }
  // Tear mid-frame: a crash during the last append.
  const auto size = std::filesystem::file_size(segment);
  std::filesystem::resize_file(segment, size - 3);

  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // The torn record was never acknowledged-and-synced whole: replay
  // keeps the five complete ones and truncates the entire torn frame
  // (the 38 surviving bytes of the 41-byte report frame).
  EXPECT_EQ(restored->HistoryLength(0), 5u);
  const MetricsSnapshot metrics = restored->metrics_snapshot();
  EXPECT_EQ(metrics.counter("wal.truncated_bytes"), kReportFrameBytes - 3);
  EXPECT_EQ(metrics.counter("wal.replayed_records"), 5u);
  EXPECT_EQ(metrics.counter("store.quarantined_files"), 0u);
}

TEST_F(DurableStoreTest, MidLogCorruptionQuarantinesSegmentAndServes) {
  const std::string dir = FreshDir("durable_mid_corruption");
  std::string segment;
  {
    MovingObjectStore store(Options(dir));
    for (Timestamp t = 0; t < 8; ++t) {
      ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    }
    segment = BusiestSegment(dir + "/wal");
  }
  {
    // Flip a byte in the middle of the record area — not the tail.
    std::FILE* f = std::fopen(segment.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const long mid =
        static_cast<long>(std::filesystem::file_size(segment)) / 2;
    std::fseek(f, mid, SEEK_SET);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    std::fseek(f, mid, SEEK_SET);
    std::fputc(byte ^ 0x5a, f);
    std::fclose(f);
  }

  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  // Mid-log corruption must degrade, never crash or fail the load.
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_LT(restored->HistoryLength(0), 8u);
  EXPECT_EQ(restored->metrics_snapshot().counter("store.quarantined_files"),
            1u);
  const std::string name =
      std::filesystem::path(segment).filename().string();
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/wal/quarantine/" + name));
  // Serving continues: new reports land on the recovered prefix.
  const Timestamp next =
      static_cast<Timestamp>(restored->HistoryLength(0));
  EXPECT_TRUE(restored->ReportLocationAt(0, next, Route(0, next)).ok());
}

TEST_F(DurableStoreTest, QuarantineGrowthIsBounded) {
  const std::string dir = FreshDir("durable_quarantine_cap");
  ObjectStoreOptions options = Options(dir);
  options.durability.max_quarantine_files = 3;
  {
    MovingObjectStore store(options);
    for (Timestamp t = 0; t < 4; ++t) {
      ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    }
  }
  // A pile of headerless junk segments on a foreign shard: each one gets
  // quarantined on load, and the cap must evict the oldest so the
  // directory never grows past it.
  for (int k = 0; k < 6; ++k) {
    const std::string junk = dir + "/wal/wal-7-" + std::to_string(k) +
                             ".log";
    std::FILE* f = std::fopen(junk.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "not a journal segment %d", k);
    std::fclose(f);
  }

  auto restored = MovingObjectStore::LoadFromDirectory(dir, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->HistoryLength(0), 4u);  // real segments unharmed
  EXPECT_EQ(restored->metrics_snapshot().counter("store.quarantined_files"),
            6u);

  size_t quarantined = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           dir + "/wal/quarantine")) {
    if (entry.is_regular_file()) ++quarantined;
  }
  EXPECT_LE(quarantined, 3u);
  EXPECT_GE(quarantined, 1u);
}

// --- Fault-hook cases (need -DHPM_ENABLE_FAULTS=ON) --------------------

TEST_F(DurableStoreTest, DiskFaultDegradesToNonDurableServing) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  for (const StatusCode code :
       {StatusCode::kDataLoss, StatusCode::kUnavailable}) {
    FaultInjector::Global().Reset();
    const std::string dir = FreshDir("durable_degrade");
    MovingObjectStore store(Options(dir));
    for (Timestamp t = 0; t < 3; ++t) {
      ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    }
    ASSERT_TRUE(store.wal_durable());

    // The device dies (EIO / ENOSPC): every journal write fails from
    // here on. Ingest must keep acknowledging, not error out.
    FaultRule rule;
    rule.always = true;
    rule.code = code;
    FaultInjector::Global().Arm("wal/append", rule);
    for (Timestamp t = 3; t < 8; ++t) {
      EXPECT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    }
    EXPECT_GE(FaultInjector::Global().fires("wal/append"), 1);
    EXPECT_FALSE(store.wal_durable());
    EXPECT_TRUE(store.wal_enabled());  // configured, but degraded

    // Queries keep answering on the full in-memory state.
    EXPECT_EQ(store.HistoryLength(0), 8u);
    EXPECT_TRUE(store.PredictLocation(0, 10).ok());

    const MetricsSnapshot metrics = store.metrics_snapshot();
    EXPECT_EQ(metrics.counter("store.wal_disabled"), 1u);
    EXPECT_EQ(metrics.counter("wal.appended"), 3u);
  }
#endif
}

TEST_F(DurableStoreTest, SaveStillCommitsWhenJournalRotationFails) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("durable_rotate_degrade");
  MovingObjectStore store(Options(dir));
  for (Timestamp t = 0; t < 6; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  FaultRule rule;
  rule.always = true;
  FaultInjector::Global().Arm("wal/rotate", rule);
  // Rotation failing must cost durability, never the snapshot.
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  EXPECT_FALSE(store.wal_durable());

  FaultInjector::Global().Reset();
  auto restored =
      MovingObjectStore::LoadFromDirectory(dir, Options(dir));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->HistoryLength(0), 6u);
#endif
}

// The kill-point sweep. A fault armed `from_nth_call = n` models the
// process dying at the site's n-th call: the store object degrades and
// keeps serving (that is its contract), but the *disk* now looks exactly
// as a crash at that write would leave it. The stream is cut at the
// first fire — everything acknowledged strictly before the triggering
// operation must recover, and nothing the stream never attempted may
// appear.
TEST_F(DurableStoreTest, KillPointSweepRecoversEveryAcknowledgedReport) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  constexpr ObjectId kObjects = 3;
  constexpr Timestamp kTicks = 6;
  for (const char* site : {"wal/append", "wal/sync"}) {
    for (int64_t n = 1;; ++n) {
      FaultInjector::Global().Reset();
      const std::string dir = FreshDir("durable_kill_sweep");
      FaultRule rule;
      rule.from_nth_call = n;
      FaultInjector::Global().Arm(site, rule);

      // acked[id] = ticks acknowledged before the triggering call.
      std::map<ObjectId, Timestamp> acked;
      std::map<ObjectId, uint64_t> rejected;
      bool crashed = false;
      {
        MovingObjectStore store(Options(dir));
        for (Timestamp t = 0; t < kTicks && !crashed; ++t) {
          for (ObjectId id = 0; id < kObjects; ++id) {
            const int64_t fires_before =
                FaultInjector::Global().fires(site);
            // Every third tick also throws a malformed report at the
            // store so rejection records interleave with reports.
            if (t % 3 == 2) {
              EXPECT_FALSE(
                  store.ReportLocationAt(id, t + 100, Route(id, t)).ok());
            }
            ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
            if (FaultInjector::Global().fires(site) > fires_before) {
              // The "crash": the triggering operation never returned to
              // the client in the modelled world. Cut the stream here.
              crashed = true;
              break;
            }
            acked[id] = t + 1;
            if (t % 3 == 2) rejected[id] += 1;
          }
        }
        // The store object is abandoned without a save — a crash.
      }
      if (!crashed) break;  // n exceeded the site's calls for the stream

      FaultInjector::Global().Reset();
      auto restored =
          MovingObjectStore::LoadFromDirectory(dir, Options(dir));
      ASSERT_TRUE(restored.ok()) << site << " kill " << n << ": "
                                 << restored.status().ToString();
      for (ObjectId id = 0; id < kObjects; ++id) {
        const size_t len = restored->HistoryLength(id);
        // Superset of what was acknowledged before the kill, subset of
        // what the stream ever attempted (the triggering report may or
        // may not have reached the device whole).
        EXPECT_GE(len, static_cast<size_t>(acked[id]))
            << site << " kill " << n << " object " << id;
        EXPECT_LE(len, static_cast<size_t>(kTicks))
            << site << " kill " << n << " object " << id;
        EXPECT_GE(restored->RejectedReports(id), rejected[id])
            << site << " kill " << n << " object " << id;
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
#endif
}

TEST_F(DurableStoreTest, KillAtRotateOrRetireLosesNothing) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  // Rotation and retirement run inside a save: a kill there must leave a
  // directory that recovers the *complete* state — the snapshot and the
  // surviving segments together cover every acknowledged report.
  constexpr Timestamp kTicks = 8;
  for (const char* site : {"wal/rotate", "wal/retire"}) {
    for (int64_t n = 1;; ++n) {
      FaultInjector::Global().Reset();
      const std::string dir = FreshDir("durable_kill_save");
      std::map<ObjectId, Timestamp> acked;
      {
        MovingObjectStore store(Options(dir));
        for (Timestamp t = 0; t < kTicks; ++t) {
          for (ObjectId id = 0; id < 2; ++id) {
            ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
            acked[id] = t + 1;
          }
          if (t == kTicks / 2) {
            // An earlier clean save so retirement has segments to cover.
            ASSERT_TRUE(store.SaveToDirectory(dir).ok());
          }
        }
        FaultRule rule;
        rule.from_nth_call = n;
        FaultInjector::Global().Arm(site, rule);
        ASSERT_TRUE(store.SaveToDirectory(dir).ok());
        if (FaultInjector::Global().fires(site) == 0) break;
        // Crash right after the save whose journal maintenance died.
      }
      FaultInjector::Global().Reset();
      auto restored =
          MovingObjectStore::LoadFromDirectory(dir, Options(dir));
      ASSERT_TRUE(restored.ok()) << site << " kill " << n << ": "
                                 << restored.status().ToString();
      for (const auto& [id, ticks] : acked) {
        EXPECT_EQ(restored->HistoryLength(id),
                  static_cast<size_t>(ticks))
            << site << " kill " << n << " object " << id;
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
#endif
}

}  // namespace
}  // namespace hpm
