// Crash-safety tests for the generational store layout: corrupt or
// half-written generations must never be served — the loader falls back
// to the last good generation and quarantines what failed.
//
// The corruption cases run in every build (they vandalise files on
// disk). The kill-point sweep needs the compiled-in fault hooks and
// skips itself in plain builds.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "server/object_store.h"
#include "tpt/frozen_tpt.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

Trajectory OnePeriod(ObjectId id, Random* rng) {
  Trajectory t;
  for (Timestamp off = 0; off < kPeriod; ++off) {
    Point p = Route(id, off);
    p.x += rng->Gaussian(0, 1.0);
    p.y += rng->Gaussian(0, 1.0);
    t.Append(p);
  }
  return t;
}

ObjectStoreOptions Options() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  return options;
}

std::string FreshDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[256];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// The generation number CURRENT points at, as a string.
std::string CurrentGeneration(const std::string& dir) {
  std::string name = ReadSmallFile(dir + "/CURRENT");
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  return name.substr(std::string("MANIFEST-").size());
}

/// Flips one byte in the middle of `path`.
void CorruptFile(const std::string& path) {
  std::string content = ReadSmallFile(path);
  ASSERT_FALSE(content.empty());
  content[content.size() / 2] ^= 0x5a;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

/// Flips a byte inside the model's frozen-TPT arena and re-stamps the
/// outer file CRC, so the section's own checksum and validators are the
/// only remaining guard — the path a partial overwrite of just the arena
/// region would take.
void CorruptFrozenSection(const std::string& path) {
  std::string content = ReadSmallFile(path);
  ASSERT_GT(content.size(), 64u);
  const size_t body = content.size() - 8;  // "HPMC" + crc32 footer.
  size_t ftpt = std::string::npos;
  for (size_t off = content.find("FTPT"); off != std::string::npos;
       off = content.find("FTPT", off + 1)) {
    size_t consumed = 0;
    if (FrozenTpt::Parse(content.data() + off, body - off, &consumed).ok() &&
        off + consumed == body) {
      ftpt = off;
      break;
    }
  }
  ASSERT_NE(ftpt, std::string::npos) << "frozen TPT section not found";
  content[ftpt + 8] ^= 0x5a;  // Inside the section header.
  const uint32_t crc = Crc32(content.data(), body);
  std::memcpy(content.data() + body, "HPMC", 4);
  std::memcpy(content.data() + body + 4, &crc, sizeof(crc));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  std::fclose(f);
}

/// Both stores must serve identical state: same fleet, same histories,
/// same answers.
void ExpectSameServing(const MovingObjectStore& a,
                       const MovingObjectStore& b) {
  ASSERT_EQ(a.ObjectIds(), b.ObjectIds());
  for (ObjectId id : a.ObjectIds()) {
    ASSERT_EQ(a.HistoryLength(id), b.HistoryLength(id)) << "object " << id;
    const Timestamp tq =
        static_cast<Timestamp>(a.HistoryLength(id)) - 1 + 5;
    auto pa = a.PredictLocation(id, tq);
    auto pb = b.PredictLocation(id, tq);
    ASSERT_EQ(pa.ok(), pb.ok()) << "object " << id;
    if (pa.ok()) {
      EXPECT_EQ(pa->front().location, pb->front().location) << "object "
                                                            << id;
      EXPECT_EQ(pa->front().source, pb->front().source) << "object " << id;
    }
  }
}

/// A trained single-object store.
MovingObjectStore TrainedStore(uint64_t seed) {
  MovingObjectStore store(Options());
  Random rng(seed);
  for (int day = 0; day < 5; ++day) {
    EXPECT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  return store;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(CrashRecoveryTest, CorruptCsvFallsBackToPreviousGeneration) {
  const std::string dir = FreshDir("crash_csv_fallback");
  MovingObjectStore store = TrainedStore(41);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const size_t len_at_gen1 = store.HistoryLength(0);

  Random rng(42);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const std::string gen = CurrentGeneration(dir);
  CorruptFile(dir + "/0-" + gen + ".csv");

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // The newest generation is bit-rotted: serve the previous one.
  EXPECT_EQ(restored->HistoryLength(0), len_at_gen1);
  // The corrupt file was moved aside for inspection.
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/0-" + gen + ".csv"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/0-" + gen + ".csv"));
}

TEST_F(CrashRecoveryTest, CorruptModelFallsBackToPreviousGeneration) {
  const std::string dir = FreshDir("crash_model_fallback");
  MovingObjectStore store = TrainedStore(43);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const size_t len_at_gen1 = store.HistoryLength(0);

  Random rng(44);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const std::string gen = CurrentGeneration(dir);
  CorruptFile(dir + "/0-" + gen + ".model");

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->HistoryLength(0), len_at_gen1);
  ASSERT_TRUE(restored->GetPredictor(0).ok());
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/quarantine/0-" + gen + ".model"));
}

TEST_F(CrashRecoveryTest, CorruptFrozenArenaFallsBackToPreviousGeneration) {
  // Only the frozen search arena is rotted and the outer file CRC is
  // made to lie: the section-level checksum must still turn the load
  // into quarantine + fallback, never a crash or a silently wrong tree.
  const std::string dir = FreshDir("crash_frozen_arena_fallback");
  MovingObjectStore store = TrainedStore(47);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const size_t len_at_gen1 = store.HistoryLength(0);

  Random rng(48);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  const std::string gen = CurrentGeneration(dir);
  CorruptFrozenSection(dir + "/0-" + gen + ".model");

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->HistoryLength(0), len_at_gen1);
  ASSERT_TRUE(restored->GetPredictor(0).ok());
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/quarantine/0-" + gen + ".model"));
}

TEST_F(CrashRecoveryTest, SingleGenerationCorruptionIsDataLoss) {
  const std::string dir = FreshDir("crash_single_gen");
  MovingObjectStore store = TrainedStore(45);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  CorruptFile(dir + "/0-" + CurrentGeneration(dir) + ".csv");

  const Status status =
      MovingObjectStore::LoadFromDirectory(dir, Options()).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("no loadable store generation"),
            std::string::npos);
}

TEST_F(CrashRecoveryTest, DanglingCurrentFallsBackToRealManifest) {
  const std::string dir = FreshDir("crash_dangling_current");
  MovingObjectStore store = TrainedStore(46);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());

  // CURRENT names a generation that was never written (a crash between
  // manifest write and commit, replayed backwards).
  std::FILE* f = std::fopen((dir + "/CURRENT").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("MANIFEST-99\n", f);
  std::fclose(f);

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameServing(store, *restored);
}

TEST_F(CrashRecoveryTest, GarbageCurrentFallsBackToRealManifest) {
  const std::string dir = FreshDir("crash_garbage_current");
  MovingObjectStore store = TrainedStore(47);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  std::FILE* f = std::fopen((dir + "/CURRENT").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a manifest name at all", f);
  std::fclose(f);

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectSameServing(store, *restored);
}

// --- Fault-hook cases (need -DHPM_ENABLE_FAULTS=ON) --------------------

TEST_F(CrashRecoveryTest, TransientSaveFaultIsAbsorbedByRetry) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("crash_transient_save");
  MovingObjectStore store = TrainedStore(48);
  FaultRule rule;
  rule.nth_call = 1;
  FaultInjector::Global().Arm("store/save_object", rule);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  EXPECT_EQ(FaultInjector::Global().fires("store/save_object"), 1);

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok());
  ExpectSameServing(store, *restored);
#endif
}

TEST_F(CrashRecoveryTest, TransientLoadFaultIsAbsorbedByRetry) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  const std::string dir = FreshDir("crash_transient_load");
  MovingObjectStore store = TrainedStore(49);
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());

  FaultRule rule;
  rule.nth_call = 1;
  FaultInjector::Global().Arm("store/load_read", rule);
  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(FaultInjector::Global().fires("store/load_read"), 1);
  ExpectSameServing(store, *restored);
#endif
}

TEST_F(CrashRecoveryTest, KillPointSweepAlwaysRecoversLastGoodState) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  // Simulate a crash at every write the save path performs: a fault that
  // fires from call N onward models the process dying there (retries
  // keep failing). After every kill, the directory must still load to
  // the last committed state.
  const std::string dir = FreshDir("crash_kill_sweep");
  MovingObjectStore store(Options());
  Random rng(50);
  for (ObjectId id : {0, 1}) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
  }
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());

  const char* const kill_sites[] = {"store/save_object",
                                    "store/save_manifest",
                                    "store/save_commit", "io/atomic_write"};
  for (const char* site : kill_sites) {
    for (int64_t n = 1;; ++n) {
      FaultInjector::Global().Reset();
      FaultRule rule;
      rule.from_nth_call = n;
      FaultInjector::Global().Arm(site, rule);
      const Status status = store.SaveToDirectory(dir);
      if (status.ok()) break;  // n exceeds the site's calls per save.

      FaultInjector::Global().Reset();
      auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
      ASSERT_TRUE(restored.ok())
          << "kill " << site << " call " << n << ": "
          << restored.status().ToString();
      ExpectSameServing(store, *restored);
      if (::testing::Test::HasFailure()) return;
    }
  }

  // With faults gone, a fresh save commits a clean new generation.
  FaultInjector::Global().Reset();
  Random more(51);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &more)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  auto final_load = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(final_load.ok()) << final_load.status().ToString();
  ExpectSameServing(store, *final_load);
#endif
}

}  // namespace
}  // namespace hpm
