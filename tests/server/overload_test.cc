// Overload-resilience integration tests (ctest label `overload`): the
// admission ladder, RMF-only load shedding, and the per-shard circuit
// breaker. Everything timing-sensitive runs on injected manual clocks so
// the suite is deterministic in plain, ASan and TSan builds; the
// breaker kill test additionally needs -DHPM_ENABLE_FAULTS=ON and skips
// itself elsewhere.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/retry.h"
#include "server/object_store.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

Trajectory OnePeriod(ObjectId id, Random* rng) {
  Trajectory t;
  for (Timestamp off = 0; off < kPeriod; ++off) {
    Point p = Route(id, off);
    p.x += rng->Gaussian(0, 1.0);
    p.y += rng->Gaussian(0, 1.0);
    t.Append(p);
  }
  return t;
}

ObjectStoreOptions BaseOptions() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  return options;
}

/// Ingests `num_objects` trained objects plus a fresh partial day, so
/// point/range queries at kNow + small deltas answer from patterns.
void Populate(MovingObjectStore* store, int num_objects, uint64_t seed) {
  Random rng(seed);
  for (ObjectId id = 0; id < num_objects; ++id) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(store->ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 5; ++t) {
      ASSERT_TRUE(store->ReportLocation(id, Route(id, t)).ok());
    }
  }
}

constexpr Timestamp kNow = 5 * kPeriod + 5;

/// Mirrors MovingObjectStore's splitmix64 shard hash so tests can pick a
/// shard that actually holds objects. (If the store's hash ever changes,
/// the kill test's missing-hits assertion fails loudly.) Only the
/// fault-gated kill tests use it.
[[maybe_unused]] size_t ShardOf(ObjectId id, size_t num_shards) {
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % num_shards);
}

using AdmissionClock = AdmissionOptions::Clock;

/// Manual steady-clock for the admission token bucket / breaker.
struct ManualClock {
  AdmissionClock::time_point now{};
  std::function<AdmissionClock::time_point()> fn() {
    return [this] { return now; };
  }
  void Advance(std::chrono::microseconds d) { now += d; }
};

// ---- Rung 2: admission control --------------------------------------------

TEST(OverloadTest, AdmissionGatesEveryEntryPoint) {
  ManualClock clock;
  ObjectStoreOptions options = BaseOptions();
  options.admission.tokens_per_second = 1.0;  // One request per second.
  options.admission.burst = 1.0;
  options.admission.clock = clock.fn();
  MovingObjectStore store(options);

  const BoundingBox box({0, 0}, {1, 1});
  int rejections = 0;
  auto expect_rejected = [&](const Status& status) {
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
    // Machine-readable retry-after hint, parsable by common/retry.h.
    EXPECT_TRUE(RetryAfterHint(status).has_value())
        << status.ToString();
    ++rejections;
  };

  // Each entry point: the refilled token admits the first call, the
  // second is shed with kUnavailable + retry-after.
  EXPECT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());
  expect_rejected(store.ReportLocation(1, {1.0, 1.0}));

  clock.Advance(std::chrono::seconds(1));
  EXPECT_EQ(store.PredictLocation(99, 10).status().code(),
            StatusCode::kNotFound);  // Admitted; fails on its merits.
  expect_rejected(store.PredictLocation(99, 10).status());

  clock.Advance(std::chrono::seconds(1));
  EXPECT_TRUE(store.PredictiveRangeQuery(box, 10).ok());
  expect_rejected(store.PredictiveRangeQuery(box, 10).status());

  clock.Advance(std::chrono::seconds(1));
  EXPECT_TRUE(store.PredictiveNearestNeighbors({0, 0}, 10, 1).ok());
  expect_rejected(
      store.PredictiveNearestNeighbors({0, 0}, 10, 1).status());

  clock.Advance(std::chrono::seconds(1));
  auto batch = store.PredictLocationBatch({1}, 10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_NE(batch[0].status().code(), StatusCode::kUnavailable);
  batch = store.PredictLocationBatch({1}, 10);
  ASSERT_EQ(batch.size(), 1u);
  expect_rejected(batch[0].status());

  const OverloadStats stats = store.overload_stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(rejections));
  EXPECT_EQ(stats.admitted, 5u);
  EXPECT_EQ(store.InFlight(), 0);
}

TEST(OverloadTest, RejectedClientBacksOffToTheServersSchedule) {
  ManualClock clock;
  ObjectStoreOptions options = BaseOptions();
  options.admission.tokens_per_second = 10.0;
  options.admission.burst = 1.0;
  options.admission.clock = clock.fn();
  MovingObjectStore store(options);
  ASSERT_TRUE(store.ReportLocation(1, {0.0, 0.0}).ok());

  const Status rejected = store.ReportLocation(1, {1.0, 1.0});
  ASSERT_EQ(rejected.code(), StatusCode::kUnavailable);
  const auto hint = RetryAfterHint(rejected);
  ASSERT_TRUE(hint.has_value());
  // The hint is honest: waiting it out makes the retry succeed.
  clock.Advance(*hint);
  EXPECT_TRUE(store.ReportLocation(1, {1.0, 1.0}).ok());
}

// ---- Rung 1: RMF-only load shedding ---------------------------------------

TEST(OverloadTest, LowDeadlineHeadroomShedsToRmfStampedOverloaded) {
  ObjectStoreOptions options = BaseOptions();
  // Any deadline with less than an hour of headroom sheds: rung 1 is
  // deterministic without wall-clock games.
  options.degrade_min_headroom =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::hours(1));
  MovingObjectStore store(options);
  Populate(&store, 1, 41);

  auto full = store.PredictLocation(0, kNow + 5);  // Infinite: no shed.
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->front().degraded, DegradedReason::kNone);

  auto shed = store.PredictLocation(0, kNow + 5, 1,
                                    Deadline::AfterMillis(100));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->front().degraded, DegradedReason::kOverloaded);
  EXPECT_EQ(shed->front().source, PredictionSource::kMotionFunction);
  EXPECT_NE(shed->front().ToString().find("Overloaded"),
            std::string::npos);

  // Fleet queries shed the same way, still covering every object.
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  auto hits = store.PredictiveRangeQuery(everywhere, kNow + 5, 3,
                                         Deadline::AfterMillis(100));
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->partial);
  ASSERT_EQ(hits->hits.size(), 1u);
  EXPECT_EQ(hits->hits[0].prediction.degraded,
            DegradedReason::kOverloaded);

  EXPECT_GE(store.overload_stats().degraded_overload, 2u);
}

TEST(OverloadTest, OverloadedAnswersKeepCounterInvariants) {
  ObjectStoreOptions options = BaseOptions();
  options.degrade_min_headroom =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::hours(1));
  MovingObjectStore store(options);
  Populate(&store, 1, 42);
  auto predictor = store.GetPredictor(0);
  ASSERT_TRUE(predictor.ok());
  (*predictor)->ResetCounters();

  ASSERT_TRUE(store.PredictLocation(0, kNow + 5).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        store.PredictLocation(0, kNow + 5, 1, Deadline::AfterMillis(100))
            .ok());
  }
  const QueryCounters counters = (*predictor)->counters();
  // "pattern_answers + motion_fallbacks == total queries" survives the
  // rung-1 path, and the shed answers count as degraded.
  EXPECT_EQ(counters.forward_queries + counters.backward_queries, 4u);
  EXPECT_EQ(counters.pattern_answers + counters.motion_fallbacks, 4u);
  EXPECT_GE(counters.degraded_answers, 3u);
}

// ---- The 4x-overload contract ---------------------------------------------

// Offered load far beyond capacity: every single response must be one of
//   (a) a full answer,
//   (b) a degraded answer stamped Overloaded,
//   (c) kUnavailable carrying a retry-after hint,
// the fan-out queue must stay within its bound, and the store must drain
// to idle afterwards.
TEST(OverloadTest, SaturatingLoadIsShedOrDegradedNeverDropped) {
  ObjectStoreOptions options = BaseOptions();
  options.num_shards = 4;
  options.query_threads = 2;
  options.admission.max_in_flight = 3;
  options.max_pool_queue = 4;
  options.degrade_queue_depth = 2;
  MovingObjectStore store(options);
  Populate(&store, 2, 43);

  constexpr int kThreads = 8;  // Well beyond max_in_flight.
  constexpr int kPerThread = 60;
  std::atomic<int> full{0};
  std::atomic<int> degraded{0};
  std::atomic<int> shed{0};
  std::atomic<int> other{0};
  std::atomic<size_t> max_queue_depth{0};

  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t depth = store.PoolQueueDepth();
        size_t seen = max_queue_depth.load();
        while (depth > seen &&
               !max_queue_depth.compare_exchange_weak(seen, depth)) {
        }
        StatusOr<FleetQueryResult> hits =
            (c + i) % 2 == 0
                ? store.PredictiveRangeQuery(everywhere, kNow + 5, 3)
                : store.PredictiveNearestNeighbors({0, 0}, kNow + 5, 2);
        if (!hits.ok()) {
          if (hits.status().code() == StatusCode::kUnavailable &&
              RetryAfterHint(hits.status()).has_value()) {
            shed.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
          continue;
        }
        bool any_degraded = false;
        bool bad_stamp = false;
        for (const RangeHit& hit : hits->hits) {
          if (hit.prediction.degraded == DegradedReason::kOverloaded) {
            any_degraded = true;
          } else if (hit.prediction.degraded != DegradedReason::kNone) {
            bad_stamp = true;
          }
        }
        if (bad_stamp) {
          other.fetch_add(1);
        } else if (any_degraded) {
          degraded.fetch_add(1);
        } else {
          full.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // The contract: nothing outside {full, degraded(Overloaded),
  // kUnavailable+hint} was ever observed.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(full.load() + degraded.load() + shed.load(),
            kThreads * kPerThread);
  // 8 clients against max_in_flight=3 must actually shed.
  EXPECT_GT(shed.load(), 0);
  EXPECT_GT(full.load() + degraded.load(), 0);
  // Bounded queue: the fan-out backlog never exceeded its cap.
  EXPECT_LE(max_queue_depth.load(), options.max_pool_queue);
  // And the store drains to idle.
  EXPECT_EQ(store.InFlight(), 0);
  EXPECT_EQ(store.PoolQueueDepth(), 0u);
  const OverloadStats stats = store.overload_stats();
  EXPECT_EQ(stats.shed, static_cast<uint64_t>(shed.load()));
  // Healthy shards: the breaker never tripped under pure overload.
  for (int s = 0; s < store.num_shards(); ++s) {
    EXPECT_EQ(store.BreakerState(s), CircuitBreaker::State::kClosed);
  }
}

// ---- Per-shard circuit breaker --------------------------------------------

TEST(OverloadTest, BreakerStartsClosedOnEveryShard) {
  ObjectStoreOptions options = BaseOptions();
  options.num_shards = 3;
  MovingObjectStore store(options);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(store.BreakerState(s), CircuitBreaker::State::kClosed);
  }
}

TEST(OverloadTest, KilledShardIsTrippedOutAndRecovers) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  FaultInjector::Global().Reset();
  ManualClock breaker_clock;
  ObjectStoreOptions options = BaseOptions();
  options.num_shards = 4;
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_threshold = 0.5;
  options.breaker.open_duration = std::chrono::seconds(5);
  options.breaker.clock = breaker_clock.fn();
  std::vector<std::pair<CircuitBreaker::State, CircuitBreaker::State>>
      transitions;
  std::mutex transitions_mu;
  int listener_shard = -1;
  options.breaker_listener = [&](int shard, CircuitBreaker::State from,
                                 CircuitBreaker::State to) {
    std::lock_guard<std::mutex> lock(transitions_mu);
    listener_shard = shard;
    transitions.emplace_back(from, to);
  };
  MovingObjectStore store(options);
  Populate(&store, 4, 44);

  // Find a shard that actually holds objects, so "partial" visibly
  // drops hits (any armed shard flags partial either way).
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  auto baseline = store.PredictiveRangeQuery(everywhere, kNow + 5);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->hits.size(), 4u);
  ASSERT_FALSE(baseline->partial);

  // Kill the shard holding object 0: 100% of its fan-out share fails.
  const int killed = static_cast<int>(ShardOf(0, 4));
  FaultRule rule;
  rule.always = true;
  rule.message = "shard killed by test";
  FaultInjector::Global().Arm(ShardQueryFaultSite(killed), rule);

  // Queries keep answering — partial, within a real deadline — while
  // the breaker accumulates failures (min_samples=2 trips on the 2nd).
  for (int i = 0; i < 2; ++i) {
    auto hits = store.PredictiveRangeQuery(everywhere, kNow + 5, 3,
                                           Deadline::AfterMillis(2000));
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    EXPECT_TRUE(hits->partial);
    ASSERT_EQ(hits->skipped_shards.size(), 1u);
    EXPECT_EQ(hits->skipped_shards[0], killed);
    // The killed shard's objects are missing — service, not silence.
    EXPECT_LT(hits->hits.size(), 4u);
    EXPECT_FALSE(hits->hits.empty());
  }
  EXPECT_EQ(store.BreakerState(killed), CircuitBreaker::State::kOpen);
  {
    std::lock_guard<std::mutex> lock(transitions_mu);
    ASSERT_FALSE(transitions.empty());
    EXPECT_EQ(listener_shard, killed);
    EXPECT_EQ(transitions.back().second, CircuitBreaker::State::kOpen);
  }

  // Open breaker: the dead shard is skipped *without* being queried.
  const int64_t fires_when_open =
      FaultInjector::Global().fires(ShardQueryFaultSite(killed));
  auto skipped = store.PredictiveNearestNeighbors({0, 0}, kNow + 5, 4);
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped->partial);
  EXPECT_EQ(FaultInjector::Global().fires(ShardQueryFaultSite(killed)),
            fires_when_open);

  // The shard heals; after the cooldown one half-open probe restores
  // full service.
  FaultInjector::Global().Disarm(ShardQueryFaultSite(killed));
  breaker_clock.Advance(std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(5)));
  auto probe = store.PredictiveRangeQuery(everywhere, kNow + 5);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->partial);
  EXPECT_EQ(probe->hits.size(), 4u);
  EXPECT_EQ(store.BreakerState(killed), CircuitBreaker::State::kClosed);
  FaultInjector::Global().Reset();
#endif
}

TEST(OverloadTest, HalfOpenProbeFailureReopensTheShard) {
#ifndef HPM_ENABLE_FAULTS
  GTEST_SKIP() << "fault hooks compiled out";
#else
  FaultInjector::Global().Reset();
  ManualClock breaker_clock;
  ObjectStoreOptions options = BaseOptions();
  options.num_shards = 2;
  options.breaker.window = 2;
  options.breaker.min_samples = 2;
  options.breaker.open_duration = std::chrono::seconds(1);
  options.breaker.clock = breaker_clock.fn();
  MovingObjectStore store(options);
  Populate(&store, 2, 45);

  FaultRule rule;
  rule.always = true;
  FaultInjector::Global().Arm(ShardQueryFaultSite(1), rule);
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(store.PredictiveRangeQuery(everywhere, kNow + 5).ok());
  }
  ASSERT_EQ(store.BreakerState(1), CircuitBreaker::State::kOpen);

  // Cooldown elapses but the shard is *still* dead: the probe fails and
  // the breaker re-opens instead of flapping closed.
  breaker_clock.Advance(std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::seconds(1)));
  auto probe = store.PredictiveRangeQuery(everywhere, kNow + 5);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->partial);
  EXPECT_EQ(store.BreakerState(1), CircuitBreaker::State::kOpen);
  FaultInjector::Global().Reset();
#endif
}

}  // namespace
}  // namespace hpm
