#include "server/object_store.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/random.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point Route(ObjectId id, Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0,
          500.0 + 1000.0 * static_cast<double>(id)};
}

/// One noisy period for object `id`.
Trajectory OnePeriod(ObjectId id, Random* rng) {
  Trajectory t;
  for (Timestamp off = 0; off < kPeriod; ++off) {
    Point p = Route(id, off);
    p.x += rng->Gaussian(0, 1.0);
    p.y += rng->Gaussian(0, 1.0);
    t.Append(p);
  }
  return t;
}

ObjectStoreOptions Options() {
  ObjectStoreOptions options;
  options.predictor.regions.period = kPeriod;
  options.predictor.regions.dbscan.eps = 15.0;
  options.predictor.regions.dbscan.min_pts = 3;
  options.predictor.mining.min_confidence = 0.2;
  options.predictor.mining.min_support = 2;
  options.predictor.distant_threshold = 8;
  options.predictor.region_match_slack = 8.0;
  options.min_training_periods = 5;
  options.update_batch_periods = 2;
  options.recent_window = 5;
  return options;
}

TEST(ObjectStoreTest, StartsEmpty) {
  MovingObjectStore store(Options());
  EXPECT_EQ(store.NumObjects(), 0u);
  EXPECT_TRUE(store.ObjectIds().empty());
  EXPECT_EQ(store.HistoryLength(7), 0u);
  EXPECT_EQ(store.PredictLocation(7, 10).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.GetPredictor(7).status().code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, TracksMultipleObjects) {
  MovingObjectStore store(Options());
  Random rng(1);
  for (ObjectId id : {3, 1, 2}) {
    ASSERT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
  }
  EXPECT_EQ(store.NumObjects(), 3u);
  EXPECT_EQ(store.ObjectIds(), (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(store.HistoryLength(2), static_cast<size_t>(kPeriod));
}

TEST(ObjectStoreTest, ColdStartUsesMotionFunction) {
  MovingObjectStore store(Options());
  Random rng(2);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  EXPECT_EQ(store.GetPredictor(0).status().code(),
            StatusCode::kFailedPrecondition);
  auto predictions = store.PredictLocation(0, kPeriod + 3);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source,
            PredictionSource::kMotionFunction);
}

TEST(ObjectStoreTest, TrainsAfterThresholdAndAnswersFromPatterns) {
  MovingObjectStore store(Options());
  Random rng(3);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  ASSERT_TRUE(store.GetPredictor(0).ok());
  // Report a fresh partial day so "now" sits mid-period.
  for (Timestamp t = 0; t <= 10; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
  }
  const Timestamp now = 5 * kPeriod + 10;
  auto predictions = store.PredictLocation(0, now + 5);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
  EXPECT_LT(Distance(predictions->front().location, Route(0, 15)), 20.0);
}

TEST(ObjectStoreTest, QueryTimeMustBeFuture) {
  MovingObjectStore store(Options());
  Random rng(4);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  EXPECT_EQ(store.PredictLocation(0, kPeriod - 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ObjectStoreTest, IncrementalBatchesConsumeHistory) {
  MovingObjectStore store(Options());
  Random rng(5);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  auto predictor = store.GetPredictor(0);
  ASSERT_TRUE(predictor.ok());
  const size_t patterns_before = (*predictor)->summary().num_patterns;
  // Two more periods trigger the §V-B incorporation (which may or may
  // not add patterns, but must not disturb the model's integrity).
  for (int day = 0; day < 2; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  predictor = store.GetPredictor(0);
  ASSERT_TRUE(predictor.ok());
  EXPECT_GE((*predictor)->summary().num_patterns, patterns_before);
  EXPECT_TRUE((*predictor)->tpt().CheckInvariants().ok());
}

TEST(ObjectStoreTest, PredictiveRangeQueryFindsTheRightObjects) {
  MovingObjectStore store(Options());
  Random rng(6);
  // Objects 0/1/2 run parallel routes at y = 500 / 1500 / 2500.
  for (ObjectId id : {0, 1, 2}) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 5; ++t) {
      ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
    }
  }
  const Timestamp tq = 5 * kPeriod + 10;  // Offset 10 of the fresh day.
  // A box around object 1's offset-10 position only.
  const Point center = Route(1, 10);
  const BoundingBox around(center - Point{120, 120},
                           center + Point{120, 120});
  auto hits = store.PredictiveRangeQuery(around, tq);
  ASSERT_TRUE(hits.ok());
  EXPECT_FALSE(hits->partial);
  ASSERT_EQ(hits->hits.size(), 1u);
  EXPECT_EQ(hits->hits[0].id, 1);
  EXPECT_TRUE(around.Contains(hits->hits[0].prediction.location));
}

TEST(ObjectStoreTest, PredictiveRangeQueryWholeSpaceReturnsEveryone) {
  MovingObjectStore store(Options());
  Random rng(7);
  for (ObjectId id : {0, 1}) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 5; ++t) {
      ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
    }
  }
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  auto hits = store.PredictiveRangeQuery(everywhere, 5 * kPeriod + 9);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->hits.size(), 2u);
  // Sorted by score descending.
  EXPECT_GE(hits->hits[0].prediction.score, hits->hits[1].prediction.score);
}

TEST(ObjectStoreTest, RangeQueryValidation) {
  MovingObjectStore store(Options());
  EXPECT_EQ(store.PredictiveRangeQuery(BoundingBox(), 10).status().code(),
            StatusCode::kInvalidArgument);
  const BoundingBox box({0, 0}, {1, 1});
  EXPECT_EQ(store.PredictiveRangeQuery(box, 10, 0).status().code(),
            StatusCode::kInvalidArgument);
  // No objects: empty result, not an error.
  auto hits = store.PredictiveRangeQuery(box, 10);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->hits.empty());
  EXPECT_FALSE(hits->partial);
}

TEST(ObjectStoreTest, RangeQuerySkipsObjectsWithStaleClocks) {
  MovingObjectStore store(Options());
  Random rng(8);
  ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  // tq == the object's last timestamp: nothing to predict.
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  auto hits = store.PredictiveRangeQuery(everywhere, kPeriod - 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->hits.empty());
}

TEST(ObjectStoreTest, PredictiveNearestNeighborsOrdersByDistance) {
  MovingObjectStore store(Options());
  Random rng(9);
  for (ObjectId id : {0, 1, 2}) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(store.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 5; ++t) {
      ASSERT_TRUE(store.ReportLocation(id, Route(id, t)).ok());
    }
  }
  const Timestamp tq = 5 * kPeriod + 10;
  // Target at object 1's future position: expect order 1, then 0/2.
  auto nn = store.PredictiveNearestNeighbors(Route(1, 10), tq, 2);
  ASSERT_TRUE(nn.ok());
  ASSERT_EQ(nn->hits.size(), 2u);
  EXPECT_EQ(nn->hits[0].id, 1);
  const double d0 = Distance(nn->hits[0].prediction.location, Route(1, 10));
  const double d1 = Distance(nn->hits[1].prediction.location, Route(1, 10));
  EXPECT_LE(d0, d1);
  // n larger than the fleet returns everyone.
  auto all = store.PredictiveNearestNeighbors(Route(1, 10), tq, 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->hits.size(), 3u);
  // Validation.
  EXPECT_EQ(store.PredictiveNearestNeighbors({0, 0}, tq, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ObjectStoreTest, ReportRejectsNonFiniteCoordinates) {
  MovingObjectStore store(Options());
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const Point& bad :
       {Point{nan, 0.0}, Point{0.0, nan}, Point{inf, 0.0}, Point{0.0, -inf}}) {
    const Status status = store.ReportLocation(7, bad);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("non-finite"), std::string::npos);
  }
  // Counted per object, and no phantom object was created.
  EXPECT_EQ(store.RejectedReports(7), 4u);
  EXPECT_EQ(store.RejectedReports(8), 0u);
  EXPECT_EQ(store.NumObjects(), 0u);
  EXPECT_EQ(store.HistoryLength(7), 0u);
  // A good report afterwards is unaffected.
  ASSERT_TRUE(store.ReportLocation(7, {1.0, 2.0}).ok());
  EXPECT_EQ(store.HistoryLength(7), 1u);
  EXPECT_EQ(store.RejectedReports(7), 4u);
}

TEST(ObjectStoreTest, ReportAtRejectsNonMonotoneTimestamps) {
  MovingObjectStore store(Options());
  ASSERT_TRUE(store.ReportLocationAt(1, 0, {0.0, 0.0}).ok());
  ASSERT_TRUE(store.ReportLocationAt(1, 1, {1.0, 0.0}).ok());
  // Duplicate / out-of-order tick.
  Status status = store.ReportLocationAt(1, 1, {2.0, 0.0});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("non-monotone"), std::string::npos);
  // Gap in the unit-step time base.
  status = store.ReportLocationAt(1, 5, {2.0, 0.0});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("gap"), std::string::npos);
  // Negative timestamp.
  EXPECT_EQ(store.ReportLocationAt(1, -1, {2.0, 0.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.RejectedReports(1), 3u);
  // The trajectory is untouched and the next tick still lands.
  EXPECT_EQ(store.HistoryLength(1), 2u);
  ASSERT_TRUE(store.ReportLocationAt(1, 2, {2.0, 0.0}).ok());
  EXPECT_EQ(store.HistoryLength(1), 3u);
}

TEST(ObjectStoreTest, ReportAtRejectsUnknownObjectNonZeroStart) {
  MovingObjectStore store(Options());
  // First tick of an unknown object must be 0 — and the rejection must
  // not create the object.
  EXPECT_EQ(store.ReportLocationAt(9, 3, {0.0, 0.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.NumObjects(), 0u);
  EXPECT_EQ(store.RejectedReports(9), 1u);
}

TEST(ObjectStoreTest, ContinuousQueryEmitsEnterAndLeaveEvents) {
  MovingObjectStore store(Options());
  Random rng(10);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  // Watch a box around the route's offset-10 position, 5 ticks ahead.
  const Point center = Route(0, 10);
  const BoundingBox around(center - Point{120, 120},
                           center + Point{120, 120});
  const int query_id = store.RegisterContinuousQuery(around, 5);
  EXPECT_TRUE(store.DrainContinuousEvents().empty());

  // Feed the fresh day; as "now" approaches offset 5, now+5 hits the
  // box (enter event); as it moves past, the prediction leaves it.
  std::vector<MovingObjectStore::ContinuousEvent> events;
  for (Timestamp t = 0; t <= 19; ++t) {
    ASSERT_TRUE(store.ReportLocation(0, Route(0, t)).ok());
    for (auto& e : store.DrainContinuousEvents()) {
      events.push_back(std::move(e));
    }
  }
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].query_id, query_id);
  EXPECT_EQ(events[0].object, 0);
  EXPECT_TRUE(events[0].entered);
  EXPECT_TRUE(around.Contains(events[0].prediction.location));
  // The last event is the departure.
  EXPECT_FALSE(events.back().entered);
  // Events drain exactly once.
  EXPECT_TRUE(store.DrainContinuousEvents().empty());
}

TEST(ObjectStoreTest, UnregisteredQueryStopsFiring) {
  MovingObjectStore store(Options());
  Random rng(11);
  for (int day = 0; day < 5; ++day) {
    ASSERT_TRUE(store.ReportTrajectory(0, OnePeriod(0, &rng)).ok());
  }
  const BoundingBox everywhere({-1e7, -1e7}, {1e7, 1e7});
  const int query_id = store.RegisterContinuousQuery(everywhere, 3);
  ASSERT_TRUE(store.ReportLocation(0, Route(0, 0)).ok());
  EXPECT_FALSE(store.DrainContinuousEvents().empty());  // Entered.
  store.UnregisterContinuousQuery(query_id);
  ASSERT_TRUE(store.ReportLocation(0, Route(0, 1)).ok());
  EXPECT_TRUE(store.DrainContinuousEvents().empty());
}

TEST(ObjectStoreTest, DirectoryPersistenceRoundTrips) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/store_roundtrip";
  Random rng(12);
  MovingObjectStore original(Options());
  for (ObjectId id : {0, 1}) {
    for (int day = 0; day < 5; ++day) {
      ASSERT_TRUE(original.ReportTrajectory(id, OnePeriod(id, &rng)).ok());
    }
    for (Timestamp t = 0; t <= 5; ++t) {
      ASSERT_TRUE(original.ReportLocation(id, Route(id, t)).ok());
    }
  }
  ASSERT_TRUE(original.SaveToDirectory(dir).ok());

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumObjects(), 2u);
  EXPECT_EQ(restored->HistoryLength(0), original.HistoryLength(0));
  ASSERT_TRUE(restored->GetPredictor(0).ok());

  // Same answers from both stores.
  const Timestamp tq = 5 * kPeriod + 10;
  auto before = original.PredictLocation(1, tq);
  auto after = restored->PredictLocation(1, tq);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->front().location, after->front().location);

  // And the restored store keeps ingesting + training.
  ASSERT_TRUE(restored->ReportLocation(0, Route(0, 6)).ok());
  EXPECT_EQ(restored->HistoryLength(0), original.HistoryLength(0) + 1);
}

TEST(ObjectStoreTest, LoadFromMissingDirectoryFails) {
  EXPECT_EQ(MovingObjectStore::LoadFromDirectory("/nonexistent/store",
                                                 Options())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

namespace {

/// A saved single-object store whose manifest the test then vandalises.
std::string SavedStoreDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  Random rng(14);
  MovingObjectStore original(Options());
  EXPECT_TRUE(original.ReportTrajectory(3, OnePeriod(3, &rng)).ok());
  EXPECT_TRUE(original.SaveToDirectory(dir).ok());
  return dir;
}

std::string ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[256];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

/// The manifest name CURRENT points at, e.g. "MANIFEST-1".
std::string CurrentManifestName(const std::string& dir) {
  std::string name = ReadSmallFile(dir + "/CURRENT");
  while (!name.empty() && (name.back() == '\n' || name.back() == '\r')) {
    name.pop_back();
  }
  return name;
}

/// The generation number CURRENT points at.
std::string CurrentGeneration(const std::string& dir) {
  return CurrentManifestName(dir).substr(std::string("MANIFEST-").size());
}

/// CRC (manifest hex form) of the current generation's csv for `id`.
std::string CsvCrcHex(const std::string& dir, ObjectId id) {
  const std::string csv = ReadSmallFile(
      dir + "/" + std::to_string(id) + "-" + CurrentGeneration(dir) + ".csv");
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", Crc32(csv));
  return hex;
}

/// Replaces the current generation's manifest body with `body` (object
/// lines), re-stamping the v2 header and checksum line so the corruption
/// under test is what the parser sees — not a checksum mismatch.
void WriteManifest(const std::string& dir, const std::string& body) {
  std::string content = "hpm-store-manifest v2\n" + body;
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc32 %08x\n", Crc32(content));
  content += crc_line;
  std::FILE* f =
      std::fopen((dir + "/" + CurrentManifestName(dir)).c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
}

}  // namespace

TEST(ObjectStoreTest, LoadRejectsMalformedManifestLine) {
  const std::string dir = SavedStoreDir("store_bad_manifest");
  const std::string manifest_name = CurrentManifestName(dir);
  WriteManifest(dir, "object three 20 0 0 00000000\n");
  const Status status =
      MovingObjectStore::LoadFromDirectory(dir, Options()).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("malformed manifest line"),
            std::string::npos);
  // The sole generation failed: its manifest is quarantined for autopsy.
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/" + manifest_name));
}

TEST(ObjectStoreTest, LoadRejectsTamperedManifestChecksum) {
  const std::string dir = SavedStoreDir("store_manifest_bitrot");
  const std::string path = dir + "/" + CurrentManifestName(dir);
  std::string content = ReadSmallFile(path);
  content[content.find("object") + 7] ^= 0x01;  // Flip a digit of the id.
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
  const Status status =
      MovingObjectStore::LoadFromDirectory(dir, Options()).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("manifest checksum mismatch"),
            std::string::npos);
}

TEST(ObjectStoreTest, LoadRejectsHistoryLengthMismatch) {
  const std::string dir = SavedStoreDir("store_len_mismatch");
  WriteManifest(dir, "object 3 999 0 0 " + CsvCrcHex(dir, 3) + "\n");
  const Status status =
      MovingObjectStore::LoadFromDirectory(dir, Options()).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("history length mismatch"),
            std::string::npos);
}

TEST(ObjectStoreTest, LoadRejectsCorruptConsumedCount) {
  const std::string dir = SavedStoreDir("store_bad_consumed");
  // Consumed count larger than the (true) history length.
  WriteManifest(dir, "object 3 20 21 0 " + CsvCrcHex(dir, 3) + "\n");
  const Status status =
      MovingObjectStore::LoadFromDirectory(dir, Options()).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("corrupt consumed count"),
            std::string::npos);
}

TEST(ObjectStoreTest, LoadRejectsManifestEntryWithoutCsv) {
  const std::string dir = SavedStoreDir("store_missing_csv");
  // References an object whose history file does not exist.
  WriteManifest(dir, "object 4 20 0 0 00000000\n");
  EXPECT_FALSE(
      MovingObjectStore::LoadFromDirectory(dir, Options()).ok());
}

TEST(ObjectStoreTest, LoadRejectsManifestClaimingMissingModel) {
  const std::string dir = SavedStoreDir("store_missing_model");
  // Claims a trained model, but no 3-<gen>.model file was saved.
  WriteManifest(dir, "object 3 20 20 1 " + CsvCrcHex(dir, 3) + "\n");
  EXPECT_FALSE(
      MovingObjectStore::LoadFromDirectory(dir, Options()).ok());
}

TEST(ObjectStoreTest, ResavingAdvancesGenerationAndKeepsPrevious) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/store_generations";
  std::filesystem::remove_all(dir);
  Random rng(15);
  MovingObjectStore store(Options());
  ASSERT_TRUE(store.ReportTrajectory(1, OnePeriod(1, &rng)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  EXPECT_EQ(CurrentManifestName(dir), "MANIFEST-1");
  ASSERT_TRUE(store.ReportTrajectory(1, OnePeriod(1, &rng)).ok());
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  EXPECT_EQ(CurrentManifestName(dir), "MANIFEST-2");
  // The previous generation stays on disk as the recovery target...
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST-1"));
  // ...and a third save retires it.
  ASSERT_TRUE(store.SaveToDirectory(dir).ok());
  EXPECT_EQ(CurrentManifestName(dir), "MANIFEST-3");
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST-1"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/1-1.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/MANIFEST-2"));

  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->HistoryLength(1), store.HistoryLength(1));
}

TEST(ObjectStoreTest, ColdObjectsPersistWithoutModels) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/store_cold";
  Random rng(13);
  MovingObjectStore original(Options());
  ASSERT_TRUE(original.ReportTrajectory(5, OnePeriod(5, &rng)).ok());
  ASSERT_TRUE(original.SaveToDirectory(dir).ok());
  auto restored = MovingObjectStore::LoadFromDirectory(dir, Options());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->GetPredictor(5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(restored->HistoryLength(5), static_cast<size_t>(kPeriod));
}

TEST(ObjectStoreDeathTest, ContinuousQueryValidationAborts) {
  MovingObjectStore store(Options());
  EXPECT_DEATH(store.RegisterContinuousQuery(BoundingBox(), 5),
               "HPM_CHECK");
  const BoundingBox box({0, 0}, {1, 1});
  EXPECT_DEATH(store.RegisterContinuousQuery(box, 0), "HPM_CHECK");
  EXPECT_DEATH(store.RegisterContinuousQuery(box, 5, 0), "HPM_CHECK");
}

TEST(ObjectStoreDeathTest, BadOptionsAbort) {
  ObjectStoreOptions bad = Options();
  bad.min_training_periods = 0;
  EXPECT_DEATH(MovingObjectStore{bad}, "HPM_CHECK");
  bad = Options();
  bad.recent_window = 1;
  EXPECT_DEATH(MovingObjectStore{bad}, "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
