#include "cluster/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace hpm {
namespace {

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Reference implementation: linear scan.
std::vector<int> BruteRange(const std::vector<Point>& pts, const Point& c,
                            double r) {
  std::vector<int> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (SquaredDistance(pts[i], c) <= r * r) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

TEST(GridIndexTest, FindsNeighboursWithinRadius) {
  const std::vector<Point> pts = {{0, 0}, {1, 0}, {3, 0}, {0, 2.5}};
  GridIndex index(pts, 2.0);
  EXPECT_EQ(Sorted(index.RangeQuery({0, 0})), (std::vector<int>{0, 1}));
}

TEST(GridIndexTest, RadiusIsInclusive) {
  const std::vector<Point> pts = {{0, 0}, {2, 0}};
  GridIndex index(pts, 2.0);
  EXPECT_EQ(Sorted(index.RangeQuery({0, 0})), (std::vector<int>{0, 1}));
}

TEST(GridIndexTest, QueryCenterNeedNotBeIndexed) {
  const std::vector<Point> pts = {{10, 10}, {11, 10}};
  GridIndex index(pts, 1.5);
  EXPECT_EQ(Sorted(index.RangeQuery({10.5, 10})),
            (std::vector<int>{0, 1}));
}

TEST(GridIndexTest, EmptyPointSet) {
  const std::vector<Point> pts;
  GridIndex index(pts, 1.0);
  EXPECT_TRUE(index.RangeQuery({0, 0}).empty());
}

TEST(GridIndexTest, NegativeCoordinates) {
  const std::vector<Point> pts = {{-5, -5}, {-5.5, -5.2}, {5, 5}};
  GridIndex index(pts, 1.0);
  EXPECT_EQ(Sorted(index.RangeQuery({-5, -5})), (std::vector<int>{0, 1}));
}

TEST(GridIndexTest, DuplicatePointsAllReturned) {
  const std::vector<Point> pts = {{1, 1}, {1, 1}, {1, 1}};
  GridIndex index(pts, 0.5);
  EXPECT_EQ(index.RangeQuery({1, 1}).size(), 3u);
}

TEST(GridIndexTest, OutParameterVariantClearsFirst) {
  const std::vector<Point> pts = {{0, 0}};
  GridIndex index(pts, 1.0);
  std::vector<int> out = {99, 98};
  index.RangeQuery({0, 0}, &out);
  EXPECT_EQ(out, std::vector<int>{0});
}

TEST(GridIndexDeathTest, NonPositiveRadiusAborts) {
  const std::vector<Point> pts = {{0, 0}};
  EXPECT_DEATH(GridIndex(pts, 0.0), "HPM_CHECK");
}

class GridIndexPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GridIndexPropertyTest, AgreesWithBruteForce) {
  const double radius = GetParam();
  Random rng(static_cast<uint64_t>(radius * 100));
  std::vector<Point> pts(400);
  for (auto& p : pts) {
    p = {rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
  }
  GridIndex index(pts, radius);
  for (int q = 0; q < 50; ++q) {
    const Point center{rng.UniformDouble(-10, 110),
                       rng.UniformDouble(-10, 110)};
    EXPECT_EQ(Sorted(index.RangeQuery(center)),
              BruteRange(pts, center, radius));
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, GridIndexPropertyTest,
                         ::testing::Values(0.5, 2.0, 10.0, 30.0, 150.0));

}  // namespace
}  // namespace hpm
