#include "cluster/dbscan.h"

#include <gtest/gtest.h>

#include "proptest/proptest.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"

namespace hpm {
namespace {

DbscanParams Params(double eps, int min_pts) {
  DbscanParams p;
  p.eps = eps;
  p.min_pts = min_pts;
  return p;
}

TEST(DbscanTest, EmptyInput) {
  auto result = Dbscan({}, Params(1.0, 3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0);
  EXPECT_TRUE(result->labels.empty());
}

TEST(DbscanTest, InvalidParamsRejected) {
  const std::vector<Point> pts = {{0, 0}};
  EXPECT_EQ(Dbscan(pts, Params(0.0, 3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Dbscan(pts, Params(-1.0, 3)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Dbscan(pts, Params(1.0, 0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DbscanTest, SingleDenseCluster) {
  std::vector<Point> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({static_cast<double>(i) * 0.1, 0.0});
  }
  auto result = Dbscan(pts, Params(0.2, 3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1);
  for (int label : result->labels) EXPECT_EQ(label, 0);
}

TEST(DbscanTest, TwoSeparatedClusters) {
  std::vector<Point> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({i * 0.1, 0.0});
  for (int i = 0; i < 6; ++i) pts.push_back({100 + i * 0.1, 0.0});
  auto result = Dbscan(pts, Params(0.2, 3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2);
  // All of the first six share one label, all of the last six another.
  for (int i = 1; i < 6; ++i) EXPECT_EQ(result->labels[i], result->labels[0]);
  for (int i = 7; i < 12; ++i) EXPECT_EQ(result->labels[i], result->labels[6]);
  EXPECT_NE(result->labels[0], result->labels[6]);
}

TEST(DbscanTest, IsolatedPointsAreNoise) {
  std::vector<Point> pts;
  for (int i = 0; i < 6; ++i) pts.push_back({i * 0.1, 0.0});
  pts.push_back({50, 50});
  auto result = Dbscan(pts, Params(0.2, 3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->labels.back(), DbscanResult::kNoise);
}

TEST(DbscanTest, MinPtsCountsThePointItself) {
  // Two points within eps: neighbourhood size 2. min_pts=2 clusters them;
  // min_pts=3 leaves noise.
  const std::vector<Point> pts = {{0, 0}, {0.1, 0}};
  auto loose = Dbscan(pts, Params(0.2, 2));
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->num_clusters, 1);
  auto strict = Dbscan(pts, Params(0.2, 3));
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->num_clusters, 0);
  EXPECT_EQ(strict->labels[0], DbscanResult::kNoise);
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // A dense core at x ~ 0 and one border point reachable from the core
  // but itself non-core.
  std::vector<Point> pts = {{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}};
  pts.push_back({0.25, 0});  // Within eps of (0.1, 0) only.
  auto result = Dbscan(pts, Params(0.2, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1);
  EXPECT_EQ(result->labels.back(), 0);
}

TEST(DbscanTest, ChainedDensityReachability) {
  // A long chain where each point is core: one cluster spans the chain.
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * 0.1, 0.0});
  auto result = Dbscan(pts, Params(0.15, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1);
  const double spread = Distance(pts.front(), pts.back());
  EXPECT_GT(spread, 4.0);  // Cluster diameter far exceeds eps.
}

TEST(DbscanTest, LabelsAreDense) {
  const uint64_t seed = proptest::SeedForTest(77);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::vector<Point> pts;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 20; ++i) {
      pts.push_back({c * 100.0 + rng.Gaussian(0, 1),
                     c * 100.0 + rng.Gaussian(0, 1)});
    }
  }
  auto result = Dbscan(pts, Params(5.0, 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 4);
  std::set<int> labels(result->labels.begin(), result->labels.end());
  for (int c = 0; c < 4; ++c) EXPECT_TRUE(labels.count(c));
}

/// Property: core points are never noise, and every cluster contains at
/// least one core point; verified against a brute-force neighbourhood
/// count.
class DbscanPropertyTest
    : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(DbscanPropertyTest, CoreInvariantsHold) {
  const auto [eps, min_pts] = GetParam();
  const uint64_t seed =
      proptest::SeedForTest(static_cast<uint64_t>(eps * 10 + min_pts));
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  std::vector<Point> pts(200);
  for (auto& p : pts) {
    p = {rng.UniformDouble(0, 50), rng.UniformDouble(0, 50)};
  }
  auto result = Dbscan(pts, Params(eps, min_pts));
  ASSERT_TRUE(result.ok());

  auto neighbourhood_size = [&](size_t i) {
    int n = 0;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (SquaredDistance(pts[i], pts[j]) <= eps * eps) ++n;
    }
    return n;
  };

  std::set<int> clusters_with_core;
  for (size_t i = 0; i < pts.size(); ++i) {
    const bool core = neighbourhood_size(i) >= min_pts;
    if (core) {
      // Core points always belong to a cluster.
      EXPECT_NE(result->labels[i], DbscanResult::kNoise);
      clusters_with_core.insert(result->labels[i]);
    }
    if (result->labels[i] == DbscanResult::kNoise) {
      // Noise points are non-core.
      EXPECT_LT(neighbourhood_size(i), min_pts);
    } else {
      EXPECT_GE(result->labels[i], 0);
      EXPECT_LT(result->labels[i], result->num_clusters);
    }
  }
  // Every cluster id is anchored by a core point.
  EXPECT_EQ(static_cast<int>(clusters_with_core.size()),
            result->num_clusters);
  // Border points must be within eps of a core point of their cluster.
  for (size_t i = 0; i < pts.size(); ++i) {
    if (result->labels[i] == DbscanResult::kNoise) continue;
    if (neighbourhood_size(i) >= min_pts) continue;  // Core.
    bool near_core = false;
    for (size_t j = 0; j < pts.size() && !near_core; ++j) {
      if (result->labels[j] == result->labels[i] &&
          neighbourhood_size(j) >= min_pts &&
          SquaredDistance(pts[i], pts[j]) <= eps * eps) {
        near_core = true;
      }
    }
    EXPECT_TRUE(near_core) << "border point " << i << " not near any core";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DbscanPropertyTest,
                         ::testing::Values(std::make_pair(1.0, 3),
                                           std::make_pair(2.0, 4),
                                           std::make_pair(3.0, 5),
                                           std::make_pair(5.0, 4),
                                           std::make_pair(8.0, 10)));

}  // namespace
}  // namespace hpm
