#include "core/query.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

PredictiveQuery ValidQuery() {
  PredictiveQuery q;
  q.recent_movements = {{5, {0, 0}}, {6, {1, 1}}, {7, {2, 2}}};
  q.current_time = 7;
  q.query_time = 12;
  q.k = 1;
  return q;
}

TEST(QueryTest, ValidQueryPasses) {
  EXPECT_TRUE(ValidateQuery(ValidQuery()).ok());
}

TEST(QueryTest, PredictionLength) {
  EXPECT_EQ(ValidQuery().PredictionLength(), 5);
}

TEST(QueryTest, EmptyRecentMovementsRejected) {
  PredictiveQuery q = ValidQuery();
  q.recent_movements.clear();
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, NonConsecutiveTimestampsRejected) {
  PredictiveQuery q = ValidQuery();
  q.recent_movements[1].time = 8;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, RecentMovementsMustEndAtCurrentTime) {
  PredictiveQuery q = ValidQuery();
  q.current_time = 9;
  q.query_time = 14;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, QueryTimeMustBeFuture) {
  PredictiveQuery q = ValidQuery();
  q.query_time = 7;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
  q.query_time = 3;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, KMustBePositive) {
  PredictiveQuery q = ValidQuery();
  q.k = 0;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
  q.k = -3;
  EXPECT_EQ(ValidateQuery(q).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, SingleRecentMovementAllowed) {
  PredictiveQuery q;
  q.recent_movements = {{7, {1, 1}}};
  q.current_time = 7;
  q.query_time = 8;
  EXPECT_TRUE(ValidateQuery(q).ok());
}

TEST(PredictionTest, ToStringPatternForm) {
  Prediction p;
  p.source = PredictionSource::kPattern;
  p.pattern_id = 12;
  p.confidence = 0.5;
  p.score = 0.41;
  p.location = {3, 4};
  const std::string s = p.ToString();
  EXPECT_NE(s.find("pattern #12"), std::string::npos);
  EXPECT_NE(s.find("0.50"), std::string::npos);
  EXPECT_NE(s.find("0.410"), std::string::npos);
}

TEST(PredictionTest, ToStringMotionForm) {
  Prediction p;
  p.source = PredictionSource::kMotionFunction;
  p.location = {3, 4};
  EXPECT_NE(p.ToString().find("motion function"), std::string::npos);
}

}  // namespace
}  // namespace hpm
