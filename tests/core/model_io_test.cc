// Tests for model persistence (SaveToFile / LoadFromFile) and dynamic
// pattern incorporation (IncorporateNewHistory, paper §V-B).

#include <gtest/gtest.h>

#include "proptest/proptest.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "core/hybrid_predictor.h"
#include "tpt/frozen_tpt.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point RouteA(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 100.0};
}
Point RouteB(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 1200.0};
}

Trajectory MakeHistory(int days, bool route_b = false, uint64_t seed = 4) {
  Random rng(seed);
  Trajectory traj;
  for (int d = 0; d < days; ++d) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = route_b ? RouteB(t) : RouteA(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      traj.Append(p);
    }
  }
  return traj;
}

HybridPredictorOptions Options() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 20.0;
  options.regions.dbscan.min_pts = 4;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 3;
  options.distant_threshold = 8;
  options.region_match_slack = 8.0;
  return options;
}

PredictiveQuery RouteAQuery(Timestamp tc_offset, Timestamp length) {
  PredictiveQuery q;
  const Timestamp base = 100 * kPeriod;
  for (Timestamp t = tc_offset - 3; t <= tc_offset; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + tc_offset;
  q.query_time = q.current_time + length;
  return q;
}

std::string TempPath(const char* name) {
  // Process-unique: ctest runs each discovered test as its own process,
  // possibly in parallel, and fixture SetUp writes the same file names.
  return std::string(::testing::TempDir()) + "/" +
         std::to_string(::getpid()) + "_" + name;
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesModel) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_roundtrip.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  auto loaded = HybridPredictor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->summary().num_frequent_regions,
            (*trained)->summary().num_frequent_regions);
  EXPECT_EQ((*loaded)->summary().num_patterns,
            (*trained)->summary().num_patterns);
  EXPECT_EQ((*loaded)->summary().num_sub_trajectories,
            (*trained)->summary().num_sub_trajectories);
  EXPECT_TRUE((*loaded)->tpt().CheckInvariants().ok());

  // Identical answers on both query paths.
  for (const Timestamp length : {4, 12}) {
    const PredictiveQuery q = RouteAQuery(10, length);
    auto original = (*trained)->Predict(q);
    auto restored = (*loaded)->Predict(q);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(original->size(), restored->size());
    EXPECT_EQ(original->front().location, restored->front().location);
    EXPECT_DOUBLE_EQ(original->front().score, restored->front().score);
    EXPECT_EQ(original->front().source, restored->front().source);
  }
}

TEST(ModelIoTest, LoadRejectsMissingFile) {
  EXPECT_EQ(
      HybridPredictor::LoadFromFile("/nonexistent/model").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadRejectsForeignFile) {
  const std::string path = TempPath("not_a_model.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a model", f);
  std::fclose(f);
  EXPECT_EQ(HybridPredictor::LoadFromFile(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadRejectsTruncatedFile) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_full.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  // Copy a truncated prefix.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  char buffer[256];
  const size_t n = std::fread(buffer, 1, sizeof(buffer), in);
  std::fclose(in);
  const std::string cut_path = TempPath("model_cut.hpm");
  std::FILE* out = std::fopen(cut_path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fwrite(buffer, 1, n / 2, out);
  std::fclose(out);

  EXPECT_FALSE(HybridPredictor::LoadFromFile(cut_path).ok());
}

TEST(ModelIoTest, RandomByteCorruptionNeverCrashes) {
  // Failure injection: flip bytes at random offsets; every corrupted
  // file must either load to a structurally valid model or fail with a
  // clean Status — never crash or hang.
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_fuzz_base.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  // Read the pristine bytes.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.append(buf, n);
  std::fclose(in);
  ASSERT_GT(bytes.size(), 64u);

  const uint64_t seed = proptest::SeedForTest(99);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  const std::string fuzz_path = TempPath("model_fuzz.hpm");
  for (int round = 0; round < 60; ++round) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      const size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] = static_cast<char>(
          corrupted[pos] ^ static_cast<char>(1 + rng.Uniform(255)));
    }
    std::FILE* out = std::fopen(fuzz_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(corrupted.data(), 1, corrupted.size(), out);
    std::fclose(out);

    auto loaded = HybridPredictor::LoadFromFile(fuzz_path);
    if (loaded.ok()) {
      // If it loads (the flipped bytes were e.g. inside a coordinate),
      // the model must still be structurally sound.
      EXPECT_TRUE((*loaded)->tpt().CheckInvariants().ok());
    }
  }
}

TEST(ModelIoTest, SaveToUnwritablePathFails) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ((*trained)->SaveToFile("/nonexistent/dir/model").code(),
            StatusCode::kInvalidArgument);
}

// --- Surgical field corruption ---------------------------------------
//
// The loader validates every count and size it reads; these tests flip
// one specific field each and assert the file is rejected (instead of,
// say, a multi-gigabyte allocation on a corrupt count). Offsets of the
// tail fields are computed from the trained model's own structure:
//   ... | u64 num_regions | regions | u64 num_patterns | patterns
//       | u64 num_subs | u64 builder_bytes | "FTPT" frozen arena section
//       | footer ("HPMC" + crc32, 8 bytes, at the end)
// where each pattern is u64 premise_size + 8*premise + 24 bytes and
// each region is 48 bytes + its MBR (1 byte empty flag, +32 if set).
// The frozen section's offset is found by scanning for its magic and
// verifying with FrozenTpt::Parse, which anchors every field before it.
// Each surgical edit re-stamps the footer CRC so the corruption reaches
// the semantic validator it targets instead of tripping the checksum.

constexpr size_t kFooterSize = 8;

void RestampFooter(std::vector<unsigned char>& bytes) {
  ASSERT_GE(bytes.size(), kFooterSize);
  const size_t body = bytes.size() - kFooterSize;
  const uint32_t crc = Crc32(bytes.data(), body);
  std::memcpy(bytes.data() + body, "HPMC", 4);
  std::memcpy(bytes.data() + body + 4, &crc, sizeof(crc));
}

std::vector<unsigned char> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<unsigned char> bytes;
  unsigned char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void OverwriteU64(std::vector<unsigned char>& bytes, size_t offset,
                  uint64_t value) {
  ASSERT_LE(offset + sizeof(value), bytes.size());
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
}

class ModelCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto trained = HybridPredictor::Train(MakeHistory(30), Options());
    ASSERT_TRUE(trained.ok());
    model_ = std::move(*trained);
    ASSERT_FALSE(model_->patterns().empty());
    path_ = TempPath("model_corrupt_base.hpm");
    ASSERT_TRUE(model_->SaveToFile(path_).ok());
    bytes_ = ReadFileBytes(path_);

    size_t patterns_bytes = 0;
    for (const TrajectoryPattern& p : model_->patterns()) {
      patterns_bytes += 8 + 8 * p.premise.size() + 24;
    }
    size_t regions_bytes = 0;
    for (const FrequentRegion& r : model_->regions().regions()) {
      regions_bytes += 48 + (r.mbr.IsEmpty() ? 1 : 33);
    }
    // Locate the frozen-TPT section: the only "FTPT" run that parses
    // cleanly and ends exactly at the footer is the real one.
    const size_t body = bytes_.size() - kFooterSize;
    ftpt_offset_ = bytes_.size();
    for (size_t off = 0; off + 4 <= body; ++off) {
      if (std::memcmp(bytes_.data() + off, "FTPT", 4) != 0) continue;
      size_t consumed = 0;
      const auto parsed = FrozenTpt::Parse(
          reinterpret_cast<const char*>(bytes_.data()) + off, body - off,
          &consumed);
      if (parsed.ok() && off + consumed == body) {
        ftpt_offset_ = off;
        break;
      }
    }
    ASSERT_LT(ftpt_offset_, bytes_.size()) << "frozen TPT section not found";

    num_subs_offset_ = ftpt_offset_ - 16;  // num_subs, then builder_bytes.
    first_premise_size_offset_ = num_subs_offset_ - patterns_bytes;
    num_patterns_offset_ = first_premise_size_offset_ - 8;
    num_regions_offset_ = num_patterns_offset_ - regions_bytes - 8;
  }

  /// Re-stamps the footer CRC, writes the corrupted bytes and returns
  /// the load status.
  Status LoadCorrupted(const char* name) {
    RestampFooter(bytes_);
    const std::string path = TempPath(name);
    WriteFileBytes(path, bytes_);
    return HybridPredictor::LoadFromFile(path).status();
  }

  std::unique_ptr<HybridPredictor> model_;
  std::string path_;
  std::vector<unsigned char> bytes_;
  size_t ftpt_offset_ = 0;
  size_t num_subs_offset_ = 0;
  size_t first_premise_size_offset_ = 0;
  size_t num_patterns_offset_ = 0;
  size_t num_regions_offset_ = 0;
};

TEST_F(ModelCorruptionTest, SanityCheckOffsetsByRoundTrip) {
  // The computed offsets must point at the real fields: overwriting each
  // with its current value must leave the file loadable.
  uint64_t current = 0;
  std::memcpy(&current, bytes_.data() + num_patterns_offset_, 8);
  ASSERT_EQ(current, model_->patterns().size());
  std::memcpy(&current, bytes_.data() + num_regions_offset_, 8);
  ASSERT_EQ(current, model_->regions().NumRegions());
  std::memcpy(&current, bytes_.data() + first_premise_size_offset_, 8);
  ASSERT_EQ(current, model_->patterns().front().premise.size());
  std::memcpy(&current, bytes_.data() + num_subs_offset_, 8);
  ASSERT_EQ(current, model_->summary().num_sub_trajectories);
  EXPECT_TRUE(LoadCorrupted("model_untouched.hpm").ok());
}

TEST_F(ModelCorruptionTest, RejectsUnsupportedFormatVersion) {
  // Clobber just the u32 version after the 4-byte magic.
  const uint32_t bad_version = 0xdead;
  std::memcpy(bytes_.data() + 4, &bad_version, sizeof(bad_version));
  const Status status = LoadCorrupted("model_bad_version.hpm");
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("unsupported model format version"),
            std::string::npos);
}

TEST_F(ModelCorruptionTest, RejectsCorruptPeriod) {
  // The period is the first options field, an int64 right after
  // magic + version.
  OverwriteU64(bytes_, 8, static_cast<uint64_t>(-1));
  const Status status = LoadCorrupted("model_bad_period.hpm");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("corrupt period"), std::string::npos);
}

TEST_F(ModelCorruptionTest, RejectsOversizedRegionCount) {
  OverwriteU64(bytes_, num_regions_offset_, 1ull << 40);
  const Status status = LoadCorrupted("model_bad_region_count.hpm");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("corrupt region count"),
            std::string::npos);
}

TEST_F(ModelCorruptionTest, RejectsOversizedPatternCount) {
  OverwriteU64(bytes_, num_patterns_offset_, 1ull << 40);
  const Status status = LoadCorrupted("model_bad_pattern_count.hpm");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("corrupt pattern count"),
            std::string::npos);
}

TEST_F(ModelCorruptionTest, RejectsOversizedPremiseKey) {
  // A premise longer than 64 regions cannot be encoded into a pattern
  // key; the loader must reject it before touching the ids.
  OverwriteU64(bytes_, first_premise_size_offset_, 65);
  const Status status = LoadCorrupted("model_oversized_premise.hpm");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("corrupt premise size"),
            std::string::npos);
}

TEST_F(ModelCorruptionTest, RejectsTruncatedTail) {
  // Clip the last four body bytes (the frozen section's own checksum).
  // LoadCorrupted re-stamps the footer, so the section reader itself
  // must catch the short body.
  bytes_.erase(bytes_.end() - kFooterSize - 4, bytes_.end() - kFooterSize);
  const Status status = LoadCorrupted("model_clipped_tail.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("truncated"), std::string::npos);
}

TEST_F(ModelCorruptionTest, TornWriteWithoutFooterIsDataLoss) {
  // A crash mid-write leaves a prefix with no footer: DataLoss, not a
  // confusing semantic error.
  bytes_.resize(bytes_.size() - kFooterSize);
  const std::string path = TempPath("model_torn.hpm");
  WriteFileBytes(path, bytes_);
  const Status status = HybridPredictor::LoadFromFile(path).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("torn model file"), std::string::npos);
}

TEST_F(ModelCorruptionTest, BitRotWithoutRestampIsChecksumMismatch) {
  // Flip one body byte but keep the old footer: the CRC catches it
  // before any field validator runs.
  bytes_[num_patterns_offset_] ^= 0x01;
  const std::string path = TempPath("model_bitrot.hpm");
  WriteFileBytes(path, bytes_);
  const Status status = HybridPredictor::LoadFromFile(path).status();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("checksum mismatch"), std::string::npos);
}

// --- Frozen-TPT section corruption -----------------------------------
//
// The v2 format stores the frozen search arena verbatim; its parser must
// reject every corruption with a clean DataLoss (which the store layer
// turns into quarantine + fallback), never crash or over-allocate.
// Section layout: "FTPT" | version u32 | premise_bits u32 |
// consequence_bits u32 | num_nodes u32 | num_entries u32 |
// num_patterns u32 | nodes | targets | key words | payloads | crc32.

class FrozenSectionCorruptionTest : public ModelCorruptionTest {
 protected:
  /// Recomputes the section's own trailing CRC so a corruption deeper in
  /// the parse pipeline (topology, payload cross-check) is what rejects
  /// the file, not the checksum.
  void RestampSectionCrc() {
    const size_t section_end = bytes_.size() - kFooterSize;
    const uint32_t crc = Crc32(bytes_.data() + ftpt_offset_,
                               section_end - 4 - ftpt_offset_);
    std::memcpy(bytes_.data() + section_end - 4, &crc, sizeof(crc));
  }

  uint32_t ReadSectionU32(size_t rel) const {
    uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + ftpt_offset_ + rel, sizeof(v));
    return v;
  }

  void WriteSectionU32(size_t rel, uint32_t v) {
    std::memcpy(bytes_.data() + ftpt_offset_ + rel, &v, sizeof(v));
  }
};

TEST_F(FrozenSectionCorruptionTest, CorruptNodeCountIsRejectedBeforeAlloc) {
  // A node count in the billions must bounce off the up-front body-size
  // check (DataLoss), not drive a multi-gigabyte allocation.
  WriteSectionU32(16, 1u << 30);
  const Status status = LoadCorrupted("model_bad_node_count.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("truncated frozen TPT section body"),
            std::string::npos);
}

TEST_F(FrozenSectionCorruptionTest, TruncatedArenaIsDataLoss) {
  // Drop 64 bytes out of the middle of the arena: the declared counts no
  // longer fit in what remains.
  ASSERT_GT(bytes_.size(), ftpt_offset_ + 28 + 64 + kFooterSize);
  bytes_.erase(bytes_.begin() + static_cast<long>(ftpt_offset_) + 28,
               bytes_.begin() + static_cast<long>(ftpt_offset_) + 28 + 64);
  const Status status = LoadCorrupted("model_short_arena.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("truncated frozen TPT section body"),
            std::string::npos);
}

TEST_F(FrozenSectionCorruptionTest, ArenaBitRotFailsSectionChecksum) {
  // Outer footer re-stamped but the section CRC left stale: the inner
  // checksum is the layer that catches the rot.
  bytes_[ftpt_offset_ + 28] ^= 0x5a;
  const Status status = LoadCorrupted("model_arena_bitrot.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT section checksum mismatch"),
            std::string::npos);
}

TEST_F(FrozenSectionCorruptionTest, StructuralRotIsCaughtByTopologyCheck) {
  // Zero the root's entry count and re-stamp both checksums: only the
  // topology validator is left to refuse the section.
  ASSERT_GT(ReadSectionU32(28 + 4), 0u);
  WriteSectionU32(28 + 4, 0);
  RestampSectionCrc();
  const Status status = LoadCorrupted("model_zero_entry_node.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT node has zero entries"),
            std::string::npos);
}

TEST_F(FrozenSectionCorruptionTest, PayloadDriftIsCaughtByCrossCheck) {
  // Perturb one stored confidence and re-stamp both checksums: the
  // loader's cross-check against the re-encoded pattern set must notice
  // the arena no longer matches the model it claims to index.
  const uint32_t num_patterns = ReadSectionU32(24);
  ASSERT_GT(num_patterns, 0u);
  const size_t payloads_end = bytes_.size() - kFooterSize - 4;
  const size_t confidence_offset = payloads_end - 16;  // Last payload.
  bytes_[confidence_offset + 6] ^= 0x04;  // Mantissa bit flip.
  RestampSectionCrc();
  const Status status = LoadCorrupted("model_payload_drift.hpm");
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_NE(status.message().find("frozen TPT disagrees with pattern set"),
            std::string::npos);
}

TEST(IncorporateTest, NewDataOnKnownRouteAddsNothingNew) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  // Fresh days on the same route: every mined rule already exists.
  auto added =
      (*trained)->IncorporateNewHistory(MakeHistory(10, false, 99));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
}

TEST(IncorporateTest, RequiresACompletePeriod) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  Trajectory partial;
  for (int i = 0; i < 5; ++i) partial.Append({0, 0});
  EXPECT_EQ((*trained)->IncorporateNewHistory(partial).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncorporateTest, CrossRoutePatternsEmergeFromNewBehaviour) {
  // Train on a history where the object is on route A OR route B on any
  // given day, then feed new days that *switch* from A to B mid-period:
  // region structure already covers both routes, so new cross-route
  // rules (A-premise -> B-consequence) become minable and insertable.
  const uint64_t seed = proptest::SeedForTest(17);
  SCOPED_TRACE(proptest::ReplayLine(seed));
  Random rng(seed);
  Trajectory history;
  for (int d = 0; d < 30; ++d) {
    const bool b = d % 2 == 0;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = b ? RouteB(t) : RouteA(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      history.Append(p);
    }
  }
  auto trained = HybridPredictor::Train(history, Options());
  ASSERT_TRUE(trained.ok());
  const size_t before = (*trained)->summary().num_patterns;

  Trajectory switching;
  for (int d = 0; d < 10; ++d) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = (t < kPeriod / 2) ? RouteA(t) : RouteB(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      switching.Append(p);
    }
  }
  auto added = (*trained)->IncorporateNewHistory(switching);
  ASSERT_TRUE(added.ok());
  EXPECT_GT(*added, 0u);
  EXPECT_EQ((*trained)->summary().num_patterns, before + *added);
  EXPECT_TRUE((*trained)->tpt().CheckInvariants().ok());
  EXPECT_EQ((*trained)->tpt().size(),
            (*trained)->summary().num_patterns);

  // The new knowledge is queryable: an object seen on route A early in
  // the period is now predicted to be on route B later.
  PredictiveQuery q;
  const Timestamp base = 200 * kPeriod;
  for (Timestamp t = 5; t <= 8; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + 8;
  q.query_time = base + 15;  // Past the switch point, BQP range.
  auto predictions = (*trained)->Predict(q);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
}

TEST(IncorporateTest, SaveLoadAfterIncorporationRoundTrips) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(
      (*trained)->IncorporateNewHistory(MakeHistory(8, true, 5)).ok());
  const std::string path = TempPath("model_after_update.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());
  auto loaded = HybridPredictor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->summary().num_patterns,
            (*trained)->summary().num_patterns);
}

}  // namespace
}  // namespace hpm
