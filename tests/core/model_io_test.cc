// Tests for model persistence (SaveToFile / LoadFromFile) and dynamic
// pattern incorporation (IncorporateNewHistory, paper §V-B).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/hybrid_predictor.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

Point RouteA(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 100.0};
}
Point RouteB(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 1200.0};
}

Trajectory MakeHistory(int days, bool route_b = false, uint64_t seed = 4) {
  Random rng(seed);
  Trajectory traj;
  for (int d = 0; d < days; ++d) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = route_b ? RouteB(t) : RouteA(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      traj.Append(p);
    }
  }
  return traj;
}

HybridPredictorOptions Options() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 20.0;
  options.regions.dbscan.min_pts = 4;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 3;
  options.distant_threshold = 8;
  options.region_match_slack = 8.0;
  return options;
}

PredictiveQuery RouteAQuery(Timestamp tc_offset, Timestamp length) {
  PredictiveQuery q;
  const Timestamp base = 100 * kPeriod;
  for (Timestamp t = tc_offset - 3; t <= tc_offset; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + tc_offset;
  q.query_time = q.current_time + length;
  return q;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ModelIoTest, SaveLoadRoundTripPreservesModel) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_roundtrip.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  auto loaded = HybridPredictor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->summary().num_frequent_regions,
            (*trained)->summary().num_frequent_regions);
  EXPECT_EQ((*loaded)->summary().num_patterns,
            (*trained)->summary().num_patterns);
  EXPECT_EQ((*loaded)->summary().num_sub_trajectories,
            (*trained)->summary().num_sub_trajectories);
  EXPECT_TRUE((*loaded)->tpt().CheckInvariants().ok());

  // Identical answers on both query paths.
  for (const Timestamp length : {4, 12}) {
    const PredictiveQuery q = RouteAQuery(10, length);
    auto original = (*trained)->Predict(q);
    auto restored = (*loaded)->Predict(q);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(original->size(), restored->size());
    EXPECT_EQ(original->front().location, restored->front().location);
    EXPECT_DOUBLE_EQ(original->front().score, restored->front().score);
    EXPECT_EQ(original->front().source, restored->front().source);
  }
}

TEST(ModelIoTest, LoadRejectsMissingFile) {
  EXPECT_EQ(
      HybridPredictor::LoadFromFile("/nonexistent/model").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadRejectsForeignFile) {
  const std::string path = TempPath("not_a_model.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a model", f);
  std::fclose(f);
  EXPECT_EQ(HybridPredictor::LoadFromFile(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ModelIoTest, LoadRejectsTruncatedFile) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_full.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  // Copy a truncated prefix.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  char buffer[256];
  const size_t n = std::fread(buffer, 1, sizeof(buffer), in);
  std::fclose(in);
  const std::string cut_path = TempPath("model_cut.hpm");
  std::FILE* out = std::fopen(cut_path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fwrite(buffer, 1, n / 2, out);
  std::fclose(out);

  EXPECT_FALSE(HybridPredictor::LoadFromFile(cut_path).ok());
}

TEST(ModelIoTest, RandomByteCorruptionNeverCrashes) {
  // Failure injection: flip bytes at random offsets; every corrupted
  // file must either load to a structurally valid model or fail with a
  // clean Status — never crash or hang.
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("model_fuzz_base.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());

  // Read the pristine bytes.
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.append(buf, n);
  std::fclose(in);
  ASSERT_GT(bytes.size(), 64u);

  Random rng(99);
  const std::string fuzz_path = TempPath("model_fuzz.hpm");
  for (int round = 0; round < 60; ++round) {
    std::string corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < flips; ++i) {
      const size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] = static_cast<char>(
          corrupted[pos] ^ static_cast<char>(1 + rng.Uniform(255)));
    }
    std::FILE* out = std::fopen(fuzz_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(corrupted.data(), 1, corrupted.size(), out);
    std::fclose(out);

    auto loaded = HybridPredictor::LoadFromFile(fuzz_path);
    if (loaded.ok()) {
      // If it loads (the flipped bytes were e.g. inside a coordinate),
      // the model must still be structurally sound.
      EXPECT_TRUE((*loaded)->tpt().CheckInvariants().ok());
    }
  }
}

TEST(ModelIoTest, SaveToUnwritablePathFails) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ((*trained)->SaveToFile("/nonexistent/dir/model").code(),
            StatusCode::kInvalidArgument);
}

TEST(IncorporateTest, NewDataOnKnownRouteAddsNothingNew) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  // Fresh days on the same route: every mined rule already exists.
  auto added =
      (*trained)->IncorporateNewHistory(MakeHistory(10, false, 99));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
}

TEST(IncorporateTest, RequiresACompletePeriod) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  Trajectory partial;
  for (int i = 0; i < 5; ++i) partial.Append({0, 0});
  EXPECT_EQ((*trained)->IncorporateNewHistory(partial).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IncorporateTest, CrossRoutePatternsEmergeFromNewBehaviour) {
  // Train on a history where the object is on route A OR route B on any
  // given day, then feed new days that *switch* from A to B mid-period:
  // region structure already covers both routes, so new cross-route
  // rules (A-premise -> B-consequence) become minable and insertable.
  Random rng(17);
  Trajectory history;
  for (int d = 0; d < 30; ++d) {
    const bool b = d % 2 == 0;
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = b ? RouteB(t) : RouteA(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      history.Append(p);
    }
  }
  auto trained = HybridPredictor::Train(history, Options());
  ASSERT_TRUE(trained.ok());
  const size_t before = (*trained)->summary().num_patterns;

  Trajectory switching;
  for (int d = 0; d < 10; ++d) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = (t < kPeriod / 2) ? RouteA(t) : RouteB(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      switching.Append(p);
    }
  }
  auto added = (*trained)->IncorporateNewHistory(switching);
  ASSERT_TRUE(added.ok());
  EXPECT_GT(*added, 0u);
  EXPECT_EQ((*trained)->summary().num_patterns, before + *added);
  EXPECT_TRUE((*trained)->tpt().CheckInvariants().ok());
  EXPECT_EQ((*trained)->tpt().size(),
            (*trained)->summary().num_patterns);

  // The new knowledge is queryable: an object seen on route A early in
  // the period is now predicted to be on route B later.
  PredictiveQuery q;
  const Timestamp base = 200 * kPeriod;
  for (Timestamp t = 5; t <= 8; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + 8;
  q.query_time = base + 15;  // Past the switch point, BQP range.
  auto predictions = (*trained)->Predict(q);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
}

TEST(IncorporateTest, SaveLoadAfterIncorporationRoundTrips) {
  auto trained = HybridPredictor::Train(MakeHistory(30), Options());
  ASSERT_TRUE(trained.ok());
  ASSERT_TRUE(
      (*trained)->IncorporateNewHistory(MakeHistory(8, true, 5)).ok());
  const std::string path = TempPath("model_after_update.hpm");
  ASSERT_TRUE((*trained)->SaveToFile(path).ok());
  auto loaded = HybridPredictor::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->summary().num_patterns,
            (*trained)->summary().num_patterns);
}

}  // namespace
}  // namespace hpm
