#include "core/hybrid_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"

namespace hpm {
namespace {

constexpr Timestamp kPeriod = 20;

/// Routes: A follows y=100, B follows y=1200, both with x = 100*t + 50.
Point RouteA(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 100.0};
}
Point RouteB(Timestamp t) {
  return {100.0 * static_cast<double>(t) + 50.0, 1200.0};
}

/// `days` periods: route A with probability 0.7, else route B, plus unit
/// noise — a miniature two-route commuter.
Trajectory MakeHistory(int days, uint64_t seed = 11) {
  Random rng(seed);
  Trajectory traj;
  for (int d = 0; d < days; ++d) {
    const bool on_a = rng.Bernoulli(0.7);
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = on_a ? RouteA(t) : RouteB(t);
      p.x += rng.Gaussian(0, 1.0);
      p.y += rng.Gaussian(0, 1.0);
      traj.Append(p);
    }
  }
  return traj;
}

HybridPredictorOptions SmallOptions() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 20.0;
  options.regions.dbscan.min_pts = 4;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 3;
  options.mining.max_pattern_length = 3;
  options.mining.premise_window = 5;
  options.distant_threshold = 8;
  options.time_relaxation = 2;
  return options;
}

/// A query whose recent movements follow route A up to offset tc.
PredictiveQuery RouteAQuery(Timestamp tc_offset, Timestamp length,
                            int history = 4, int day = 50) {
  PredictiveQuery q;
  const Timestamp base = static_cast<Timestamp>(day) * kPeriod;
  for (Timestamp t = tc_offset - history + 1; t <= tc_offset; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + tc_offset;
  q.query_time = q.current_time + length;
  q.k = 1;
  return q;
}

class HybridPredictorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto trained = HybridPredictor::Train(MakeHistory(40), SmallOptions());
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    predictor_ = trained->release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
  }
  static HybridPredictor* predictor_;
};

HybridPredictor* HybridPredictorTest::predictor_ = nullptr;

TEST_F(HybridPredictorTest, TrainingSummaryPopulated) {
  const TrainingSummary& s = predictor_->summary();
  EXPECT_EQ(s.num_sub_trajectories, 40u);
  // Two routes -> two regions at most offsets.
  EXPECT_GE(s.num_frequent_regions, static_cast<size_t>(kPeriod));
  EXPECT_GT(s.num_patterns, 0u);
  EXPECT_GT(s.tpt_memory_bytes, 0u);
  EXPECT_GE(s.tpt_height, 1);
  EXPECT_GE(s.train_seconds, 0.0);
  EXPECT_EQ(s.num_patterns, predictor_->patterns().size());
  EXPECT_EQ(predictor_->tpt().size(), s.num_patterns);
}

TEST_F(HybridPredictorTest, ForwardQueryPredictsAlongRoute) {
  const PredictiveQuery q = RouteAQuery(10, 4);
  auto predictions = predictor_->ForwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  ASSERT_FALSE(predictions->empty());
  const Prediction& top = predictions->front();
  EXPECT_EQ(top.source, PredictionSource::kPattern);
  // The object has been on route A; the most likely offset-14 location
  // is route A's anchor.
  EXPECT_LT(Distance(top.location, RouteA(14)), 30.0);
  EXPECT_GT(top.score, 0.0);
  EXPECT_LE(top.score, 1.0);
  EXPECT_GE(top.pattern_id, 0);
  EXPECT_GE(top.consequence_region, 0);
}

TEST_F(HybridPredictorTest, BackwardQueryPredictsDistantOffset) {
  const PredictiveQuery q = RouteAQuery(5, 12);  // Length 12 >= d = 8.
  auto predictions = predictor_->BackwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  ASSERT_FALSE(predictions->empty());
  const Prediction& top = predictions->front();
  EXPECT_EQ(top.source, PredictionSource::kPattern);
  // Offset 17 on one of the two routes; route A ranks first given the
  // premise evidence.
  EXPECT_LT(Distance(top.location, RouteA(17)), 30.0);
}

TEST_F(HybridPredictorTest, PredictDispatchesOnDistantThreshold) {
  predictor_->ResetCounters();
  ASSERT_TRUE(predictor_->Predict(RouteAQuery(10, 4)).ok());
  EXPECT_EQ(predictor_->counters().forward_queries, 1u);
  EXPECT_EQ(predictor_->counters().backward_queries, 0u);
  ASSERT_TRUE(predictor_->Predict(RouteAQuery(5, 12)).ok());
  EXPECT_EQ(predictor_->counters().backward_queries, 1u);
}

TEST_F(HybridPredictorTest, TopKReturnsBothRoutes) {
  PredictiveQuery q = RouteAQuery(10, 4);
  q.k = 5;
  auto predictions = predictor_->ForwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  EXPECT_GT(predictions->size(), 1u);
  EXPECT_LE(predictions->size(), 5u);
  // Scores are returned best-first.
  for (size_t i = 1; i < predictions->size(); ++i) {
    EXPECT_GE((*predictions)[i - 1].score, (*predictions)[i].score);
  }
}

TEST_F(HybridPredictorTest, FallsBackToMotionFunctionOffPattern) {
  // Recent movements far from any frequent region.
  PredictiveQuery q;
  const Timestamp base = 50 * kPeriod;
  for (Timestamp t = 7; t <= 10; ++t) {
    q.recent_movements.push_back(
        {base + t, Point{5000.0 + 10.0 * static_cast<double>(t), 9000.0}});
  }
  q.current_time = base + 10;
  q.query_time = q.current_time + 4;
  auto predictions = predictor_->ForwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions->size(), 1u);
  EXPECT_EQ(predictions->front().source,
            PredictionSource::kMotionFunction);
  // The motion answer extrapolates the off-pattern movement, not the
  // patterns.
  EXPECT_NEAR(predictions->front().location.y, 9000.0, 100.0);
}

TEST_F(HybridPredictorTest, MotionFunctionPredictExtrapolates) {
  PredictiveQuery q;
  for (Timestamp t = 0; t < 8; ++t) {
    q.recent_movements.push_back(
        {t, Point{10.0 * static_cast<double>(t), 500.0}});
  }
  q.current_time = 7;
  q.query_time = 12;
  auto p = predictor_->MotionFunctionPredict(q);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->source, PredictionSource::kMotionFunction);
  EXPECT_NEAR(p->location.x, 120.0, 5.0);
  EXPECT_NEAR(p->location.y, 500.0, 5.0);
}

TEST_F(HybridPredictorTest, InvalidQueriesRejectedEverywhere) {
  PredictiveQuery bad;  // Empty movements.
  bad.current_time = 0;
  bad.query_time = 5;
  EXPECT_FALSE(predictor_->Predict(bad).ok());
  EXPECT_FALSE(predictor_->ForwardQuery(bad).ok());
  EXPECT_FALSE(predictor_->BackwardQuery(bad).ok());
  EXPECT_FALSE(predictor_->MotionFunctionPredict(bad).ok());
}

TEST_F(HybridPredictorTest, CountersTrackAnswerSources) {
  predictor_->ResetCounters();
  ASSERT_TRUE(predictor_->Predict(RouteAQuery(10, 4)).ok());
  EXPECT_EQ(predictor_->counters().pattern_answers, 1u);
  EXPECT_EQ(predictor_->counters().motion_fallbacks, 0u);
}

TEST(HybridPredictorTrainTest, InvalidOptionsRejected) {
  const Trajectory history = MakeHistory(10);
  HybridPredictorOptions options = SmallOptions();
  options.distant_threshold = kPeriod;  // Must be < period.
  EXPECT_EQ(HybridPredictor::Train(history, options).status().code(),
            StatusCode::kInvalidArgument);
  options = SmallOptions();
  options.distant_threshold = 0;
  EXPECT_EQ(HybridPredictor::Train(history, options).status().code(),
            StatusCode::kInvalidArgument);
  options = SmallOptions();
  options.time_relaxation = -1;
  EXPECT_EQ(HybridPredictor::Train(history, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HybridPredictorTrainTest, HistoryShorterThanPeriodFails) {
  Trajectory tiny;
  for (int i = 0; i < 5; ++i) tiny.Append({0, 0});
  EXPECT_EQ(
      HybridPredictor::Train(tiny, SmallOptions()).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(HybridPredictorTrainTest, NoPatternsStillAnswersViaMotion) {
  // Pure random data: DBSCAN finds nothing, TPT is empty, every query
  // must still get a sensible motion-function answer.
  Random rng(3);
  Trajectory noise;
  for (int i = 0; i < kPeriod * 10; ++i) {
    noise.Append({rng.UniformDouble(0, 10000), rng.UniformDouble(0, 10000)});
  }
  HybridPredictorOptions options = SmallOptions();
  options.regions.dbscan.min_pts = 9;  // Can't be met by 10 scattered days.
  auto predictor = HybridPredictor::Train(noise, options);
  ASSERT_TRUE(predictor.ok());
  EXPECT_EQ((*predictor)->summary().num_patterns, 0u);

  PredictiveQuery q;
  for (Timestamp t = 0; t < 5; ++t) {
    q.recent_movements.push_back(
        {t, Point{100.0 * static_cast<double>(t), 100.0}});
  }
  q.current_time = 4;
  q.query_time = 10;
  auto predictions = (*predictor)->Predict(q);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source,
            PredictionSource::kMotionFunction);
}

TEST(HybridPredictorTrainTest, LimitSubTrajectoriesHonoured) {
  HybridPredictorOptions options = SmallOptions();
  options.regions.limit_sub_trajectories = 10;
  auto predictor = HybridPredictor::Train(MakeHistory(40), options);
  ASSERT_TRUE(predictor.ok());
  EXPECT_EQ((*predictor)->summary().num_sub_trajectories, 10u);
}

TEST(HybridPredictorWeightTest, AllWeightFunctionsTrainAndAnswer) {
  const Trajectory history = MakeHistory(40);
  for (const auto fn :
       {WeightFunction::kLinear, WeightFunction::kQuadratic,
        WeightFunction::kExponential, WeightFunction::kFactorial}) {
    HybridPredictorOptions options = SmallOptions();
    options.weight_function = fn;
    auto predictor = HybridPredictor::Train(history, options);
    ASSERT_TRUE(predictor.ok());
    auto predictions = (*predictor)->Predict(RouteAQuery(10, 4));
    ASSERT_TRUE(predictions.ok());
    EXPECT_LT(Distance(predictions->front().location, RouteA(14)), 50.0);
  }
}

TEST(HybridPredictorTrainTest, PremiseHorizonLimitsMatchedRegions) {
  // A query whose early recent movements ride route A but whose last
  // few ride route B: with a short premise horizon only route B regions
  // enter the premise, so the top pattern answer follows route B.
  HybridPredictorOptions options = SmallOptions();
  options.premise_horizon = 3;
  auto predictor = HybridPredictor::Train(MakeHistory(40), options);
  ASSERT_TRUE(predictor.ok());

  PredictiveQuery q;
  const Timestamp base = 60 * kPeriod;
  for (Timestamp t = 5; t <= 8; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  for (Timestamp t = 9; t <= 11; ++t) {
    q.recent_movements.push_back({base + t, RouteB(t)});
  }
  q.current_time = base + 11;
  q.query_time = base + 14;
  auto predictions = (*predictor)->ForwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  ASSERT_FALSE(predictions->empty());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
  EXPECT_LT(Distance(predictions->front().location, RouteB(14)),
            Distance(predictions->front().location, RouteA(14)));
}

TEST(HybridPredictorTrainTest, WeightFunctionSetterTakesEffect) {
  auto predictor = HybridPredictor::Train(MakeHistory(40), SmallOptions());
  ASSERT_TRUE(predictor.ok());
  EXPECT_EQ((*predictor)->options().weight_function,
            WeightFunction::kLinear);
  (*predictor)->set_weight_function(WeightFunction::kQuadratic);
  EXPECT_EQ((*predictor)->options().weight_function,
            WeightFunction::kQuadratic);
  // Queries still answer fine under the new weights.
  EXPECT_TRUE((*predictor)->Predict(RouteAQuery(10, 4)).ok());
}

TEST(HybridPredictorBqpTest, WrapAroundIntervalCrossesPeriodBoundary) {
  // A distant query whose relaxation interval straddles the period
  // boundary (query offset near 0): BQP must union the [lo, T-1] and
  // [0, hi] consequence ranges rather than produce an empty interval.
  auto predictor = HybridPredictor::Train(MakeHistory(40), SmallOptions());
  ASSERT_TRUE(predictor.ok());

  PredictiveQuery q;
  const Timestamp base = 70 * kPeriod;
  // Current time late in one period, query time just after the next
  // period boundary: query offset 1, interval [1 - t_eps, 1 + t_eps]
  // wraps below zero.
  for (Timestamp t = 8; t <= 11; ++t) {
    q.recent_movements.push_back({base + t, RouteA(t)});
  }
  q.current_time = base + 11;
  q.query_time = base + kPeriod + 1;  // Length 10 >= d = 8 -> BQP.
  auto predictions = (*predictor)->BackwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  ASSERT_FALSE(predictions->empty());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
  // The answer is near one of the routes at an offset within the
  // relaxation of offset 1.
  bool near_any = false;
  for (Timestamp t = 1; t <= 4 && !near_any; ++t) {
    near_any = Distance(predictions->front().location, RouteA(t)) < 300 ||
               Distance(predictions->front().location, RouteB(t)) < 300;
  }
  EXPECT_TRUE(near_any);
}

TEST(HybridPredictorBqpTest, IntervalExpansionFindsSparseConsequences) {
  // Build a predictor whose patterns exist only at even offsets by
  // training on data that dwells: region structure still forms, but we
  // verify BQP widening by querying an offset whose own consequence may
  // be missing — the answer must come from a nearby offset, not the
  // motion fallback, whenever any pattern exists in range.
  auto predictor = HybridPredictor::Train(MakeHistory(40), SmallOptions());
  ASSERT_TRUE(predictor.ok());
  const PredictiveQuery q = RouteAQuery(4, 14);
  auto predictions = (*predictor)->BackwardQuery(q);
  ASSERT_TRUE(predictions.ok());
  EXPECT_EQ(predictions->front().source, PredictionSource::kPattern);
  // Offset 18 answer close to route A or B anchor at a nearby offset.
  const double error_a = Distance(predictions->front().location, RouteA(18));
  const double error_b = Distance(predictions->front().location, RouteB(18));
  EXPECT_LT(std::min(error_a, error_b), 250.0);
}

TEST(HybridPredictorCountersTest, TotalsAddUpSingleThreaded) {
  auto predictor = HybridPredictor::Train(MakeHistory(40), SmallOptions());
  ASSERT_TRUE(predictor.ok());
  constexpr int kForward = 7;
  constexpr int kBackward = 5;
  for (int i = 0; i < kForward; ++i) {
    ASSERT_TRUE((*predictor)->Predict(RouteAQuery(10, 4)).ok());
  }
  for (int i = 0; i < kBackward; ++i) {
    ASSERT_TRUE((*predictor)->Predict(RouteAQuery(5, 12)).ok());
  }
  const QueryCounters counters = (*predictor)->counters();
  EXPECT_EQ(counters.forward_queries, static_cast<size_t>(kForward));
  EXPECT_EQ(counters.backward_queries, static_cast<size_t>(kBackward));
  // Every Predict is answered exactly once, by pattern or fallback.
  EXPECT_EQ(counters.pattern_answers + counters.motion_fallbacks,
            static_cast<size_t>(kForward + kBackward));
  (*predictor)->ResetCounters();
  const QueryCounters cleared = (*predictor)->counters();
  EXPECT_EQ(cleared.forward_queries, 0u);
  EXPECT_EQ(cleared.backward_queries, 0u);
  EXPECT_EQ(cleared.pattern_answers, 0u);
  EXPECT_EQ(cleared.motion_fallbacks, 0u);
}

TEST(HybridPredictorCountersTest, ConcurrentPredictsLoseNoCounts) {
  auto predictor = HybridPredictor::Train(MakeHistory(40), SmallOptions());
  ASSERT_TRUE(predictor.ok());
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&predictor, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const bool forward = (t + i) % 2 == 0;
        ASSERT_TRUE(
            (*predictor)->Predict(RouteAQuery(forward ? 10 : 5,
                                              forward ? 4 : 12)).ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const QueryCounters counters = (*predictor)->counters();
  constexpr size_t kTotal =
      static_cast<size_t>(kThreads) * kQueriesPerThread;
  EXPECT_EQ(counters.forward_queries + counters.backward_queries, kTotal);
  EXPECT_EQ(counters.pattern_answers + counters.motion_fallbacks, kTotal);
}

TEST(HybridPredictorUpdateTest, WithNewHistoryMatchesInPlaceIncorporation) {
  // Two identically-trained predictors; one takes the mutating §V-B
  // path, the other builds a snapshot. The snapshot must carry the same
  // pattern set and answer every query identically, and the source
  // predictor must be untouched.
  auto in_place = HybridPredictor::Train(MakeHistory(20), SmallOptions());
  auto snapshotting = HybridPredictor::Train(MakeHistory(20), SmallOptions());
  ASSERT_TRUE(in_place.ok());
  ASSERT_TRUE(snapshotting.ok());

  const Trajectory fresh = MakeHistory(10, 99);
  const size_t patterns_before = (*snapshotting)->patterns().size();

  auto added = (*in_place)->IncorporateNewHistory(fresh);
  ASSERT_TRUE(added.ok());
  auto snapshot = (*snapshotting)->WithNewHistory(fresh);
  ASSERT_TRUE(snapshot.ok());

  // The source of WithNewHistory is unchanged.
  EXPECT_EQ((*snapshotting)->patterns().size(), patterns_before);

  EXPECT_EQ((*snapshot)->patterns().size(),
            patterns_before + *added);
  EXPECT_EQ((*snapshot)->patterns().size(), (*in_place)->patterns().size());
  EXPECT_EQ((*snapshot)->tpt().size(), (*in_place)->tpt().size());
  EXPECT_EQ((*snapshot)->summary().num_patterns,
            (*in_place)->summary().num_patterns);
  EXPECT_EQ((*snapshot)->summary().tpt_height,
            (*in_place)->summary().tpt_height);

  for (Timestamp tc = 4; tc <= 14; tc += 2) {
    for (Timestamp length : {2, 4, 9, 12}) {
      const PredictiveQuery q = RouteAQuery(tc, length, 4);
      auto a = (*in_place)->Predict(q);
      auto b = (*snapshot)->Predict(q);
      ASSERT_EQ(a.ok(), b.ok());
      if (!a.ok()) continue;
      ASSERT_EQ(a->size(), b->size());
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].location.x, (*b)[i].location.x);
        EXPECT_EQ((*a)[i].location.y, (*b)[i].location.y);
        EXPECT_EQ((*a)[i].score, (*b)[i].score);
        EXPECT_EQ((*a)[i].source, (*b)[i].source);
        EXPECT_EQ((*a)[i].pattern_id, (*b)[i].pattern_id);
      }
    }
  }
}

}  // namespace
}  // namespace hpm
