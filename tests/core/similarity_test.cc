#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm {
namespace {

DynamicBitset Bits(const std::string& s) {
  return DynamicBitset::FromString(s);
}

TEST(WeightFunctionTest, Names) {
  EXPECT_STREQ(WeightFunctionName(WeightFunction::kLinear), "linear");
  EXPECT_STREQ(WeightFunctionName(WeightFunction::kQuadratic), "quadratic");
  EXPECT_STREQ(WeightFunctionName(WeightFunction::kExponential),
               "exponential");
  EXPECT_STREQ(WeightFunctionName(WeightFunction::kFactorial), "factorial");
}

TEST(PositionWeightTest, LinearWeightsMatchPaper) {
  // §VI-A: for premise key 00011 (2 ones), linear weights are 1/3, 2/3.
  EXPECT_NEAR(PositionWeight(WeightFunction::kLinear, 1, 2), 1.0 / 3, 1e-12);
  EXPECT_NEAR(PositionWeight(WeightFunction::kLinear, 2, 2), 2.0 / 3, 1e-12);
}

TEST(PositionWeightTest, QuadraticWeights) {
  // f(i) = i^2; size 3: 1/14, 4/14, 9/14.
  EXPECT_NEAR(PositionWeight(WeightFunction::kQuadratic, 1, 3), 1.0 / 14,
              1e-12);
  EXPECT_NEAR(PositionWeight(WeightFunction::kQuadratic, 3, 3), 9.0 / 14,
              1e-12);
}

TEST(PositionWeightTest, ExponentialWeights) {
  // f(i) = 2^i; size 2: 2/6, 4/6.
  EXPECT_NEAR(PositionWeight(WeightFunction::kExponential, 1, 2), 2.0 / 6,
              1e-12);
  EXPECT_NEAR(PositionWeight(WeightFunction::kExponential, 2, 2), 4.0 / 6,
              1e-12);
}

TEST(PositionWeightTest, FactorialWeights) {
  // f(i) = i!; size 3: 1/9, 2/9, 6/9.
  EXPECT_NEAR(PositionWeight(WeightFunction::kFactorial, 1, 3), 1.0 / 9,
              1e-12);
  EXPECT_NEAR(PositionWeight(WeightFunction::kFactorial, 3, 3), 6.0 / 9,
              1e-12);
}

class WeightSumTest : public ::testing::TestWithParam<WeightFunction> {};

TEST_P(WeightSumTest, WeightsSumToOneAndIncrease) {
  const WeightFunction fn = GetParam();
  for (int size = 1; size <= 8; ++size) {
    double sum = 0.0;
    double prev = 0.0;
    for (int i = 1; i <= size; ++i) {
      const double w = PositionWeight(fn, i, size);
      EXPECT_GT(w, 0.0);
      // Property 1 + §VI-A: later positions weigh at least as much.
      EXPECT_GE(w, prev);
      prev = w;
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, WeightSumTest,
                         ::testing::Values(WeightFunction::kLinear,
                                           WeightFunction::kQuadratic,
                                           WeightFunction::kExponential,
                                           WeightFunction::kFactorial));

TEST(PremiseSimilarityTest, PaperExamples) {
  // §VI-A: Sr(00011, 00011) = 1; Sr(00011, 00010) = 2/3 (linear).
  EXPECT_NEAR(
      PremiseSimilarity(Bits("00011"), Bits("00011"), WeightFunction::kLinear),
      1.0, 1e-12);
  EXPECT_NEAR(
      PremiseSimilarity(Bits("00011"), Bits("00010"), WeightFunction::kLinear),
      2.0 / 3, 1e-12);
}

TEST(PremiseSimilarityTest, LowerPositionWorthLess) {
  EXPECT_NEAR(
      PremiseSimilarity(Bits("00011"), Bits("00001"), WeightFunction::kLinear),
      1.0 / 3, 1e-12);
}

TEST(PremiseSimilarityTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(
      PremiseSimilarity(Bits("00011"), Bits("11100"),
                        WeightFunction::kLinear),
      0.0);
}

TEST(PremiseSimilarityTest, EmptyPremiseIsZero) {
  EXPECT_DOUBLE_EQ(
      PremiseSimilarity(Bits("00000"), Bits("11111"),
                        WeightFunction::kLinear),
      0.0);
}

TEST(PremiseSimilarityTest, ExtraQueryBitsDoNotIncreaseSimilarity) {
  // Only rk's bits matter; rkq superset yields exactly 1.
  EXPECT_NEAR(PremiseSimilarity(Bits("00011"), Bits("11111"),
                                WeightFunction::kQuadratic),
              1.0, 1e-12);
}

TEST(PremiseSimilarityTest, WeightsAssignedByRankAmongSetBits) {
  // rk = 10100: its two '1's are at bit positions 2 and 4; ranks 1 and 2.
  // Query matching only bit 4 gets the rank-2 weight 2/3.
  EXPECT_NEAR(PremiseSimilarity(Bits("10100"), Bits("10000"),
                                WeightFunction::kLinear),
              2.0 / 3, 1e-12);
  EXPECT_NEAR(PremiseSimilarity(Bits("10100"), Bits("00100"),
                                WeightFunction::kLinear),
              1.0 / 3, 1e-12);
}

TEST(PremiseSimilarityTest, BoundedInUnitInterval) {
  for (const auto fn :
       {WeightFunction::kLinear, WeightFunction::kQuadratic,
        WeightFunction::kExponential, WeightFunction::kFactorial}) {
    const double s =
        PremiseSimilarity(Bits("110101"), Bits("010001"), fn);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ConsequenceSimilarityTest, ExactOffsetIsOne) {
  EXPECT_DOUBLE_EQ(ConsequenceSimilarity(10, 10, 2), 1.0);
}

TEST(ConsequenceSimilarityTest, DecaysLinearlyWithDistance) {
  // Equation 3: Sc = 1 - |tq - t| / (t_eps + 1).
  EXPECT_NEAR(ConsequenceSimilarity(9, 10, 2), 1.0 - 1.0 / 3, 1e-12);
  EXPECT_NEAR(ConsequenceSimilarity(12, 10, 2), 1.0 - 2.0 / 3, 1e-12);
  EXPECT_NEAR(ConsequenceSimilarity(13, 10, 2), 0.0, 1e-12);
}

TEST(ConsequenceSimilarityTest, ClampedAtZeroBeyondRelaxation) {
  EXPECT_DOUBLE_EQ(ConsequenceSimilarity(100, 10, 2), 0.0);
}

TEST(ConsequenceSimilarityTest, SymmetricInTimeDistance) {
  EXPECT_DOUBLE_EQ(ConsequenceSimilarity(8, 10, 3),
                   ConsequenceSimilarity(12, 10, 3));
}

TEST(PositionWeightDeathTest, OutOfRangeAborts) {
  EXPECT_DEATH((void)PositionWeight(WeightFunction::kLinear, 0, 3),
               "HPM_CHECK");
  EXPECT_DEATH((void)PositionWeight(WeightFunction::kLinear, 4, 3),
               "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
