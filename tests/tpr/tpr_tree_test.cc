#include "tpr/tpr_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"

namespace hpm {
namespace {

MovingPoint MakePoint(int64_t id, Point position, Point velocity) {
  MovingPoint p;
  p.id = id;
  p.position = position;
  p.velocity = velocity;
  return p;
}

std::set<int64_t> Ids(const std::vector<const MovingPoint*>& hits) {
  std::set<int64_t> ids;
  for (const auto* hit : hits) ids.insert(hit->id);
  return ids;
}

TEST(TpBoundingBoxTest, ExtendWithPointsTracksVelocityBounds) {
  TpBoundingBox b;
  EXPECT_TRUE(b.IsEmpty());
  b.Extend(MakePoint(0, {10, 10}, {1, -2}));
  b.Extend(MakePoint(1, {20, 5}, {-3, 4}));
  EXPECT_DOUBLE_EQ(b.min_vx, -3);
  EXPECT_DOUBLE_EQ(b.max_vx, 1);
  EXPECT_DOUBLE_EQ(b.min_vy, -2);
  EXPECT_DOUBLE_EQ(b.max_vy, 4);
  EXPECT_EQ(b.box.min(), Point(10, 5));
  EXPECT_EQ(b.box.max(), Point(20, 10));
}

TEST(TpBoundingBoxTest, BoxAtExpandsConservatively) {
  TpBoundingBox b;
  b.Extend(MakePoint(0, {0, 0}, {1, 0}));
  b.Extend(MakePoint(1, {10, 10}, {-1, 2}));
  const BoundingBox at5 = b.BoxAt(5.0);
  // x: min edge moves with min_vx=-1 -> -5; max edge with max_vx=1 -> 15.
  EXPECT_DOUBLE_EQ(at5.min().x, -5);
  EXPECT_DOUBLE_EQ(at5.max().x, 15);
  EXPECT_DOUBLE_EQ(at5.min().y, 0);
  EXPECT_DOUBLE_EQ(at5.max().y, 20);
  // The extrapolated points are always inside the expanded box.
  EXPECT_TRUE(at5.Contains(Point{5, 0}));
  EXPECT_TRUE(at5.Contains(Point{5, 20}));
}

TEST(TpBoundingBoxTest, Covers) {
  TpBoundingBox outer;
  outer.Extend(MakePoint(0, {0, 0}, {-1, -1}));
  outer.Extend(MakePoint(1, {10, 10}, {1, 1}));
  TpBoundingBox inner;
  inner.Extend(MakePoint(2, {5, 5}, {0, 0}));
  EXPECT_TRUE(outer.Covers(inner));
  EXPECT_FALSE(inner.Covers(outer));
  TpBoundingBox empty;
  EXPECT_TRUE(outer.Covers(empty));
  EXPECT_FALSE(empty.Covers(outer));
}

TEST(TprTreeTest, EmptyTree) {
  TprTree tree(0);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  auto hits = tree.RangeQuery(BoundingBox({0, 0}, {1, 1}), 5);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST(TprTreeTest, QueryValidation) {
  TprTree tree(100);
  ASSERT_TRUE(tree.Insert(MakePoint(0, {0, 0}, {1, 1})).ok());
  EXPECT_EQ(tree.RangeQuery(BoundingBox(), 110).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      tree.RangeQuery(BoundingBox({0, 0}, {1, 1}), 99).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(TprTreeTest, FindsMovingObjectAtFutureTime) {
  TprTree tree(0);
  // Object 7 moves right 10/tick from the origin.
  ASSERT_TRUE(tree.Insert(MakePoint(7, {0, 0}, {10, 0})).ok());
  // At t=10 it sits at (100, 0).
  const BoundingBox around(Point{95, -5}, Point{105, 5});
  auto hits = tree.RangeQuery(around, 10);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0]->id, 7);
  // At t=0 it is not there.
  auto now = tree.RangeQuery(around, 0);
  ASSERT_TRUE(now.ok());
  EXPECT_TRUE(now->empty());
}

TEST(TprTreeTest, SplitsKeepInvariants) {
  TprTree::Options options;
  options.max_node_entries = 4;
  options.min_node_entries = 2;
  TprTree tree(0, options);
  Random rng(1);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Insert(MakePoint(
                        i,
                        {rng.UniformDouble(0, 1000),
                         rng.UniformDouble(0, 1000)},
                        {rng.Gaussian(0, 3), rng.Gaussian(0, 3)}))
                    .ok());
    if (i % 30 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_GT(tree.Height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(TprTreeTest, PrunesComparedToScan) {
  TprTree tree(0);
  Random rng(2);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(MakePoint(
                        i,
                        {rng.UniformDouble(0, 10000),
                         rng.UniformDouble(0, 10000)},
                        {rng.Gaussian(0, 2), rng.Gaussian(0, 2)}))
                    .ok());
  }
  TprSearchStats stats;
  const BoundingBox small(Point{4000, 4000}, Point{4500, 4500});
  auto hits = tree.RangeQuery(small, 20, &stats);
  ASSERT_TRUE(hits.ok());
  // The index must inspect far fewer entries than a full scan would.
  EXPECT_LT(stats.entries_tested, 5000u / 2);
}

class TprEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, Timestamp>> {};

TEST_P(TprEquivalenceTest, MatchesBruteForceAtEveryHorizon) {
  const auto [count, tq] = GetParam();
  Random rng(static_cast<uint64_t>(count) * 7 +
             static_cast<uint64_t>(tq));
  const Timestamp ref = 50;
  TprTree tree(ref);
  std::vector<MovingPoint> all;
  for (int i = 0; i < count; ++i) {
    const MovingPoint p = MakePoint(
        i, {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)},
        {rng.Gaussian(0, 5), rng.Gaussian(0, 5)});
    all.push_back(p);
    ASSERT_TRUE(tree.Insert(p).ok());
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());

  for (int q = 0; q < 25; ++q) {
    const Point corner{rng.UniformDouble(-200, 1100),
                       rng.UniformDouble(-200, 1100)};
    const BoundingBox range(corner,
                            corner + Point{rng.UniformDouble(50, 400),
                                           rng.UniformDouble(50, 400)});
    std::set<int64_t> expected;
    for (const MovingPoint& p : all) {
      if (range.Contains(p.PositionAt(ref, tq))) expected.insert(p.id);
    }
    auto hits = tree.RangeQuery(range, tq);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(Ids(*hits), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TprEquivalenceTest,
    ::testing::Combine(::testing::Values(10, 200, 2000),
                       ::testing::Values(Timestamp{50}, Timestamp{60},
                                         Timestamp{150})));

TEST(TprNearestNeighborTest, Validation) {
  TprTree tree(10);
  ASSERT_TRUE(tree.Insert(MakePoint(0, {0, 0}, {1, 1})).ok());
  EXPECT_EQ(tree.NearestNeighbors({0, 0}, 5, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tree.NearestNeighbors({0, 0}, 15, 0).status().code(),
            StatusCode::kInvalidArgument);
  TprTree empty(0);
  auto nn = empty.NearestNeighbors({0, 0}, 5, 3);
  ASSERT_TRUE(nn.ok());
  EXPECT_TRUE(nn->empty());
}

TEST(TprNearestNeighborTest, FindsFutureNearest) {
  TprTree tree(0);
  // Object 0 sits still at the origin; object 1 starts far away but
  // races toward (100, 0).
  ASSERT_TRUE(tree.Insert(MakePoint(0, {0, 0}, {0, 0})).ok());
  ASSERT_TRUE(tree.Insert(MakePoint(1, {1000, 0}, {-90, 0})).ok());
  // At t = 0 the nearest to (100, 0) is object 0.
  auto now = tree.NearestNeighbors({100, 0}, 0, 1);
  ASSERT_TRUE(now.ok());
  EXPECT_EQ((*now)[0]->id, 0);
  // At t = 10 object 1 has arrived at (100, 0).
  auto later = tree.NearestNeighbors({100, 0}, 10, 1);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ((*later)[0]->id, 1);
}

class TprNnEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(TprNnEquivalenceTest, MatchesBruteForce) {
  const int n = GetParam();
  Random rng(static_cast<uint64_t>(n) * 17);
  const Timestamp ref = 0;
  TprTree tree(ref);
  std::vector<MovingPoint> all;
  for (int i = 0; i < 500; ++i) {
    const MovingPoint p = MakePoint(
        i, {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)},
        {rng.Gaussian(0, 4), rng.Gaussian(0, 4)});
    all.push_back(p);
    ASSERT_TRUE(tree.Insert(p).ok());
  }
  for (int q = 0; q < 20; ++q) {
    const Point target{rng.UniformDouble(0, 1000),
                       rng.UniformDouble(0, 1000)};
    const Timestamp tq = rng.UniformInt(0, 50);
    auto hits = tree.NearestNeighbors(target, tq, n);
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), static_cast<size_t>(n));
    // Brute-force distances, sorted.
    std::vector<double> expected;
    for (const MovingPoint& p : all) {
      expected.push_back(Distance(p.PositionAt(ref, tq), target));
    }
    std::sort(expected.begin(), expected.end());
    for (int i = 0; i < n; ++i) {
      const double got =
          Distance((*hits)[static_cast<size_t>(i)]->PositionAt(ref, tq),
                   target);
      EXPECT_NEAR(got, expected[static_cast<size_t>(i)], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TprNnEquivalenceTest,
                         ::testing::Values(1, 3, 10));

TEST(TprNearestNeighborTest, BestFirstPrunes) {
  TprTree tree(0);
  Random rng(3);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(MakePoint(
                        i,
                        {rng.UniformDouble(0, 10000),
                         rng.UniformDouble(0, 10000)},
                        {rng.Gaussian(0, 2), rng.Gaussian(0, 2)}))
                    .ok());
  }
  TprSearchStats stats;
  auto nn = tree.NearestNeighbors({5000, 5000}, 20, 5, &stats);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->size(), 5u);
  // Best-first search must touch a small fraction of the index.
  EXPECT_LT(stats.entries_tested, 5000u / 2);
}

TEST(TprTreeDeathTest, BadOptionsAbort) {
  TprTree::Options bad;
  bad.max_node_entries = 3;
  EXPECT_DEATH(TprTree(0, bad), "HPM_CHECK");
  TprTree::Options inconsistent;
  inconsistent.max_node_entries = 8;
  inconsistent.min_node_entries = 5;
  EXPECT_DEATH(TprTree(0, inconsistent), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
