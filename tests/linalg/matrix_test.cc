#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, ZeroInitialised) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 0.0);
    }
  }
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, FromRowsEmpty) {
  const Matrix m = Matrix::FromRows({});
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AddSubtract) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
}

TEST(MatrixTest, Multiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyRectangular) {
  const Matrix a = Matrix::FromRows({{1, 0, 2}});       // 1x3
  const Matrix b = Matrix::FromRows({{1}, {2}, {3}});   // 3x1
  const Matrix ab = a * b;                              // 1x1
  EXPECT_EQ(ab.rows(), 1u);
  EXPECT_EQ(ab.cols(), 1u);
  EXPECT_DOUBLE_EQ(ab(0, 0), 7.0);
}

TEST(MatrixTest, IdentityIsMultiplicativeNeutral) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ((a * Matrix::Identity(2)).MaxAbsDiff(a), 0.0);
  EXPECT_DOUBLE_EQ((Matrix::Identity(2) * a).MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, ScalarMultiply) {
  const Matrix a = Matrix::FromRows({{1, -2}});
  const Matrix s = a * -3.0;
  EXPECT_DOUBLE_EQ(s(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 6.0);
}

TEST(MatrixTest, Transposed) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.Transposed().MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix a = Matrix::FromRows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(Matrix(2, 2).FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  const Matrix a = Matrix::FromRows({{1, 2}});
  const Matrix b = Matrix::FromRows({{1.5, -2}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 4.0);
}

TEST(MatrixTest, ToStringContainsElements) {
  const Matrix a = Matrix::FromRows({{1.5, 2.0}});
  const std::string s = a.ToString();
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("2.0"), std::string::npos);
}

TEST(MatrixDeathTest, ShapeMismatchAborts) {
  const Matrix a(2, 2), b(3, 3);
  EXPECT_DEATH((void)(a + b), "HPM_CHECK");
  EXPECT_DEATH((void)(a - b), "HPM_CHECK");
  EXPECT_DEATH((void)(a * b), "HPM_CHECK");
  EXPECT_DEATH((void)a.MaxAbsDiff(b), "HPM_CHECK");
}

TEST(MatrixDeathTest, OutOfRangeAccessAborts) {
  const Matrix a(2, 2);
  EXPECT_DEATH((void)a(2, 0), "HPM_CHECK");
  EXPECT_DEATH((void)a(0, 2), "HPM_CHECK");
}

}  // namespace
}  // namespace hpm
