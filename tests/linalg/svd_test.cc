#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace hpm {
namespace {

/// Reconstructs U * diag(S) * V^T.
Matrix Reconstruct(const SvdResult& svd) {
  Matrix s(svd.singular_values.size(), svd.singular_values.size());
  for (size_t i = 0; i < svd.singular_values.size(); ++i) {
    s(i, i) = svd.singular_values[i];
  }
  return svd.u * s * svd.v.Transposed();
}

/// Max |M^T M - I| over the n x n Gram matrix: orthonormality check.
double OrthonormalityError(const Matrix& m) {
  const Matrix gram = m.Transposed() * m;
  return gram.MaxAbsDiff(Matrix::Identity(gram.rows()));
}

TEST(SvdTest, DiagonalMatrix) {
  const Matrix a = Matrix::FromRows({{3, 0}, {0, 2}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(svd->singular_values[1], 2.0, 1e-10);
  EXPECT_LT(Reconstruct(*svd).MaxAbsDiff(a), 1e-10);
}

TEST(SvdTest, SingularValuesSortedDescending) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 5}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GE(svd->singular_values[0], svd->singular_values[1]);
  EXPECT_NEAR(svd->singular_values[0], 5.0, 1e-10);
}

TEST(SvdTest, TallMatrixReconstruction) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(Reconstruct(*svd).MaxAbsDiff(a), 1e-9);
  EXPECT_LT(OrthonormalityError(svd->u), 1e-9);
  EXPECT_LT(OrthonormalityError(svd->v), 1e-9);
}

TEST(SvdTest, WideMatrixHandledByTransposition) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(Reconstruct(*svd).MaxAbsDiff(a), 1e-9);
}

TEST(SvdTest, RankDeficientHasZeroSingularValue) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_GT(svd->singular_values[0], 1.0);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-9);
  EXPECT_LT(Reconstruct(*svd).MaxAbsDiff(a), 1e-9);
}

TEST(SvdTest, SingularValuesMatchFrobeniusNorm) {
  Random rng(3);
  Matrix a(6, 4);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 4; ++c) a(r, c) = rng.Gaussian(0, 2);
  }
  auto svd = ComputeSvd(a);
  ASSERT_TRUE(svd.ok());
  double sum_sq = 0.0;
  for (double s : svd->singular_values) sum_sq += s * s;
  EXPECT_NEAR(std::sqrt(sum_sq), a.FrobeniusNorm(), 1e-9);
}

TEST(SvdTest, RandomMatricesRoundTrip) {
  Random rng(11);
  for (int round = 0; round < 15; ++round) {
    const size_t m = 2 + rng.Uniform(8);
    const size_t n = 2 + rng.Uniform(8);
    Matrix a(m, n);
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.Gaussian(0, 1);
    }
    auto svd = ComputeSvd(a);
    ASSERT_TRUE(svd.ok());
    EXPECT_LT(Reconstruct(*svd).MaxAbsDiff(a), 1e-8);
    for (size_t i = 1; i < svd->singular_values.size(); ++i) {
      EXPECT_GE(svd->singular_values[i - 1],
                svd->singular_values[i] - 1e-12);
    }
  }
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_EQ(ComputeSvd(Matrix()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SvdLeastSquaresTest, MatchesExactSolution) {
  const Matrix a = Matrix::FromRows({{2, 0}, {0, 3}, {0, 0}});
  const Matrix b = Matrix::FromRows({{4}, {9}, {0}});
  auto x = SolveLeastSquaresSvd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 2.0, 1e-10);
  EXPECT_NEAR((*x)(1, 0), 3.0, 1e-10);
}

TEST(SvdLeastSquaresTest, RankDeficientGivesMinimumNorm) {
  // Columns identical: infinitely many LS solutions; the pseudo-inverse
  // picks the minimum-norm one, splitting the coefficient evenly.
  const Matrix a = Matrix::FromRows({{1, 1}, {1, 1}, {1, 1}});
  const Matrix b = Matrix::FromRows({{2}, {2}, {2}});
  auto x = SolveLeastSquaresSvd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 1.0, 1e-9);
  EXPECT_NEAR((*x)(1, 0), 1.0, 1e-9);
}

TEST(SvdLeastSquaresTest, ZeroMatrixYieldsZeroSolution) {
  auto x = SolveLeastSquaresSvd(Matrix(3, 2), Matrix(3, 1));
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 0.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 0.0, 1e-12);
}

TEST(SvdLeastSquaresTest, AgreesWithQrOnFullRank) {
  Random rng(23);
  Matrix a(12, 4);
  Matrix b(12, 2);
  for (size_t r = 0; r < 12; ++r) {
    for (size_t c = 0; c < 4; ++c) a(r, c) = rng.Gaussian(0, 1);
    b(r, 0) = rng.Gaussian(0, 1);
    b(r, 1) = rng.Gaussian(0, 1);
  }
  // Local include keeps the QR comparison honest.
  auto x_svd = SolveLeastSquaresSvd(a, b);
  ASSERT_TRUE(x_svd.ok());
  const Matrix grad = a.Transposed() * (a * *x_svd - b);
  EXPECT_LT(grad.FrobeniusNorm(), 1e-8);
}

TEST(SvdLeastSquaresTest, ShapeMismatchRejected) {
  EXPECT_EQ(
      SolveLeastSquaresSvd(Matrix(3, 2), Matrix(2, 1)).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpm
