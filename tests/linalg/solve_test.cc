#include "linalg/solve.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

TEST(SolveLinearSystemTest, SolvesSimpleSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  const Matrix b = Matrix::FromRows({{5}, {10}});
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 1.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, MultipleRightHandSides) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 2}});
  const Matrix b = Matrix::FromRows({{3, 4}, {6, 8}});
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 3.0, 1e-12);
  EXPECT_NEAR((*x)(0, 1), 4.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 3.0, 1e-12);
  EXPECT_NEAR((*x)(1, 1), 4.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Zero on the initial diagonal; only solvable with row swaps.
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  const Matrix b = Matrix::FromRows({{2}, {7}});
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 7.0, 1e-12);
  EXPECT_NEAR((*x)(1, 0), 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularDetected) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  const Matrix b = Matrix::FromRows({{1}, {2}});
  EXPECT_EQ(SolveLinearSystem(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SolveLinearSystemTest, ShapeErrors) {
  EXPECT_EQ(SolveLinearSystem(Matrix(2, 3), Matrix(2, 1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolveLinearSystem(Matrix(2, 2), Matrix(3, 1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolveLinearSystemTest, RandomSystemsRoundTrip) {
  Random rng(5);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(6);
    Matrix a(n, n);
    Matrix x_true(n, 2);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.Gaussian(0, 1);
      a(r, r) += static_cast<double>(n);  // Diagonally dominant.
      x_true(r, 0) = rng.Gaussian(0, 3);
      x_true(r, 1) = rng.Gaussian(0, 3);
    }
    const Matrix b = a * x_true;
    auto x = SolveLinearSystem(a, b);
    ASSERT_TRUE(x.ok());
    EXPECT_LT(x->MaxAbsDiff(x_true), 1e-8);
  }
}

TEST(LeastSquaresQrTest, ExactSystemRecovered) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  const Matrix x_true = Matrix::FromRows({{2}, {-1}});
  const Matrix b = a * x_true;
  auto x = SolveLeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(x->MaxAbsDiff(x_true), 1e-10);
}

TEST(LeastSquaresQrTest, OverdeterminedMinimisesResidual) {
  // Fit y = p0 + p1*t through noisy-ish points; the classic line fit.
  const Matrix a = Matrix::FromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
  const Matrix b = Matrix::FromRows({{1}, {3}, {5}, {7}});  // y = 1 + 2t.
  auto x = SolveLeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)(0, 0), 1.0, 1e-10);
  EXPECT_NEAR((*x)(1, 0), 2.0, 1e-10);
}

TEST(LeastSquaresQrTest, ResidualOrthogonalToColumns) {
  Random rng(17);
  const size_t m = 10, n = 3;
  Matrix a(m, n);
  Matrix b(m, 1);
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < n; ++c) a(r, c) = rng.Gaussian(0, 1);
    b(r, 0) = rng.Gaussian(0, 1);
  }
  auto x = SolveLeastSquaresQr(a, b);
  ASSERT_TRUE(x.ok());
  // Normal equations: A^T (A x - b) = 0.
  const Matrix residual = a * *x - b;
  const Matrix grad = a.Transposed() * residual;
  EXPECT_LT(grad.FrobeniusNorm(), 1e-9);
}

TEST(LeastSquaresQrTest, RankDeficientDetected) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}, {3, 6}});
  const Matrix b = Matrix::FromRows({{1}, {2}, {3}});
  EXPECT_EQ(SolveLeastSquaresQr(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LeastSquaresQrTest, ShapeErrors) {
  EXPECT_EQ(
      SolveLeastSquaresQr(Matrix(2, 3), Matrix(2, 1)).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      SolveLeastSquaresQr(Matrix(3, 2), Matrix(2, 1)).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpm
