#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hpm {
namespace {

/// Periodic two-anchor route so HPM can learn patterns.
constexpr Timestamp kPeriod = 30;

Point Route(Timestamp t) {
  return {50.0 * static_cast<double>(t) + 25.0, 400.0};
}

Trajectory MakeHistory(int days, double noise = 1.0, uint64_t seed = 8) {
  Random rng(seed);
  Trajectory traj;
  for (int d = 0; d < days; ++d) {
    for (Timestamp t = 0; t < kPeriod; ++t) {
      Point p = Route(t);
      p.x += rng.Gaussian(0, noise);
      p.y += rng.Gaussian(0, noise);
      traj.Append(p);
    }
  }
  return traj;
}

HybridPredictorOptions Options() {
  HybridPredictorOptions options;
  options.regions.period = kPeriod;
  options.regions.dbscan.eps = 15.0;
  options.regions.dbscan.min_pts = 4;
  options.regions.limit_sub_trajectories = 30;
  options.mining.min_confidence = 0.2;
  options.mining.min_support = 3;
  options.distant_threshold = 10;
  return options;
}

WorkloadConfig Workload(Timestamp length) {
  WorkloadConfig c;
  c.num_queries = 25;
  c.recent_length = 6;
  c.prediction_length = length;
  c.seed = 99;
  return c;
}

class MetricsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new Trajectory(MakeHistory(40));
    auto trained = HybridPredictor::Train(*history_, Options());
    ASSERT_TRUE(trained.ok());
    predictor_ = trained->release();
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete history_;
  }
  static Trajectory* history_;
  static HybridPredictor* predictor_;
};

Trajectory* MetricsTest::history_ = nullptr;
HybridPredictor* MetricsTest::predictor_ = nullptr;

TEST_F(MetricsTest, HpmAccurateOnPatternedData) {
  auto cases = MakeQueryCases(*history_, kPeriod, 30, Workload(8));
  ASSERT_TRUE(cases.ok());
  auto result = EvaluateHpm(*predictor_, *cases);
  ASSERT_TRUE(result.ok());
  // On clean periodic data the pattern answer is the region centre:
  // error within a few noise standard deviations.
  EXPECT_LT(result->mean_error, 20.0);
  EXPECT_GT(result->pattern_answers, 0);
  EXPECT_GE(result->mean_response_ms, 0.0);
  EXPECT_EQ(result->pattern_answers + result->motion_answers, 25);
}

TEST_F(MetricsTest, MedianLeqMeanUnderOutliers) {
  auto cases = MakeQueryCases(*history_, kPeriod, 30, Workload(8));
  ASSERT_TRUE(cases.ok());
  auto result = EvaluateHpm(*predictor_, *cases);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->mean_error, 0.0);
  EXPECT_GE(result->median_error, 0.0);
}

TEST_F(MetricsTest, RmfDegradesWithPredictionLength) {
  auto near_cases = MakeQueryCases(*history_, kPeriod, 30, Workload(3));
  auto far_cases = MakeQueryCases(*history_, kPeriod, 30, Workload(20));
  ASSERT_TRUE(near_cases.ok());
  ASSERT_TRUE(far_cases.ok());
  auto near_result = EvaluateRmf(*near_cases);
  auto far_result = EvaluateRmf(*far_cases);
  ASSERT_TRUE(near_result.ok());
  ASSERT_TRUE(far_result.ok());
  EXPECT_LT(near_result->mean_error, far_result->mean_error);
  EXPECT_EQ(near_result->pattern_answers, 0);
}

TEST_F(MetricsTest, HpmBeatsRmfAtDistantTime) {
  // The headline claim of the paper, in miniature.
  auto cases = MakeQueryCases(*history_, kPeriod, 30, Workload(20));
  ASSERT_TRUE(cases.ok());
  auto hpm = EvaluateHpm(*predictor_, *cases);
  auto rmf = EvaluateRmf(*cases);
  ASSERT_TRUE(hpm.ok());
  ASSERT_TRUE(rmf.ok());
  EXPECT_LT(hpm->mean_error, rmf->mean_error);
}

TEST_F(MetricsTest, LinearBaselineRuns) {
  auto cases = MakeQueryCases(*history_, kPeriod, 30, Workload(5));
  ASSERT_TRUE(cases.ok());
  auto result = EvaluateLinear(*cases);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->mean_error, 0.0);
  EXPECT_EQ(result->motion_answers, 25);
}

TEST(MetricsEdgeTest, EmptyCaseListYieldsZeroes) {
  auto history = MakeHistory(35);
  auto predictor = HybridPredictor::Train(history, Options());
  ASSERT_TRUE(predictor.ok());
  auto result = EvaluateHpm(**predictor, {});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_error, 0.0);
  EXPECT_EQ(result->pattern_answers, 0);
}

TEST(MetricsEdgeTest, MotionBaselineHandlesShortHistory) {
  // A one-point history cannot fit RMF; the baseline must fall back to
  // the last known location rather than fail.
  QueryCase qc;
  qc.query.recent_movements = {{0, {10, 10}}};
  qc.query.current_time = 0;
  qc.query.query_time = 5;
  qc.actual = {13, 14};
  auto result = EvaluateRmf({qc});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->mean_error, 5.0);
}

}  // namespace
}  // namespace hpm
