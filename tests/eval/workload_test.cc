#include "eval/workload.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

Trajectory MakeRamp(int n) {
  Trajectory t;
  for (int i = 0; i < n; ++i) {
    t.Append({static_cast<double>(i), static_cast<double>(i)});
  }
  return t;
}

WorkloadConfig Config(int queries = 20, int recent = 5,
                      Timestamp length = 10) {
  WorkloadConfig c;
  c.num_queries = queries;
  c.recent_length = recent;
  c.prediction_length = length;
  c.seed = 7;
  return c;
}

TEST(WorkloadTest, ProducesRequestedQueryCount) {
  const Trajectory full = MakeRamp(100 * 10);  // 10 periods of 100.
  auto cases = MakeQueryCases(full, 100, 5, Config(30));
  ASSERT_TRUE(cases.ok());
  EXPECT_EQ(cases->size(), 30u);
}

TEST(WorkloadTest, QueriesAreStructurallyValid) {
  const Trajectory full = MakeRamp(100 * 10);
  auto cases = MakeQueryCases(full, 100, 5, Config());
  ASSERT_TRUE(cases.ok());
  for (const QueryCase& qc : *cases) {
    EXPECT_TRUE(ValidateQuery(qc.query).ok());
    EXPECT_EQ(qc.query.PredictionLength(), 10);
    EXPECT_EQ(qc.query.recent_movements.size(), 5u);
  }
}

TEST(WorkloadTest, QueriesComeFromHeldOutPeriods) {
  const Trajectory full = MakeRamp(100 * 10);
  const int train_subs = 7;
  auto cases = MakeQueryCases(full, 100, train_subs, Config());
  ASSERT_TRUE(cases.ok());
  for (const QueryCase& qc : *cases) {
    EXPECT_GE(qc.query.current_time, train_subs * 100);
  }
}

TEST(WorkloadTest, QueryStaysWithinOnePeriod) {
  const Trajectory full = MakeRamp(100 * 10);
  auto cases = MakeQueryCases(full, 100, 5, Config(50, 5, 40));
  ASSERT_TRUE(cases.ok());
  for (const QueryCase& qc : *cases) {
    // Current and query offsets lie in the same period instance.
    EXPECT_EQ(qc.query.current_time / 100, qc.query.query_time / 100);
  }
}

TEST(WorkloadTest, ActualMatchesTrajectory) {
  const Trajectory full = MakeRamp(100 * 10);
  auto cases = MakeQueryCases(full, 100, 5, Config());
  ASSERT_TRUE(cases.ok());
  for (const QueryCase& qc : *cases) {
    EXPECT_EQ(qc.actual, full.At(qc.query.query_time));
    EXPECT_EQ(qc.query.recent_movements.back().location,
              full.At(qc.query.current_time));
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  const Trajectory full = MakeRamp(100 * 10);
  auto a = MakeQueryCases(full, 100, 5, Config());
  auto b = MakeQueryCases(full, 100, 5, Config());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].query.current_time, (*b)[i].query.current_time);
    EXPECT_EQ((*a)[i].query.query_time, (*b)[i].query.query_time);
  }
}

TEST(WorkloadTest, ErrorsOnBadConfiguration) {
  const Trajectory full = MakeRamp(100 * 10);
  EXPECT_EQ(MakeQueryCases(full, 100, 5, Config(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeQueryCases(full, 100, 5, Config(10, 1)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      MakeQueryCases(full, 100, 5, Config(10, 5, 0)).status().code(),
      StatusCode::kInvalidArgument);
  // No held-out periods.
  EXPECT_EQ(MakeQueryCases(full, 100, 10, Config()).status().code(),
            StatusCode::kInvalidArgument);
  // Period too short for the windows.
  EXPECT_EQ(
      MakeQueryCases(full, 100, 5, Config(10, 60, 60)).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpm
