#include "datagen/seed_generators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm {
namespace {

SeedConfig Config(Timestamp period = 300, uint64_t seed = 5) {
  SeedConfig c;
  c.period = period;
  c.extent = 10000.0;
  c.seed = seed;
  return c;
}

void ExpectInExtent(const std::vector<Point>& pts, double extent) {
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, extent);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, extent);
  }
}

double MaxStep(const std::vector<Point>& pts) {
  double max_step = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    max_step = std::max(max_step, Distance(pts[i - 1], pts[i]));
  }
  return max_step;
}

double PathLength(const std::vector<Point>& pts) {
  double len = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    len += Distance(pts[i - 1], pts[i]);
  }
  return len;
}

TEST(ResampleUniformTest, EndpointsPreservedAndSpacingUniform) {
  const std::vector<Point> line = {{0, 0}, {10, 0}, {10, 10}};
  const auto samples = ResampleUniform(line, 21);
  ASSERT_EQ(samples.size(), 21u);
  EXPECT_LT(Distance(samples.front(), {0, 0}), 1e-9);
  EXPECT_LT(Distance(samples.back(), {10, 10}), 1e-9);
  const double step = PathLength(line) / 20.0;
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(Distance(samples[i - 1], samples[i]), step, 1e-6);
  }
}

TEST(ResampleUniformTest, DegeneratePolylineRepeatsPoint) {
  const std::vector<Point> still = {{5, 5}, {5, 5}};
  const auto samples = ResampleUniform(still, 10);
  ASSERT_EQ(samples.size(), 10u);
  for (const Point& p : samples) EXPECT_EQ(p, Point(5, 5));
}

class SeedGeneratorTest
    : public ::testing::TestWithParam<
          std::vector<Point> (*)(const SeedConfig&)> {};

TEST_P(SeedGeneratorTest, ProducesPeriodPointsInsideExtent) {
  const auto make = GetParam();
  const auto seed = make(Config(300));
  EXPECT_EQ(seed.size(), 300u);
  ExpectInExtent(seed, 10000.0);
}

TEST_P(SeedGeneratorTest, DeterministicGivenSeed) {
  const auto make = GetParam();
  const auto a = make(Config(100, 9));
  const auto b = make(Config(100, 9));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(SeedGeneratorTest, DifferentSeedsDiffer) {
  const auto make = GetParam();
  const auto a = make(Config(100, 1));
  const auto b = make(Config(100, 2));
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += Distance(a[i], b[i]);
  EXPECT_GT(total / static_cast<double>(a.size()), 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SeedGeneratorTest,
                         ::testing::Values(&MakeBikeSeed, &MakeCowSeed,
                                           &MakeCarSeed,
                                           &MakeAirplaneSeed));

TEST(SeedCharacterTest, CowMovesSlowest) {
  const auto cow = MakeCowSeed(Config());
  const auto plane = MakeAirplaneSeed(Config());
  EXPECT_LT(PathLength(cow), PathLength(plane));
}

TEST(SeedCharacterTest, CarFollowsAxisAlignedRoads) {
  const auto car = MakeCarSeed(Config());
  // Steps are axis-aligned except where resampling straddles an
  // intersection corner: the diagonal steps are rare.
  int diagonal = 0;
  for (size_t i = 1; i < car.size(); ++i) {
    const double dx = std::fabs(car[i].x - car[i - 1].x);
    const double dy = std::fabs(car[i].y - car[i - 1].y);
    if (std::min(dx, dy) > 1e-6) ++diagonal;
  }
  EXPECT_LT(diagonal, static_cast<int>(car.size()) / 5);
  // And the route turns at least once.
  bool moved_x = false, moved_y = false;
  for (size_t i = 1; i < car.size(); ++i) {
    moved_x |= std::fabs(car[i].x - car[i - 1].x) > 1.0;
    moved_y |= std::fabs(car[i].y - car[i - 1].y) > 1.0;
  }
  EXPECT_TRUE(moved_x);
  EXPECT_TRUE(moved_y);
}

TEST(SeedCharacterTest, AirplaneFliesStraightLegs) {
  const auto plane = MakeAirplaneSeed(Config());
  // Count direction changes above 20 degrees: a few leg turns only.
  int turns = 0;
  for (size_t i = 2; i < plane.size(); ++i) {
    const Point v1 = plane[i - 1] - plane[i - 2];
    const Point v2 = plane[i] - plane[i - 1];
    const double n1 = v1.Norm(), n2 = v2.Norm();
    if (n1 < 1e-9 || n2 < 1e-9) continue;
    const double cosine = (v1.x * v2.x + v1.y * v2.y) / (n1 * n2);
    if (cosine < std::cos(20.0 * M_PI / 180.0)) ++turns;
  }
  EXPECT_GE(turns, 1);
  EXPECT_LE(turns, 8);
}

TEST(SeedCharacterTest, BikeStepsAreSmooth) {
  const auto bike = MakeBikeSeed(Config());
  // Uniform resampling: consecutive steps nearly equal.
  const double mean_step =
      PathLength(bike) / static_cast<double>(bike.size() - 1);
  EXPECT_LT(MaxStep(bike), mean_step * 1.5);
}

}  // namespace
}  // namespace hpm
