#include "datagen/periodic_generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hpm {
namespace {

std::vector<Point> StraightRoute(Timestamp period, double y) {
  std::vector<Point> route;
  for (Timestamp t = 0; t < period; ++t) {
    route.push_back({10.0 * static_cast<double>(t), y});
  }
  return route;
}

PeriodicGeneratorConfig Config(Timestamp period = 50, int subs = 30,
                               double f = 0.8) {
  PeriodicGeneratorConfig c;
  c.period = period;
  c.num_sub_trajectories = subs;
  c.pattern_probability = f;
  c.noise_sigma = 2.0;
  c.time_jitter = 1;
  c.extent = 10000.0;
  c.seed = 21;
  return c;
}

/// Fraction of sub-trajectories whose mean distance to the route is
/// small (a "pattern day").
double PatternDayFraction(const Trajectory& traj,
                          const std::vector<Point>& route,
                          Timestamp period) {
  const size_t subs = traj.NumSubTrajectories(period);
  int pattern_days = 0;
  for (size_t s = 0; s < subs; ++s) {
    double total = 0.0;
    for (Timestamp t = 0; t < period; ++t) {
      total += Distance(traj.At(static_cast<Timestamp>(s) * period + t),
                        route[static_cast<size_t>(t)]);
    }
    if (total / static_cast<double>(period) < 50.0) ++pattern_days;
  }
  return static_cast<double>(pattern_days) / static_cast<double>(subs);
}

TEST(PeriodicGeneratorTest, ProducesExpectedLength) {
  const auto config = Config(50, 30);
  auto traj = GeneratePeriodicTrajectory(
      {{StraightRoute(50, 100.0), 1.0}}, config);
  ASSERT_TRUE(traj.ok());
  EXPECT_EQ(traj->size(), 50u * 30u);
}

TEST(PeriodicGeneratorTest, StaysInsideExtent) {
  auto traj = GeneratePeriodicTrajectory(
      {{StraightRoute(50, 9999.0), 1.0}}, Config());
  ASSERT_TRUE(traj.ok());
  for (const Point& p : traj->points()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 10000.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 10000.0);
  }
}

TEST(PeriodicGeneratorTest, PatternProbabilityControlsSimilarDays) {
  const auto route = StraightRoute(50, 5000.0);
  auto strong =
      GeneratePeriodicTrajectory({{route, 1.0}}, Config(50, 100, 0.9));
  auto weak =
      GeneratePeriodicTrajectory({{route, 1.0}}, Config(50, 100, 0.3));
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  const double strong_frac = PatternDayFraction(*strong, route, 50);
  const double weak_frac = PatternDayFraction(*weak, route, 50);
  EXPECT_NEAR(strong_frac, 0.9, 0.1);
  EXPECT_NEAR(weak_frac, 0.3, 0.12);
  EXPECT_GT(strong_frac, weak_frac);
}

TEST(PeriodicGeneratorTest, ExtremeProbabilities) {
  const auto route = StraightRoute(50, 5000.0);
  auto always =
      GeneratePeriodicTrajectory({{route, 1.0}}, Config(50, 20, 1.0));
  ASSERT_TRUE(always.ok());
  EXPECT_DOUBLE_EQ(PatternDayFraction(*always, route, 50), 1.0);
  auto never =
      GeneratePeriodicTrajectory({{route, 1.0}}, Config(50, 20, 0.0));
  ASSERT_TRUE(never.ok());
  EXPECT_LT(PatternDayFraction(*never, route, 50), 0.2);
}

TEST(PeriodicGeneratorTest, MultipleRoutesBothUsed) {
  const auto route_a = StraightRoute(50, 1000.0);
  const auto route_b = StraightRoute(50, 8000.0);
  auto traj = GeneratePeriodicTrajectory(
      {{route_a, 0.6}, {route_b, 0.4}}, Config(50, 100, 1.0));
  ASSERT_TRUE(traj.ok());
  const double frac_a = PatternDayFraction(*traj, route_a, 50);
  const double frac_b = PatternDayFraction(*traj, route_b, 50);
  EXPECT_NEAR(frac_a, 0.6, 0.15);
  EXPECT_NEAR(frac_b, 0.4, 0.15);
  EXPECT_NEAR(frac_a + frac_b, 1.0, 1e-9);
}

TEST(PeriodicGeneratorTest, DeterministicForSeed) {
  const auto route = StraightRoute(20, 100.0);
  auto a = GeneratePeriodicTrajectory({{route, 1.0}}, Config(20, 5));
  auto b = GeneratePeriodicTrajectory({{route, 1.0}}, Config(20, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->points()[i], b->points()[i]);
  }
}

TEST(PeriodicGeneratorTest, NoiseSigmaControlsSpread) {
  const auto route = StraightRoute(50, 5000.0);
  auto tight_config = Config(50, 50, 1.0);
  tight_config.noise_sigma = 1.0;
  auto loose_config = Config(50, 50, 1.0);
  loose_config.noise_sigma = 50.0;
  auto tight = GeneratePeriodicTrajectory({{route, 1.0}}, tight_config);
  auto loose = GeneratePeriodicTrajectory({{route, 1.0}}, loose_config);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  auto mean_error = [&route](const Trajectory& t) {
    double total = 0.0;
    for (size_t i = 0; i < t.size(); ++i) {
      total += Distance(t.points()[i], route[i % route.size()]);
    }
    return total / static_cast<double>(t.size());
  };
  EXPECT_LT(mean_error(*tight) * 5.0, mean_error(*loose));
}

TEST(PeriodicGeneratorTest, InvalidConfigurationsRejected) {
  const auto route = StraightRoute(50, 100.0);
  auto bad_period = Config();
  bad_period.period = 1;
  EXPECT_EQ(GeneratePeriodicTrajectory({{route, 1.0}}, bad_period)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto bad_subs = Config();
  bad_subs.num_sub_trajectories = 0;
  EXPECT_EQ(GeneratePeriodicTrajectory({{route, 1.0}}, bad_subs)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto bad_prob = Config();
  bad_prob.pattern_probability = 1.5;
  EXPECT_EQ(GeneratePeriodicTrajectory({{route, 1.0}}, bad_prob)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // No routes.
  EXPECT_EQ(GeneratePeriodicTrajectory({}, Config()).status().code(),
            StatusCode::kInvalidArgument);
  // Route length mismatch.
  EXPECT_EQ(GeneratePeriodicTrajectory({{StraightRoute(49, 0), 1.0}},
                                       Config())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Bad weights.
  EXPECT_EQ(GeneratePeriodicTrajectory({{route, -1.0}}, Config())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GeneratePeriodicTrajectory({{route, 0.0}}, Config())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hpm
