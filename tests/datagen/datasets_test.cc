#include "datagen/datasets.h"

#include <gtest/gtest.h>

namespace hpm {
namespace {

TEST(DatasetsTest, NamesAndKinds) {
  EXPECT_STREQ(DatasetName(DatasetKind::kBike), "Bike");
  EXPECT_STREQ(DatasetName(DatasetKind::kCow), "Cow");
  EXPECT_STREQ(DatasetName(DatasetKind::kCar), "Car");
  EXPECT_STREQ(DatasetName(DatasetKind::kAirplane), "Airplane");
  EXPECT_EQ(AllDatasetKinds().size(), 4u);
}

TEST(DatasetsTest, DefaultConfigMatchesPaperSetup) {
  for (const DatasetKind kind : AllDatasetKinds()) {
    const PeriodicGeneratorConfig config = DefaultConfig(kind);
    EXPECT_EQ(config.period, 300);                // T = 300.
    EXPECT_EQ(config.num_sub_trajectories, 200);  // 200 sub-trajectories.
    EXPECT_DOUBLE_EQ(config.extent, 10000.0);     // [0,10000]^2.
  }
}

TEST(DatasetsTest, PatternProbabilityOrderingBikeToAirplane) {
  // The paper sets f so Bike > Cow > Car > Airplane.
  const double bike = DefaultConfig(DatasetKind::kBike).pattern_probability;
  const double cow = DefaultConfig(DatasetKind::kCow).pattern_probability;
  const double car = DefaultConfig(DatasetKind::kCar).pattern_probability;
  const double airplane =
      DefaultConfig(DatasetKind::kAirplane).pattern_probability;
  EXPECT_GT(bike, cow);
  EXPECT_GT(cow, car);
  EXPECT_GT(car, airplane);
}

TEST(DatasetsTest, GeneratedShapeMatchesConfig) {
  PeriodicGeneratorConfig config = DefaultConfig(DatasetKind::kCar);
  config.period = 60;
  config.num_sub_trajectories = 12;
  const Dataset dataset = MakeDataset(DatasetKind::kCar, config);
  EXPECT_EQ(dataset.kind, DatasetKind::kCar);
  EXPECT_EQ(dataset.trajectory.size(), 60u * 12u);
  EXPECT_EQ(dataset.routes.size(), 2u);
  for (const SeedRoute& r : dataset.routes) {
    EXPECT_EQ(r.points.size(), 60u);
  }
}

TEST(DatasetsTest, DataInsideExtent) {
  PeriodicGeneratorConfig config = DefaultConfig(DatasetKind::kBike);
  config.period = 50;
  config.num_sub_trajectories = 10;
  const Dataset dataset = MakeDataset(DatasetKind::kBike, config);
  for (const Point& p : dataset.trajectory.points()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, config.extent);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, config.extent);
  }
}

TEST(DatasetsTest, Deterministic) {
  PeriodicGeneratorConfig config = DefaultConfig(DatasetKind::kCow);
  config.period = 40;
  config.num_sub_trajectories = 5;
  const Dataset a = MakeDataset(DatasetKind::kCow, config);
  const Dataset b = MakeDataset(DatasetKind::kCow, config);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory.points()[i], b.trajectory.points()[i]);
  }
}

TEST(DatasetsTest, KindsProduceDifferentData) {
  PeriodicGeneratorConfig config = DefaultConfig(DatasetKind::kBike);
  config.period = 40;
  config.num_sub_trajectories = 5;
  const Dataset bike = MakeDataset(DatasetKind::kBike, config);
  config = DefaultConfig(DatasetKind::kCar);
  config.period = 40;
  config.num_sub_trajectories = 5;
  const Dataset car = MakeDataset(DatasetKind::kCar, config);
  double total = 0.0;
  for (size_t i = 0; i < bike.trajectory.size(); ++i) {
    total +=
        Distance(bike.trajectory.points()[i], car.trajectory.points()[i]);
  }
  EXPECT_GT(total / static_cast<double>(bike.trajectory.size()), 100.0);
}

}  // namespace
}  // namespace hpm
