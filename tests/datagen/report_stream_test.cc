// ReportStream: deterministic continuous feed for ingest tests and the
// throughput bench — same seed, same reports; round-robin fleet order;
// paced arrivals with bounded jitter; drift that actually changes the
// route (and only at period boundaries).

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/report_stream.h"

namespace hpm {
namespace {

ReportStreamConfig BaseConfig() {
  ReportStreamConfig config;
  config.num_objects = 3;
  config.period = 10;
  config.pattern_probability = 1.0;
  config.noise_sigma = 0.0;
  config.seed = 42;
  return config;
}

TEST(ReportStreamTest, DeterministicAcrossInstances) {
  ReportStreamConfig config = BaseConfig();
  config.noise_sigma = 3.0;
  config.pattern_probability = 0.8;
  config.rate_per_second = 100.0;
  config.arrival_jitter = 0.5;
  config.drift_every_periods = 2;
  ReportStream a(config);
  ReportStream b(config);
  for (int i = 0; i < 400; ++i) {
    const StreamedReport ra = a.Next();
    const StreamedReport rb = b.Next();
    EXPECT_EQ(ra.object_id, rb.object_id);
    EXPECT_EQ(ra.time, rb.time);
    EXPECT_EQ(ra.location.x, rb.location.x);
    EXPECT_EQ(ra.location.y, rb.location.y);
    EXPECT_EQ(ra.arrival_seconds, rb.arrival_seconds);
  }
  EXPECT_EQ(a.emitted(), 400u);
}

TEST(ReportStreamTest, RoundRobinWithPerObjectClocks) {
  ReportStream stream(BaseConfig());
  std::map<int64_t, Timestamp> next_time;
  const std::vector<StreamedReport> reports = stream.Take(90);
  for (size_t i = 0; i < reports.size(); ++i) {
    const StreamedReport& r = reports[i];
    EXPECT_EQ(r.object_id, static_cast<int64_t>(i % 3) + 1);
    EXPECT_EQ(r.time, next_time[r.object_id]);
    ++next_time[r.object_id];
    EXPECT_GE(r.location.x, 0.0);
    EXPECT_LE(r.location.x, 1000.0);
    EXPECT_GE(r.location.y, 0.0);
    EXPECT_LE(r.location.y, 1000.0);
    EXPECT_EQ(r.arrival_seconds, 0.0);  // pacing off
  }
}

TEST(ReportStreamTest, StableRouteRepeatsEveryPeriod) {
  // No noise, no wander, no drift: an object's report at time t equals
  // its report at t + period, exactly.
  ReportStreamConfig config = BaseConfig();
  config.num_objects = 1;
  ReportStream stream(config);
  const std::vector<StreamedReport> reports = stream.Take(50);
  for (size_t i = 0; i + 10 < reports.size(); ++i) {
    EXPECT_EQ(reports[i].location.x, reports[i + 10].location.x);
    EXPECT_EQ(reports[i].location.y, reports[i + 10].location.y);
  }
}

TEST(ReportStreamTest, DriftChangesRouteAtPeriodBoundary) {
  ReportStreamConfig config = BaseConfig();
  config.num_objects = 1;
  config.drift_every_periods = 3;
  config.drift_fraction = 1.0;
  ReportStream stream(config);
  const std::vector<StreamedReport> reports = stream.Take(60);
  // Periods 0..2 share the route; period 3 (a drift boundary) re-draws
  // every waypoint, so at least one sample differs from period 2's.
  bool differs = false;
  for (size_t t = 0; t < 10; ++t) {
    if (reports[20 + t].location.x != reports[30 + t].location.x ||
        reports[20 + t].location.y != reports[30 + t].location.y) {
      differs = true;
    }
    EXPECT_EQ(reports[t].location.x, reports[10 + t].location.x);
  }
  EXPECT_TRUE(differs);
}

TEST(ReportStreamTest, PacedArrivalsRespectRateAndJitter) {
  ReportStreamConfig config = BaseConfig();
  config.rate_per_second = 200.0;
  config.arrival_jitter = 0.25;
  ReportStream stream(config);
  const double mean_gap = 1.0 / 200.0;
  double previous = 0.0;
  double sum = 0.0;
  const int n = 600;
  for (int i = 0; i < n; ++i) {
    const StreamedReport r = stream.Next();
    const double gap = r.arrival_seconds - previous;
    EXPECT_GT(gap, 0.0);
    EXPECT_GE(gap, mean_gap * 0.75 - 1e-12);
    EXPECT_LE(gap, mean_gap * 1.25 + 1e-12);
    sum += gap;
    previous = r.arrival_seconds;
  }
  // The jitter is symmetric: the realised rate stays near the target.
  EXPECT_NEAR(sum / n, mean_gap, mean_gap * 0.05);
}

}  // namespace
}  // namespace hpm
