// Singular value decomposition and SVD-based least squares.
//
// RMF (Tao et al., SIGMOD'04) fits its coefficient matrices with an SVD
// pseudo-inverse — the paper's cost discussion ("n^3 due to Single Value
// Decomposition") refers to exactly this step — so hpm carries its own
// SVD rather than an external BLAS dependency.

#ifndef HPM_LINALG_SVD_H_
#define HPM_LINALG_SVD_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace hpm {

/// Thin SVD of an m x n matrix A (m >= n is handled directly; m < n is
/// handled by transposing internally): A = U * diag(S) * V^T with
/// U m x n, S length n descending, V n x n.
struct SvdResult {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};

/// Computes the SVD via one-sided Jacobi rotations. Always succeeds for
/// finite input; returns InvalidArgument on empty matrices.
StatusOr<SvdResult> ComputeSvd(const Matrix& a);

/// Minimum-norm least-squares solution of A * X = B using the SVD
/// pseudo-inverse: singular values below `rcond * s_max` are treated as
/// zero, which is what makes RMF fitting robust to degenerate recent
/// movement (e.g. a stationary object). Returns InvalidArgument on shape
/// mismatch.
StatusOr<Matrix> SolveLeastSquaresSvd(const Matrix& a, const Matrix& b,
                                      double rcond = 1e-10);

}  // namespace hpm

#endif  // HPM_LINALG_SVD_H_
