#include "linalg/matrix.h"

#include <cmath>
#include <cstdio>

#include "common/status.h"

namespace hpm {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    HPM_CHECK(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(size_t r, size_t c) {
  HPM_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(size_t r, size_t c) const {
  HPM_CHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::operator+(const Matrix& o) const {
  HPM_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] + o.data_[i];
  return m;
}

Matrix Matrix::operator-(const Matrix& o) const {
  HPM_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] - o.data_[i];
  return m;
}

Matrix Matrix::operator*(const Matrix& o) const {
  HPM_CHECK(cols_ == o.rows_);
  Matrix m(rows_, o.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = data_[r * cols_ + k];
      if (a == 0.0) continue;
      for (size_t c = 0; c < o.cols_; ++c) {
        m.data_[r * o.cols_ + c] += a * o.data_[k * o.cols_ + c];
      }
    }
  }
  return m;
}

Matrix Matrix::operator*(double s) const {
  Matrix m(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) m.data_[i] = data_[i] * s;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix m(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) m(c, r) = (*this)(r, c);
  }
  return m;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& o) const {
  HPM_CHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - o.data_[i]));
  }
  return max_diff;
}

std::string Matrix::ToString() const {
  std::string s;
  char buf[64];
  for (size_t r = 0; r < rows_; ++r) {
    s += "[ ";
    for (size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%10.4f ", (*this)(r, c));
      s += buf;
    }
    s += "]\n";
  }
  return s;
}

}  // namespace hpm
