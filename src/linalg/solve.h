// Direct linear solvers: Gaussian elimination and QR least squares.

#ifndef HPM_LINALG_SOLVE_H_
#define HPM_LINALG_SOLVE_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace hpm {

/// Solves A * X = B for square A via Gaussian elimination with partial
/// pivoting. Returns InvalidArgument on shape mismatch and
/// FailedPrecondition when A is (numerically) singular.
StatusOr<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b);

/// Solves the least-squares problem min ||A * X - B||_F for A with
/// rows >= cols, via Householder QR. Returns InvalidArgument on shape
/// mismatch and FailedPrecondition when A is rank deficient (use
/// SolveLeastSquaresSvd for a minimum-norm solution in that case).
StatusOr<Matrix> SolveLeastSquaresQr(const Matrix& a, const Matrix& b);

}  // namespace hpm

#endif  // HPM_LINALG_SOLVE_H_
