// Small dense linear-algebra substrate.
//
// The Recursive Motion Function (Tao et al., SIGMOD'04) fits its
// coefficient matrices by SVD-based least squares; this module provides
// the dense matrix type those solvers operate on. Matrices here are tiny
// (tens of rows/columns), so a simple row-major layout is the right tool.

#ifndef HPM_LINALG_MATRIX_H_
#define HPM_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hpm {

/// Dense row-major matrix of doubles.
///
/// Dimension mismatches are programmer errors and abort via HPM_CHECK;
/// data-dependent failures (singular systems) surface as Status from the
/// solver functions in solve.h / svd.h.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates `rows` x `cols`, zero-filled.
  Matrix(size_t rows, size_t cols);

  /// Creates from nested initializer data; all rows must be equal length.
  static Matrix FromRows(
      const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Element access. Preconditions: r < rows(), c < cols().
  double& operator()(size_t r, size_t c);
  double operator()(size_t r, size_t c) const;

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;

  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest absolute element difference against `o`; used by tests.
  /// Precondition: same shape.
  double MaxAbsDiff(const Matrix& o) const;

  /// Multi-line human-readable dump.
  std::string ToString() const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace hpm

#endif  // HPM_LINALG_MATRIX_H_
