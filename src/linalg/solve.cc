#include "linalg/solve.h"

#include <cmath>
#include <vector>

namespace hpm {

StatusOr<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("A must be square");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("A and B row counts differ");
  }
  const size_t n = a.rows();
  const size_t m = b.cols();
  Matrix lu = a;
  Matrix x = b;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(lu(r, col)) > best) {
        best = std::fabs(lu(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      for (size_t c = 0; c < m; ++c) std::swap(x(col, c), x(pivot, c));
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) lu(r, c) -= factor * lu(col, c);
      for (size_t c = 0; c < m; ++c) x(r, c) -= factor * x(col, c);
    }
  }
  // Back substitution.
  for (size_t col = n; col-- > 0;) {
    for (size_t c = 0; c < m; ++c) {
      double sum = x(col, c);
      for (size_t k = col + 1; k < n; ++k) sum -= lu(col, k) * x(k, c);
      x(col, c) = sum / lu(col, col);
    }
  }
  return x;
}

StatusOr<Matrix> SolveLeastSquaresQr(const Matrix& a, const Matrix& b) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("A must have rows >= cols");
  }
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("A and B row counts differ");
  }
  const size_t m = a.rows();
  const size_t n = a.cols();
  const size_t p = b.cols();
  Matrix r = a;
  Matrix qtb = b;

  // Householder QR: annihilate below-diagonal entries column by column,
  // applying the same reflections to B so that R * X = Q^T B remains.
  std::vector<double> v(m);
  for (size_t col = 0; col < n; ++col) {
    double norm = 0.0;
    for (size_t i = col; i < m; ++i) norm += r(i, col) * r(i, col);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      return Status::FailedPrecondition("A is rank deficient");
    }
    const double alpha = r(col, col) >= 0 ? -norm : norm;
    double vnorm2 = 0.0;
    for (size_t i = col; i < m; ++i) {
      v[i] = r(i, col);
      if (i == col) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 < 1e-24) continue;  // Column already in triangular form.
    auto apply = [&](Matrix* mat, size_t cols) {
      for (size_t c = 0; c < cols; ++c) {
        double dot = 0.0;
        for (size_t i = col; i < m; ++i) dot += v[i] * (*mat)(i, c);
        const double scale = 2.0 * dot / vnorm2;
        for (size_t i = col; i < m; ++i) (*mat)(i, c) -= scale * v[i];
      }
    };
    apply(&r, n);
    apply(&qtb, p);
  }

  // Back substitution on the upper-triangular n x n block.
  Matrix x(n, p);
  for (size_t col = n; col-- > 0;) {
    if (std::fabs(r(col, col)) < 1e-12) {
      return Status::FailedPrecondition("A is rank deficient");
    }
    for (size_t c = 0; c < p; ++c) {
      double sum = qtb(col, c);
      for (size_t k = col + 1; k < n; ++k) sum -= r(col, k) * x(k, c);
      x(col, c) = sum / r(col, col);
    }
  }
  return x;
}

}  // namespace hpm
