#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hpm {

namespace {

// One-sided Jacobi SVD for m >= n: repeatedly orthogonalises pairs of
// columns of a working copy W of A while accumulating the rotations in V,
// until all column pairs are orthogonal. Then s_j = ||W_j|| and
// U_j = W_j / s_j.
StatusOr<SvdResult> JacobiSvdTall(const Matrix& a) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::Identity(n);

  const double eps = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (std::fabs(gamma) <= eps * std::sqrt(alpha * beta)) continue;
        converged = false;
        // Jacobi rotation that zeroes the (p,q) inner product.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  std::vector<double> sigma(n);
  Matrix u(m, n);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 0.0) {
      for (size_t i = 0; i < m; ++i) u(i, j) = w(i, j) / norm;
    }
  }

  // Sort singular values descending, permuting U and V columns to match.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&sigma](size_t x, size_t y) { return sigma[x] > sigma[y]; });
  SvdResult result{Matrix(m, n), std::vector<double>(n), Matrix(n, n)};
  for (size_t j = 0; j < n; ++j) {
    const size_t src = order[j];
    result.singular_values[j] = sigma[src];
    for (size_t i = 0; i < m; ++i) result.u(i, j) = u(i, src);
    for (size_t i = 0; i < n; ++i) result.v(i, j) = v(i, src);
  }
  return result;
}

}  // namespace

StatusOr<SvdResult> ComputeSvd(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("empty matrix");
  }
  if (a.rows() >= a.cols()) return JacobiSvdTall(a);
  // A = U S V^T  <=>  A^T = V S U^T.
  StatusOr<SvdResult> t = JacobiSvdTall(a.Transposed());
  if (!t.ok()) return t.status();
  SvdResult result;
  result.u = std::move(t->v);
  result.v = std::move(t->u);
  result.singular_values = std::move(t->singular_values);
  return result;
}

StatusOr<Matrix> SolveLeastSquaresSvd(const Matrix& a, const Matrix& b,
                                      double rcond) {
  if (a.rows() != b.rows()) {
    return Status::InvalidArgument("A and B row counts differ");
  }
  StatusOr<SvdResult> svd = ComputeSvd(a);
  if (!svd.ok()) return svd.status();
  const size_t k = svd->singular_values.size();
  const double s_max = k == 0 ? 0.0 : svd->singular_values[0];
  const double cutoff = rcond * s_max;

  // X = V * diag(1/s) * U^T * B with small singular values zeroed.
  Matrix utb = svd->u.Transposed() * b;
  for (size_t i = 0; i < k; ++i) {
    const double s = svd->singular_values[i];
    const double inv = (s > cutoff && s > 0.0) ? 1.0 / s : 0.0;
    for (size_t c = 0; c < utb.cols(); ++c) utb(i, c) *= inv;
  }
  return svd->v * utb;
}

}  // namespace hpm
