// Trajectory Pattern Tree (paper §V): a signature-tree variant indexing
// pattern keys for efficient retrieval of the patterns similar to a
// query's recent movements and query time.
//
// Structure: a dynamic balanced multiway tree. Internal entries carry the
// bitwise OR of every key in their subtree; leaf entries carry a pattern
// key together with the pattern's confidence and its consequence region
// ("region key pointer"). Search descends depth-first, pruning any
// subtree whose union key fails the Intersect test against the query key.

#ifndef HPM_TPT_TPT_TREE_H_
#define HPM_TPT_TPT_TREE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "tpt/pattern_key.h"

namespace hpm {

/// A leaf entry: <pk, c, p> from the paper plus the id of the source
/// pattern so callers can recover the full rule.
struct IndexedPattern {
  PatternKey key;

  /// Rule confidence c.
  double confidence = 0.0;

  /// Region id of the consequence (the paper's region key pointer p).
  int consequence_region = 0;

  /// Index of the pattern in the miner's output vector.
  int pattern_id = 0;
};

/// How query keys are matched during search.
enum class SearchMode {
  /// Paper's Intersect: common '1's required on both premise and
  /// consequence parts (FQP).
  kPremiseAndConsequence,

  /// Common '1's required on the consequence part only; the premise
  /// constraint is given up (BQP, §VI-C).
  kConsequenceOnly,
};

/// Instrumentation collected by a single Search call. The frozen and
/// mutable trees prune identically, so `nodes_visited`/`entries_tested`
/// are layout-independent; `blocks_scanned` counts packed signature
/// blocks fetched from the FrozenTpt key arena and stays 0 on the
/// pointer tree (it is the frozen layout's cost metric).
struct TptSearchStats {
  size_t nodes_visited = 0;
  size_t entries_tested = 0;
  size_t blocks_scanned = 0;
};

/// The Trajectory Pattern Tree — the *mutable builder* form.
///
/// Serving-path searches run against the FrozenTpt arena emitted from a
/// finished tree (frozen_tpt.h); this class owns the dynamic insertion /
/// split / removal machinery, and its Search members remain as the
/// reference implementation the frozen layout is differentially tested
/// against (tests/proptest/prop_tpt_frozen_test.cc).
class TptTree {
 public:
  /// Tree node; defined in the .cc file (opaque to clients).
  struct Node;

  struct Options {
    /// Maximum entries per node before a split.
    int max_node_entries = 32;

    /// Minimum entries per node after a split (~40% fill, R-tree style).
    int min_node_entries = 13;
  };

  /// Creates an empty tree with default options.
  TptTree();

  explicit TptTree(Options options);
  ~TptTree();

  TptTree(TptTree&&) noexcept;
  TptTree& operator=(TptTree&&) noexcept;
  TptTree(const TptTree&) = delete;
  TptTree& operator=(const TptTree&) = delete;

  /// Inserts one pattern. All keys in a tree must share part lengths;
  /// mismatched keys return InvalidArgument.
  Status Insert(IndexedPattern pattern);

  /// Builds a tree from a batch ("bulk loading" for static historical
  /// data, §V-B). Implemented as sequential insertion, which keeps the
  /// ChooseLeaf similarity grouping identical to the dynamic path.
  static StatusOr<TptTree> BulkLoad(std::vector<IndexedPattern> patterns);
  static StatusOr<TptTree> BulkLoad(std::vector<IndexedPattern> patterns,
                                    Options options);

  /// All leaf entries whose key matches `query` under `mode`. Pointers
  /// remain valid until the next mutation of the tree.
  std::vector<const IndexedPattern*> Search(
      const PatternKey& query, SearchMode mode,
      TptSearchStats* stats = nullptr) const;

  /// Search writing into a caller-owned vector (cleared first) so hot
  /// paths can reuse one buffer across queries. `stats`, when given,
  /// accumulates rather than resets — callers zero it between queries if
  /// they want per-call numbers.
  void SearchInto(const PatternKey& query, SearchMode mode,
                  std::vector<const IndexedPattern*>* out,
                  TptSearchStats* stats = nullptr) const;

  /// Removes every indexed pattern for which `predicate` returns true
  /// (e.g. evicting rules whose confidence has drifted below a bar).
  /// Underfull nodes are dissolved R-tree-style: their surviving entries
  /// re-insert, so the fill invariants hold afterwards. Returns the
  /// number of patterns removed.
  size_t RemoveIf(const std::function<bool(const IndexedPattern&)>& predicate);

  /// Removes the single pattern with this pattern_id; false if absent.
  bool Remove(int pattern_id);

  /// Number of indexed patterns.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree height (leaf = 1, empty tree = 0).
  int Height() const;

  /// Approximate bytes of memory held by nodes, keys and entries — the
  /// Fig. 11a storage metric.
  size_t MemoryBytes() const;

  /// Structural self-check for tests: uniform leaf depth, fill factors,
  /// and that every internal entry key equals the union of its subtree.
  Status CheckInvariants() const;

 private:
  /// Paper Algorithm 1: descends from the root picking, at each level,
  /// the entry that (a) Contains the key with smallest Size, else
  /// (b) Intersects it with smallest Difference, else (c) has smallest
  /// Difference. Records the path for key adjustment.
  Node* ChooseLeaf(const PatternKey& key, std::vector<Node*>* path,
                   std::vector<int>* entry_indices) const;

  /// Splits an overfull node into two; returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);

  void SearchNode(const Node* node, const PatternKey& query, SearchMode mode,
                  std::vector<const IndexedPattern*>* out,
                  TptSearchStats* stats) const;

  /// The freezer walks nodes directly to emit the arena layout.
  friend class FrozenTpt;

  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace hpm

#endif  // HPM_TPT_TPT_TREE_H_
