// Brute-force pattern store: the baseline TPT is compared against in the
// paper's Fig. 11(b). Same Search contract as TptTree, implemented as a
// linear scan over a flat pattern array.

#ifndef HPM_TPT_BRUTE_FORCE_STORE_H_
#define HPM_TPT_BRUTE_FORCE_STORE_H_

#include <vector>

#include "common/status.h"
#include "tpt/tpt_tree.h"

namespace hpm {

/// Flat, unindexed pattern storage.
class BruteForceStore {
 public:
  BruteForceStore() = default;

  /// Adds one pattern (key part lengths must match prior entries).
  Status Insert(IndexedPattern pattern);

  /// Linear scan returning every entry matching `query` under `mode`.
  /// Result pointers remain valid until the next Insert.
  std::vector<const IndexedPattern*> Search(
      const PatternKey& query, SearchMode mode,
      TptSearchStats* stats = nullptr) const;

  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// Bytes held by the flat array (for storage comparisons).
  size_t MemoryBytes() const;

 private:
  std::vector<IndexedPattern> patterns_;
};

}  // namespace hpm

#endif  // HPM_TPT_BRUTE_FORCE_STORE_H_
