#include "tpt/frozen_tpt.h"

#include <cstdlib>
#include <cstring>

#include "bitset/word_ops.h"
#include "common/crc32.h"
#include "tpt/tpt_node.h"

namespace hpm {

namespace {

/// Wire-format constants for the "FTPT" section (see AppendTo).
constexpr char kSectionMagic[4] = {'F', 'T', 'P', 'T'};
constexpr uint32_t kSectionVersion = 1;

/// Sanity bound on key widths: wider than any region-grid encoding this
/// system can produce, small enough that a corrupt header cannot make us
/// allocate gigabytes.
constexpr uint32_t kMaxKeyBits = 1u << 22;

/// Uniform leaf depth in a sane tree is logarithmic in pattern count; a
/// parsed topology deeper than this is corrupt (and would otherwise
/// overflow SearchCursor's fixed frame stack).
constexpr int kMaxHeight = FrozenTpt::kMaxDepth;

size_t WordsForBits(size_t bits) { return (bits + 63) / 64; }

/// True when every bit of `words` beyond `bits` is zero — the
/// DynamicBitset tail invariant, which FromWords asserts.
bool TailBitsClear(const uint64_t* words, size_t num_words, size_t bits) {
  if (num_words == 0) return true;
  const size_t rem = bits % 64;
  if (rem == 0) return true;
  return (words[num_words - 1] >> rem) == 0;
}

void CountSubtree(const TptTree::Node* node, size_t* num_nodes,
                  size_t* num_entries) {
  ++*num_nodes;
  *num_entries += static_cast<size_t>(node->NumEntries());
  if (node->is_leaf) return;
  for (const auto& child : node->children) {
    CountSubtree(child.get(), num_nodes, num_entries);
  }
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendF64(std::string* out, double v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendI32(std::string* out, int32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

/// Bounds-checked cursor over the section bytes; every Read returns
/// false on truncation instead of walking past the buffer.
class SectionReader {
 public:
  SectionReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadBytes(void* out, size_t n) {
    if (size_ - pos_ < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU32(uint32_t* out) { return ReadBytes(out, sizeof(*out)); }
  bool ReadU64(uint64_t* out) { return ReadBytes(out, sizeof(*out)); }
  bool ReadF64(double* out) { return ReadBytes(out, sizeof(*out)); }
  bool ReadI32(int32_t* out) { return ReadBytes(out, sizeof(*out)); }

  size_t consumed() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

void AlignedWordArena::FreeDeleter::operator()(uint64_t* p) const {
  std::free(p);
}

AlignedWordArena::AlignedWordArena(size_t num_words) : size_(num_words) {
  if (num_words == 0) return;
  // aligned_alloc requires the size to be a multiple of the alignment;
  // the padding also lets the scan prefetch whole lines safely.
  const size_t bytes = (num_words * sizeof(uint64_t) + 63) / 64 * 64;
  void* p = std::aligned_alloc(64, bytes);
  HPM_CHECK(p != nullptr);
  std::memset(p, 0, bytes);
  words_.reset(static_cast<uint64_t*>(p));
}

size_t AlignedWordArena::AllocatedBytes() const {
  return size_ == 0 ? 0 : (size_ * sizeof(uint64_t) + 63) / 64 * 64;
}

FrozenTpt FrozenTpt::Freeze(const TptTree& tree) {
  FrozenTpt frozen;
  if (tree.empty()) return frozen;

  const TptTree::Node* root = tree.root_.get();
  const PatternKey& first = root->EntryKey(0);
  frozen.premise_bits_ = first.premise().size();
  frozen.consequence_bits_ = first.consequence().size();
  frozen.premise_words_ =
      static_cast<uint32_t>(first.premise().num_words());
  frozen.consequence_words_ =
      static_cast<uint32_t>(first.consequence().num_words());
  frozen.height_ = tree.Height();

  size_t num_nodes = 0, num_entries = 0;
  CountSubtree(root, &num_nodes, &num_entries);
  frozen.nodes_.reserve(num_nodes);
  frozen.entry_target_.resize(num_entries);
  frozen.key_words_ = AlignedWordArena(num_entries * frozen.Stride());
  frozen.patterns_.reserve(tree.size());

  // DFS preorder, children in entry order — the exact order SearchNode
  // visits, so frozen hits come out in the mutable tree's order.
  size_t entry_cursor = 0;
  const auto emit = [&](const auto& self,
                        const TptTree::Node* node) -> uint32_t {
    const uint32_t index = static_cast<uint32_t>(frozen.nodes_.size());
    const uint32_t n = static_cast<uint32_t>(node->NumEntries());
    const uint32_t first_entry = static_cast<uint32_t>(entry_cursor);
    frozen.nodes_.push_back(
        NodeRef{first_entry, n, node->is_leaf ? 1u : 0u});
    entry_cursor += n;

    const size_t stride = frozen.Stride();
    for (uint32_t i = 0; i < n; ++i) {
      const PatternKey& key = node->EntryKey(static_cast<int>(i));
      uint64_t* block =
          frozen.key_words_.data() + (first_entry + i) * stride;
      std::memcpy(block, key.consequence().words(),
                  frozen.consequence_words_ * sizeof(uint64_t));
      std::memcpy(block + frozen.consequence_words_, key.premise().words(),
                  frozen.premise_words_ * sizeof(uint64_t));
    }
    if (node->is_leaf) {
      for (uint32_t i = 0; i < n; ++i) {
        frozen.entry_target_[first_entry + i] =
            static_cast<uint32_t>(frozen.patterns_.size());
        frozen.patterns_.push_back(node->patterns[i]);
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        frozen.entry_target_[first_entry + i] =
            self(self, node->children[i].get());
      }
    }
    return index;
  };
  emit(emit, root);
  HPM_CHECK(frozen.nodes_.size() == num_nodes);
  HPM_CHECK(entry_cursor == num_entries);
  HPM_CHECK(frozen.patterns_.size() == tree.size());
  return frozen;
}

bool FrozenTpt::SearchCursor::Step(size_t max_entry_tests) {
  size_t budget = max_entry_tests;
  while (depth_ > 0 && budget > 0) {
    Frame& frame = frames_[depth_ - 1];
    const NodeRef node = tree_->nodes_[frame.node];
    if (frame.entry == node.num_entries) {
      --depth_;  // This subtree is exhausted; resume in the parent.
      continue;
    }
    const uint32_t i = frame.entry++;
    const size_t stride = tree_->Stride();
    const uint64_t* block =
        tree_->key_words_.data() + (node.first_entry + i) * stride;
    if (i + 1 < node.num_entries) {
      __builtin_prefetch(block + stride);
    }
    if (stats_ != nullptr) ++stats_->entries_tested;
    --budget;
    // Consequence part first (both modes prune on it), premise part only
    // when FQP still needs it — same short-circuit order as
    // PatternKey::Intersects, so entries_tested/pruning match the
    // mutable tree exactly.
    bool match =
        wordops::AnyCommon(block, query_consequence_,
                           tree_->consequence_words_);
    if (stats_ != nullptr) ++stats_->blocks_scanned;
    if (match && mode_ == SearchMode::kPremiseAndConsequence) {
      match = wordops::AnyCommon(block + tree_->consequence_words_,
                                 query_premise_, tree_->premise_words_);
      if (stats_ != nullptr) ++stats_->blocks_scanned;
    }
    if (!match) continue;
    const uint32_t target = tree_->entry_target_[node.first_entry + i];
    if (node.is_leaf != 0) {
      out_->push_back(&tree_->patterns_[target]);
    } else {
      HPM_CHECK(depth_ < kMaxDepth);
      frames_[depth_++] = Frame{target, 0};
      if (stats_ != nullptr) ++stats_->nodes_visited;
    }
  }
  return depth_ == 0;
}

void FrozenTpt::SearchCursor::Prefetch() const {
  // Walk up from the current frame to the first node with an untested
  // entry — that entry's block is the next one Step will touch.
  for (int d = depth_; d > 0; --d) {
    const Frame& frame = frames_[d - 1];
    const NodeRef node = tree_->nodes_[frame.node];
    if (frame.entry == node.num_entries) continue;
    __builtin_prefetch(tree_->key_words_.data() +
                       (node.first_entry + frame.entry) * tree_->Stride());
    return;
  }
}

FrozenTpt::SearchCursor FrozenTpt::StartSearch(
    const PatternKey& query, SearchMode mode,
    std::vector<const IndexedPattern*>* out, TptSearchStats* stats) const {
  out->clear();
  SearchCursor cursor;
  if (patterns_.empty()) return cursor;
  HPM_CHECK(query.consequence().size() == consequence_bits_);
  if (mode == SearchMode::kPremiseAndConsequence) {
    HPM_CHECK(query.premise().size() == premise_bits_);
  }
  cursor.tree_ = this;
  cursor.query_consequence_ = query.consequence().words();
  cursor.query_premise_ = query.premise().words();
  cursor.mode_ = mode;
  cursor.out_ = out;
  cursor.stats_ = stats;
  cursor.frames_[cursor.depth_++] = SearchCursor::Frame{0, 0};
  if (stats != nullptr) ++stats->nodes_visited;
  return cursor;
}

std::vector<const IndexedPattern*> FrozenTpt::Search(
    const PatternKey& query, SearchMode mode, TptSearchStats* stats) const {
  std::vector<const IndexedPattern*> out;
  SearchInto(query, mode, &out, stats);
  return out;
}

void FrozenTpt::SearchInto(const PatternKey& query, SearchMode mode,
                           std::vector<const IndexedPattern*>* out,
                           TptSearchStats* stats) const {
  SearchCursor cursor = StartSearch(query, mode, out, stats);
  while (!cursor.Step(SIZE_MAX)) {
  }
}

size_t FrozenTpt::MemoryBytes() const {
  size_t bytes = sizeof(FrozenTpt);
  bytes += nodes_.size() * sizeof(NodeRef);
  bytes += entry_target_.size() * sizeof(uint32_t);
  bytes += key_words_.AllocatedBytes();
  for (const IndexedPattern& p : patterns_) {
    bytes += sizeof(IndexedPattern) + p.key.MemoryBytes();
  }
  return bytes;
}

Status FrozenTpt::CheckInvariants() const {
  if (nodes_.empty()) {
    if (!entry_target_.empty() || !patterns_.empty()) {
      return Status::Internal("empty frozen TPT carries entries");
    }
    return Status::OK();
  }
  int height = 0;
  HPM_RETURN_IF_ERROR(
      ValidateTopology(nodes_, entry_target_, patterns_.size(), &height));
  if (height != height_) {
    return Status::Internal("frozen TPT height mismatch");
  }
  const size_t stride = Stride();
  for (size_t e = 0; e < entry_target_.size(); ++e) {
    const uint64_t* block = key_words_.data() + e * stride;
    if (!TailBitsClear(block, consequence_words_, consequence_bits_) ||
        !TailBitsClear(block + consequence_words_, premise_words_,
                       premise_bits_)) {
      return Status::Internal("frozen TPT key has dirty tail bits");
    }
  }
  return Status::OK();
}

void FrozenTpt::AppendTo(std::string* out) const {
  const size_t start = out->size();
  out->append(kSectionMagic, sizeof(kSectionMagic));
  AppendU32(out, kSectionVersion);
  AppendU32(out, static_cast<uint32_t>(premise_bits_));
  AppendU32(out, static_cast<uint32_t>(consequence_bits_));
  AppendU32(out, static_cast<uint32_t>(nodes_.size()));
  AppendU32(out, static_cast<uint32_t>(entry_target_.size()));
  AppendU32(out, static_cast<uint32_t>(patterns_.size()));
  for (const NodeRef& node : nodes_) {
    AppendU32(out, node.first_entry);
    AppendU32(out, node.num_entries);
    AppendU32(out, node.is_leaf);
  }
  for (uint32_t target : entry_target_) AppendU32(out, target);
  for (size_t w = 0; w < key_words_.size(); ++w) {
    AppendU64(out, key_words_.data()[w]);
  }
  for (const IndexedPattern& p : patterns_) {
    AppendF64(out, p.confidence);
    AppendI32(out, p.consequence_region);
    AppendI32(out, p.pattern_id);
  }
  AppendU32(out, Crc32(out->data() + start, out->size() - start));
}

Status FrozenTpt::ValidateTopology(const std::vector<NodeRef>& nodes,
                                   const std::vector<uint32_t>& targets,
                                   size_t num_patterns, int* height) {
  // Entry runs must partition the entry arrays contiguously in node
  // order, with no empty nodes (an empty tree has no nodes at all).
  size_t running = 0;
  for (const NodeRef& node : nodes) {
    if (node.is_leaf > 1) {
      return Status::DataLoss("frozen TPT node has corrupt leaf flag");
    }
    if (node.num_entries == 0) {
      return Status::DataLoss("frozen TPT node has zero entries");
    }
    if (node.first_entry != running) {
      return Status::DataLoss("frozen TPT entry runs are not contiguous");
    }
    running += node.num_entries;
  }
  if (running != targets.size()) {
    return Status::DataLoss("frozen TPT entry count mismatch");
  }

  // Leaf targets are payload indices and must appear exactly in payload
  // order; internal targets are strictly-forward child indices, each
  // non-root node referenced exactly once.
  std::vector<uint32_t> referenced_by(nodes.size(), 0);
  uint32_t next_payload = 0;
  for (size_t n = 0; n < nodes.size(); ++n) {
    const NodeRef& node = nodes[n];
    for (uint32_t i = 0; i < node.num_entries; ++i) {
      const uint32_t target = targets[node.first_entry + i];
      if (node.is_leaf != 0) {
        if (target != next_payload) {
          return Status::DataLoss(
              "frozen TPT leaf payload indices out of sequence");
        }
        ++next_payload;
      } else {
        if (target <= n || target >= nodes.size()) {
          return Status::DataLoss("frozen TPT child index out of range");
        }
        if (referenced_by[target] != 0) {
          return Status::DataLoss(
              "frozen TPT child referenced more than once");
        }
        referenced_by[target] = 1;
      }
    }
  }
  if (next_payload != num_patterns) {
    return Status::DataLoss("frozen TPT payload count mismatch");
  }
  for (size_t n = 1; n < nodes.size(); ++n) {
    if (referenced_by[n] == 0) {
      return Status::DataLoss("frozen TPT node is unreachable");
    }
  }

  // Depths propagate in one forward pass (children always follow their
  // parent); leaves must share one depth, bounded by kMaxHeight so no
  // file can drive unbounded search recursion.
  std::vector<int> depth(nodes.size(), 0);
  depth[0] = 1;
  int leaf_depth = -1;
  for (size_t n = 0; n < nodes.size(); ++n) {
    const NodeRef& node = nodes[n];
    if (depth[n] > kMaxHeight) {
      return Status::DataLoss("frozen TPT height exceeds bound");
    }
    if (node.is_leaf != 0) {
      if (leaf_depth == -1) {
        leaf_depth = depth[n];
      } else if (leaf_depth != depth[n]) {
        return Status::DataLoss("frozen TPT leaves at different depths");
      }
      continue;
    }
    for (uint32_t i = 0; i < node.num_entries; ++i) {
      depth[targets[node.first_entry + i]] = depth[n] + 1;
    }
  }
  *height = leaf_depth < 0 ? 0 : leaf_depth;
  return Status::OK();
}

StatusOr<FrozenTpt> FrozenTpt::Parse(const char* data, size_t size,
                                     size_t* consumed) {
  SectionReader reader(data, size);
  char magic[sizeof(kSectionMagic)];
  if (!reader.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kSectionMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("bad frozen TPT section magic");
  }
  uint32_t version = 0;
  uint32_t premise_bits = 0, consequence_bits = 0;
  uint32_t num_nodes = 0, num_entries = 0, num_patterns = 0;
  if (!reader.ReadU32(&version) || !reader.ReadU32(&premise_bits) ||
      !reader.ReadU32(&consequence_bits) || !reader.ReadU32(&num_nodes) ||
      !reader.ReadU32(&num_entries) || !reader.ReadU32(&num_patterns)) {
    return Status::DataLoss("truncated frozen TPT section header");
  }
  if (version != kSectionVersion) {
    return Status::DataLoss("unsupported frozen TPT section version");
  }
  if (premise_bits > kMaxKeyBits || consequence_bits > kMaxKeyBits) {
    return Status::DataLoss("implausible frozen TPT key width");
  }

  const uint64_t premise_words = WordsForBits(premise_bits);
  const uint64_t consequence_words = WordsForBits(consequence_bits);
  const uint64_t stride = premise_words + consequence_words;

  // Size the whole body up front (64-bit math, so corrupt counts cannot
  // overflow) before allocating anything count-proportional.
  const uint64_t body_bytes = uint64_t{num_nodes} * 12 +
                              uint64_t{num_entries} * 4 +
                              uint64_t{num_entries} * stride * 8 +
                              uint64_t{num_patterns} * 16;
  if (body_bytes + sizeof(uint32_t) > reader.remaining()) {
    return Status::DataLoss("truncated frozen TPT section body");
  }
  if (num_patterns > num_entries) {
    return Status::DataLoss("frozen TPT payload count exceeds entries");
  }
  if ((num_nodes == 0) != (num_entries == 0) ||
      (num_nodes == 0 && num_patterns != 0)) {
    return Status::DataLoss("inconsistent frozen TPT counts");
  }

  std::vector<NodeRef> nodes(num_nodes);
  for (NodeRef& node : nodes) {
    HPM_CHECK(reader.ReadU32(&node.first_entry) &&
              reader.ReadU32(&node.num_entries) &&
              reader.ReadU32(&node.is_leaf));
  }
  std::vector<uint32_t> targets(num_entries);
  for (uint32_t& target : targets) {
    HPM_CHECK(reader.ReadU32(&target));
  }
  AlignedWordArena key_words(num_entries * stride);
  for (size_t w = 0; w < key_words.size(); ++w) {
    HPM_CHECK(reader.ReadU64(&key_words.data()[w]));
  }
  std::vector<double> confidences(num_patterns);
  std::vector<int32_t> regions(num_patterns);
  std::vector<int32_t> pattern_ids(num_patterns);
  for (uint32_t p = 0; p < num_patterns; ++p) {
    HPM_CHECK(reader.ReadF64(&confidences[p]) &&
              reader.ReadI32(&regions[p]) &&
              reader.ReadI32(&pattern_ids[p]));
  }

  const size_t body_end = reader.consumed();
  uint32_t stored_crc = 0;
  HPM_CHECK(reader.ReadU32(&stored_crc));
  if (Crc32(data, body_end) != stored_crc) {
    return Status::DataLoss("frozen TPT section checksum mismatch");
  }

  FrozenTpt frozen;
  *consumed = reader.consumed();
  if (num_nodes == 0) return frozen;

  int height = 0;
  HPM_RETURN_IF_ERROR(ValidateTopology(nodes, targets, num_patterns,
                                       &height));

  // Every packed part must honor the DynamicBitset zero-tail invariant
  // (FromWords and the whole-word scan both rely on it).
  for (uint64_t e = 0; e < num_entries; ++e) {
    const uint64_t* block = key_words.data() + e * stride;
    if (!TailBitsClear(block, consequence_words, consequence_bits) ||
        !TailBitsClear(block + consequence_words, premise_words,
                       premise_bits)) {
      return Status::DataLoss("frozen TPT key has bits beyond declared width");
    }
  }

  frozen.premise_bits_ = premise_bits;
  frozen.consequence_bits_ = consequence_bits;
  frozen.premise_words_ = static_cast<uint32_t>(premise_words);
  frozen.consequence_words_ = static_cast<uint32_t>(consequence_words);
  frozen.height_ = height;
  frozen.patterns_.resize(num_patterns);
  for (const NodeRef& node : nodes) {
    if (node.is_leaf == 0) continue;
    for (uint32_t i = 0; i < node.num_entries; ++i) {
      const uint32_t entry = node.first_entry + i;
      const uint64_t* block = key_words.data() + entry * stride;
      IndexedPattern& p = frozen.patterns_[targets[entry]];
      p.key = PatternKey(
          DynamicBitset::FromWords(block + consequence_words, premise_words,
                                   premise_bits),
          DynamicBitset::FromWords(block, consequence_words,
                                   consequence_bits));
      p.confidence = confidences[targets[entry]];
      p.consequence_region = regions[targets[entry]];
      p.pattern_id = pattern_ids[targets[entry]];
    }
  }
  frozen.nodes_ = std::move(nodes);
  frozen.entry_target_ = std::move(targets);
  frozen.key_words_ = std::move(key_words);
  return frozen;
}

}  // namespace hpm
