// FrozenTpt: the immutable, arena-backed generation layout of the
// Trajectory Pattern Tree (paper §V), built once from a finished mutable
// TptTree and searched for the rest of that model generation's life.
//
// Why a second representation: every published HybridPredictor is
// immutable after the atomic snapshot swap, yet the mutable tree it
// carried was pointer-chasing — one heap node per tree node, two heap
// word arrays per entry key. The frozen form stores
//
//   nodes_        all tree nodes, DFS preorder, 32-bit entry offsets
//                 instead of child pointers
//   entry_target_ per entry: child node index (internal) or leaf payload
//                 index (leaf), 32-bit
//   key_words_    every entry's signature packed into ONE contiguous
//                 64-byte-aligned uint64 arena: entry e occupies
//                 [e*stride, (e+1)*stride) with its consequence words
//                 first, then its premise words
//   patterns_     leaf payloads (key, confidence, consequence region,
//                 pattern id) in leaf-entry order — Search returns
//                 pointers into this array
//
// so a node's entries are one contiguous block run and the
// Intersect/Contain hot loop is a branch-light word-wise AND+popcount
// scan (wordops primitives — the same functions the mutable PatternKey
// predicates call) with prefetch of the upcoming blocks.
//
// Search visits nodes, tests entries, and emits hits in exactly the
// mutable tree's order; prop_tpt_frozen_test proves the results (ids,
// confidences, order) and the TptSearchStats pruning counters
// bit-identical on randomized pattern sets in both SearchModes.
//
// The arena has a compact wire form (AppendTo/Parse, CRC-footed) so a
// persisted model reloads by validating bytes instead of replaying the
// sequential-insert build.

#ifndef HPM_TPT_FROZEN_TPT_H_
#define HPM_TPT_FROZEN_TPT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tpt/tpt_tree.h"

namespace hpm {

/// A 64-byte-aligned, heap-allocated uint64 array: the signature block
/// arena. Move-only (the frozen tree itself is move-only).
class AlignedWordArena {
 public:
  AlignedWordArena() = default;

  /// Allocates (zero-filled) room for `num_words` words.
  explicit AlignedWordArena(size_t num_words);

  AlignedWordArena(AlignedWordArena&&) noexcept = default;
  AlignedWordArena& operator=(AlignedWordArena&&) noexcept = default;
  AlignedWordArena(const AlignedWordArena&) = delete;
  AlignedWordArena& operator=(const AlignedWordArena&) = delete;

  uint64_t* data() { return words_.get(); }
  const uint64_t* data() const { return words_.get(); }
  size_t size() const { return size_; }

  /// Bytes actually allocated (size rounded up to the 64-byte line).
  size_t AllocatedBytes() const;

 private:
  struct FreeDeleter {
    void operator()(uint64_t* p) const;
  };
  std::unique_ptr<uint64_t[], FreeDeleter> words_;
  size_t size_ = 0;
};

/// The frozen, scannable TPT generation. Default-constructed = empty
/// (matches an untrained / zero-pattern tree: every search returns
/// nothing and touches no node).
class FrozenTpt {
 public:
  FrozenTpt() = default;

  FrozenTpt(FrozenTpt&&) noexcept = default;
  FrozenTpt& operator=(FrozenTpt&&) noexcept = default;
  FrozenTpt(const FrozenTpt&) = delete;
  FrozenTpt& operator=(const FrozenTpt&) = delete;

  /// Emits the arena layout of a finished builder tree. The tree is only
  /// read; the frozen copy shares nothing with it.
  static FrozenTpt Freeze(const TptTree& tree);

  /// Depth bound: Parse rejects deeper topologies and SearchCursor's
  /// fixed frame stack assumes it (a sane tree is logarithmic — 64
  /// levels would need ~2^64 patterns).
  static constexpr int kMaxDepth = 64;

  /// All leaf entries matching `query` under `mode`, in the mutable
  /// tree's traversal order. Pointers remain valid for the lifetime of
  /// this FrozenTpt.
  std::vector<const IndexedPattern*> Search(
      const PatternKey& query, SearchMode mode,
      TptSearchStats* stats = nullptr) const;

  /// Search writing into a caller-owned vector (cleared first); `stats`,
  /// when given, accumulates — the same contract as TptTree::SearchInto.
  void SearchInto(const PatternKey& query, SearchMode mode,
                  std::vector<const IndexedPattern*>* out,
                  TptSearchStats* stats = nullptr) const;

  /// A paused depth-first traversal that can be advanced a few entry
  /// tests at a time. SearchInto is exactly StartSearch + Step-to-done,
  /// so interleaved (batched) and sequential execution produce
  /// bit-identical hits, hit order and TptSearchStats by construction —
  /// the cursor IS the search, not a second implementation of it.
  ///
  /// Lifetime: the cursor borrows the tree, the query key's word arrays,
  /// `out` and `stats`; all four must outlive it. A default-constructed
  /// cursor is done.
  class SearchCursor {
   public:
    SearchCursor() = default;

    bool done() const { return depth_ == 0; }

    /// Runs at most `max_entry_tests` entry tests (descents and frame
    /// pops are free — the budget meters signature-block work, the part
    /// worth interleaving). Returns done().
    bool Step(size_t max_entry_tests);

    /// Issues a prefetch for the next signature block Step would test,
    /// so a batch executor can warm it before switching to another
    /// query. No effect on results or stats; no-op when done.
    void Prefetch() const;

   private:
    friend class FrozenTpt;

    struct Frame {
      uint32_t node = 0;
      uint32_t entry = 0;
    };

    const FrozenTpt* tree_ = nullptr;
    const uint64_t* query_consequence_ = nullptr;
    const uint64_t* query_premise_ = nullptr;
    SearchMode mode_ = SearchMode::kPremiseAndConsequence;
    std::vector<const IndexedPattern*>* out_ = nullptr;
    TptSearchStats* stats_ = nullptr;
    /// frames_[0..depth_) is the DFS stack; depth_ == 0 means done.
    std::array<Frame, kMaxDepth> frames_;
    int depth_ = 0;
  };

  /// Begins a resumable search: clears `out`, validates the query key
  /// widths, and (for a non-empty tree) visits the root. Drive the
  /// returned cursor with Step() until done; hits land in `out` in the
  /// same order SearchInto emits them.
  SearchCursor StartSearch(const PatternKey& query, SearchMode mode,
                           std::vector<const IndexedPattern*>* out,
                           TptSearchStats* stats = nullptr) const;

  /// Number of indexed patterns.
  size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }

  /// Tree height (leaf = 1, empty = 0), carried over from the builder.
  int Height() const { return height_; }

  size_t premise_bits() const { return premise_bits_; }
  size_t consequence_bits() const { return consequence_bits_; }

  /// Leaf payloads in leaf-entry (DFS) order.
  const std::vector<IndexedPattern>& patterns() const { return patterns_; }

  /// Bytes held by the arena, topology arrays and payloads — the
  /// `tpt.frozen_bytes` metric, comparable against the builder tree's
  /// MemoryBytes().
  size_t MemoryBytes() const;

  /// Structural self-check for tests: runs the same topology validation
  /// Parse applies to untrusted bytes (entry-run contiguity, payload
  /// sequencing, forward-only child references, uniform leaf depth,
  /// zero tail bits).
  Status CheckInvariants() const;

  /// ---- Wire form ------------------------------------------------------
  /// Appends the self-delimiting serialized arena to `out`: a "FTPT"
  /// header, the topology and payload arrays, the packed key words, and
  /// a trailing CRC32 over the whole section.
  void AppendTo(std::string* out) const;

  /// Parses a section written by AppendTo starting at `data`. On success
  /// `*consumed` is the section's byte length. Structural damage —
  /// truncation, corrupt counts, dangling child/payload indices, dirty
  /// tail bits, a CRC mismatch — returns DataLoss without crashing, so
  /// callers can quarantine the source file and rebuild from patterns.
  static StatusOr<FrozenTpt> Parse(const char* data, size_t size,
                                   size_t* consumed);

 private:
  struct NodeRef {
    /// First entry in the shared entry arrays; this node's entries are
    /// [first_entry, first_entry + num_entries).
    uint32_t first_entry = 0;
    uint32_t num_entries = 0;
    uint32_t is_leaf = 0;
  };

  /// Words per packed key block (consequence words + premise words).
  size_t Stride() const { return consequence_words_ + premise_words_; }

  /// Validates a parsed topology (see Parse); factored out so tests can
  /// hit each rejection path.
  static Status ValidateTopology(const std::vector<NodeRef>& nodes,
                                 const std::vector<uint32_t>& targets,
                                 size_t num_patterns, int* height);

  std::vector<NodeRef> nodes_;
  std::vector<uint32_t> entry_target_;
  AlignedWordArena key_words_;
  std::vector<IndexedPattern> patterns_;
  size_t premise_bits_ = 0;
  size_t consequence_bits_ = 0;
  uint32_t premise_words_ = 0;
  uint32_t consequence_words_ = 0;
  int height_ = 0;
};

}  // namespace hpm

#endif  // HPM_TPT_FROZEN_TPT_H_
