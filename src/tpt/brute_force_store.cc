#include "tpt/brute_force_store.h"

namespace hpm {

Status BruteForceStore::Insert(IndexedPattern pattern) {
  if (!patterns_.empty()) {
    const PatternKey& existing = patterns_.front().key;
    if (existing.premise().size() != pattern.key.premise().size() ||
        existing.consequence().size() != pattern.key.consequence().size()) {
      return Status::InvalidArgument(
          "pattern key part lengths differ from the store's");
    }
  }
  patterns_.push_back(std::move(pattern));
  return Status::OK();
}

std::vector<const IndexedPattern*> BruteForceStore::Search(
    const PatternKey& query, SearchMode mode, TptSearchStats* stats) const {
  std::vector<const IndexedPattern*> out;
  for (const IndexedPattern& p : patterns_) {
    if (stats != nullptr) ++stats->entries_tested;
    const bool match = mode == SearchMode::kPremiseAndConsequence
                           ? p.key.Intersects(query)
                           : p.key.IntersectsConsequence(query);
    if (match) out.push_back(&p);
  }
  return out;
}

size_t BruteForceStore::MemoryBytes() const {
  size_t bytes = sizeof(BruteForceStore);
  for (const IndexedPattern& p : patterns_) {
    bytes += sizeof(IndexedPattern) + p.key.MemoryBytes();
  }
  return bytes;
}

}  // namespace hpm
