// Pattern keys: the bit-signature encoding of trajectory patterns that
// the Trajectory Pattern Tree indexes (paper §V-A).
//
// A pattern key is the concatenation of a consequence key (one bit per
// consequence time offset in use) and a premise key (one bit per frequent
// region, position = region id, hash 2^id). The paper prints keys with
// the consequence key first (most significant); ToString follows that.

#ifndef HPM_TPT_PATTERN_KEY_H_
#define HPM_TPT_PATTERN_KEY_H_

#include <string>

#include "bitset/dynamic_bitset.h"

namespace hpm {

/// Bit signature of one trajectory pattern (or of a query).
///
/// The two parts are kept as separate bitmaps because the Intersect
/// operation — the workhorse of both insertion and search — requires
/// common '1's on *both* parts independently.
class PatternKey {
 public:
  PatternKey() = default;

  /// Creates an all-zero key with the given part lengths.
  PatternKey(size_t premise_length, size_t consequence_length);

  /// Builds from explicit parts (sizes may differ between keys only if
  /// they belong to different key tables; all keys in one TPT share
  /// lengths).
  PatternKey(DynamicBitset premise, DynamicBitset consequence);

  const DynamicBitset& premise() const { return premise_; }
  const DynamicBitset& consequence() const { return consequence_; }
  DynamicBitset& mutable_premise() { return premise_; }
  DynamicBitset& mutable_consequence() { return consequence_; }

  /// Number of '1's over both parts — the paper's Size(pk).
  size_t Size() const;

  /// Bitwise OR of both parts — the paper's Union. Precondition: equal
  /// part lengths.
  void UnionWith(const PatternKey& other);

  /// True if this key's '1's are a superset of `other`'s on both parts —
  /// the paper's Contain(pk1, pk2) with pk1 = *this.
  bool ContainsKey(const PatternKey& other) const;

  /// Number of '1's set here but absent in `other` —
  /// Difference(pk1, pk2) = Size(pk1 XOR (pk1 AND pk2)).
  size_t DifferenceFrom(const PatternKey& other) const;

  /// True if the keys share at least one '1' on the consequence part AND
  /// at least one '1' on the premise part — the paper's Intersect.
  bool Intersects(const PatternKey& other) const;

  /// Intersect relaxed to the consequence part only; used by BQP, which
  /// gives up the premise constraint (paper §VI-C).
  bool IntersectsConsequence(const PatternKey& other) const;

  bool operator==(const PatternKey& other) const;
  bool operator!=(const PatternKey& other) const {
    return !(*this == other);
  }

  /// Consequence bits then premise bits, most significant first — the
  /// paper's printed form (e.g. "1000011").
  std::string ToString() const;

  /// Heap bytes held by the two bitmaps (Fig. 11a storage accounting).
  size_t MemoryBytes() const;

 private:
  DynamicBitset premise_;
  DynamicBitset consequence_;
};

}  // namespace hpm

#endif  // HPM_TPT_PATTERN_KEY_H_
