#include "tpt/pattern_key.h"

namespace hpm {

PatternKey::PatternKey(size_t premise_length, size_t consequence_length)
    : premise_(premise_length), consequence_(consequence_length) {}

PatternKey::PatternKey(DynamicBitset premise, DynamicBitset consequence)
    : premise_(std::move(premise)), consequence_(std::move(consequence)) {}

size_t PatternKey::Size() const {
  return premise_.Count() + consequence_.Count();
}

void PatternKey::UnionWith(const PatternKey& other) {
  premise_ |= other.premise_;
  consequence_ |= other.consequence_;
}

bool PatternKey::ContainsKey(const PatternKey& other) const {
  return premise_.Contains(other.premise_) &&
         consequence_.Contains(other.consequence_);
}

size_t PatternKey::DifferenceFrom(const PatternKey& other) const {
  return premise_.DifferenceCount(other.premise_) +
         consequence_.DifferenceCount(other.consequence_);
}

bool PatternKey::Intersects(const PatternKey& other) const {
  return consequence_.AnyCommon(other.consequence_) &&
         premise_.AnyCommon(other.premise_);
}

bool PatternKey::IntersectsConsequence(const PatternKey& other) const {
  return consequence_.AnyCommon(other.consequence_);
}

bool PatternKey::operator==(const PatternKey& other) const {
  return premise_ == other.premise_ && consequence_ == other.consequence_;
}

std::string PatternKey::ToString() const {
  return consequence_.ToString() + premise_.ToString();
}

size_t PatternKey::MemoryBytes() const {
  return premise_.MemoryBytes() + consequence_.MemoryBytes();
}

}  // namespace hpm
