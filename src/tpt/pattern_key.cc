#include "tpt/pattern_key.h"

#include "bitset/word_ops.h"
#include "common/status.h"

namespace hpm {

PatternKey::PatternKey(size_t premise_length, size_t consequence_length)
    : premise_(premise_length), consequence_(consequence_length) {}

PatternKey::PatternKey(DynamicBitset premise, DynamicBitset consequence)
    : premise_(std::move(premise)), consequence_(std::move(consequence)) {}

size_t PatternKey::Size() const {
  return premise_.Count() + consequence_.Count();
}

void PatternKey::UnionWith(const PatternKey& other) {
  premise_ |= other.premise_;
  consequence_ |= other.consequence_;
}

// The three key-match predicates all reduce to the wordops primitives —
// the same functions the FrozenTpt arena scan calls on its packed
// blocks — so the mutable and frozen matching semantics are one
// implementation, not three near-copies.

bool PatternKey::ContainsKey(const PatternKey& other) const {
  HPM_CHECK(premise_.size() == other.premise_.size() &&
            consequence_.size() == other.consequence_.size());
  return wordops::Contains(premise_.words(), other.premise_.words(),
                           premise_.num_words()) &&
         wordops::Contains(consequence_.words(), other.consequence_.words(),
                           consequence_.num_words());
}

size_t PatternKey::DifferenceFrom(const PatternKey& other) const {
  return premise_.DifferenceCount(other.premise_) +
         consequence_.DifferenceCount(other.consequence_);
}

bool PatternKey::Intersects(const PatternKey& other) const {
  HPM_CHECK(premise_.size() == other.premise_.size() &&
            consequence_.size() == other.consequence_.size());
  return wordops::AnyCommon(consequence_.words(),
                            other.consequence_.words(),
                            consequence_.num_words()) &&
         wordops::AnyCommon(premise_.words(), other.premise_.words(),
                            premise_.num_words());
}

bool PatternKey::IntersectsConsequence(const PatternKey& other) const {
  HPM_CHECK(consequence_.size() == other.consequence_.size());
  return wordops::AnyCommon(consequence_.words(),
                            other.consequence_.words(),
                            consequence_.num_words());
}

bool PatternKey::operator==(const PatternKey& other) const {
  return premise_ == other.premise_ && consequence_ == other.consequence_;
}

std::string PatternKey::ToString() const {
  return consequence_.ToString() + premise_.ToString();
}

size_t PatternKey::MemoryBytes() const {
  return premise_.MemoryBytes() + consequence_.MemoryBytes();
}

}  // namespace hpm
