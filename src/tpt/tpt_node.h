// The mutable TptTree's node layout. Internal to the tpt/ subsystem:
// tpt_tree.cc mutates nodes, frozen_tpt.cc walks them once to emit the
// arena representation. Clients of either tree never see this type.

#ifndef HPM_TPT_TPT_NODE_H_
#define HPM_TPT_TPT_NODE_H_

#include <memory>
#include <vector>

#include "tpt/tpt_tree.h"

namespace hpm {

struct TptTree::Node {
  bool is_leaf = true;

  /// Leaf payload (key lives inside each IndexedPattern).
  std::vector<IndexedPattern> patterns;

  /// Internal payload: union keys parallel to children.
  std::vector<PatternKey> keys;
  std::vector<std::unique_ptr<Node>> children;

  int NumEntries() const {
    return is_leaf ? static_cast<int>(patterns.size())
                   : static_cast<int>(children.size());
  }

  const PatternKey& EntryKey(int i) const {
    return is_leaf ? patterns[static_cast<size_t>(i)].key
                   : keys[static_cast<size_t>(i)];
  }

  /// Union of all entry keys; the node must be non-empty.
  PatternKey UnionKey() const {
    PatternKey u = EntryKey(0);
    for (int i = 1; i < NumEntries(); ++i) u.UnionWith(EntryKey(i));
    return u;
  }
};

}  // namespace hpm

#endif  // HPM_TPT_TPT_NODE_H_
